// `polaris_cli audit`: the `leak_estimate(D)` primitive as a flow step - a
// per-design TVLA report, human table or machine-readable JSON. Also the CI
// round-trip check: auditing a .v file re-parses whatever `mask` emitted.
//
// `--design` accepts a comma-separated list; multiple designs audit
// concurrently - every campaign's shards drain through the global
// engine::Scheduler as one work queue (core::audit_designs), so a big
// design's tail is filled by the small ones' shards. Reports are identical
// to auditing each design alone.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "cli.hpp"
#include "techlib/techlib.hpp"
#include "tvla/tvla.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace polaris::cli {

namespace {

void print_json(const circuits::Design& design,
                const tvla::LeakageReport& report, std::size_t traces,
                std::size_t top_n) {
  const auto leaky = report.leaky_groups();
  const std::size_t top = std::min(top_n, leaky.size());
  std::printf("{\"design\":\"%s\",\"gates\":%zu,\"measured\":%zu,"
              "\"leaky\":%zu,\"threshold\":%.3f,\"total_abs_t\":%.6f,"
              "\"leakage_per_gate\":%.6f,\"traces\":%zu,\"top\":[",
              json_escape(design.name).c_str(), design.netlist.gate_count(),
              report.measured_count(), leaky.size(), report.threshold(),
              report.total_abs_t(), report.leakage_per_gate(), traces);
  for (std::size_t i = 0; i < top; ++i) {
    std::printf("%s{\"gate\":%lu,\"t\":%.4f}", i == 0 ? "" : ",",
                static_cast<unsigned long>(leaky[i]),
                report.t_value(leaky[i]));
  }
  std::printf("]}");
}

void print_table(const circuits::Design& design,
                 const tvla::LeakageReport& report, std::size_t traces,
                 std::size_t top_n) {
  const auto leaky = report.leaky_groups();
  const std::size_t top = std::min(top_n, leaky.size());
  std::printf("=== TVLA audit: %s (%zu gates, %zu traces) ===\n",
              design.name.c_str(), design.netlist.gate_count(), traces);
  std::printf("measured groups:  %zu\n", report.measured_count());
  std::printf("leaky (|t|>%.1f): %zu\n", report.threshold(), leaky.size());
  std::printf("total |t|:        %.3f\n", report.total_abs_t());
  std::printf("leakage per gate: %.3f\n\n", report.leakage_per_gate());
  if (top > 0) {
    util::Table table({"Rank", "Gate", "|t|"});
    for (std::size_t i = 0; i < top; ++i) {
      table.add_row({std::to_string(i + 1), std::to_string(leaky[i]),
                     util::format_double(std::abs(report.t_value(leaky[i])), 3)});
    }
    std::fputs(table.render().c_str(), stdout);
  }
}

}  // namespace

int cmd_audit(std::span<const char* const> args) {
  std::vector<FlagSpec> specs = config_flag_specs();
  specs.push_back({"design", true,
                   "suite name(s) or Verilog file(s), comma-separated "
                   "(required; several audit concurrently)"});
  specs.push_back({"scale", true, "suite design-size scale in (0,1] (default 1.0)"});
  specs.push_back({"top", true, "list the N leakiest gates (default 10)"});
  specs.push_back({"json", false, "emit a JSON object (array when several designs)"});
  specs.push_back({"help", false, "show this help"});
  const ParsedFlags flags(args, specs);
  if (flags.has("help")) {
    std::printf("usage: polaris_cli audit --design <name|file.v>[,...] "
                "[flags]\n\n%s",
                render_flag_help(specs).c_str());
    return 0;
  }

  const auto config = config_from_flags(flags);
  const double scale = flags.get_double("scale", 1.0);
  std::vector<circuits::Design> designs;
  for (const auto& name : util::split(flags.require("design"), ",")) {
    // trim: "--design 'des3, square'" is natural shell quoting.
    const auto trimmed = util::trim(name);
    if (trimmed.empty()) continue;
    designs.push_back(load_design(std::string(trimmed), scale));
  }
  if (designs.empty()) throw UsageError("flag '--design' names no designs");

  const auto lib = techlib::TechLibrary::default_library();
  const auto reports = core::audit_designs(designs, lib, config);
  const std::size_t top = flags.get_size("top", 10);

  if (flags.has("json")) {
    // One object for a single design (the stable CI format); an array when
    // several were audited together.
    if (designs.size() > 1) std::printf("[");
    for (std::size_t i = 0; i < designs.size(); ++i) {
      if (i > 0) std::printf(",");
      print_json(designs[i], reports[i], config.tvla.traces, top);
    }
    if (designs.size() > 1) std::printf("]");
    std::printf("\n");
    return 0;
  }

  for (std::size_t i = 0; i < designs.size(); ++i) {
    if (i > 0) std::printf("\n");
    print_table(designs[i], reports[i], config.tvla.traces, top);
  }
  return 0;
}

}  // namespace polaris::cli
