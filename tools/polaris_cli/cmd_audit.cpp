// `polaris_cli audit`: the `leak_estimate(D)` primitive as a flow step - a
// per-design TVLA report, human table or machine-readable JSON. Also the CI
// round-trip check: auditing a .v file re-parses whatever `mask` emitted.
//
// `--design` accepts a comma-separated list; multiple designs audit
// concurrently - every campaign's shards drain through the global
// engine::Scheduler as one work queue (core::audit_designs), so a big
// design's tail is filled by the small ones' shards. Reports are identical
// to auditing each design alone. Output goes through the renderers shared
// with `polaris_cli client audit`, so a served audit prints byte-identically.
#include <cstdio>

#include "cli.hpp"
#include "server/remote.hpp"
#include "techlib/techlib.hpp"
#include "tvla/tvla.hpp"
#include "util/strings.hpp"

namespace polaris::cli {

int cmd_audit(std::span<const char* const> args) {
  std::vector<FlagSpec> specs = config_flag_specs();
  specs.push_back({"design", true,
                   "suite name(s) or Verilog file(s), comma-separated "
                   "(required; several audit concurrently)"});
  specs.push_back({"scale", true, "suite design-size scale in (0,1] (default 1.0)"});
  specs.push_back({"top", true, "list the N leakiest gates (default 10)"});
  specs.push_back({"json", false, "emit a JSON object (array when several designs)"});
  specs.push_back({"workers", true,
                   "comma-separated shard-worker endpoints (host:port or "
                   "tcp:host:port); shards distribute across them plus "
                   "local lanes, output stays byte-identical"});
  specs.push_back(trace_flag_spec());
  specs.push_back({"help", false, "show this help"});
  const ParsedFlags flags(args, specs);
  if (flags.has("help")) {
    std::printf("usage: polaris_cli audit --design <name|file.v>[,...] "
                "[flags]\n\n%s",
                render_flag_help(specs).c_str());
    return 0;
  }
  const TraceGuard trace(flags.get("trace"), "audit");

  const auto config = config_from_flags(flags);
  const double scale = flags.get_double("scale", 1.0);
  std::vector<circuits::Design> designs;
  for (const auto& name : util::split(flags.require("design"), ",")) {
    // trim: "--design 'des3, square'" is natural shell quoting.
    const auto trimmed = util::trim(name);
    if (trimmed.empty()) continue;
    designs.push_back(circuits::load_design(std::string(trimmed), scale));
  }
  if (designs.empty()) throw UsageError("flag '--design' names no designs");

  const auto lib = techlib::TechLibrary::default_library();
  std::vector<tvla::LeakageReport> reports;
  const std::string workers = flags.get("workers", "");
  if (workers.empty()) {
    reports = core::audit_designs(designs, lib, config);
  } else {
    // Distributed path: same shards, same ascending merge, byte-identical
    // reports - the pool is a drop-in for core::audit_designs. The fleet
    // summary goes to stderr so --json stdout stays machine-parseable.
    server::WorkerPoolOptions pool_options;
    pool_options.workers = workers;
    pool_options.local_threads = config.threads;
    server::WorkerPool pool(pool_options);
    reports = pool.audit(designs, lib, config);
    const auto totals = pool.totals();
    std::fprintf(stderr,
                 "polaris audit: distributed over %zu workers "
                 "(shards_out=%llu, moments_in=%llu, bytes=%llu, "
                 "resends=%llu)\n",
                 pool.worker_count(),
                 static_cast<unsigned long long>(totals.shards_out),
                 static_cast<unsigned long long>(totals.moments_in),
                 static_cast<unsigned long long>(totals.bytes),
                 static_cast<unsigned long long>(totals.resends));
  }
  const std::size_t top = flags.get_size("top", 10);

  // With --budget the traces column reports what the campaign actually
  // consumed; the fixed-budget path prints the configured count, exactly
  // as before.
  const auto traces_of = [&](const tvla::LeakageReport& report) {
    return config.tvla.budget.enabled ? report.traces_used()
                                      : config.tvla.traces;
  };

  if (flags.has("json")) {
    // One object for a single design (the stable CI format); an array when
    // several were audited together.
    if (designs.size() > 1) std::printf("[");
    for (std::size_t i = 0; i < designs.size(); ++i) {
      if (i > 0) std::printf(",");
      std::fputs(render_audit_json(designs[i].name,
                                   designs[i].netlist.gate_count(), reports[i],
                                   traces_of(reports[i]), top)
                     .c_str(),
                 stdout);
    }
    if (designs.size() > 1) std::printf("]");
    std::printf("\n");
    return 0;
  }

  for (std::size_t i = 0; i < designs.size(); ++i) {
    if (i > 0) std::printf("\n");
    std::fputs(render_audit_table(designs[i].name,
                                  designs[i].netlist.gate_count(), reports[i],
                                  traces_of(reports[i]), top)
                   .c_str(),
               stdout);
  }
  return 0;
}

}  // namespace polaris::cli
