// `polaris_cli train`: Algorithm 1 over the training suite, model fit, SHAP
// rule mining - then everything a serving process needs goes into one .plb
// bundle. The expensive step runs once; audit/mask/inspect reuse the file.
#include <cstdio>

#include "circuits/suite.hpp"
#include "cli.hpp"
#include "techlib/techlib.hpp"
#include "util/timer.hpp"

namespace polaris::cli {

int cmd_train(std::span<const char* const> args) {
  std::vector<FlagSpec> specs = config_flag_specs();
  specs.push_back({"out", true, "output bundle path (required), e.g. model.plb"});
  specs.push_back({"max-designs", true,
                   "train on only the first N suite designs (CI smoke runs)"});
  specs.push_back({"no-dataset", false,
                   "exclude the labelled training data from the bundle"});
  specs.push_back(trace_flag_spec());
  specs.push_back({"help", false, "show this help"});
  const ParsedFlags flags(args, specs);
  if (flags.has("help")) {
    std::printf("usage: polaris_cli train --out <bundle.plb> [flags]\n\n%s",
                render_flag_help(specs).c_str());
    return 0;
  }
  const TraceGuard trace(flags.get("trace"), "train");

  const std::string out_path = flags.require("out");
  const auto config = config_from_flags(flags);

  auto training = circuits::training_suite();
  const std::size_t max_designs =
      flags.get_size("max-designs", training.size());
  if (max_designs == 0) throw UsageError("--max-designs must be at least 1");
  if (training.size() > max_designs) training.resize(max_designs);

  const auto lib = techlib::TechLibrary::default_library();
  core::Polaris polaris(config);
  std::printf("training %s on %zu designs (itr=%zu, traces=%zu, Msize=%zu, "
              "theta_r=%.2f)...\n",
              core::to_string(config.model).c_str(), training.size(),
              config.iterations, config.tvla.traces, config.mask_size,
              config.theta_r);
  util::Timer timer;
  const auto summary = polaris.train(training, lib);
  std::printf("  %zu labelled samples (%zu 'good mask') in %.1fs "
              "(Algorithm 1: %.1fs, fit: %.1fs, rules: %.1fs)\n",
              summary.samples, summary.positives, timer.seconds(),
              summary.dataset_seconds, summary.training_seconds,
              summary.rules_seconds);

  polaris.save_bundle(out_path, !flags.has("no-dataset"));
  const auto info = core::read_bundle_info(out_path);
  std::printf("wrote %s (model=%s, %zu rules, fingerprint=%016llx)\n",
              out_path.c_str(), info.model_name.c_str(), info.rule_count,
              static_cast<unsigned long long>(info.config_fingerprint));
  return 0;
}

}  // namespace polaris::cli
