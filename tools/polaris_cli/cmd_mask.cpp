// `polaris_cli mask`: the TVLA-free serving path (Algorithm 2). Loads a
// trained bundle, scores and masks a design, and emits masked structural
// Verilog for the downstream ASIC flow (written atomically: temp file +
// rename, so an interrupted run never leaves a truncated .v). `--verify`
// adds the optional line-10 leakage estimate (before/after TVLA) - useful
// for sign-off, but not needed for the masking decision itself.
#include <cstdio>
#include <optional>

#include "cli.hpp"
#include "engine/scheduler.hpp"
#include "netlist/verilog.hpp"
#include "techlib/techlib.hpp"
#include "tvla/tvla.hpp"

namespace polaris::cli {

int cmd_mask(std::span<const char* const> args) {
  const std::vector<FlagSpec> specs = {
      {"bundle", true, "trained .plb bundle (required)"},
      {"design", true, "suite name or Verilog file (required)"},
      {"out", true, "masked Verilog output path (required)"},
      {"scale", true, "suite design-size scale in (0,1] (default 1.0)"},
      {"mask-size", true, "gates to mask (default: the bundle's Msize)"},
      {"mode", true, "model | rules | model+rules (default model)"},
      {"verify", false, "run before/after TVLA on top (slow; sign-off only)"},
      {"json", false, "emit a JSON summary instead of text"},
      trace_flag_spec(),
      {"help", false, "show this help"},
  };
  const ParsedFlags flags(args, specs);
  if (flags.has("help")) {
    std::printf("usage: polaris_cli mask --bundle <model.plb> --design "
                "<name|file.v> --out <masked.v> [flags]\n\n%s",
                render_flag_help(specs).c_str());
    return 0;
  }
  const TraceGuard trace(flags.get("trace"), "mask");

  const auto polaris = core::Polaris::load_bundle(flags.require("bundle"));
  const auto design = circuits::load_design(flags.require("design"),
                                            flags.get_double("scale", 1.0));
  const std::string out_path = flags.require("out");
  const auto mode = mode_from_string(flags.get("mode", "model"));
  const std::size_t mask_size =
      flags.get_size("mask-size", polaris.config().mask_size);
  const bool verify = flags.has("verify");

  const auto lib = techlib::TechLibrary::default_library();
  // Masking itself is TVLA-free; the sign-off campaigns (before on the
  // original, after on the masked netlist) are independent, so they drain
  // the global scheduler together instead of running back to back.
  auto outcome =
      polaris.mask_design(design, lib, mask_size, mode, /*verify=*/false);
  netlist::write_verilog_file(outcome.masked, out_path);

  std::optional<tvla::LeakageReport> before;
  if (verify) {
    const auto tvla_config = core::tvla_config_for(polaris.config(), design);
    engine::Scheduler scheduler(polaris.config().threads);
    auto before_future = tvla::submit_fixed_vs_random(scheduler, design.netlist,
                                                      lib, tvla_config);
    auto after_future = tvla::submit_fixed_vs_random(scheduler, outcome.masked,
                                                     lib, tvla_config);
    scheduler.drain();
    before = before_future.get();
    outcome.verification = after_future.get();
  }

  const tvla::LeakageReport* before_report = before ? &*before : nullptr;
  const tvla::LeakageReport* after_report =
      outcome.verification ? &*outcome.verification : nullptr;
  const auto render = flags.has("json") ? render_mask_json : render_mask_text;
  std::fputs(render(design.name, design.netlist.gate_count(),
                    outcome.selected.size(), outcome.masked.gate_count(),
                    outcome.seconds, out_path, before_report, after_report)
                 .c_str(),
             stdout);
  if (flags.has("json")) std::printf("\n");
  return 0;
}

}  // namespace polaris::cli
