// `polaris_cli mask`: the TVLA-free serving path (Algorithm 2). Loads a
// trained bundle, scores and masks a design, and emits masked structural
// Verilog for the downstream ASIC flow. `--verify` adds the optional
// line-10 leakage estimate (before/after TVLA) - useful for sign-off, but
// not needed for the masking decision itself.
#include <cstdio>
#include <optional>

#include "cli.hpp"
#include "engine/scheduler.hpp"
#include "netlist/verilog.hpp"
#include "techlib/techlib.hpp"
#include "tvla/tvla.hpp"
#include "util/math.hpp"

namespace polaris::cli {

int cmd_mask(std::span<const char* const> args) {
  const std::vector<FlagSpec> specs = {
      {"bundle", true, "trained .plb bundle (required)"},
      {"design", true, "suite name or Verilog file (required)"},
      {"out", true, "masked Verilog output path (required)"},
      {"scale", true, "suite design-size scale in (0,1] (default 1.0)"},
      {"mask-size", true, "gates to mask (default: the bundle's Msize)"},
      {"mode", true, "model | rules | model+rules (default model)"},
      {"verify", false, "run before/after TVLA on top (slow; sign-off only)"},
      {"json", false, "emit a JSON summary instead of text"},
      {"help", false, "show this help"},
  };
  const ParsedFlags flags(args, specs);
  if (flags.has("help")) {
    std::printf("usage: polaris_cli mask --bundle <model.plb> --design "
                "<name|file.v> --out <masked.v> [flags]\n\n%s",
                render_flag_help(specs).c_str());
    return 0;
  }

  const auto polaris = core::Polaris::load_bundle(flags.require("bundle"));
  const auto design =
      load_design(flags.require("design"), flags.get_double("scale", 1.0));
  const std::string out_path = flags.require("out");
  const auto mode = mode_from_string(flags.get("mode", "model"));
  const std::size_t mask_size =
      flags.get_size("mask-size", polaris.config().mask_size);
  const bool verify = flags.has("verify");

  const auto lib = techlib::TechLibrary::default_library();
  // Masking itself is TVLA-free; the sign-off campaigns (before on the
  // original, after on the masked netlist) are independent, so they drain
  // the global scheduler together instead of running back to back.
  auto outcome =
      polaris.mask_design(design, lib, mask_size, mode, /*verify=*/false);
  netlist::write_verilog_file(outcome.masked, out_path);

  std::optional<tvla::LeakageReport> before;
  if (verify) {
    const auto tvla_config = core::tvla_config_for(polaris.config(), design);
    engine::Scheduler scheduler(polaris.config().threads);
    auto before_future = tvla::submit_fixed_vs_random(scheduler, design.netlist,
                                                      lib, tvla_config);
    auto after_future = tvla::submit_fixed_vs_random(scheduler, outcome.masked,
                                                     lib, tvla_config);
    scheduler.drain();
    before = before_future.get();
    outcome.verification = after_future.get();
  }

  const double before_total = before ? before->total_abs_t() : 0.0;
  const double after_total =
      outcome.verification ? outcome.verification->total_abs_t() : 0.0;
  const double reduction = util::reduction_percent(before_total, after_total);

  if (flags.has("json")) {
    std::printf("{\"design\":\"%s\",\"gates\":%zu,\"masked\":%zu,"
                "\"masked_gates\":%zu,\"seconds\":%.4f,\"out\":\"%s\"",
                json_escape(design.name).c_str(), design.netlist.gate_count(),
                outcome.selected.size(), outcome.masked.gate_count(),
                outcome.seconds, json_escape(out_path).c_str());
    if (verify) {
      std::printf(",\"before_total_abs_t\":%.6f,\"after_total_abs_t\":%.6f,"
                  "\"reduction_percent\":%.2f,\"leaky_before\":%zu,"
                  "\"leaky_after\":%zu",
                  before_total, after_total, reduction, before->leaky_count(),
                  outcome.verification->leaky_count());
    }
    std::printf("}\n");
    return 0;
  }

  std::printf("masked %zu of %zu gates in %.2fs (inference only - no TVLA "
              "in the loop)\n",
              outcome.selected.size(), design.netlist.gate_count(),
              outcome.seconds);
  std::printf("wrote %s (%zu cells after composite insertion)\n",
              out_path.c_str(), outcome.masked.gate_count());
  if (verify) {
    std::printf("verification: leaky %zu -> %zu, total |t| %.2f -> %.2f "
                "(%.1f%% reduction)\n",
                before->leaky_count(), outcome.verification->leaky_count(),
                before_total, after_total, reduction);
  }
  return 0;
}

}  // namespace polaris::cli
