// Shared plumbing for the `polaris_cli` subcommands: a tiny declarative
// flag parser, config construction (validated through core::validate, the
// same gate Polaris's constructor applies), design loading by suite name or
// Verilog path, and JSON helpers for machine-readable output.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "circuits/suite.hpp"
#include "core/polaris.hpp"

namespace polaris::cli {

/// Bad invocation (unknown flag, missing value, unparsable number). main()
/// turns this into usage text + exit code 2; runtime failures exit 1.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct FlagSpec {
  std::string name;  // without the leading "--"
  bool takes_value = true;
  std::string help;
};

class ParsedFlags {
 public:
  /// Parses `--name value` / `--name` argument lists against `specs`.
  /// Throws UsageError on unknown flags, missing values, or positionals.
  ParsedFlags(std::span<const char* const> args,
              std::span<const FlagSpec> specs);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback = "") const;
  [[nodiscard]] std::size_t get_size(const std::string& name,
                                     std::size_t fallback) const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& name,
                                      std::uint64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  /// Required string flag; throws UsageError when absent.
  [[nodiscard]] std::string require(const std::string& name) const;

 private:
  std::map<std::string, std::string> values_;
};

/// One usage line per flag, aligned, for the per-command help text.
[[nodiscard]] std::string render_flag_help(std::span<const FlagSpec> specs);

/// Flags shared by every subcommand that builds a PolarisConfig.
[[nodiscard]] std::vector<FlagSpec> config_flag_specs();

/// PolarisConfig from defaults + `config_flag_specs` overrides, passed
/// through core::validate (UsageError on violation, so the CLI reports
/// range problems as usage errors rather than crashes).
[[nodiscard]] core::PolarisConfig config_from_flags(const ParsedFlags& flags);

/// Parses an InferenceMode name: model | rules | model+rules.
[[nodiscard]] core::InferenceMode mode_from_string(const std::string& name);

/// JSON string escaping (quotes, backslashes, control characters).
[[nodiscard]] std::string json_escape(const std::string& text);

/// RAII wrapper for `--trace FILE`: starts the global obs::Tracer and
/// opens a root span named after the command; the destructor closes the
/// span, stops the tracer, and writes the Chrome trace-event JSON
/// atomically to the file (a note goes to stderr, so --json stdout stays
/// clean). An empty path disables everything - the guard then costs one
/// branch per span on the instrumented paths, per the obs contract.
class TraceGuard {
 public:
  TraceGuard(const std::string& path, const char* command);
  ~TraceGuard();
  TraceGuard(const TraceGuard&) = delete;
  TraceGuard& operator=(const TraceGuard&) = delete;

 private:
  std::string path_;
  const char* command_;
  std::int64_t start_ns_ = 0;
};

/// The shared `--trace FILE` flag spec, appended by train/audit/mask.
[[nodiscard]] FlagSpec trace_flag_spec();

// Output renderers shared by the offline commands and `polaris_cli
// client`: a served response prints byte-identically to its offline
// counterpart because both go through the same formatter. None append a
// trailing newline; callers own separators.
[[nodiscard]] std::string render_audit_json(const std::string& design_name,
                                            std::size_t gate_count,
                                            const tvla::LeakageReport& report,
                                            std::size_t traces,
                                            std::size_t top);
[[nodiscard]] std::string render_audit_table(const std::string& design_name,
                                             std::size_t gate_count,
                                             const tvla::LeakageReport& report,
                                             std::size_t traces,
                                             std::size_t top);
/// `before`/`after` are the optional --verify sign-off reports (both or
/// neither).
[[nodiscard]] std::string render_mask_json(
    const std::string& design_name, std::size_t gate_count,
    std::size_t selected, std::size_t masked_gate_count, double seconds,
    const std::string& out_path, const tvla::LeakageReport* before,
    const tvla::LeakageReport* after);
[[nodiscard]] std::string render_mask_text(
    const std::string& design_name, std::size_t gate_count,
    std::size_t selected, std::size_t masked_gate_count, double seconds,
    const std::string& out_path, const tvla::LeakageReport* before,
    const tvla::LeakageReport* after);

// Subcommand entry points (argv past the subcommand name).
int cmd_train(std::span<const char* const> args);
int cmd_audit(std::span<const char* const> args);
int cmd_mask(std::span<const char* const> args);
int cmd_inspect(std::span<const char* const> args);
int cmd_serve(std::span<const char* const> args);
int cmd_worker(std::span<const char* const> args);
int cmd_client(std::span<const char* const> args);
int cmd_version(std::span<const char* const> args);

}  // namespace polaris::cli
