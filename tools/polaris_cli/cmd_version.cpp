// `polaris_cli version`: build and runtime identity - build type, the SIMD
// kernel the dispatcher would pick on THIS machine, and the wire/bundle
// format versions. The same fields ride in the daemon's ping/stats replies,
// so a flow can compare its local binary against a remote daemon.
#include <cstdio>

#include "cli.hpp"
#include "obs/obs.hpp"
#include "serialize/archive.hpp"
#include "server/protocol.hpp"

namespace polaris::cli {

int cmd_version(std::span<const char* const> args) {
  const std::vector<FlagSpec> specs = {
      {"json", false, "emit a JSON object instead of text"},
      {"help", false, "show this help"},
  };
  const ParsedFlags flags(args, specs);
  if (flags.has("help")) {
    std::printf("usage: polaris_cli version [--json]\n\n%s",
                render_flag_help(specs).c_str());
    return 0;
  }

  const obs::RuntimeInfo info = obs::runtime_info();
  if (flags.has("json")) {
    std::printf(
        "{\"build\":\"%s\",\"simd\":\"%s\",\"lane_words\":%llu,"
        "\"avx2_supported\":%s,\"avx2_built\":%s,\"protocol\":%u,"
        "\"bundle_format\":%u}\n",
        json_escape(info.build_type).c_str(), json_escape(info.simd).c_str(),
        static_cast<unsigned long long>(info.lane_words),
        info.avx2_supported ? "true" : "false",
        info.avx2_built ? "true" : "false", server::kProtocolVersion,
        serialize::kFormatVersion);
    return 0;
  }
  std::printf("polaris_cli (%s build)\n", info.build_type.c_str());
  std::printf("  simd dispatch:   %s (lane_words=%llu)\n", info.simd.c_str(),
              static_cast<unsigned long long>(info.lane_words));
  std::printf("  avx2:            cpu %s, binary %s\n",
              info.avx2_supported ? "yes" : "no",
              info.avx2_built ? "yes" : "no");
  std::printf("  serve protocol:  %u\n", server::kProtocolVersion);
  std::printf("  bundle format:   %u\n", serialize::kFormatVersion);
  return 0;
}

}  // namespace polaris::cli
