// `polaris_cli inspect`: what exactly is in this bundle? Header metadata,
// the training config (and its fingerprint), ensemble shape, and - with
// --rules - the mined human-readable masking rules (paper Table V).
#include <algorithm>
#include <cstdio>

#include "cli.hpp"
#include "graph/features.hpp"

namespace polaris::cli {

int cmd_inspect(std::span<const char* const> args) {
  const std::vector<FlagSpec> specs = {
      {"bundle", true, "trained .plb bundle (required)"},
      {"rules", false, "also dump the mined masking rules"},
      {"json", false, "emit a JSON object instead of text"},
      {"help", false, "show this help"},
  };
  const ParsedFlags flags(args, specs);
  if (flags.has("help")) {
    std::printf("usage: polaris_cli inspect --bundle <model.plb> [flags]\n\n%s",
                render_flag_help(specs).c_str());
    return 0;
  }

  const std::string path = flags.require("bundle");
  core::BundleInfo info;
  const auto polaris = core::Polaris::load_bundle(path, &info);
  const auto& config = polaris.config();
  const auto& ensemble = polaris.model().ensemble();

  std::size_t nodes = 0, max_depth = 0;
  for (const auto& wt : ensemble.trees) {
    nodes += wt.tree.nodes.size();
    max_depth = std::max(max_depth, wt.tree.depth());
  }

  if (flags.has("json")) {
    std::printf(
        "{\"path\":\"%s\",\"format_version\":%u,\"bundle_version\":%u,"
        "\"fingerprint\":\"%016llx\",\"model\":\"%s\",\"samples\":%zu,"
        "\"positives\":%zu,\"feature_dim\":%zu,\"rules\":%zu,"
        "\"has_dataset\":%s,\"trees\":%zu,\"nodes\":%zu,\"max_depth\":%zu,"
        "\"config\":{\"mask_size\":%zu,\"locality\":%zu,\"iterations\":%zu,"
        "\"theta_r\":%.3f,\"model_rounds\":%zu,\"learning_rate\":%.4f,"
        "\"traces\":%zu,\"seed\":%llu}}\n",
        json_escape(path).c_str(), info.format_version, info.bundle_version,
        static_cast<unsigned long long>(info.config_fingerprint),
        json_escape(info.model_name).c_str(), info.samples, info.positives,
        info.feature_dim, info.rule_count, info.has_dataset ? "true" : "false",
        ensemble.trees.size(), nodes, max_depth, config.mask_size,
        config.locality, config.iterations, config.theta_r,
        config.model_rounds, config.learning_rate, config.tvla.traces,
        static_cast<unsigned long long>(config.seed));
    return 0;
  }

  std::printf("=== %s ===\n", path.c_str());
  std::printf("format:       archive v%u, bundle v%u\n", info.format_version,
              info.bundle_version);
  std::printf("fingerprint:  %016llx (config hash; threads excluded)\n",
              static_cast<unsigned long long>(info.config_fingerprint));
  std::printf("model:        %s (%zu trees, %zu nodes, max depth %zu)\n",
              info.model_name.c_str(), ensemble.trees.size(), nodes, max_depth);
  std::printf("trained on:   %zu samples (%zu 'good mask'), %zu features\n",
              info.samples, info.positives, info.feature_dim);
  std::printf("rules:        %zu mined\n", info.rule_count);
  std::printf("dataset:      %s\n",
              info.has_dataset ? "embedded" : "not embedded");
  std::printf("config:       Msize=%zu L=%zu itr=%zu theta_r=%.2f "
              "rounds=%zu traces=%zu seed=%llu\n",
              config.mask_size, config.locality, config.iterations,
              config.theta_r, config.model_rounds, config.tvla.traces,
              static_cast<unsigned long long>(config.seed));

  if (flags.has("rules")) {
    const auto names =
        graph::FeatureSpec{config.locality}.feature_names();
    std::printf("\nmined masking rules (Table V format):\n");
    for (const auto& rule : polaris.rules().rules()) {
      std::printf("  %s\n", rule.to_string(names).c_str());
    }
  }
  return 0;
}

}  // namespace polaris::cli
