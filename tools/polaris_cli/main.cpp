// polaris_cli - the POLARIS serving surface: train once into a .plb model
// bundle, then audit/mask/inspect any number of designs without re-paying
// the Algorithm-1 labelling + training cost (the Table II value
// proposition, as a tool an ASIC flow can call).
//
//   polaris_cli train   --out model.plb [--traces N --iterations N ...]
//   polaris_cli audit   --design des3 [--json]
//   polaris_cli mask    --bundle model.plb --design des3 --out masked.v
//   polaris_cli inspect --bundle model.plb [--rules]
//   polaris_cli serve   --bundle model.plb --socket polaris.sock
//   polaris_cli client  <audit|mask|score|ping|shutdown> --socket polaris.sock
//
// Exit codes: 0 success, 1 runtime failure, 2 bad usage.
#include <cstdio>
#include <cstring>
#include <exception>

#include "cli.hpp"

namespace {

void print_usage() {
  std::fputs(
      "usage: polaris_cli <command> [flags]\n"
      "\n"
      "commands:\n"
      "  train    run Algorithm 1 + model fit on the training suite and\n"
      "           write a .plb model bundle\n"
      "  audit    TVLA leakage report for a design (table or --json)\n"
      "  mask     load a bundle, harden a design (Algorithm 2, no TVLA),\n"
      "           emit masked structural Verilog\n"
      "  inspect  print bundle metadata, config, and mined rules\n"
      "  serve    long-lived daemon: load a bundle once, serve audit/mask/\n"
      "           score over a Unix socket or TCP until SIGINT/SIGTERM/\n"
      "           shutdown (--workers distributes audit campaigns)\n"
      "  worker   shard-execution worker: runs TVLA campaign shards for a\n"
      "           remote coordinator (audit/serve --workers)\n"
      "  client   send one request to a running daemon (audit | mask |\n"
      "           score | ping | stats | shutdown); same output and exit\n"
      "           codes as the offline commands\n"
      "  version  build type, SIMD dispatch, and protocol versions\n"
      "\n"
      "designs are suite names (des3, arbiter, sin, md5, voter, square,\n"
      "sqrt, div, memctrl, multiplier, log2, ...) or structural Verilog\n"
      "files (path ending in .v).\n"
      "\n"
      "run 'polaris_cli <command> --help' for per-command flags.\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage();
    return 2;
  }
  const char* command = argv[1];
  const std::span<const char* const> args(
      const_cast<const char* const*>(argv) + 2,
      static_cast<std::size_t>(argc - 2));
  try {
    if (std::strcmp(command, "train") == 0) return polaris::cli::cmd_train(args);
    if (std::strcmp(command, "audit") == 0) return polaris::cli::cmd_audit(args);
    if (std::strcmp(command, "mask") == 0) return polaris::cli::cmd_mask(args);
    if (std::strcmp(command, "inspect") == 0) {
      return polaris::cli::cmd_inspect(args);
    }
    if (std::strcmp(command, "serve") == 0) return polaris::cli::cmd_serve(args);
    if (std::strcmp(command, "worker") == 0) {
      return polaris::cli::cmd_worker(args);
    }
    if (std::strcmp(command, "client") == 0) {
      return polaris::cli::cmd_client(args);
    }
    if (std::strcmp(command, "version") == 0) {
      return polaris::cli::cmd_version(args);
    }
    if (std::strcmp(command, "--help") == 0 || std::strcmp(command, "-h") == 0) {
      print_usage();
      return 0;
    }
    std::fprintf(stderr, "polaris_cli: unknown command '%s'\n\n", command);
    print_usage();
    return 2;
  } catch (const polaris::cli::UsageError& error) {
    std::fprintf(stderr, "polaris_cli %s: %s\n", command, error.what());
    return 2;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "polaris_cli %s: %s\n", command, error.what());
    return 1;
  }
}
