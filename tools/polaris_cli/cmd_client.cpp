// `polaris_cli client`: thin framed-protocol client for a running serve
// daemon. Verbs mirror the offline commands and print through the SAME
// renderers, so `client audit`/`client mask` output is byte-identical to
// `audit`/`mask` served from the same bundle (timing fields aside) - a
// flow can switch between offline and daemon mode without re-parsing
// anything. Cache-hit notices go to stderr; stdout stays machine-parseable.
//
// Exit codes match the offline commands: 0 success, 1 runtime/server
// failure, 2 bad usage.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <exception>
#include <thread>

#include "cli.hpp"
#include "obs/obs.hpp"
#include "server/client.hpp"
#include "util/fileio.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace polaris::cli {

namespace {

/// Every verb takes --timeout-ms: 0 (the default) blocks forever, exactly
/// the pre-flag behavior; > 0 arms the client's per-request deadline and a
/// silent daemon surfaces server::TimeoutError (exit code 1) instead of a
/// hang.
std::size_t timeout_from(const ParsedFlags& flags) {
  return flags.get_size("timeout-ms", 0);
}

void note_cache_hit(bool cache_hit) {
  if (cache_hit) {
    std::fputs("polaris client: served from result cache\n", stderr);
  }
}

int client_ping(const ParsedFlags& flags) {
  server::Client client(flags.require("socket"), timeout_from(flags));
  const auto reply = client.ping();
  std::printf("{\"server\":\"polaris\",\"protocol\":%u,\"model\":\"%s\","
              "\"fingerprint\":\"%016llx\",\"requests\":%llu,"
              "\"cache_hits\":%llu,\"cache_entries\":%llu}\n",
              reply.protocol, json_escape(reply.model_name).c_str(),
              static_cast<unsigned long long>(reply.config_fingerprint),
              static_cast<unsigned long long>(reply.requests_served),
              static_cast<unsigned long long>(reply.cache_hits),
              static_cast<unsigned long long>(reply.cache_entries));
  return 0;
}

int client_stats(const ParsedFlags& flags) {
  server::Client client(flags.require("socket"), timeout_from(flags));
  const auto reply = client.stats();
  if (flags.has("prom")) {
    // Prometheus text exposition; scrape-ready via `curl --unix-socket`-
    // style bridges or a sidecar that shells out to this verb. The info
    // gauges describe the DAEMON process (its build, its uptime), not this
    // short-lived CLI.
    obs::Snapshot::ProcessInfo info;
    info.build_type = reply.build_type;
    info.simd = reply.simd;
    info.lane_words = reply.lane_words;
    info.uptime_seconds = static_cast<double>(reply.uptime_ms) / 1000.0;
    std::fputs(reply.snapshot.prometheus("polaris_", &info).c_str(), stdout);
    return 0;
  }
  std::printf("{\"server\":\"polaris\",\"protocol\":%u,\"model\":\"%s\","
              "\"fingerprint\":\"%016llx\",\"build\":\"%s\",\"simd\":\"%s\","
              "\"lane_words\":%llu,\"requests\":%llu,\"connections\":%llu,%s}\n",
              reply.protocol, json_escape(reply.model_name).c_str(),
              static_cast<unsigned long long>(reply.config_fingerprint),
              json_escape(reply.build_type).c_str(),
              json_escape(reply.simd).c_str(),
              static_cast<unsigned long long>(reply.lane_words),
              static_cast<unsigned long long>(reply.requests_served),
              static_cast<unsigned long long>(reply.connections),
              reply.snapshot.json_fragment().c_str());
  return 0;
}

const char* wire_kind_name(std::uint8_t kind) {
  // 0xFF (an undecodable payload's flight record) falls through to "?".
  return server::request_kind_name(static_cast<server::RequestKind>(kind));
}

std::string render_status_json(const server::StatusReply& reply) {
  std::string out;
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "{\"server\":\"polaris\",\"protocol\":%u,\"model\":\"%s\","
                "\"requests\":%llu,\"connections_active\":%llu,"
                "\"connections_total\":%llu,\"uptime_ms\":%llu,"
                "\"sample_interval_ms\":%llu,\"samples\":%llu,",
                reply.protocol, json_escape(reply.model_name).c_str(),
                static_cast<unsigned long long>(reply.requests_served),
                static_cast<unsigned long long>(reply.connections_active),
                static_cast<unsigned long long>(reply.connections_total),
                static_cast<unsigned long long>(reply.uptime_ms),
                static_cast<unsigned long long>(reply.sample_interval_ms),
                static_cast<unsigned long long>(reply.samples));
  out += buffer;
  out += "\"inflight\":[";
  for (std::size_t i = 0; i < reply.inflight.size(); ++i) {
    const auto& entry = reply.inflight[i];
    std::snprintf(buffer, sizeof(buffer),
                  "%s{\"kind\":\"%s\",\"bytes\":%llu,\"age_us\":%llu}",
                  i == 0 ? "" : ",", wire_kind_name(entry.kind),
                  static_cast<unsigned long long>(entry.bytes),
                  static_cast<unsigned long long>(entry.age_us));
    out += buffer;
  }
  out += "],\"campaigns\":[";
  for (std::size_t i = 0; i < reply.campaigns.size(); ++i) {
    const auto& row = reply.campaigns[i];
    std::snprintf(buffer, sizeof(buffer),
                  "%s{\"label\":\"%s\",\"sequence\":%llu,\"shards_done\":%zu,"
                  "\"shards_total\":%zu,\"queue_position\":%zu,"
                  "\"age_us\":%llu,\"stopped\":%s}",
                  i == 0 ? "" : ",", json_escape(row.label).c_str(),
                  static_cast<unsigned long long>(row.sequence),
                  row.shards_done, row.shards_total, row.queue_position,
                  static_cast<unsigned long long>(row.age_us),
                  row.stopped ? "true" : "false");
    out += buffer;
  }
  out += "],\"recent\":[";
  for (std::size_t i = 0; i < reply.recent.size(); ++i) {
    const auto& record = reply.recent[i];
    std::snprintf(
        buffer, sizeof(buffer),
        "%s{\"kind\":\"%s\",\"status\":\"%s\",\"cache_hit\":%s,"
        "\"bytes\":%llu,\"duration_us\":%llu,\"age_us\":%llu}",
        i == 0 ? "" : ",", wire_kind_name(record.kind),
        server::to_string(static_cast<server::Status>(record.status)),
        record.cache_hit ? "true" : "false",
        static_cast<unsigned long long>(record.bytes),
        static_cast<unsigned long long>(record.duration_us),
        static_cast<unsigned long long>(record.age_us));
    out += buffer;
  }
  out += "],\"workers\":[";
  for (std::size_t i = 0; i < reply.workers.size(); ++i) {
    const auto& worker = reply.workers[i];
    std::snprintf(
        buffer, sizeof(buffer),
        "%s{\"endpoint\":\"%s\",\"alive\":%s,\"inflight\":%llu,"
        "\"shards_done\":%llu,\"bytes_out\":%llu,\"bytes_in\":%llu,"
        "\"resends\":%llu}",
        i == 0 ? "" : ",", json_escape(worker.endpoint).c_str(),
        worker.alive ? "true" : "false",
        static_cast<unsigned long long>(worker.inflight),
        static_cast<unsigned long long>(worker.shards_done),
        static_cast<unsigned long long>(worker.bytes_out),
        static_cast<unsigned long long>(worker.bytes_in),
        static_cast<unsigned long long>(worker.resends));
    out += buffer;
  }
  out += "]}";
  return out;
}

void render_status_tables(const server::StatusReply& reply) {
  std::printf("=== polaris daemon: %s ===\n", reply.model_name.c_str());
  std::printf(
      "uptime %.1fs, %llu requests, %llu/%llu connections active, "
      "%llu metric samples (every %llums)\n",
      static_cast<double>(reply.uptime_ms) / 1000.0,
      static_cast<unsigned long long>(reply.requests_served),
      static_cast<unsigned long long>(reply.connections_active),
      static_cast<unsigned long long>(reply.connections_total),
      static_cast<unsigned long long>(reply.samples),
      static_cast<unsigned long long>(reply.sample_interval_ms));
  std::printf("\nin-flight requests (%zu):\n", reply.inflight.size());
  if (!reply.inflight.empty()) {
    util::Table table({"Kind", "Bytes", "Age (ms)"});
    for (const auto& entry : reply.inflight) {
      table.add_row({wire_kind_name(entry.kind), std::to_string(entry.bytes),
                     util::format_double(
                         static_cast<double>(entry.age_us) / 1000.0, 1)});
    }
    std::fputs(table.render().c_str(), stdout);
  }
  std::printf("\nactive campaigns (%zu):\n", reply.campaigns.size());
  if (!reply.campaigns.empty()) {
    util::Table table(
        {"Label", "Seq", "Shards", "Queue", "Age (ms)", "Stopped"});
    for (const auto& row : reply.campaigns) {
      table.add_row(
          {row.label.empty() ? "(unnamed)" : row.label,
           std::to_string(row.sequence),
           std::to_string(row.shards_done) + "/" +
               std::to_string(row.shards_total),
           std::to_string(row.queue_position),
           util::format_double(static_cast<double>(row.age_us) / 1000.0, 1),
           row.stopped ? "yes" : "no"});
    }
    std::fputs(table.render().c_str(), stdout);
  }
  std::printf("\nrecent requests (%zu, newest first):\n", reply.recent.size());
  if (!reply.recent.empty()) {
    util::Table table(
        {"Kind", "Status", "Cache", "Bytes", "Took (ms)", "Age (ms)"});
    for (const auto& record : reply.recent) {
      table.add_row(
          {wire_kind_name(record.kind),
           server::to_string(static_cast<server::Status>(record.status)),
           record.cache_hit ? "hit" : "miss", std::to_string(record.bytes),
           util::format_double(
               static_cast<double>(record.duration_us) / 1000.0, 1),
           util::format_double(
               static_cast<double>(record.age_us) / 1000.0, 1)});
    }
    std::fputs(table.render().c_str(), stdout);
  }
  // Only daemons started with --workers report a fleet; keep workerless
  // output unchanged.
  if (!reply.workers.empty()) {
    std::printf("\nremote shard workers (%zu):\n", reply.workers.size());
    util::Table table({"Endpoint", "State", "Inflight", "Shards", "Sent",
                       "Received", "Resends"});
    for (const auto& worker : reply.workers) {
      table.add_row({worker.endpoint, worker.alive ? "alive" : "dead",
                     std::to_string(worker.inflight),
                     std::to_string(worker.shards_done),
                     std::to_string(worker.bytes_out),
                     std::to_string(worker.bytes_in),
                     std::to_string(worker.resends)});
    }
    std::fputs(table.render().c_str(), stdout);
  }
}

int client_status(const ParsedFlags& flags) {
  server::Client client(flags.require("socket"), timeout_from(flags));
  const auto reply = client.status();
  if (flags.has("table")) {
    render_status_tables(reply);
  } else {
    std::printf("%s\n", render_status_json(reply).c_str());
  }
  return 0;
}

int client_top(const ParsedFlags& flags) {
  const double interval_s = flags.get_double("interval", 2.0);
  if (!(interval_s > 0.0)) {
    throw UsageError("flag '--interval' must be a positive number of seconds");
  }
  const std::size_t count = flags.get_size("count", 5);

  server::Client client(flags.require("socket"), timeout_from(flags));
  auto previous = client.stats();
  std::int64_t previous_ns = obs::now_ns();
  std::printf("polaris top: %s (interval %.1fs, %zu samples)\n",
              previous.model_name.c_str(), interval_s, count);
  std::printf("%-14s %9s %12s %6s %9s %9s %9s %10s %8s\n", "time", "req/s",
              "traces/s", "hit%", "p50(ms)", "p95(ms)", "inflight",
              "campaigns", "workers");
  for (std::size_t i = 0; i < count; ++i) {
    std::this_thread::sleep_for(std::chrono::duration<double>(interval_s));
    auto current = client.stats();
    const auto status = client.status();
    const std::int64_t now_ns = obs::now_ns();
    const double elapsed =
        static_cast<double>(now_ns - previous_ns) / 1e9;

    // Interval deltas via snapshot subtraction - exact, not an estimator:
    // the delta histogram is precisely the samples recorded this interval.
    obs::Snapshot delta = current.snapshot;
    delta.subtract(previous.snapshot);
    const double requests_rate =
        static_cast<double>(current.requests_served -
                            previous.requests_served) /
        elapsed;
    const double traces_rate =
        static_cast<double>(delta.counter_value("tvla.traces_run")) / elapsed;
    const std::uint64_t hits = delta.counter_value("cache.hits");
    const std::uint64_t misses = delta.counter_value("cache.misses");
    const double hit_pct =
        hits + misses == 0
            ? 0.0
            : 100.0 * static_cast<double>(hits) /
                  static_cast<double>(hits + misses);
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    if (const auto* audit_us = delta.find_histogram("server.audit_us");
        audit_us != nullptr && audit_us->count > 0) {
      p50_ms = audit_us->percentile(0.50) / 1000.0;
      p95_ms = audit_us->percentile(0.95) / 1000.0;
    }
    // HH:MM:SS.mmm of the ISO-8601 UTC timestamp - enough to line samples
    // up against the daemon's log lines.
    const std::string stamp = obs::wall_clock_iso8601().substr(11, 12);
    // alive/total of the daemon's shard-worker fleet; "-" for a daemon
    // serving without --workers.
    std::string fleet = "-";
    if (!status.workers.empty()) {
      std::size_t alive = 0;
      for (const auto& worker : status.workers) alive += worker.alive ? 1 : 0;
      fleet = std::to_string(alive) + "/" + std::to_string(status.workers.size());
    }
    std::printf("%-14s %9.1f %12.0f %6.1f %9.2f %9.2f %9zu %10zu %8s\n",
                stamp.c_str(), requests_rate, traces_rate, hit_pct, p50_ms,
                p95_ms, status.inflight.size(), status.campaigns.size(),
                fleet.c_str());
    std::fflush(stdout);
    previous = std::move(current);
    previous_ns = now_ns;
  }
  return 0;
}

int client_audit(const ParsedFlags& flags) {
  const auto config = config_from_flags(flags);
  const double scale = flags.get_double("scale", 1.0);
  const std::size_t top = flags.get_size("top", 10);

  std::vector<std::string> designs;
  for (const auto& name : util::split(flags.require("design"), ",")) {
    const auto trimmed = util::trim(name);
    if (!trimmed.empty()) designs.emplace_back(trimmed);
  }
  if (designs.empty()) throw UsageError("flag '--design' names no designs");

  // One connection per design, issued concurrently: the daemon funnels
  // every connection's campaigns into its shared scheduler, so multiple
  // designs interleave shard-for-shard exactly like the offline
  // `audit --design a,b,c` path (instead of serializing per round-trip).
  const std::string socket_path = flags.require("socket");
  const std::size_t timeout_ms = timeout_from(flags);
  const bool stream = flags.has("stream");
  std::vector<server::AuditReply> replies(designs.size());
  std::vector<std::exception_ptr> errors(designs.size());
  {
    std::vector<std::thread> workers;
    for (std::size_t i = 0; i < designs.size(); ++i) {
      workers.emplace_back([&, i] {
        try {
          server::AuditRequest request;
          request.design = designs[i];
          request.scale = scale;
          request.config = config;
          server::Client client(socket_path, timeout_ms);
          if (stream) {
            // Checkpoint notices go to stderr: stdout stays byte-identical
            // to the non-streaming verb for the same request.
            const std::string& design = designs[i];
            replies[i] = client.audit_stream(
                request, [&design](const server::AuditPartial& partial) {
                  double max_t = 0.0;
                  for (const double t : partial.report.t_values()) {
                    max_t = std::max(max_t, std::abs(t));
                  }
                  std::fprintf(stderr,
                               "polaris client: %s checkpoint %llu/%llu "
                               "traces, max |t| %.2f\n",
                               design.c_str(),
                               static_cast<unsigned long long>(
                                   partial.traces_done),
                               static_cast<unsigned long long>(
                                   partial.traces_total),
                               max_t);
                });
          } else {
            replies[i] = client.audit(request);
          }
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    for (auto& worker : workers) worker.join();
  }
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  for (const auto& reply : replies) note_cache_hit(reply.cache_hit);

  // Budget-enabled replies carry the traces the campaign actually used;
  // fixed-budget replies leave traces_used at 0 and print the configured
  // count, exactly as before.
  const auto traces_of = [](const server::AuditReply& reply) {
    return reply.traces_used != 0 ? reply.traces_used : reply.traces;
  };

  if (flags.has("json")) {
    if (replies.size() > 1) std::printf("[");
    for (std::size_t i = 0; i < replies.size(); ++i) {
      if (i > 0) std::printf(",");
      std::fputs(render_audit_json(replies[i].design_name,
                                   replies[i].gate_count, replies[i].report,
                                   traces_of(replies[i]), top)
                     .c_str(),
                 stdout);
    }
    if (replies.size() > 1) std::printf("]");
    std::printf("\n");
    return 0;
  }
  for (std::size_t i = 0; i < replies.size(); ++i) {
    if (i > 0) std::printf("\n");
    std::fputs(render_audit_table(replies[i].design_name,
                                  replies[i].gate_count, replies[i].report,
                                  traces_of(replies[i]), top)
                   .c_str(),
               stdout);
  }
  return 0;
}

int client_mask(const ParsedFlags& flags) {
  server::MaskRequest request;
  request.design = flags.require("design");
  request.scale = flags.get_double("scale", 1.0);
  request.mask_size = flags.get_size("mask-size", 0);  // 0 = bundle's Msize
  request.mode = mode_from_string(flags.get("mode", "model"));
  request.verify = flags.has("verify");
  const std::string out_path = flags.require("out");

  server::Client client(flags.require("socket"), timeout_from(flags));
  const auto reply = client.mask(request);
  note_cache_hit(reply.cache_hit);
  // Atomic, like the offline path: a flow must never see a truncated .v.
  util::write_file_atomic(out_path, reply.verilog);

  const tvla::LeakageReport* before =
      reply.before.has_value() ? &*reply.before : nullptr;
  const tvla::LeakageReport* after =
      reply.after.has_value() ? &*reply.after : nullptr;
  const auto render = flags.has("json") ? render_mask_json : render_mask_text;
  std::fputs(render(reply.design_name, reply.gate_count, reply.selected.size(),
                    reply.masked_gate_count, reply.seconds, out_path, before,
                    after)
                 .c_str(),
             stdout);
  if (flags.has("json")) std::printf("\n");
  return 0;
}

int client_score(const ParsedFlags& flags) {
  server::ScoreRequest request;
  request.design = flags.require("design");
  request.scale = flags.get_double("scale", 1.0);
  request.mode = mode_from_string(flags.get("mode", "model"));
  const std::size_t top = flags.get_size("top", 10);

  server::Client client(flags.require("socket"), timeout_from(flags));
  const auto reply = client.score(request);
  note_cache_hit(reply.cache_hit);

  // Rank maskable gates (score > 0) by descending score, stable by id.
  std::vector<std::size_t> ranked;
  for (std::size_t g = 0; g < reply.scores.size(); ++g) {
    if (reply.scores[g] > 0.0) ranked.push_back(g);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [&](std::size_t a, std::size_t b) {
                     return reply.scores[a] > reply.scores[b];
                   });
  const std::size_t shown = std::min(top, ranked.size());

  if (flags.has("json")) {
    std::printf("{\"design\":\"%s\",\"gates\":%zu,\"scored\":%zu,\"top\":[",
                json_escape(reply.design_name).c_str(), reply.scores.size(),
                ranked.size());
    for (std::size_t i = 0; i < shown; ++i) {
      std::printf("%s{\"gate\":%zu,\"score\":%.6f}", i == 0 ? "" : ",",
                  ranked[i], reply.scores[ranked[i]]);
    }
    std::printf("]}\n");
    return 0;
  }
  std::printf("=== gate scores: %s (%zu gates, %zu scored) ===\n",
              reply.design_name.c_str(), reply.scores.size(), ranked.size());
  if (shown > 0) {
    util::Table table({"Rank", "Gate", "Score"});
    for (std::size_t i = 0; i < shown; ++i) {
      table.add_row({std::to_string(i + 1), std::to_string(ranked[i]),
                     util::format_double(reply.scores[ranked[i]], 4)});
    }
    std::fputs(table.render().c_str(), stdout);
  }
  return 0;
}

int client_shutdown(const ParsedFlags& flags) {
  server::Client client(flags.require("socket"), timeout_from(flags));
  client.shutdown_server();
  std::printf("shutdown requested\n");
  return 0;
}

}  // namespace

int cmd_client(std::span<const char* const> args) {
  if (args.empty() || std::strcmp(args[0], "--help") == 0 ||
      std::strcmp(args[0], "-h") == 0) {
    std::printf(
        "usage: polaris_cli client <verb> --socket <path.sock> [flags]\n"
        "\n"
        "verbs (each '--help' lists its flags):\n"
        "  ping      daemon liveness, bundle identity, cache stats (JSON)\n"
        "  stats     daemon observability snapshot (JSON, or --prom text)\n"
        "  status    live operations: in-flight requests, campaign\n"
        "            progress, recent-request flight recorder\n"
        "  top       repeated stats+status polls with interval rates\n"
        "  audit     TVLA leakage report, served (same output as 'audit')\n"
        "  mask      masked Verilog, served (same output as 'mask')\n"
        "  score     per-gate masking scores from the served model\n"
        "  shutdown  ask the daemon to drain and exit\n");
    return args.empty() ? 2 : 0;
  }
  const std::string verb = args[0];
  const auto rest = args.subspan(1);

  const FlagSpec socket_spec{"socket", true,
                             "daemon endpoint: Unix-socket path or "
                             "tcp:host:port (required)"};
  const FlagSpec timeout_spec{"timeout-ms", true,
                              "per-request deadline in ms; a silent daemon "
                              "raises a timeout error (default 0 = wait "
                              "forever)"};
  const FlagSpec help_spec{"help", false, "show this help"};

  if (verb == "ping" || verb == "shutdown") {
    const std::vector<FlagSpec> specs = {socket_spec, timeout_spec,
                                         help_spec};
    const ParsedFlags flags(rest, specs);
    if (flags.has("help")) {
      std::printf("usage: polaris_cli client %s --socket <path.sock>\n\n%s",
                  verb.c_str(), render_flag_help(specs).c_str());
      return 0;
    }
    return verb == "ping" ? client_ping(flags) : client_shutdown(flags);
  }
  if (verb == "stats") {
    const std::vector<FlagSpec> specs = {
        socket_spec,
        timeout_spec,
        {"prom", false, "Prometheus text exposition instead of JSON"},
        help_spec,
    };
    const ParsedFlags flags(rest, specs);
    if (flags.has("help")) {
      std::printf("usage: polaris_cli client stats --socket <path.sock> "
                  "[--prom]\n\n%s",
                  render_flag_help(specs).c_str());
      return 0;
    }
    return client_stats(flags);
  }
  if (verb == "status") {
    const std::vector<FlagSpec> specs = {
        socket_spec,
        timeout_spec,
        {"table", false, "human-readable tables instead of JSON"},
        help_spec,
    };
    const ParsedFlags flags(rest, specs);
    if (flags.has("help")) {
      std::printf("usage: polaris_cli client status --socket <path.sock> "
                  "[--table]\n\n%s",
                  render_flag_help(specs).c_str());
      return 0;
    }
    return client_status(flags);
  }
  if (verb == "top") {
    const std::vector<FlagSpec> specs = {
        socket_spec,
        timeout_spec,
        {"interval", true, "seconds between samples (default 2.0)"},
        {"count", true, "samples to print before exiting (default 5)"},
        help_spec,
    };
    const ParsedFlags flags(rest, specs);
    if (flags.has("help")) {
      std::printf("usage: polaris_cli client top --socket <path.sock> "
                  "[--interval S] [--count N]\n\n%s",
                  render_flag_help(specs).c_str());
      return 0;
    }
    return client_top(flags);
  }
  if (verb == "audit") {
    std::vector<FlagSpec> specs = config_flag_specs();
    specs.push_back(socket_spec);
    specs.push_back(timeout_spec);
    specs.push_back({"design", true,
                     "suite name(s) or Verilog file(s), comma-separated "
                     "(required)"});
    specs.push_back({"scale", true,
                     "suite design-size scale in (0,1] (default 1.0)"});
    specs.push_back({"top", true, "list the N leakiest gates (default 10)"});
    specs.push_back({"json", false,
                     "emit a JSON object (array when several designs)"});
    specs.push_back({"stream", false,
                     "stream early-stop checkpoint frames (notices on "
                     "stderr; pair with --budget)"});
    specs.push_back(help_spec);
    const ParsedFlags flags(rest, specs);
    if (flags.has("help")) {
      std::printf("usage: polaris_cli client audit --socket <path.sock> "
                  "--design <name|file.v>[,...] [flags]\n\n%s",
                  render_flag_help(specs).c_str());
      return 0;
    }
    return client_audit(flags);
  }
  if (verb == "mask") {
    const std::vector<FlagSpec> specs = {
        socket_spec,
        timeout_spec,
        {"design", true, "suite name or Verilog file (required)"},
        {"out", true, "masked Verilog output path (required)"},
        {"scale", true, "suite design-size scale in (0,1] (default 1.0)"},
        {"mask-size", true, "gates to mask (default: the bundle's Msize)"},
        {"mode", true, "model | rules | model+rules (default model)"},
        {"verify", false, "server-side before/after TVLA sign-off"},
        {"json", false, "emit a JSON summary instead of text"},
        help_spec,
    };
    const ParsedFlags flags(rest, specs);
    if (flags.has("help")) {
      std::printf("usage: polaris_cli client mask --socket <path.sock> "
                  "--design <name|file.v> --out <masked.v> [flags]\n\n%s",
                  render_flag_help(specs).c_str());
      return 0;
    }
    return client_mask(flags);
  }
  if (verb == "score") {
    const std::vector<FlagSpec> specs = {
        socket_spec,
        timeout_spec,
        {"design", true, "suite name or Verilog file (required)"},
        {"scale", true, "suite design-size scale in (0,1] (default 1.0)"},
        {"mode", true, "model | rules | model+rules (default model)"},
        {"top", true, "list the N best-scoring gates (default 10)"},
        {"json", false, "emit a JSON summary instead of text"},
        help_spec,
    };
    const ParsedFlags flags(rest, specs);
    if (flags.has("help")) {
      std::printf("usage: polaris_cli client score --socket <path.sock> "
                  "--design <name|file.v> [flags]\n\n%s",
                  render_flag_help(specs).c_str());
      return 0;
    }
    return client_score(flags);
  }
  throw UsageError("unknown client verb '" + verb +
                   "'; expected ping, stats, status, top, audit, mask, "
                   "score, or shutdown");
}

}  // namespace polaris::cli
