// `polaris_cli client`: thin framed-protocol client for a running serve
// daemon. Verbs mirror the offline commands and print through the SAME
// renderers, so `client audit`/`client mask` output is byte-identical to
// `audit`/`mask` served from the same bundle (timing fields aside) - a
// flow can switch between offline and daemon mode without re-parsing
// anything. Cache-hit notices go to stderr; stdout stays machine-parseable.
//
// Exit codes match the offline commands: 0 success, 1 runtime/server
// failure, 2 bad usage.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <exception>
#include <thread>

#include "cli.hpp"
#include "server/client.hpp"
#include "util/fileio.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace polaris::cli {

namespace {

void note_cache_hit(bool cache_hit) {
  if (cache_hit) {
    std::fputs("polaris client: served from result cache\n", stderr);
  }
}

int client_ping(const ParsedFlags& flags) {
  server::Client client(flags.require("socket"));
  const auto reply = client.ping();
  std::printf("{\"server\":\"polaris\",\"protocol\":%u,\"model\":\"%s\","
              "\"fingerprint\":\"%016llx\",\"requests\":%llu,"
              "\"cache_hits\":%llu,\"cache_entries\":%llu}\n",
              reply.protocol, json_escape(reply.model_name).c_str(),
              static_cast<unsigned long long>(reply.config_fingerprint),
              static_cast<unsigned long long>(reply.requests_served),
              static_cast<unsigned long long>(reply.cache_hits),
              static_cast<unsigned long long>(reply.cache_entries));
  return 0;
}

int client_stats(const ParsedFlags& flags) {
  server::Client client(flags.require("socket"));
  const auto reply = client.stats();
  if (flags.has("prom")) {
    // Prometheus text exposition; scrape-ready via `curl --unix-socket`-
    // style bridges or a sidecar that shells out to this verb.
    std::fputs(reply.snapshot.prometheus("polaris_").c_str(), stdout);
    return 0;
  }
  std::printf("{\"server\":\"polaris\",\"protocol\":%u,\"model\":\"%s\","
              "\"fingerprint\":\"%016llx\",\"build\":\"%s\",\"simd\":\"%s\","
              "\"lane_words\":%llu,\"requests\":%llu,\"connections\":%llu,%s}\n",
              reply.protocol, json_escape(reply.model_name).c_str(),
              static_cast<unsigned long long>(reply.config_fingerprint),
              json_escape(reply.build_type).c_str(),
              json_escape(reply.simd).c_str(),
              static_cast<unsigned long long>(reply.lane_words),
              static_cast<unsigned long long>(reply.requests_served),
              static_cast<unsigned long long>(reply.connections),
              reply.snapshot.json_fragment().c_str());
  return 0;
}

int client_audit(const ParsedFlags& flags) {
  const auto config = config_from_flags(flags);
  const double scale = flags.get_double("scale", 1.0);
  const std::size_t top = flags.get_size("top", 10);

  std::vector<std::string> designs;
  for (const auto& name : util::split(flags.require("design"), ",")) {
    const auto trimmed = util::trim(name);
    if (!trimmed.empty()) designs.emplace_back(trimmed);
  }
  if (designs.empty()) throw UsageError("flag '--design' names no designs");

  // One connection per design, issued concurrently: the daemon funnels
  // every connection's campaigns into its shared scheduler, so multiple
  // designs interleave shard-for-shard exactly like the offline
  // `audit --design a,b,c` path (instead of serializing per round-trip).
  const std::string socket_path = flags.require("socket");
  const bool stream = flags.has("stream");
  std::vector<server::AuditReply> replies(designs.size());
  std::vector<std::exception_ptr> errors(designs.size());
  {
    std::vector<std::thread> workers;
    for (std::size_t i = 0; i < designs.size(); ++i) {
      workers.emplace_back([&, i] {
        try {
          server::AuditRequest request;
          request.design = designs[i];
          request.scale = scale;
          request.config = config;
          server::Client client(socket_path);
          if (stream) {
            // Checkpoint notices go to stderr: stdout stays byte-identical
            // to the non-streaming verb for the same request.
            const std::string& design = designs[i];
            replies[i] = client.audit_stream(
                request, [&design](const server::AuditPartial& partial) {
                  double max_t = 0.0;
                  for (const double t : partial.report.t_values()) {
                    max_t = std::max(max_t, std::abs(t));
                  }
                  std::fprintf(stderr,
                               "polaris client: %s checkpoint %llu/%llu "
                               "traces, max |t| %.2f\n",
                               design.c_str(),
                               static_cast<unsigned long long>(
                                   partial.traces_done),
                               static_cast<unsigned long long>(
                                   partial.traces_total),
                               max_t);
                });
          } else {
            replies[i] = client.audit(request);
          }
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    for (auto& worker : workers) worker.join();
  }
  for (const auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  for (const auto& reply : replies) note_cache_hit(reply.cache_hit);

  // Budget-enabled replies carry the traces the campaign actually used;
  // fixed-budget replies leave traces_used at 0 and print the configured
  // count, exactly as before.
  const auto traces_of = [](const server::AuditReply& reply) {
    return reply.traces_used != 0 ? reply.traces_used : reply.traces;
  };

  if (flags.has("json")) {
    if (replies.size() > 1) std::printf("[");
    for (std::size_t i = 0; i < replies.size(); ++i) {
      if (i > 0) std::printf(",");
      std::fputs(render_audit_json(replies[i].design_name,
                                   replies[i].gate_count, replies[i].report,
                                   traces_of(replies[i]), top)
                     .c_str(),
                 stdout);
    }
    if (replies.size() > 1) std::printf("]");
    std::printf("\n");
    return 0;
  }
  for (std::size_t i = 0; i < replies.size(); ++i) {
    if (i > 0) std::printf("\n");
    std::fputs(render_audit_table(replies[i].design_name,
                                  replies[i].gate_count, replies[i].report,
                                  traces_of(replies[i]), top)
                   .c_str(),
               stdout);
  }
  return 0;
}

int client_mask(const ParsedFlags& flags) {
  server::MaskRequest request;
  request.design = flags.require("design");
  request.scale = flags.get_double("scale", 1.0);
  request.mask_size = flags.get_size("mask-size", 0);  // 0 = bundle's Msize
  request.mode = mode_from_string(flags.get("mode", "model"));
  request.verify = flags.has("verify");
  const std::string out_path = flags.require("out");

  server::Client client(flags.require("socket"));
  const auto reply = client.mask(request);
  note_cache_hit(reply.cache_hit);
  // Atomic, like the offline path: a flow must never see a truncated .v.
  util::write_file_atomic(out_path, reply.verilog);

  const tvla::LeakageReport* before =
      reply.before.has_value() ? &*reply.before : nullptr;
  const tvla::LeakageReport* after =
      reply.after.has_value() ? &*reply.after : nullptr;
  const auto render = flags.has("json") ? render_mask_json : render_mask_text;
  std::fputs(render(reply.design_name, reply.gate_count, reply.selected.size(),
                    reply.masked_gate_count, reply.seconds, out_path, before,
                    after)
                 .c_str(),
             stdout);
  if (flags.has("json")) std::printf("\n");
  return 0;
}

int client_score(const ParsedFlags& flags) {
  server::ScoreRequest request;
  request.design = flags.require("design");
  request.scale = flags.get_double("scale", 1.0);
  request.mode = mode_from_string(flags.get("mode", "model"));
  const std::size_t top = flags.get_size("top", 10);

  server::Client client(flags.require("socket"));
  const auto reply = client.score(request);
  note_cache_hit(reply.cache_hit);

  // Rank maskable gates (score > 0) by descending score, stable by id.
  std::vector<std::size_t> ranked;
  for (std::size_t g = 0; g < reply.scores.size(); ++g) {
    if (reply.scores[g] > 0.0) ranked.push_back(g);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [&](std::size_t a, std::size_t b) {
                     return reply.scores[a] > reply.scores[b];
                   });
  const std::size_t shown = std::min(top, ranked.size());

  if (flags.has("json")) {
    std::printf("{\"design\":\"%s\",\"gates\":%zu,\"scored\":%zu,\"top\":[",
                json_escape(reply.design_name).c_str(), reply.scores.size(),
                ranked.size());
    for (std::size_t i = 0; i < shown; ++i) {
      std::printf("%s{\"gate\":%zu,\"score\":%.6f}", i == 0 ? "" : ",",
                  ranked[i], reply.scores[ranked[i]]);
    }
    std::printf("]}\n");
    return 0;
  }
  std::printf("=== gate scores: %s (%zu gates, %zu scored) ===\n",
              reply.design_name.c_str(), reply.scores.size(), ranked.size());
  if (shown > 0) {
    util::Table table({"Rank", "Gate", "Score"});
    for (std::size_t i = 0; i < shown; ++i) {
      table.add_row({std::to_string(i + 1), std::to_string(ranked[i]),
                     util::format_double(reply.scores[ranked[i]], 4)});
    }
    std::fputs(table.render().c_str(), stdout);
  }
  return 0;
}

int client_shutdown(const ParsedFlags& flags) {
  server::Client client(flags.require("socket"));
  client.shutdown_server();
  std::printf("shutdown requested\n");
  return 0;
}

}  // namespace

int cmd_client(std::span<const char* const> args) {
  if (args.empty() || std::strcmp(args[0], "--help") == 0 ||
      std::strcmp(args[0], "-h") == 0) {
    std::printf(
        "usage: polaris_cli client <verb> --socket <path.sock> [flags]\n"
        "\n"
        "verbs (each '--help' lists its flags):\n"
        "  ping      daemon liveness, bundle identity, cache stats (JSON)\n"
        "  stats     daemon observability snapshot (JSON, or --prom text)\n"
        "  audit     TVLA leakage report, served (same output as 'audit')\n"
        "  mask      masked Verilog, served (same output as 'mask')\n"
        "  score     per-gate masking scores from the served model\n"
        "  shutdown  ask the daemon to drain and exit\n");
    return args.empty() ? 2 : 0;
  }
  const std::string verb = args[0];
  const auto rest = args.subspan(1);

  const FlagSpec socket_spec{"socket", true,
                             "daemon socket path (required)"};
  const FlagSpec help_spec{"help", false, "show this help"};

  if (verb == "ping" || verb == "shutdown") {
    const std::vector<FlagSpec> specs = {socket_spec, help_spec};
    const ParsedFlags flags(rest, specs);
    if (flags.has("help")) {
      std::printf("usage: polaris_cli client %s --socket <path.sock>\n\n%s",
                  verb.c_str(), render_flag_help(specs).c_str());
      return 0;
    }
    return verb == "ping" ? client_ping(flags) : client_shutdown(flags);
  }
  if (verb == "stats") {
    const std::vector<FlagSpec> specs = {
        socket_spec,
        {"prom", false, "Prometheus text exposition instead of JSON"},
        help_spec,
    };
    const ParsedFlags flags(rest, specs);
    if (flags.has("help")) {
      std::printf("usage: polaris_cli client stats --socket <path.sock> "
                  "[--prom]\n\n%s",
                  render_flag_help(specs).c_str());
      return 0;
    }
    return client_stats(flags);
  }
  if (verb == "audit") {
    std::vector<FlagSpec> specs = config_flag_specs();
    specs.push_back(socket_spec);
    specs.push_back({"design", true,
                     "suite name(s) or Verilog file(s), comma-separated "
                     "(required)"});
    specs.push_back({"scale", true,
                     "suite design-size scale in (0,1] (default 1.0)"});
    specs.push_back({"top", true, "list the N leakiest gates (default 10)"});
    specs.push_back({"json", false,
                     "emit a JSON object (array when several designs)"});
    specs.push_back({"stream", false,
                     "stream early-stop checkpoint frames (notices on "
                     "stderr; pair with --budget)"});
    specs.push_back(help_spec);
    const ParsedFlags flags(rest, specs);
    if (flags.has("help")) {
      std::printf("usage: polaris_cli client audit --socket <path.sock> "
                  "--design <name|file.v>[,...] [flags]\n\n%s",
                  render_flag_help(specs).c_str());
      return 0;
    }
    return client_audit(flags);
  }
  if (verb == "mask") {
    const std::vector<FlagSpec> specs = {
        socket_spec,
        {"design", true, "suite name or Verilog file (required)"},
        {"out", true, "masked Verilog output path (required)"},
        {"scale", true, "suite design-size scale in (0,1] (default 1.0)"},
        {"mask-size", true, "gates to mask (default: the bundle's Msize)"},
        {"mode", true, "model | rules | model+rules (default model)"},
        {"verify", false, "server-side before/after TVLA sign-off"},
        {"json", false, "emit a JSON summary instead of text"},
        help_spec,
    };
    const ParsedFlags flags(rest, specs);
    if (flags.has("help")) {
      std::printf("usage: polaris_cli client mask --socket <path.sock> "
                  "--design <name|file.v> --out <masked.v> [flags]\n\n%s",
                  render_flag_help(specs).c_str());
      return 0;
    }
    return client_mask(flags);
  }
  if (verb == "score") {
    const std::vector<FlagSpec> specs = {
        socket_spec,
        {"design", true, "suite name or Verilog file (required)"},
        {"scale", true, "suite design-size scale in (0,1] (default 1.0)"},
        {"mode", true, "model | rules | model+rules (default model)"},
        {"top", true, "list the N best-scoring gates (default 10)"},
        {"json", false, "emit a JSON summary instead of text"},
        help_spec,
    };
    const ParsedFlags flags(rest, specs);
    if (flags.has("help")) {
      std::printf("usage: polaris_cli client score --socket <path.sock> "
                  "--design <name|file.v> [flags]\n\n%s",
                  render_flag_help(specs).c_str());
      return 0;
    }
    return client_score(flags);
  }
  throw UsageError("unknown client verb '" + verb +
                   "'; expected ping, stats, audit, mask, score, or shutdown");
}

}  // namespace polaris::cli
