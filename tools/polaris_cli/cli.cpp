#include "cli.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>

#include "netlist/verilog.hpp"

namespace polaris::cli {

ParsedFlags::ParsedFlags(std::span<const char* const> args,
                         std::span<const FlagSpec> specs) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string arg = args[i];
    if (arg.size() < 3 || arg[0] != '-' || arg[1] != '-') {
      throw UsageError("unexpected argument '" + arg +
                       "' (flags look like --name)");
    }
    const std::string name = arg.substr(2);
    const auto spec = std::find_if(specs.begin(), specs.end(),
                                   [&](const FlagSpec& s) { return s.name == name; });
    if (spec == specs.end()) throw UsageError("unknown flag '--" + name + "'");
    if (!spec->takes_value) {
      values_.insert_or_assign(name, std::string("1"));
      continue;
    }
    if (i + 1 >= args.size()) {
      throw UsageError("flag '--" + name + "' needs a value");
    }
    values_[name] = args[++i];
  }
}

bool ParsedFlags::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string ParsedFlags::get(const std::string& name,
                             const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::uint64_t ParsedFlags::get_u64(const std::string& name,
                                   std::uint64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    // std::stoull accepts "-5" (wrapping to 2^64-5); reject signs up front.
    if (it->second.empty() || !std::isdigit(static_cast<unsigned char>(
                                  it->second.front()))) {
      throw std::invalid_argument(it->second);
    }
    std::size_t used = 0;
    const std::uint64_t value = std::stoull(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument(it->second);
    return value;
  } catch (const std::exception&) {
    throw UsageError("flag '--" + name + "' expects a non-negative integer, "
                     "got '" + it->second + "'");
  }
}

std::size_t ParsedFlags::get_size(const std::string& name,
                                  std::size_t fallback) const {
  return static_cast<std::size_t>(get_u64(name, fallback));
}

double ParsedFlags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    std::size_t used = 0;
    const double value = std::stod(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument(it->second);
    return value;
  } catch (const std::exception&) {
    throw UsageError("flag '--" + name + "' expects a number, got '" +
                     it->second + "'");
  }
}

std::string ParsedFlags::require(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) throw UsageError("flag '--" + name + "' is required");
  return it->second;
}

std::string render_flag_help(std::span<const FlagSpec> specs) {
  std::size_t width = 0;
  for (const auto& spec : specs) {
    width = std::max(width, spec.name.size() + (spec.takes_value ? 6 : 0));
  }
  std::ostringstream out;
  for (const auto& spec : specs) {
    const std::string left =
        "--" + spec.name + (spec.takes_value ? " <arg>" : "");
    const std::size_t pad =
        width + 6 > left.size() ? width + 6 - left.size() : 1;
    out << "  " << left << std::string(pad, ' ') << spec.help << "\n";
  }
  return out.str();
}

std::vector<FlagSpec> config_flag_specs() {
  return {
      {"traces", true, "TVLA traces per campaign, multiple of 64 (default 8192)"},
      {"iterations", true, "Algorithm-1 iterations per training design (default 100)"},
      {"mask-size", true, "Msize: gates masked per iteration / serve default (default 60)"},
      {"theta-r", true, "good-mask leakage-reduction ratio in [0,1] (default 0.70)"},
      {"locality", true, "L: BFS locality of the structural features (default 7)"},
      {"model", true, "adaboost | forest | xgboost | tree (default adaboost)"},
      {"rounds", true, "boosting rounds / forest size (default 300)"},
      {"seed", true, "experiment seed (default 1)"},
      {"threads", true, "worker threads, 0 = all cores (default 0)"},
  };
}

core::PolarisConfig config_from_flags(const ParsedFlags& flags) {
  core::PolarisConfig config;
  // The bench/example demo scale: full paper parameters except Msize, which
  // is sized to the small training circuits (see bench_common.hpp).
  config.mask_size = 60;
  config.tvla.traces = 8192;
  config.tvla.noise_std_fj = 1.0;

  config.tvla.traces = flags.get_size("traces", config.tvla.traces);
  config.iterations = flags.get_size("iterations", config.iterations);
  config.mask_size = flags.get_size("mask-size", config.mask_size);
  config.theta_r = flags.get_double("theta-r", config.theta_r);
  config.locality = flags.get_size("locality", config.locality);
  config.model_rounds = flags.get_size("rounds", config.model_rounds);
  config.seed = flags.get_u64("seed", config.seed);
  config.threads = flags.get_size("threads", config.threads);
  config.tvla.seed = config.seed;
  if (flags.has("model")) {
    try {
      config.model = core::model_kind_from_string(flags.get("model"));
    } catch (const std::invalid_argument& error) {
      throw UsageError(error.what());
    }
  }
  try {
    core::validate(config);
  } catch (const std::invalid_argument& error) {
    throw UsageError(error.what());
  }
  return config;
}

circuits::Design load_design(const std::string& name_or_path, double scale) {
  if (name_or_path.size() > 2 &&
      name_or_path.compare(name_or_path.size() - 2, 2, ".v") == 0) {
    circuits::Design design;
    design.name = name_or_path;
    design.netlist = netlist::read_verilog_file(name_or_path);
    design.roles.assign(design.netlist.primary_inputs().size(),
                        circuits::InputRole::kData);
    return design;
  }
  return circuits::get_design(name_or_path, scale);
}

core::InferenceMode mode_from_string(const std::string& name) {
  if (name == "model") return core::InferenceMode::kModel;
  if (name == "rules") return core::InferenceMode::kRules;
  if (name == "model+rules" || name == "combined") {
    return core::InferenceMode::kModelPlusRules;
  }
  throw UsageError("unknown inference mode '" + name +
                   "'; expected model, rules, or model+rules");
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace polaris::cli
