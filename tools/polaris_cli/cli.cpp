#include "cli.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "util/fileio.hpp"
#include "util/math.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace polaris::cli {

TraceGuard::TraceGuard(const std::string& path, const char* command)
    : path_(path), command_(command) {
  if (path_.empty()) return;
  obs::Tracer::global().start();
  start_ns_ = obs::now_ns();
}

TraceGuard::~TraceGuard() {
  if (path_.empty()) return;
  auto& tracer = obs::Tracer::global();
  // Root span covering the whole command, so every nested span has a
  // visible parent in Perfetto.
  tracer.complete_event(command_, "cli", start_ns_, obs::now_ns() - start_ns_,
                        std::string());
  std::size_t events = 0;
  const std::string json = tracer.stop_to_json(&events);
  try {
    util::write_file_atomic(path_, json);
    std::fprintf(stderr, "polaris: wrote trace %s (%zu events)\n",
                 path_.c_str(), events);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "polaris: cannot write trace %s: %s\n", path_.c_str(),
                 error.what());
  }
}

FlagSpec trace_flag_spec() {
  return {"trace", true,
          "write a Chrome trace-event JSON of this run (Perfetto-loadable)"};
}

ParsedFlags::ParsedFlags(std::span<const char* const> args,
                         std::span<const FlagSpec> specs) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string arg = args[i];
    if (arg.size() < 3 || arg[0] != '-' || arg[1] != '-') {
      throw UsageError("unexpected argument '" + arg +
                       "' (flags look like --name)");
    }
    const std::string name = arg.substr(2);
    const auto spec = std::find_if(specs.begin(), specs.end(),
                                   [&](const FlagSpec& s) { return s.name == name; });
    if (spec == specs.end()) throw UsageError("unknown flag '--" + name + "'");
    if (!spec->takes_value) {
      values_.insert_or_assign(name, std::string("1"));
      continue;
    }
    if (i + 1 >= args.size()) {
      throw UsageError("flag '--" + name + "' needs a value");
    }
    values_[name] = args[++i];
  }
}

bool ParsedFlags::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string ParsedFlags::get(const std::string& name,
                             const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::uint64_t ParsedFlags::get_u64(const std::string& name,
                                   std::uint64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    // std::stoull accepts "-5" (wrapping to 2^64-5); reject signs up front.
    if (it->second.empty() || !std::isdigit(static_cast<unsigned char>(
                                  it->second.front()))) {
      throw std::invalid_argument(it->second);
    }
    std::size_t used = 0;
    const std::uint64_t value = std::stoull(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument(it->second);
    return value;
  } catch (const std::exception&) {
    throw UsageError("flag '--" + name + "' expects a non-negative integer, "
                     "got '" + it->second + "'");
  }
}

std::size_t ParsedFlags::get_size(const std::string& name,
                                  std::size_t fallback) const {
  return static_cast<std::size_t>(get_u64(name, fallback));
}

double ParsedFlags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    std::size_t used = 0;
    const double value = std::stod(it->second, &used);
    if (used != it->second.size()) throw std::invalid_argument(it->second);
    return value;
  } catch (const std::exception&) {
    throw UsageError("flag '--" + name + "' expects a number, got '" +
                     it->second + "'");
  }
}

std::string ParsedFlags::require(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) throw UsageError("flag '--" + name + "' is required");
  return it->second;
}

std::string render_flag_help(std::span<const FlagSpec> specs) {
  std::size_t width = 0;
  for (const auto& spec : specs) {
    width = std::max(width, spec.name.size() + (spec.takes_value ? 6 : 0));
  }
  std::ostringstream out;
  for (const auto& spec : specs) {
    const std::string left =
        "--" + spec.name + (spec.takes_value ? " <arg>" : "");
    const std::size_t pad =
        width + 6 > left.size() ? width + 6 - left.size() : 1;
    out << "  " << left << std::string(pad, ' ') << spec.help << "\n";
  }
  return out.str();
}

std::vector<FlagSpec> config_flag_specs() {
  return {
      {"traces", true, "TVLA traces per campaign, multiple of 64 (default 8192)"},
      {"iterations", true, "Algorithm-1 iterations per training design (default 100)"},
      {"mask-size", true, "Msize: gates masked per iteration / serve default (default 60)"},
      {"theta-r", true, "good-mask leakage-reduction ratio in [0,1] (default 0.70)"},
      {"locality", true, "L: BFS locality of the structural features (default 7)"},
      {"model", true, "adaboost | forest | xgboost | tree (default adaboost)"},
      {"rounds", true, "boosting rounds / forest size (default 300)"},
      {"seed", true, "experiment seed (default 1)"},
      {"threads", true, "worker threads, 0 = all cores (default 0)"},
      {"budget", true,
       "early-stop TVLA: min traces before the first checkpoint, 0 = fixed "
       "budget (default 0)"},
  };
}

core::PolarisConfig config_from_flags(const ParsedFlags& flags) {
  core::PolarisConfig config;
  // The bench/example demo scale: full paper parameters except Msize, which
  // is sized to the small training circuits (see bench_common.hpp).
  config.mask_size = 60;
  config.tvla.traces = 8192;
  config.tvla.noise_std_fj = 1.0;

  config.tvla.traces = flags.get_size("traces", config.tvla.traces);
  config.iterations = flags.get_size("iterations", config.iterations);
  config.mask_size = flags.get_size("mask-size", config.mask_size);
  config.theta_r = flags.get_double("theta-r", config.theta_r);
  config.locality = flags.get_size("locality", config.locality);
  config.model_rounds = flags.get_size("rounds", config.model_rounds);
  config.seed = flags.get_u64("seed", config.seed);
  config.threads = flags.get_size("threads", config.threads);
  config.tvla.seed = config.seed;
  // --budget N enables sequential early stopping with its first checkpoint
  // at N traces; 0 (the default) keeps the fixed-budget path and its
  // byte-identical outputs.
  if (const std::size_t budget = flags.get_size("budget", 0); budget != 0) {
    config.tvla.budget.enabled = true;
    config.tvla.budget.min_traces = budget;
  }
  if (flags.has("model")) {
    try {
      config.model = core::model_kind_from_string(flags.get("model"));
    } catch (const std::invalid_argument& error) {
      throw UsageError(error.what());
    }
  }
  try {
    core::validate(config);
  } catch (const std::invalid_argument& error) {
    throw UsageError(error.what());
  }
  return config;
}

core::InferenceMode mode_from_string(const std::string& name) {
  if (name == "model") return core::InferenceMode::kModel;
  if (name == "rules") return core::InferenceMode::kRules;
  if (name == "model+rules" || name == "combined") {
    return core::InferenceMode::kModelPlusRules;
  }
  throw UsageError("unknown inference mode '" + name +
                   "'; expected model, rules, or model+rules");
}

namespace {

/// printf-append onto a std::string (keeps the renderers byte-compatible
/// with the printf-based output they replaced). Sized exactly: arbitrarily
/// long design/output paths must never truncate.
template <class... Args>
void appendf(std::string& out, const char* format, Args... args) {
  const int needed = std::snprintf(nullptr, 0, format, args...);
  if (needed <= 0) return;
  const std::size_t old_size = out.size();
  out.resize(old_size + static_cast<std::size_t>(needed) + 1);
  std::snprintf(out.data() + old_size, static_cast<std::size_t>(needed) + 1,
                format, args...);
  out.resize(old_size + static_cast<std::size_t>(needed));
}

}  // namespace

std::string render_audit_json(const std::string& design_name,
                              std::size_t gate_count,
                              const tvla::LeakageReport& report,
                              std::size_t traces, std::size_t top) {
  const auto leaky = report.leaky_groups();
  const std::size_t shown = std::min(top, leaky.size());
  std::string out;
  appendf(out,
          "{\"design\":\"%s\",\"gates\":%zu,\"measured\":%zu,"
          "\"leaky\":%zu,\"threshold\":%.3f,\"total_abs_t\":%.6f,"
          "\"leakage_per_gate\":%.6f,\"traces\":%zu,\"top\":[",
          json_escape(design_name).c_str(), gate_count,
          report.measured_count(), leaky.size(), report.threshold(),
          report.total_abs_t(), report.leakage_per_gate(), traces);
  for (std::size_t i = 0; i < shown; ++i) {
    appendf(out, "%s{\"gate\":%lu,\"t\":%.4f}", i == 0 ? "" : ",",
            static_cast<unsigned long>(leaky[i]), report.t_value(leaky[i]));
  }
  out += "]}";
  return out;
}

std::string render_audit_table(const std::string& design_name,
                               std::size_t gate_count,
                               const tvla::LeakageReport& report,
                               std::size_t traces, std::size_t top) {
  const auto leaky = report.leaky_groups();
  const std::size_t shown = std::min(top, leaky.size());
  std::string out;
  appendf(out, "=== TVLA audit: %s (%zu gates, %zu traces) ===\n",
          design_name.c_str(), gate_count, traces);
  appendf(out, "measured groups:  %zu\n", report.measured_count());
  appendf(out, "leaky (|t|>%.1f): %zu\n", report.threshold(), leaky.size());
  appendf(out, "total |t|:        %.3f\n", report.total_abs_t());
  appendf(out, "leakage per gate: %.3f\n\n", report.leakage_per_gate());
  if (shown > 0) {
    util::Table table({"Rank", "Gate", "|t|"});
    for (std::size_t i = 0; i < shown; ++i) {
      table.add_row({std::to_string(i + 1), std::to_string(leaky[i]),
                     util::format_double(std::abs(report.t_value(leaky[i])), 3)});
    }
    out += table.render();
  }
  return out;
}

std::string render_mask_json(const std::string& design_name,
                             std::size_t gate_count, std::size_t selected,
                             std::size_t masked_gate_count, double seconds,
                             const std::string& out_path,
                             const tvla::LeakageReport* before,
                             const tvla::LeakageReport* after) {
  std::string out;
  appendf(out,
          "{\"design\":\"%s\",\"gates\":%zu,\"masked\":%zu,"
          "\"masked_gates\":%zu,\"seconds\":%.4f,\"out\":\"%s\"",
          json_escape(design_name).c_str(), gate_count, selected,
          masked_gate_count, seconds, json_escape(out_path).c_str());
  if (before != nullptr && after != nullptr) {
    const double before_total = before->total_abs_t();
    const double after_total = after->total_abs_t();
    appendf(out,
            ",\"before_total_abs_t\":%.6f,\"after_total_abs_t\":%.6f,"
            "\"reduction_percent\":%.2f,\"leaky_before\":%zu,"
            "\"leaky_after\":%zu",
            before_total, after_total,
            util::reduction_percent(before_total, after_total),
            before->leaky_count(), after->leaky_count());
  }
  out += "}";
  return out;
}

std::string render_mask_text(const std::string& design_name,
                             std::size_t gate_count, std::size_t selected,
                             std::size_t masked_gate_count, double seconds,
                             const std::string& out_path,
                             const tvla::LeakageReport* before,
                             const tvla::LeakageReport* after) {
  (void)design_name;
  std::string out;
  appendf(out,
          "masked %zu of %zu gates in %.2fs (inference only - no TVLA "
          "in the loop)\n",
          selected, gate_count, seconds);
  appendf(out, "wrote %s (%zu cells after composite insertion)\n",
          out_path.c_str(), masked_gate_count);
  if (before != nullptr && after != nullptr) {
    const double before_total = before->total_abs_t();
    const double after_total = after->total_abs_t();
    appendf(out,
            "verification: leaky %zu -> %zu, total |t| %.2f -> %.2f "
            "(%.1f%% reduction)\n",
            before->leaky_count(), after->leaky_count(), before_total,
            after_total,
            util::reduction_percent(before_total, after_total));
  }
  return out;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace polaris::cli
