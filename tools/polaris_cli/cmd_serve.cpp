// `polaris_cli serve`: the long-lived masking daemon. Loads a .plb bundle
// ONCE, binds a Unix-domain socket, and serves audit/mask/score requests
// until SIGINT/SIGTERM or a client `shutdown` - every later request skips
// the process launch, bundle load, and cold caches an offline invocation
// pays. Concurrent clients' TVLA shards interleave in one scheduler queue;
// repeated requests for unchanged designs answer from the result cache.
#include <signal.h>

#include <cstdio>

#include "cli.hpp"
#include "server/server.hpp"

namespace polaris::cli {

namespace {

server::Server* g_server = nullptr;

void handle_stop_signal(int) {
  // request_stop is async-signal-safe (one write to a pipe). The daemon
  // then drains: in-flight requests complete, responses are delivered, the
  // socket file is unlinked, and wait() returns.
  if (g_server != nullptr) g_server->request_stop();
}

}  // namespace

int cmd_serve(std::span<const char* const> args) {
  const std::vector<FlagSpec> specs = {
      {"bundle", true, "trained .plb bundle to serve (required)"},
      {"socket", true,
       "endpoint to listen on: Unix-socket path or tcp:host:port (required)"},
      {"threads", true, "scheduler worker threads, 0 = all cores (default 0)"},
      {"workers", true,
       "comma-separated shard-worker endpoints; audits distribute across "
       "them plus local lanes (results stay byte-identical)"},
      {"backlog", true, "listen(2) connection backlog (default 64)"},
      {"max-frame", true,
       "largest accepted request payload in bytes (default 67108864)"},
      {"cache-capacity", true, "result-cache entries, 0 disables (default 256)"},
      {"metrics-file", true,
       "append one JSON metrics-delta line per sample interval"},
      {"sample-interval-ms", true,
       "metrics sampler period in ms, 0 disables (default 1000)"},
      {"slow-request-ms", true,
       "log requests slower than this, 0 disables (default 1000)"},
      {"flight-records", true,
       "completed requests kept for 'client status' (default 64)"},
      {"help", false, "show this help"},
  };
  const ParsedFlags flags(args, specs);
  if (flags.has("help")) {
    std::printf("usage: polaris_cli serve --bundle <model.plb> --socket "
                "<path.sock> [flags]\n\n%s",
                render_flag_help(specs).c_str());
    return 0;
  }

  server::ServerOptions options;
  options.bundle_path = flags.require("bundle");
  options.socket_path = flags.require("socket");
  options.threads = flags.get_size("threads", 0);
  options.workers = flags.get("workers", "");
  options.backlog = static_cast<int>(flags.get_size("backlog", 64));
  options.max_frame = flags.get_size("max-frame", server::kDefaultMaxFrame);
  options.cache_capacity = flags.get_size("cache-capacity", 256);
  options.metrics_file = flags.get("metrics-file", "");
  options.sample_interval_ms = flags.get_size("sample-interval-ms", 1000);
  options.slow_request_ms = flags.get_size("slow-request-ms", 1000);
  options.flight_records = flags.get_size("flight-records", 64);

  server::Server daemon(options);
  const auto& info = daemon.bundle_info();
  // The RESOLVED endpoint: "--socket tcp:host:0" binds an ephemeral port,
  // and smoke scripts read the actual one from this line. A UDS endpoint
  // renders as its path, exactly as before.
  std::printf("polaris serve: %s (model=%s, fingerprint=%016llx) on %s\n",
              options.bundle_path.c_str(), info.model_name.c_str(),
              static_cast<unsigned long long>(info.config_fingerprint),
              server::net::to_string(daemon.endpoint()).c_str());
  if (!options.workers.empty()) {
    std::printf("polaris serve: distributing audits over workers %s\n",
                options.workers.c_str());
  }
  std::fflush(stdout);  // smoke scripts wait for this line through a pipe

  g_server = &daemon;
  struct sigaction action {};
  action.sa_handler = handle_stop_signal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);

  daemon.start();
  daemon.wait();
  g_server = nullptr;

  const auto stats = daemon.stats();
  std::printf("polaris serve: drained after %llu requests over %llu "
              "connections (cache: %llu hits / %llu misses, %llu entries)\n",
              static_cast<unsigned long long>(stats.requests_served),
              static_cast<unsigned long long>(stats.connections),
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cache_misses),
              static_cast<unsigned long long>(stats.cache_entries));
  return 0;
}

}  // namespace polaris::cli
