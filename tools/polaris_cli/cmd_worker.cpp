// `polaris_cli worker`: a shard-execution worker for distributed audits.
// Binds an endpoint (usually "tcp:host:port"), accepts design installs and
// shard requests from a coordinator (`audit --workers` or `serve
// --workers`), compiles each (config, design) pair ONCE into a cached
// plan, and ships unmerged per-shard moment blocks back. Stateless across
// campaigns beyond those caches; safe to kill at any time - the
// coordinator requeues unacknowledged shards onto its remaining lanes.
#include <signal.h>

#include <cstdio>

#include "cli.hpp"
#include "server/worker.hpp"

namespace polaris::cli {

namespace {

server::Worker* g_worker = nullptr;

void handle_worker_stop_signal(int) {
  // request_stop is async-signal-safe (one write to a pipe); the worker
  // drains in-flight shard requests before wait() returns.
  if (g_worker != nullptr) g_worker->request_stop();
}

}  // namespace

int cmd_worker(std::span<const char* const> args) {
  const std::vector<FlagSpec> specs = {
      {"listen", true,
       "endpoint to serve on: tcp:host:port (port 0 = ephemeral) or a "
       "Unix-socket path (required)"},
      {"threads", true, "shard fan-out threads, 0 = all cores (default 0)"},
      {"backlog", true, "listen(2) connection backlog (default 64)"},
      {"max-frame", true,
       "largest accepted request payload in bytes (default 67108864)"},
      {"help", false, "show this help"},
  };
  const ParsedFlags flags(args, specs);
  if (flags.has("help")) {
    std::printf("usage: polaris_cli worker --listen <tcp:host:port|path.sock> "
                "[flags]\n\n%s",
                render_flag_help(specs).c_str());
    return 0;
  }

  server::WorkerOptions options;
  options.listen = flags.require("listen");
  options.threads = flags.get_size("threads", 0);
  options.backlog = static_cast<int>(flags.get_size("backlog", 64));
  options.max_frame = flags.get_size("max-frame", server::kDefaultMaxFrame);

  server::Worker worker(options);
  const auto& bound = worker.endpoint();
  // The resolved endpoint matters when --listen asked for port 0: smoke
  // scripts read the actual port from this line through a pipe.
  std::printf("polaris worker: serving shards on %s\n",
              server::net::to_string(bound).c_str());
  std::fflush(stdout);

  g_worker = &worker;
  struct sigaction action {};
  action.sa_handler = handle_worker_stop_signal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);

  worker.start();
  worker.wait();
  g_worker = nullptr;

  std::printf("polaris worker: drained after %llu shards over %llu requests\n",
              static_cast<unsigned long long>(worker.shards_run()),
              static_cast<unsigned long long>(worker.requests_served()));
  return 0;
}

}  // namespace polaris::cli
