// Reproduces Fig. 3: SHAP waterfall plots for the AdaBoost model - one
// confidently-"mask" sample (a) and one confidently-"don't mask" sample (b),
// showing how each structural feature pushes the prediction away from
// E[f(x)]. Also exports the bar data as CSV next to the binary.
#include <cstdio>

#include "bench_common.hpp"
#include "graph/features.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "xai/waterfall.hpp"

using namespace polaris;

int main() {
  const auto setup = bench::BenchSetup::from_env();
  std::printf("=== Fig. 3: SHAP waterfall plots (AdaBoost) ===\n\n");

  const auto trained = bench::trained_polaris(
      setup.polaris_config(), circuits::training_suite(), setup.lib);
  const auto& polaris = trained.polaris;

  const auto names =
      graph::FeatureSpec{polaris.config().locality}.feature_names();
  const auto& data = polaris.training_data();

  // Pick the most confident sample of each class.
  std::size_t best_pos = 0, best_neg = 0;
  double best_pos_p = -1.0, best_neg_p = 2.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double p = polaris.model().predict_proba(data.row(i));
    if (data.label(i) == 1 && p > best_pos_p) {
      best_pos_p = p;
      best_pos = i;
    }
    if (data.label(i) == 0 && p < best_neg_p) {
      best_neg_p = p;
      best_neg = i;
    }
  }

  util::CsvWriter csv({"panel", "feature", "feature_value", "phi"});
  const auto emit = [&](const char* panel, std::size_t row, double proba) {
    const auto wf = xai::make_waterfall(polaris.model(), data.row(row), names);
    std::printf("(%s) sample #%zu  label=%d  p(mask)=%.3f\n", panel, row,
                data.label(row), proba);
    std::fputs(wf.render().c_str(), stdout);
    std::printf("\n");
    for (const auto& bar : wf.bars) {
      csv.add_row({panel, bar.feature, util::format_double(bar.feature_value, 3),
                   util::format_double(bar.phi, 5)});
    }
  };
  emit("a: mask", best_pos, best_pos_p);
  emit("b: do-not-mask", best_neg, best_neg_p);

  csv.write_file("fig3_shap_waterfall.csv");
  std::printf("bar data written to fig3_shap_waterfall.csv\n");
  return 0;
}
