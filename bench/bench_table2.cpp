// Reproduces Table II: "Quantitative comparison between VALIANT & POLARIS
// in terms of leakage reduction & runtime efficiency."
//
// Columns: per-gate leakage before masking, after VALIANT, after POLARIS at
// 50% / 75% / 100% of the TVLA-flagged ("leaky") gate count; total leakage
// reduction percentages; wall-clock flow times. POLARIS time = Algorithm 2
// (inference + sort + rewrite) plus one verification TVLA; VALIANT time =
// its full multi-round TVLA-mask-TVLA loop.
#include <cstdio>

#include "bench_common.hpp"
#include "util/strings.hpp"
#include "valiant/valiant.hpp"

using namespace polaris;

int main() {
  const auto setup = bench::BenchSetup::from_env();
  std::printf("=== Table II: VALIANT vs POLARIS (traces=%zu, scale=%.2f) ===\n\n",
              setup.traces, setup.scale);

  // Stage 1+2: train once on the small training designs (Sec. V-A), or
  // serve a previously trained model (POLARIS_BENCH_BUNDLE).
  const auto training = circuits::training_suite();
  const auto trained =
      bench::trained_polaris(setup.polaris_config(), training, setup.lib);
  const auto& polaris = trained.polaris;
  if (!trained.from_bundle) {
    std::printf("training: %zu samples (%zu positive) from %zu designs in "
                "%.1fs\n\n",
                polaris.training_data().size(),
                polaris.training_data().positives(), training.size(),
                trained.seconds);
  }

  util::Table table({"Benchmark", "Gates", "Leaky", "Before", "VALIANT",
                     "POL50%", "POL75%", "POL100%", "Red%V", "Red%50",
                     "Red%75", "Red%100", "tV(s)", "tP(s)"});

  double sum_before = 0, sum_val = 0, sum_p50 = 0, sum_p75 = 0, sum_p100 = 0;
  double sum_rv = 0, sum_r50 = 0, sum_r75 = 0, sum_r100 = 0;
  double sum_tv = 0, sum_tp = 0;
  std::size_t rows = 0;

  for (auto& design : circuits::evaluation_suite(setup.scale)) {
    const auto tvla_config =
        core::tvla_config_for(polaris.config(), design);
    const auto before =
        tvla::run_fixed_vs_random(design.netlist, setup.lib, tvla_config);
    const std::size_t leaky = before.leaky_count();

    // --- VALIANT baseline -------------------------------------------------
    valiant::ValiantConfig vconfig;
    vconfig.tvla = tvla_config;
    vconfig.max_rounds = 6;
    const auto valiant_result =
        valiant::run_valiant(design.netlist, setup.lib, vconfig);

    // --- POLARIS at 50/75/100% of the leaky-gate count ---------------------
    struct PolarisPoint {
      double leakage_per_gate = 0.0;
      double total = 0.0;
      double seconds = 0.0;
    };
    PolarisPoint points[3];
    const double fractions[3] = {0.50, 0.75, 1.00};
    for (int i = 0; i < 3; ++i) {
      const auto msize = static_cast<std::size_t>(
          fractions[i] * static_cast<double>(leaky) + 0.5);
      util::Timer timer;
      const auto outcome = polaris.mask_design(design, setup.lib, msize,
                                               core::InferenceMode::kModel,
                                               /*verify=*/true);
      points[i].seconds = timer.seconds();
      points[i].leakage_per_gate = outcome.verification->leakage_per_gate();
      points[i].total = outcome.verification->total_abs_t();
    }

    const double rv = bench::reduction_percent(before.total_abs_t(),
                                               valiant_result.after.total_abs_t());
    const double r50 = bench::reduction_percent(before.total_abs_t(), points[0].total);
    const double r75 = bench::reduction_percent(before.total_abs_t(), points[1].total);
    const double r100 = bench::reduction_percent(before.total_abs_t(), points[2].total);

    const auto fmt = [](double v) { return util::format_double(v, 2); };
    table.add_row({design.name, std::to_string(design.netlist.gate_count()),
                   std::to_string(leaky), fmt(before.leakage_per_gate()),
                   fmt(valiant_result.after.leakage_per_gate()),
                   fmt(points[0].leakage_per_gate),
                   fmt(points[1].leakage_per_gate),
                   fmt(points[2].leakage_per_gate), fmt(rv), fmt(r50),
                   fmt(r75), fmt(r100), fmt(valiant_result.seconds),
                   fmt(points[2].seconds)});

    sum_before += before.leakage_per_gate();
    sum_val += valiant_result.after.leakage_per_gate();
    sum_p50 += points[0].leakage_per_gate;
    sum_p75 += points[1].leakage_per_gate;
    sum_p100 += points[2].leakage_per_gate;
    sum_rv += rv;
    sum_r50 += r50;
    sum_r75 += r75;
    sum_r100 += r100;
    sum_tv += valiant_result.seconds;
    sum_tp += points[2].seconds;
    ++rows;
  }

  const double n = static_cast<double>(rows);
  const auto fmt = [](double v) { return util::format_double(v, 2); };
  table.add_row({"Average", "", "", fmt(sum_before / n), fmt(sum_val / n),
                 fmt(sum_p50 / n), fmt(sum_p75 / n), fmt(sum_p100 / n),
                 fmt(sum_rv / n), fmt(sum_r50 / n), fmt(sum_r75 / n),
                 fmt(sum_r100 / n), fmt(sum_tv / n), fmt(sum_tp / n)});

  std::fputs(table.render().c_str(), stdout);
  std::printf("\nspeedup (avg VALIANT time / avg POLARIS time): %.1fx\n",
              sum_tv / std::max(sum_tp, 1e-9));
  std::printf("paper shape: POLARIS@50%% ~ VALIANT@full reduction; POLARIS "
              "@100%% > VALIANT; POLARIS ~6x faster.\n");
  return 0;
}
