// Serving-throughput bench: an in-process serve daemon (real Unix-domain
// socket, real framed protocol) hammered by 1 and 8 concurrent clients,
// cold cache (every request a fresh audit seed -> full TVLA compute) vs
// warm cache (identical request -> O(lookup) replay). Emits one
// bench_common::JsonLine per scenario so BENCH_*.json tracks requests/sec
// and p50/p95 latency for the daemon path alongside the compute benches.
//
// Env knobs (bench_common.hpp): POLARIS_BENCH_TRACES scales the audit
// budget, POLARIS_BENCH_THREADS the daemon's scheduler fan-out,
// POLARIS_BENCH_BUNDLE skips training.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "server/client.hpp"
#include "server/server.hpp"
#include "util/timer.hpp"

using namespace polaris;

namespace {

struct Scenario {
  std::size_t clients;
  bool warm;
  std::size_t requests_per_client;
};

struct Measurement {
  std::vector<double> latencies_ms;  // per request
  double wall_seconds = 0.0;
};

double percentile(std::vector<double>& values, double fraction) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t index = std::min(
      values.size() - 1,
      static_cast<std::size_t>(fraction * static_cast<double>(values.size())));
  return values[index];
}

Measurement run_scenario(const std::string& socket_path,
                         const core::PolarisConfig& base_config,
                         const Scenario& scenario, std::uint64_t seed_base) {
  std::vector<std::vector<double>> per_client(scenario.clients);
  std::vector<std::thread> threads;
  util::Timer wall;
  for (std::size_t c = 0; c < scenario.clients; ++c) {
    threads.emplace_back([&, c] {
      server::Client client(socket_path);
      for (std::size_t r = 0; r < scenario.requests_per_client; ++r) {
        server::AuditRequest request;
        request.design = "square";
        request.scale = 0.4;
        request.config = base_config;
        // Warm: every request identical (after the warm-up miss, all
        // hits). Cold: a fresh seed per request defeats the cache.
        request.config.tvla.seed =
            scenario.warm ? seed_base
                          : seed_base + 1 + c * scenario.requests_per_client + r;
        request.config.seed = request.config.tvla.seed;
        util::Timer timer;
        const auto reply = client.audit(request);
        per_client[c].push_back(timer.seconds() * 1e3);
        if (reply.report.group_count() == 0) std::abort();  // impossible
      }
    });
  }
  for (auto& thread : threads) thread.join();
  Measurement measurement;
  measurement.wall_seconds = wall.seconds();
  for (auto& latencies : per_client) {
    measurement.latencies_ms.insert(measurement.latencies_ms.end(),
                                    latencies.begin(), latencies.end());
  }
  return measurement;
}

}  // namespace

int main() {
  const auto setup = bench::BenchSetup::from_env();
  std::printf("=== polaris serve: daemon throughput ===\n\n");

  auto config = setup.polaris_config();
  const auto training = circuits::training_suite();
  auto trained = bench::trained_polaris(config, training, setup.lib);

  // The daemon serves from a bundle file; reuse POLARIS_BENCH_BUNDLE's or
  // write a transient one.
  const char* env_bundle = std::getenv("POLARIS_BENCH_BUNDLE");
  std::string bundle_path;
  bool transient_bundle = false;
  if (env_bundle != nullptr && *env_bundle != '\0' && trained.from_bundle) {
    bundle_path = env_bundle;
  } else {
    bundle_path = "/tmp/polaris_bench_serve_" +
                  std::to_string(static_cast<unsigned long>(::getpid())) +
                  ".plb";
    trained.polaris.save_bundle(bundle_path);
    transient_bundle = true;
  }

  server::ServerOptions options;
  options.socket_path = "/tmp/polaris_bench_serve_" +
                        std::to_string(static_cast<unsigned long>(::getpid())) +
                        ".sock";
  options.bundle_path = bundle_path;
  options.threads = setup.threads;
  server::Server daemon(options);
  daemon.start();

  // Audits sized so a cold request is real TVLA work but the bench stays
  // seconds-scale: 1/16 of the configured budget, floored at 512.
  auto audit_config = config;
  audit_config.tvla.traces = std::max<std::size_t>(512, setup.traces / 16);

  const Scenario scenarios[] = {
      {1, false, 8}, {8, false, 4}, {1, true, 64}, {8, true, 32}};
  std::uint64_t seed_base = 1000;
  for (const auto& scenario : scenarios) {
    if (scenario.warm) {
      // One warm-up request populates the cache entry the scenario hits.
      (void)run_scenario(daemon.socket_path(), audit_config,
                         {1, true, 1}, seed_base);
    }
    // Daemon-side latency comes from the server's own request histogram:
    // stats snapshots before/after the scenario, interval delta via
    // HistogramSnapshot::subtract. The snapshots travel over the real
    // socket (the `stats` request), exactly as an external monitor's would.
    server::Client stats_client(daemon.socket_path());
    const obs::Snapshot stats_before = stats_client.stats().snapshot;
    auto measurement = run_scenario(daemon.socket_path(), audit_config,
                                    scenario, seed_base);
    const obs::Snapshot stats_after = stats_client.stats().snapshot;
    double daemon_p50_ms = 0.0;
    double daemon_p95_ms = 0.0;
    if (const auto* after = stats_after.find_histogram("server.audit_us")) {
      obs::HistogramSnapshot delta = *after;
      if (const auto* before = stats_before.find_histogram("server.audit_us")) {
        delta.subtract(*before);
      }
      daemon_p50_ms = delta.percentile(0.50) / 1e3;
      daemon_p95_ms = delta.percentile(0.95) / 1e3;
    }
    const std::size_t total = measurement.latencies_ms.size();
    const double rps =
        measurement.wall_seconds > 0.0
            ? static_cast<double>(total) / measurement.wall_seconds
            : 0.0;
    bench::JsonLine line("serve");
    line.field("clients", scenario.clients)
        .field("cache", scenario.warm ? "warm" : "cold")
        .field("requests", total)
        .field("traces", audit_config.tvla.traces)
        .field("threads", setup.threads)
        .field("rps", rps, 1)
        .field("p50_ms", percentile(measurement.latencies_ms, 0.50), 3)
        .field("p95_ms", percentile(measurement.latencies_ms, 0.95), 3)
        .field("daemon_p50_ms", daemon_p50_ms, 3)
        .field("daemon_p95_ms", daemon_p95_ms, 3)
        .field("wall_s", measurement.wall_seconds, 3);
    line.print();
    seed_base += 10000;  // scenarios never share cold seeds
  }

  daemon.request_stop();
  daemon.wait();
  std::remove(options.socket_path.c_str());
  if (transient_bundle) std::remove(bundle_path.c_str());
  return 0;
}
