// Reproduces Table III: "Comparison among different ML models used in
// POLARIS. Values indicate leakage reduction in %." (Random Forest with
// SMOTE, XGBoost and AdaBoost with weighted training; L = 7, theta_r = 0.7,
// Msize = TVLA-flagged leaky-gate count, alpha = 0.01.)
#include <cstdio>

#include "bench_common.hpp"
#include "util/strings.hpp"

using namespace polaris;

int main() {
  const auto setup = bench::BenchSetup::from_env();
  std::printf("=== Table III: ML model comparison (traces=%zu, scale=%.2f) ===\n\n",
              setup.traces, setup.scale);

  const core::ModelKind kinds[3] = {core::ModelKind::kRandomForest,
                                    core::ModelKind::kXgboost,
                                    core::ModelKind::kAdaBoost};

  // Train each model variant once on the shared training suite.
  const auto training = circuits::training_suite();
  std::vector<std::unique_ptr<core::Polaris>> tools;
  for (const auto kind : kinds) {
    auto config = setup.polaris_config();
    config.model = kind;
    auto tool = std::make_unique<core::Polaris>(config);
    util::Timer timer;
    const auto summary = tool->train(training, setup.lib);
    std::printf("%-12s trained: %5zu samples, %4zu positive, %.1fs\n",
                core::to_string(kind).c_str(), summary.samples,
                summary.positives, timer.seconds());
    tools.push_back(std::move(tool));
  }
  std::printf("\n");

  util::Table table({"Designs", "Random Forest", "XGBoost", "AdaBoost"});
  double sums[3] = {0, 0, 0};
  std::size_t rows = 0;

  for (auto& design : circuits::evaluation_suite(setup.scale)) {
    const auto tvla_config = core::tvla_config_for(tools[0]->config(), design);
    const auto before =
        tvla::run_fixed_vs_random(design.netlist, setup.lib, tvla_config);
    const std::size_t leaky = before.leaky_count();

    std::vector<std::string> row{design.name};
    for (std::size_t m = 0; m < 3; ++m) {
      const auto outcome = tools[m]->mask_design(design, setup.lib, leaky,
                                                 core::InferenceMode::kModel,
                                                 /*verify=*/true);
      const double reduction = bench::reduction_percent(
          before.total_abs_t(), outcome.verification->total_abs_t());
      sums[m] += reduction;
      row.push_back(util::format_double(reduction, 2));
    }
    table.add_row(std::move(row));
    ++rows;
  }

  const double n = static_cast<double>(rows);
  table.add_row({"Average", util::format_double(sums[0] / n, 2),
                 util::format_double(sums[1] / n, 2),
                 util::format_double(sums[2] / n, 2)});
  std::fputs(table.render().c_str(), stdout);
  std::printf("\npaper shape: AdaBoost best on average (54.09%%), then "
              "XGBoost (51.49%%), then Random Forest (41.97%%).\n");
  return 0;
}
