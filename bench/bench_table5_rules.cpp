// Reproduces Table V: "Power side-channel mitigation rules generated via
// the POLARIS framework (AdaBoost Model)" - human-readable structural rules
// mined from SHAP attributions over the training data.
#include <cstdio>

#include "bench_common.hpp"
#include "graph/features.hpp"
#include "ml/metrics.hpp"

using namespace polaris;

int main() {
  const auto setup = bench::BenchSetup::from_env();
  std::printf("=== Table V: SHAP-extracted masking rules (traces=%zu) ===\n\n",
              setup.traces);

  const auto trained = bench::trained_polaris(
      setup.polaris_config(), circuits::training_suite(), setup.lib);
  const auto& polaris = trained.polaris;

  const auto names =
      graph::FeatureSpec{polaris.config().locality}.feature_names();
  const auto& rules = polaris.rules();
  if (rules.empty()) {
    std::printf("no rules cleared the support/precision bar - lower "
                "theta_r or raise traces.\n");
    return 0;
  }

  char label = 'A';
  for (const auto& rule : rules.rules()) {
    std::printf("Rule %c: %s\n", label, rule.to_string(names).c_str());
    if (label < 'Z') ++label;
  }

  // "The automated rules ... can be used independently to make masking
  // decisions or alongside the model" - quantify both on the training set.
  const auto& data = polaris.training_data();
  std::size_t rules_hits = 0, rules_total = 0;
  std::size_t combo_hits = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double rule_score = rules.score(data.row(i));
    if (rule_score != 0.5) {
      ++rules_total;
      rules_hits += ((rule_score >= 0.5 ? 1 : 0) == data.label(i)) ? 1 : 0;
    }
    const double combo = rules.combined_score(polaris.model(), data.row(i));
    combo_hits += ((combo >= 0.5 ? 1 : 0) == data.label(i)) ? 1 : 0;
  }
  const auto metrics = ml::evaluate(polaris.model(), data);
  std::printf("\nstandalone rules: %.1f%% accuracy on the %zu samples they "
              "fire on (%.1f%% coverage)\n",
              rules_total == 0 ? 0.0
                               : 100.0 * static_cast<double>(rules_hits) /
                                     static_cast<double>(rules_total),
              rules_total,
              100.0 * static_cast<double>(rules_total) /
                  static_cast<double>(data.size()));
  std::printf("model alone: %.1f%% accuracy; model+rules: %.1f%%\n",
              100.0 * metrics.accuracy,
              100.0 * static_cast<double>(combo_hits) /
                  static_cast<double>(data.size()));
  return 0;
}
