// Shared setup for the table/figure reproduction benches.
//
// Environment knobs (all optional):
//   POLARIS_BENCH_TRACES   TVLA traces per campaign   (default 8192)
//   POLARIS_BENCH_SCALE    design-size scale in [0,1] (default 1.0)
//   POLARIS_BENCH_SEED     experiment seed            (default 1)
//   POLARIS_BENCH_THREADS  worker threads for the shard-parallel trace
//                          engine: 0 = all hardware threads, 1 = serial
//                          (default 0). Results are independent of this
//                          knob; only wall-clock changes.
#pragma once

#include <cstdlib>
#include <string>

#include "circuits/suite.hpp"
#include "core/polaris.hpp"
#include "techlib/techlib.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace polaris::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback
                          : static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
}

inline double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::strtod(value, nullptr);
}

struct BenchSetup {
  std::size_t traces = 8192;
  double scale = 1.0;
  std::uint64_t seed = 1;
  std::size_t threads = 0;
  techlib::TechLibrary lib = techlib::TechLibrary::default_library();

  static BenchSetup from_env() {
    BenchSetup setup;
    setup.traces = env_size("POLARIS_BENCH_TRACES", 8192);
    setup.scale = env_double("POLARIS_BENCH_SCALE", 1.0);
    setup.seed = env_size("POLARIS_BENCH_SEED", 1);
    setup.threads = env_size("POLARIS_BENCH_THREADS", 0);
    return setup;
  }

  /// The paper's POLARIS parameters, adapted to this trace budget. The
  /// cognition mask size is sized to the training designs (Sec. V-A uses
  /// Msize = 200 on the larger ISCAS circuits; our training circuits are
  /// 250-950 gates, so 60 keeps several iterations per design).
  [[nodiscard]] core::PolarisConfig polaris_config() const {
    core::PolarisConfig config;
    config.mask_size = 60;
    config.locality = 7;
    config.iterations = 100;
    config.theta_r = 0.70;
    config.model = core::ModelKind::kAdaBoost;
    config.learning_rate = 0.01;
    config.model_rounds = 300;
    config.tvla.traces = traces;
    config.tvla.noise_std_fj = 1.0;
    config.tvla.seed = seed;
    config.seed = seed;
    config.threads = threads;
    return config;
  }
};

/// Percentage reduction helper (guards the zero-baseline case).
inline double reduction_percent(double before, double after) {
  return before <= 0.0 ? 0.0 : 100.0 * (before - after) / before;
}

}  // namespace polaris::bench
