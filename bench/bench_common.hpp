// Shared setup for the table/figure reproduction benches.
//
// Environment knobs (all optional):
//   POLARIS_BENCH_TRACES   TVLA traces per campaign   (default 8192)
//   POLARIS_BENCH_SCALE    design-size scale in [0,1] (default 1.0)
//   POLARIS_BENCH_SEED     experiment seed            (default 1)
//   POLARIS_BENCH_THREADS  worker threads for the shard-parallel trace
//                          engine: 0 = all hardware threads, 1 = serial
//                          (default 0). Results are independent of this
//                          knob; only wall-clock changes.
//   POLARIS_BENCH_WORDS    lane-block width for the compiled kernel
//                          (1, 2, 4, or 8 64-trace words per pass;
//                          default 0 = auto, i.e. sim::default_lane_words).
//                          Like threads, a pure execution knob: reports
//                          are bit-identical at every width.
//                          (POLARIS_SIMD=off additionally forces the
//                          portable kernels; see src/sim/simd.hpp.)
//   POLARIS_BENCH_BUNDLE   path to a .plb model bundle. When set and the
//                          file exists, benches that only need a trained
//                          model load it instead of re-running Algorithm 1,
//                          so perf runs measure the masking path, not
//                          training; when set but missing, the first run
//                          trains once and saves the bundle there. The
//                          caller must keep the config consistent across
//                          runs (the loaded bundle's config wins).
#pragma once

#include <concepts>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>

#include "circuits/suite.hpp"
#include "core/polaris.hpp"
#include "obs/obs.hpp"
#include "techlib/techlib.hpp"
#include "util/math.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace polaris::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback
                          : static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
}

inline double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::strtod(value, nullptr);
}

struct BenchSetup {
  std::size_t traces = 8192;
  double scale = 1.0;
  std::uint64_t seed = 1;
  std::size_t threads = 0;
  std::size_t lane_words = 0;  // 0 = auto (sim::default_lane_words)
  techlib::TechLibrary lib = techlib::TechLibrary::default_library();

  static BenchSetup from_env() {
    BenchSetup setup;
    setup.traces = env_size("POLARIS_BENCH_TRACES", 8192);
    setup.scale = env_double("POLARIS_BENCH_SCALE", 1.0);
    setup.seed = env_size("POLARIS_BENCH_SEED", 1);
    setup.threads = env_size("POLARIS_BENCH_THREADS", 0);
    setup.lane_words = env_size("POLARIS_BENCH_WORDS", 0);
    return setup;
  }

  /// The paper's POLARIS parameters, adapted to this trace budget. The
  /// cognition mask size is sized to the training designs (Sec. V-A uses
  /// Msize = 200 on the larger ISCAS circuits; our training circuits are
  /// 250-950 gates, so 60 keeps several iterations per design).
  [[nodiscard]] core::PolarisConfig polaris_config() const {
    core::PolarisConfig config;
    config.mask_size = 60;
    config.locality = 7;
    config.iterations = 100;
    config.theta_r = 0.70;
    config.model = core::ModelKind::kAdaBoost;
    config.learning_rate = 0.01;
    config.model_rounds = 300;
    config.tvla.traces = traces;
    config.tvla.noise_std_fj = 1.0;
    config.tvla.seed = seed;
    config.tvla.lane_words = lane_words;
    config.seed = seed;
    config.threads = threads;
    return config;
  }
};

/// Percentage reduction helper (guards the zero-baseline case).
inline double reduction_percent(double before, double after) {
  return util::reduction_percent(before, after);
}

/// One machine-readable perf record: a single JSON object printed as one
/// stdout line, greppable by future PRs ({"bench":...} first). Every bench
/// that reports numbers uses this instead of hand-rolled printf lines, so
/// the key quoting/ordering stays uniform across benches. Keys appear in
/// insertion order; string values must not contain quotes or backslashes
/// (bench/design names never do).
class JsonLine {
 public:
  explicit JsonLine(std::string_view bench) { field("bench", bench); }

  JsonLine& field(std::string_view key, std::string_view value) {
    open(key);
    body_ += '"';
    body_ += value;
    body_ += '"';
    return *this;
  }
  template <std::integral T>
  JsonLine& field(std::string_view key, T value) {
    open(key);
    body_ += std::to_string(value);
    return *this;
  }
  JsonLine& field(std::string_view key, double value, int decimals = 4) {
    open(key);
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
    body_ += buffer;
    return *this;
  }

  /// Prints `{...}\n` to stdout. The line can be emitted once.
  void print() {
    std::printf("%s}\n", body_.c_str());
    body_.clear();
  }

 private:
  void open(std::string_view key) {
    body_ += body_.empty() ? '{' : ',';
    body_ += '"';
    body_ += key;
    body_ += "\":";
  }

  std::string body_;
};

/// Appends named counters from the process-wide obs registry onto a bench
/// JSON line ('.' becomes '_' in the key, JsonLine keys being bare
/// identifiers by convention). Absent counters report 0, so a bench can
/// list metrics its configuration never touches.
inline JsonLine& append_obs_counters(JsonLine& line,
                                     std::initializer_list<const char*> names) {
  const obs::Snapshot snapshot = obs::Registry::global().snapshot();
  for (const char* name : names) {
    std::string key(name);
    for (char& c : key) {
      if (c == '.') c = '_';
    }
    line.field(key, snapshot.counter_value(name));
  }
  return line;
}

struct TrainedPolaris {
  core::Polaris polaris;
  bool from_bundle = false;  // loaded via POLARIS_BENCH_BUNDLE?
  double seconds = 0.0;      // wall-clock of the load or the training
};

/// A trained Polaris honoring POLARIS_BENCH_BUNDLE (see the header comment):
/// load when the bundle exists, otherwise train - and, when the variable
/// names a missing file, save the fresh model there to warm the cache.
inline TrainedPolaris trained_polaris(
    const core::PolarisConfig& config,
    std::span<const circuits::Design> training,
    const techlib::TechLibrary& lib) {
  const char* bundle = std::getenv("POLARIS_BENCH_BUNDLE");
  util::Timer timer;
  if (bundle != nullptr && *bundle != '\0' &&
      std::filesystem::exists(bundle)) {
    TrainedPolaris result{core::Polaris::load_bundle(bundle), true, 0.0};
    result.seconds = timer.seconds();
    std::printf("loaded trained bundle %s in %.2fs (POLARIS_BENCH_BUNDLE; "
                "Algorithm 1 skipped)\n\n",
                bundle, result.seconds);
    return result;
  }
  TrainedPolaris result{core::Polaris(config), false, 0.0};
  (void)result.polaris.train(training, lib);
  result.seconds = timer.seconds();
  if (bundle != nullptr && *bundle != '\0') {
    result.polaris.save_bundle(bundle);
    std::printf("saved trained bundle to %s (POLARIS_BENCH_BUNDLE; later "
                "runs skip Algorithm 1)\n",
                bundle);
  }
  return result;
}

}  // namespace polaris::bench
