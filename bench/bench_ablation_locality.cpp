// Ablation: feature locality L (paper uses L = 7 BFS neighbors). Sweeps L
// and reports feature dimensionality, training time, model quality, and
// leakage reduction on one held-out design.
#include <cstdio>

#include "bench_common.hpp"
#include "graph/features.hpp"
#include "ml/metrics.hpp"
#include "util/strings.hpp"

using namespace polaris;

int main() {
  const auto setup = bench::BenchSetup::from_env();
  std::printf("=== Ablation: locality L sweep (traces=%zu) ===\n\n", setup.traces);

  const auto training = circuits::training_suite();
  auto target = circuits::get_design("square", setup.scale);

  util::Table table({"L", "features", "train(s)", "trainAUC", "reduction%"});
  for (const std::size_t locality : {1u, 3u, 5u, 7u, 9u}) {
    auto config = setup.polaris_config();
    config.locality = locality;
    core::Polaris polaris(config);
    util::Timer timer;
    (void)polaris.train(training, setup.lib);
    const double train_seconds = timer.seconds();

    const auto metrics = ml::evaluate(polaris.model(), polaris.training_data());
    const auto tvla_config = core::tvla_config_for(config, target);
    const auto before =
        tvla::run_fixed_vs_random(target.netlist, setup.lib, tvla_config);
    const auto outcome =
        polaris.mask_design(target, setup.lib, before.leaky_count(),
                            core::InferenceMode::kModel, /*verify=*/true);
    const double reduction = bench::reduction_percent(
        before.total_abs_t(), outcome.verification->total_abs_t());

    table.add_row({std::to_string(locality),
                   std::to_string(graph::FeatureSpec{locality}.dim()),
                   util::format_double(train_seconds, 2),
                   util::format_double(metrics.auc, 3),
                   util::format_double(reduction, 2)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nexpected shape: quality saturates around L = 7 while "
              "feature dimensionality (and cost) keeps growing.\n");
  return 0;
}
