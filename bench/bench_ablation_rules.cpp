// Ablation (paper Sec. IV-B): "The automated rules ... can be used
// independently to make masking decisions or alongside the model to achieve
// better predictions." Compares the three Algorithm-2 inference modes.
#include <cstdio>

#include "bench_common.hpp"
#include "util/strings.hpp"

using namespace polaris;

int main() {
  const auto setup = bench::BenchSetup::from_env();
  std::printf("=== Ablation: rules vs model inference (traces=%zu) ===\n\n",
              setup.traces);

  const auto trained = bench::trained_polaris(
      setup.polaris_config(), circuits::training_suite(), setup.lib);
  const auto& polaris = trained.polaris;
  std::printf("extracted %zu rules\n\n", polaris.rules().rules().size());

  util::Table table({"Design", "model%", "rules%", "model+rules%"});
  double sums[3] = {0, 0, 0};
  std::size_t rows = 0;
  for (const char* name : {"sin", "sqrt", "div", "voter"}) {
    auto design = circuits::get_design(name, setup.scale);
    const auto tvla_config = core::tvla_config_for(polaris.config(), design);
    const auto before =
        tvla::run_fixed_vs_random(design.netlist, setup.lib, tvla_config);
    const std::size_t leaky = before.leaky_count();

    std::vector<std::string> row{name};
    const core::InferenceMode modes[3] = {core::InferenceMode::kModel,
                                          core::InferenceMode::kRules,
                                          core::InferenceMode::kModelPlusRules};
    for (int m = 0; m < 3; ++m) {
      const auto outcome = polaris.mask_design(design, setup.lib, leaky,
                                               modes[m], /*verify=*/true);
      const double reduction = bench::reduction_percent(
          before.total_abs_t(), outcome.verification->total_abs_t());
      sums[m] += reduction;
      row.push_back(util::format_double(reduction, 2));
    }
    table.add_row(std::move(row));
    ++rows;
  }
  const double n = static_cast<double>(rows);
  table.add_row({"Average", util::format_double(sums[0] / n, 2),
                 util::format_double(sums[1] / n, 2),
                 util::format_double(sums[2] / n, 2)});
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nexpected shape: rules alone trail the model; combining "
              "recovers most of the model's reduction while staying "
              "human-auditable.\n");
  return 0;
}
