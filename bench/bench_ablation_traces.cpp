// Ablation: TVLA trace budget. More traces shrink the t-statistic's noise
// floor, revealing more leaky gates and stabilizing the leaky set (this is
// the scalability bottleneck that motivates bypassing TVLA, Sec. III-B).
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

using namespace polaris;

int main() {
  const auto setup = bench::BenchSetup::from_env();
  std::printf("=== Ablation: TVLA trace budget (design=multiplier) ===\n\n");

  auto design = circuits::get_design("multiplier", setup.scale);
  core::PolarisConfig base = bench::BenchSetup::from_env().polaris_config();
  auto tvla_config = core::tvla_config_for(base, design);

  // Reference leaky set at the largest budget.
  tvla_config.traces = 65536;
  const auto reference =
      tvla::run_fixed_vs_random(design.netlist, setup.lib, tvla_config);
  const auto ref_leaky = reference.leaky_groups();
  std::vector<bool> is_ref(design.netlist.gate_count(), false);
  for (const auto g : ref_leaky) is_ref[g] = true;
  std::printf("reference (65536 traces): %zu leaky gates\n\n", ref_leaky.size());

  util::Table table({"traces", "time(s)", "leaky", "recall%", "precision%",
                     "mean|t|"});
  for (const std::size_t traces :
       {512u, 1024u, 2048u, 4096u, 8192u, 16384u, 32768u}) {
    tvla_config.traces = traces;
    util::Timer timer;
    const auto report =
        tvla::run_fixed_vs_random(design.netlist, setup.lib, tvla_config);
    const double seconds = timer.seconds();
    const auto leaky = report.leaky_groups();
    std::size_t hits = 0;
    for (const auto g : leaky) hits += is_ref[g] ? 1 : 0;
    const double recall = ref_leaky.empty()
                              ? 0.0
                              : 100.0 * static_cast<double>(hits) /
                                    static_cast<double>(ref_leaky.size());
    const double precision = leaky.empty()
                                 ? 0.0
                                 : 100.0 * static_cast<double>(hits) /
                                       static_cast<double>(leaky.size());
    table.add_row({std::to_string(traces), util::format_double(seconds, 3),
                   std::to_string(leaky.size()),
                   util::format_double(recall, 1),
                   util::format_double(precision, 1),
                   util::format_double(report.leakage_per_gate(), 3)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nexpected shape: leaky-set recall climbs with traces while "
              "cost grows linearly - the VALIANT-style flows pay this per "
              "round, POLARIS pays it never (inference only).\n");
  return 0;
}
