// Reproduces Fig. 4: "TVLA values before and after masking in des3 design.
// Gates exceeding threshold (+-4.5) are considered as leaky." Prints the
// per-gate t-value series (binned ASCII profile) and exports the raw series
// as CSV.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "circuits/aes_sbox.hpp"
#include "engine/thread_pool.hpp"
#include "sim/compiled.hpp"
#include "sim/simd.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

using namespace polaris;

int main() {
  const auto setup = bench::BenchSetup::from_env();

  // --- compiled-kernel probe: raw campaign throughput, no model ----------
  // A combinational AES S-box layer isolates the sim->power->moments loop:
  // compile once (reported as compile_ms), then run the fixed-vs-random
  // campaign over the shared plan. This is the kernel number the perf
  // trajectory (BENCH_fig4_tvla.json) tracks across PRs.
  {
    const auto sbox = circuits::make_aes_sbox_layer(4);
    tvla::TvlaConfig config;
    config.traces = setup.traces;
    config.seed = setup.seed;
    config.noise_std_fj = 1.0;
    config.threads = setup.threads;
    config.lane_words = setup.lane_words;  // POLARIS_BENCH_WORDS, 0 = auto

    util::Timer compile_timer;
    const auto compiled = sim::compile(sbox);
    const double compile_ms = compile_timer.seconds() * 1e3;
    util::Timer kernel_timer;
    const auto report = tvla::run_fixed_vs_random(compiled, setup.lib, config);
    const double kernel_seconds = kernel_timer.seconds();
    // The width this combinational campaign actually ran at, and the
    // kernel path that width resolves to under the current SIMD policy.
    const std::size_t lane_words = config.lane_words != 0
                                       ? config.lane_words
                                       : sim::default_lane_words();
    std::printf("kernel probe: aes_sbox x4 (%zu gates) compiled in %.2fms "
                "(%zu buf/not runs fused), %zu traces in %.3fs "
                "(%zu-word blocks, %s), %zu leaky\n\n",
                sbox.gate_count(), compile_ms, compiled->fused_run_count(),
                setup.traces, kernel_seconds, lane_words,
                sim::simd_name(lane_words), report.leaky_count());
    bench::JsonLine("fig4_tvla_kernel")
        .field("design", "aes_sbox")
        .field("gates", sbox.gate_count())
        .field("traces", setup.traces)
        .field("threads", engine::ThreadPool::resolve_threads(config.threads))
        .field("lane_words", lane_words)
        .field("simd", sim::simd_name(lane_words))
        .field("fused_runs", compiled->fused_run_count())
        .field("compile_ms", compile_ms)
        .field("campaign_seconds", kernel_seconds)
        .field("traces_per_sec",
               kernel_seconds > 0.0
                   ? static_cast<double>(setup.traces) / kernel_seconds
                   : 0.0,
               1)
        .print();
    // --- adaptive probe: early-stop budget vs the fixed budget -----------
    // Same campaign with TvlaBudget enabled (floor = traces/32, default
    // margin). Records how many traces the checkpointed verdict saves while
    // the design-level TVLA verdict (leaky yes/no) matches the full run's -
    // the per-gate t series at the stop point is a partial view by design.
    {
      const auto full_verdict = report.leaky_count() > 0;
      tvla::TvlaConfig adaptive = config;
      adaptive.budget.enabled = true;
      adaptive.budget.min_traces = std::max<std::size_t>(64, setup.traces / 32);
      util::Timer adaptive_timer;
      const auto early =
          tvla::run_fixed_vs_random(compiled, setup.lib, adaptive);
      const double adaptive_seconds = adaptive_timer.seconds();
      const std::size_t used =
          early.early_stopped() ? early.traces_used() : setup.traces;
      const bool early_verdict = early.leaky_count() > 0;
      const double saved_percent =
          100.0 * (1.0 - static_cast<double>(used) /
                             static_cast<double>(setup.traces));
      std::printf("adaptive probe: budget floor %zu, stopped=%s at %zu/%zu "
                  "traces (%.1f%% saved, %.3fs vs %.3fs), verdict %s vs %s\n\n",
                  adaptive.budget.min_traces,
                  early.early_stopped() ? "yes" : "no", used, setup.traces,
                  saved_percent, adaptive_seconds, kernel_seconds,
                  early_verdict ? "leaky" : "clean",
                  full_verdict ? "leaky" : "clean");
      bench::JsonLine("fig4_tvla_adaptive")
          .field("design", "aes_sbox")
          .field("traces", setup.traces)
          .field("min_traces", adaptive.budget.min_traces)
          .field("early_stopped", early.early_stopped() ? 1 : 0)
          .field("traces_used", used)
          .field("saved_percent", saved_percent)
          .field("verdict_equal",
                 early_verdict == full_verdict ? 1 : 0)
          .field("leaky_at_stop", early.leaky_count())
          .field("leaky_at_full", report.leaky_count())
          .field("campaign_seconds", adaptive_seconds)
          .print();
    }
    // CI bench-smoke runs just the kernel probe: the full Fig. 4 flow below
    // trains a model first, which a perf-recording job does not need.
    const char* kernel_only = std::getenv("POLARIS_BENCH_KERNEL_ONLY");
    if (kernel_only != nullptr && *kernel_only != '\0' && *kernel_only != '0') {
      return 0;
    }
  }

  std::printf("=== Fig. 4: per-gate TVLA before/after POLARIS masking (des3) ===\n\n");

  const auto trained = bench::trained_polaris(
      setup.polaris_config(), circuits::training_suite(), setup.lib);
  const auto& polaris = trained.polaris;

  auto design = circuits::get_design("des3", setup.scale);
  const auto tvla_config = core::tvla_config_for(polaris.config(), design);
  util::Timer compile_timer;
  const auto compiled_des3 = sim::compile(design.netlist);
  const double des3_compile_ms = compile_timer.seconds() * 1e3;
  util::Timer campaign_timer;
  const auto before =
      tvla::run_fixed_vs_random(compiled_des3, setup.lib, tvla_config);
  const double campaign_seconds = campaign_timer.seconds();
  const std::size_t leaky = before.leaky_count();
  std::printf("des3: %zu gates, %zu leaky before masking (|t| > %.1f)\n",
              design.netlist.gate_count(), leaky, tvla_config.threshold);

  const auto outcome = polaris.mask_design(design, setup.lib, leaky,
                                           core::InferenceMode::kModel,
                                           /*verify=*/true);
  const auto& after = *outcome.verification;
  std::printf("after masking %zu gates: %zu leaky remain\n\n",
              outcome.selected.size(), after.leaky_count());

  // ASCII profile: max |t| per bin of gate ids, before vs after.
  const std::size_t bins = 64;
  const std::size_t per_bin =
      (design.netlist.gate_count() + bins - 1) / bins;
  std::printf("per-gate |t| profile (%zu gates per column, * = before, "
              "o = after, | = 4.5 threshold):\n", per_bin);
  for (const char* which : {"before", "after"}) {
    const auto& report = (which[0] == 'b') ? before : after;
    std::printf("%-7s ", which);
    for (std::size_t b = 0; b < bins; ++b) {
      double peak = 0.0;
      for (std::size_t g = b * per_bin;
           g < std::min<std::size_t>((b + 1) * per_bin, report.group_count());
           ++g) {
        peak = std::max(peak, std::fabs(report.t_value(g)));
      }
      char mark = '.';
      if (peak > tvla_config.threshold * 2) mark = '#';
      else if (peak > tvla_config.threshold) mark = '*';
      else if (peak > tvla_config.threshold / 2) mark = '+';
      std::printf("%c", mark);
    }
    std::printf("\n");
  }

  util::CsvWriter csv({"gate", "t_before", "t_after"});
  for (netlist::GateId g = 0; g < before.group_count(); ++g) {
    if (!before.measured(g)) continue;
    csv.add_row({std::to_string(g),
                 util::format_double(before.t_value(g), 4),
                 util::format_double(after.t_value(g), 4)});
  }
  csv.write_file("fig4_tvla_des3.csv");

  std::printf("\nleakage per gate: %.3f -> %.3f (%.1f%% total reduction)\n",
              before.leakage_per_gate(), after.leakage_per_gate(),
              bench::reduction_percent(before.total_abs_t(),
                                       after.total_abs_t()));
  std::printf("raw series written to fig4_tvla_des3.csv\n");

  // Machine-readable perf record (one JSON line, greppable by future PRs):
  // wall-clock of the un-masked des3 campaign above, plus run-total obs
  // counters - tvla_traces / sched_shards contextualize the rate when a
  // future PR changes sharding or batching.
  bench::JsonLine line("fig4_tvla");
  line.field("design", "des3")
      .field("traces", setup.traces)
      .field("threads", engine::ThreadPool::resolve_threads(tvla_config.threads))
      .field("compile_ms", des3_compile_ms)
      .field("campaign_seconds", campaign_seconds)
      .field("traces_per_sec",
             campaign_seconds > 0.0
                 ? static_cast<double>(setup.traces) / campaign_seconds
                 : 0.0,
             1);
  bench::append_obs_counters(
      line, {"tvla.campaigns", "tvla.traces", "sched.shards", "pool.tasks"})
      .print();
  return 0;
}
