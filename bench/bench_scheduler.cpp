// Global scheduler bench: N unequal-size TVLA campaigns (the shape of a
// suite audit or an Algorithm-1 labelling sweep) run two ways:
//  * per-campaign - campaigns back to back, each sharding across the full
//    pool (the PR-1 path): small campaigns can't overlap the big ones, so
//    the suite pays every campaign's fork/join tail in sequence;
//  * global scheduler - every campaign's shards in ONE priority queue
//    (heaviest first), drained by the shared pool.
// Reports per-campaign completion latency (mean/max = tail), makespan, and
// traces/sec for both paths as a JSON line, and verifies the two paths
// produce bit-identical reports while at it.
//
// Env knobs (bench_common.hpp): POLARIS_BENCH_TRACES scales the base
// budget, POLARIS_BENCH_THREADS the fan-out.
#include <cmath>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "engine/scheduler.hpp"
#include "server/remote.hpp"
#include "server/worker.hpp"
#include "sim/compiled.hpp"
#include "tvla/tvla.hpp"
#include "util/timer.hpp"

using namespace polaris;

namespace {

struct CampaignSpec {
  const char* design;
  double scale;
  double traces_factor;  // of the base budget: deliberately unequal
};

// Unequal on both axes (gate count and trace budget): the worst case for
// back-to-back campaigns, the motivating case for the global queue.
constexpr CampaignSpec kSpecs[] = {
    {"des3", 1.0, 1.0},     {"square", 1.0, 0.5},  {"sin", 0.6, 0.25},
    {"voter", 0.8, 0.5},    {"multiplier", 0.5, 0.25}, {"md5", 0.35, 0.125},
    {"arbiter", 0.5, 0.25}, {"log2", 0.25, 0.125},
};

}  // namespace

int main() {
  const auto setup = bench::BenchSetup::from_env();
  std::printf("=== Global shard scheduler: %zu unequal campaigns ===\n\n",
              std::size(kSpecs));

  std::vector<circuits::Design> designs;
  std::vector<tvla::TvlaConfig> configs;
  std::size_t total_traces = 0;
  for (const auto& spec : kSpecs) {
    designs.push_back(circuits::get_design(spec.design, spec.scale));
    tvla::TvlaConfig config;
    config.traces = static_cast<std::size_t>(
        static_cast<double>(setup.traces) * spec.traces_factor);
    if (config.traces < 64) config.traces = 64;
    config.noise_std_fj = 1.0;
    config.seed = setup.seed;
    config.threads = setup.threads;
    configs.push_back(config);
    total_traces += config.traces;
  }
  const std::size_t n = designs.size();

  // One-off compile of the whole suite: both timed paths below share these
  // plans, so compile_ms is pure kernel setup and the campaign timings are
  // pure trace time.
  std::vector<sim::CompiledDesignPtr> compiled;
  compiled.reserve(n);
  util::Timer compile_timer;
  for (const auto& design : designs) {
    compiled.push_back(sim::compile(design.netlist));
  }
  const double compile_ms = compile_timer.seconds() * 1e3;

  // --- per-campaign path: back to back, each sharded across the pool ----
  std::vector<tvla::LeakageReport> sequential_reports;
  std::vector<double> sequential_done(n, 0.0);
  util::Timer sequential_timer;
  for (std::size_t i = 0; i < n; ++i) {
    sequential_reports.push_back(
        tvla::run_fixed_vs_random(compiled[i], setup.lib, configs[i]));
    sequential_done[i] = sequential_timer.seconds();
  }
  const double sequential_seconds = sequential_timer.seconds();

  // --- global scheduler: one queue, one drain ---------------------------
  // Submission builds each campaign's protocol state (power model, sampling
  // plan, shard registration) - setup work, not queue throughput. It is
  // timed separately (submit_ms) so scheduler_seconds measures the drain
  // alone and stays comparable across PRs that change setup cost.
  engine::Scheduler scheduler(setup.threads);
  std::vector<std::future<tvla::LeakageReport>> pending;
  pending.reserve(n);
  util::Timer submit_timer;
  for (std::size_t i = 0; i < n; ++i) {
    pending.push_back(tvla::submit_fixed_vs_random(scheduler, compiled[i],
                                                   setup.lib, configs[i]));
  }
  const double submit_ms = submit_timer.seconds() * 1e3;

  // Waiter threads stamp each campaign's completion latency relative to
  // drain start (they block on the futures while the pool drains the
  // queue; nothing completes before drain()).
  std::vector<double> scheduler_done(n, 0.0);
  std::vector<std::thread> waiters;
  waiters.reserve(n);
  util::Timer scheduler_timer;
  for (std::size_t i = 0; i < n; ++i) {
    waiters.emplace_back([&, i] {
      pending[i].wait();
      scheduler_done[i] = scheduler_timer.seconds();
    });
  }
  scheduler.drain();
  for (auto& waiter : waiters) waiter.join();
  const double scheduler_seconds = scheduler_timer.seconds();

  // --- identical results, better tail ----------------------------------
  std::size_t mismatched = 0;
  std::printf("%-12s %8s %7s  %13s %13s\n", "design", "gates", "traces",
              "seq done (s)", "sched done (s)");
  for (std::size_t i = 0; i < n; ++i) {
    const auto report = pending[i].get();
    const auto& reference = sequential_reports[i].t_values();
    for (std::size_t g = 0; g < reference.size(); ++g) {
      if (reference[g] != report.t_values()[g]) {
        ++mismatched;
        break;
      }
    }
    std::printf("%-12s %8zu %7zu  %13.3f %13.3f\n", designs[i].name.c_str(),
                designs[i].netlist.gate_count(), configs[i].traces,
                sequential_done[i], scheduler_done[i]);
  }
  std::printf("\nbit-identical reports: %s\n",
              mismatched == 0 ? "yes (all campaigns)" : "NO - DETERMINISM BUG");

  auto mean = [](const std::vector<double>& xs) {
    double sum = 0.0;
    for (const double x : xs) sum += x;
    return xs.empty() ? 0.0 : sum / static_cast<double>(xs.size());
  };
  auto max_of = [](const std::vector<double>& xs) {
    double peak = 0.0;
    for (const double x : xs) peak = std::max(peak, x);
    return peak;
  };

  bench::JsonLine line("scheduler");
  line.field("designs", n)
      .field("threads", scheduler.threads())
      .field("total_traces", total_traces)
      .field("compile_ms", compile_ms)
      .field("submit_ms", submit_ms)
      .field("sequential_seconds", sequential_seconds)
      .field("sequential_mean_latency", mean(sequential_done))
      .field("scheduler_seconds", scheduler_seconds)
      .field("scheduler_mean_latency", mean(scheduler_done))
      .field("scheduler_tail_latency", max_of(scheduler_done))
      .field("speedup",
             scheduler_seconds > 0.0 ? sequential_seconds / scheduler_seconds
                                     : 0.0)
      .field("traces_per_sec",
             scheduler_seconds > 0.0
                 ? static_cast<double>(total_traces) / scheduler_seconds
                 : 0.0,
             1);
  bench::append_obs_counters(line, {"sched.campaigns", "sched.shards"})
      .print();

  // --- distributed: coordinator + loopback TCP shard workers ------------
  // The same suite audited through the WorkerPool (the `audit --workers`
  // path) under ONE uniform config, with a single local lane so added
  // workers are the only scaling axis. Workers are real TCP servers on
  // loopback ephemeral ports - the full wire path (design install, shard
  // requests, moments replies, ascending merge replay), just without the
  // network between hosts. Every row is verified bit-identical to the
  // zero-worker run before it is reported.
  std::printf("\n=== Distributed suite audit: local lane + N workers ===\n\n");
  core::PolarisConfig dist_config;
  dist_config.tvla.traces = setup.traces;
  dist_config.tvla.noise_std_fj = 1.0;
  dist_config.tvla.seed = setup.seed;
  dist_config.seed = setup.seed;
  dist_config.threads = 1;

  std::vector<tvla::LeakageReport> local_reports;
  double local_seconds = 0.0;
  {
    server::WorkerPoolOptions options;
    options.local_threads = 1;
    server::WorkerPool pool(options);
    util::Timer timer;
    local_reports = pool.audit(designs, setup.lib, dist_config);
    local_seconds = timer.seconds();
  }
  const std::size_t dist_traces = setup.traces * n;
  std::printf("%-10s %10s %10s %9s %11s %8s\n", "workers", "seconds",
              "traces/s", "speedup", "moments_in", "resends");
  std::printf("%-10s %10.3f %10.0f %9s %11s %8s\n", "0 (base)", local_seconds,
              static_cast<double>(dist_traces) / local_seconds, "1.00x", "-",
              "-");

  std::size_t dist_mismatched = 0;
  for (const std::size_t worker_count : {2u, 4u}) {
    std::vector<std::unique_ptr<server::Worker>> fleet;
    server::WorkerPoolOptions options;
    options.local_threads = 1;
    for (std::size_t w = 0; w < worker_count; ++w) {
      server::WorkerOptions worker_options;
      worker_options.listen = "tcp:127.0.0.1:0";
      worker_options.threads = 1;
      fleet.push_back(std::make_unique<server::Worker>(worker_options));
      fleet.back()->start();
      if (!options.workers.empty()) options.workers += ",";
      options.workers += server::net::to_string(fleet.back()->endpoint());
    }
    server::WorkerPool pool(options);
    util::Timer timer;
    const auto reports = pool.audit(designs, setup.lib, dist_config);
    const double seconds = timer.seconds();
    for (auto& worker : fleet) {
      worker->request_stop();
      worker->wait();
    }

    for (std::size_t i = 0; i < n; ++i) {
      if (reports[i].t_values() != local_reports[i].t_values()) {
        ++dist_mismatched;
        break;
      }
    }
    const auto totals = pool.totals();
    const double speedup = seconds > 0.0 ? local_seconds / seconds : 0.0;
    std::printf("%-10zu %10.3f %10.0f %8.2fx %11llu %8llu\n", worker_count,
                seconds, static_cast<double>(dist_traces) / seconds, speedup,
                static_cast<unsigned long long>(totals.moments_in),
                static_cast<unsigned long long>(totals.resends));

    bench::JsonLine dist_line("scheduler_distributed");
    dist_line.field("designs", n)
        .field("workers", worker_count)
        .field("total_traces", dist_traces)
        .field("local_seconds", local_seconds)
        .field("distributed_seconds", seconds)
        .field("speedup", speedup)
        .field("moments_in", totals.moments_in)
        .field("resends", totals.resends)
        .field("bytes", totals.bytes);
    dist_line.print();
  }
  std::printf("\nbit-identical distributed reports: %s\n",
              dist_mismatched == 0 ? "yes (all campaigns)"
                                   : "NO - DETERMINISM BUG");

  return mismatched == 0 && dist_mismatched == 0 ? 0 : 1;
}
