// Ablation: the labelling threshold theta_r (paper Sec. V-A: "selecting
// higher values lead to significant data imbalance, which could cause the
// model to underfit"). Sweeps theta_r and reports dataset balance, model
// quality, and end-to-end leakage reduction on one held-out design.
#include <cstdio>

#include "bench_common.hpp"
#include "ml/metrics.hpp"
#include "util/strings.hpp"

using namespace polaris;

int main() {
  const auto setup = bench::BenchSetup::from_env();
  std::printf("=== Ablation: theta_r sweep (traces=%zu) ===\n\n", setup.traces);

  const auto training = circuits::training_suite();
  auto target = circuits::get_design("sqrt", setup.scale);

  util::Table table({"theta_r", "samples", "pos%", "trainAUC", "reduction%"});
  for (const double theta : {0.3, 0.5, 0.7, 0.85, 0.95}) {
    auto config = setup.polaris_config();
    config.theta_r = theta;
    core::Polaris polaris(config);
    (void)polaris.train(training, setup.lib);

    const auto& data = polaris.training_data();
    const double pos_pct = 100.0 * static_cast<double>(data.positives()) /
                           static_cast<double>(data.size());
    const auto metrics = ml::evaluate(polaris.model(), data);

    const auto tvla_config = core::tvla_config_for(config, target);
    const auto before =
        tvla::run_fixed_vs_random(target.netlist, setup.lib, tvla_config);
    const auto outcome =
        polaris.mask_design(target, setup.lib, before.leaky_count(),
                            core::InferenceMode::kModel, /*verify=*/true);
    const double reduction = bench::reduction_percent(
        before.total_abs_t(), outcome.verification->total_abs_t());

    table.add_row({util::format_double(theta, 2), std::to_string(data.size()),
                   util::format_double(pos_pct, 1),
                   util::format_double(metrics.auc, 3),
                   util::format_double(reduction, 2)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\npaper shape: positives thin out as theta_r grows; "
              "theta_r = 0.70 balances label quality vs class balance.\n");
  return 0;
}
