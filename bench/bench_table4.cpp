// Reproduces Table IV: "Comparison of area, power, and delay overheads
// between VALIANT and POLARIS." POLARIS uses the 50% mask size (the paper's
// footnote: comparable leakage reduction while masking half the gates);
// overheads are reported as x-times-original, plus POLARIS's percentage
// overhead reduction relative to VALIANT.
#include <cstdio>

#include "analysis/ppa.hpp"
#include "bench_common.hpp"
#include "util/strings.hpp"
#include "valiant/valiant.hpp"

using namespace polaris;

int main() {
  const auto setup = bench::BenchSetup::from_env();
  std::printf("=== Table IV: area/power/delay overheads (traces=%zu, scale=%.2f) ===\n\n",
              setup.traces, setup.scale);

  const auto trained = bench::trained_polaris(
      setup.polaris_config(), circuits::training_suite(), setup.lib);
  const auto& polaris = trained.polaris;

  util::Table table({"Designs", "Area(um2)", "Power(mW)", "Delay(ns)",
                     "V:Area", "V:Pow", "V:Del", "P:Area", "P:Pow", "P:Del",
                     "RedA%", "RedP%", "RedD%"});

  double sum_va = 0, sum_vp = 0, sum_vd = 0;
  double sum_pa = 0, sum_pp = 0, sum_pd = 0;
  double sum_ra = 0, sum_rp = 0, sum_rd = 0;
  std::size_t rows = 0;
  std::size_t reduction_rows = 0;

  for (auto& design : circuits::evaluation_suite(setup.scale)) {
    const auto tvla_config = core::tvla_config_for(polaris.config(), design);
    const auto before =
        tvla::run_fixed_vs_random(design.netlist, setup.lib, tvla_config);
    const std::size_t leaky = before.leaky_count();

    valiant::ValiantConfig vconfig;
    vconfig.tvla = tvla_config;
    vconfig.max_rounds = 6;
    const auto valiant_result =
        valiant::run_valiant(design.netlist, setup.lib, vconfig);

    const auto polaris_outcome =
        polaris.mask_design(design, setup.lib, leaky / 2);

    const analysis::AnalysisConfig acfg{.activity_cycles = 256, .seed = setup.seed};
    const auto original = analysis::analyze(design.netlist, setup.lib, acfg);
    const auto val_ppa = analysis::analyze(valiant_result.masked, setup.lib, acfg);
    const auto pol_ppa = analysis::analyze(polaris_outcome.masked, setup.lib, acfg);

    const double va = val_ppa.area_um2 / original.area_um2;
    const double vp = val_ppa.power_mw / original.power_mw;
    const double vd = val_ppa.delay_ns / original.delay_ns;
    const double pa = pol_ppa.area_um2 / original.area_um2;
    const double pp = pol_ppa.power_mw / original.power_mw;
    const double pd = pol_ppa.delay_ns / original.delay_ns;
    // Overhead reduction relative to VALIANT's *overhead* (x - 1). Rows
    // where VALIANT added no meaningful overhead (< 10%) are excluded from
    // the percentage columns - the ratio is unstable there.
    const bool meaningful = (va - 1.0) >= 0.1 && (vd - 1.0) >= 0.1;
    const double ra = bench::reduction_percent(va - 1.0, pa - 1.0);
    const double rp = bench::reduction_percent(vp - 1.0, pp - 1.0);
    const double rd = bench::reduction_percent(vd - 1.0, pd - 1.0);

    const auto fmt1 = [](double v) { return util::format_double(v, 1); };
    const auto fmt2 = [](double v) { return util::format_double(v, 2); };
    table.add_row({design.name, fmt1(original.area_um2),
                   fmt2(original.power_mw), fmt2(original.delay_ns), fmt2(va),
                   fmt2(vp), fmt2(vd), fmt2(pa), fmt2(pp), fmt2(pd),
                   meaningful ? fmt1(ra) : "n/a",
                   meaningful ? fmt1(rp) : "n/a",
                   meaningful ? fmt1(rd) : "n/a"});

    sum_va += va; sum_vp += vp; sum_vd += vd;
    sum_pa += pa; sum_pp += pp; sum_pd += pd;
    if (meaningful) {
      sum_ra += ra; sum_rp += rp; sum_rd += rd;
      ++reduction_rows;
    }
    ++rows;
  }

  const double n = static_cast<double>(rows);
  const double nr = static_cast<double>(std::max<std::size_t>(1, reduction_rows));
  const auto fmt = [](double v) { return util::format_double(v, 2); };
  table.add_row({"Average", "", "", "", fmt(sum_va / n), fmt(sum_vp / n),
                 fmt(sum_vd / n), fmt(sum_pa / n), fmt(sum_pp / n),
                 fmt(sum_pd / n), fmt(sum_ra / nr), fmt(sum_rp / nr),
                 fmt(sum_rd / nr)});
  std::fputs(table.render().c_str(), stdout);
  std::printf("\npaper shape: VALIANT ~3.9x/3.4x/2.8x original; POLARIS@50%% "
              "~2.5x/2.0x/1.8x; overhead reductions ~35/41/33%%.\n");
  return 0;
}
