// Ablation (paper Sec. II-A): one-pass raw/central moment computation
// (Eq. 3-4, Schneider-Moradi) vs the naive two-pass formula (Eq. 2), and
// the binary popcount fast path used for per-gate TVLA. Google-benchmark
// microbenchmarks.
#include <benchmark/benchmark.h>

#include <vector>

#include "tvla/moments.hpp"
#include "tvla/welch.hpp"
#include "util/rng.hpp"

namespace {

std::vector<double> make_samples(std::size_t n) {
  polaris::util::Xoshiro256 rng(7);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.gaussian();
  return xs;
}

void BM_TwoPassWelch(benchmark::State& state) {
  const auto q0 = make_samples(static_cast<std::size_t>(state.range(0)));
  const auto q1 = make_samples(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(polaris::tvla::welch_t_two_pass(q0, q1));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_TwoPassWelch)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_OnePassWelch(benchmark::State& state) {
  const auto q0 = make_samples(static_cast<std::size_t>(state.range(0)));
  const auto q1 = make_samples(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    // One pass: a single streaming sweep builds both accumulators, as
    // during trace acquisition (Eq. 3-4).
    polaris::tvla::MomentAccumulator a0, a1;
    for (const double x : q0) a0.add(x);
    for (const double x : q1) a1.add(x);
    benchmark::DoNotOptimize(polaris::tvla::welch_t(a0, a1));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_OnePassWelch)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_BinaryCountWelch(benchmark::State& state) {
  // The per-gate fast path: 64-lane toggle words reduced by popcount.
  const auto n_words = static_cast<std::size_t>(state.range(0)) / 64;
  polaris::util::Xoshiro256 rng(9);
  std::vector<std::uint64_t> toggles(n_words), masks(n_words);
  for (auto& w : toggles) w = rng();
  for (auto& w : masks) w = rng();
  for (auto _ : state) {
    std::uint64_t n0 = 0, ones0 = 0, n1 = 0, ones1 = 0;
    for (std::size_t i = 0; i < n_words; ++i) {
      n0 += static_cast<std::uint64_t>(__builtin_popcountll(masks[i]));
      n1 += static_cast<std::uint64_t>(__builtin_popcountll(~masks[i]));
      ones0 += static_cast<std::uint64_t>(
          __builtin_popcountll(toggles[i] & masks[i]));
      ones1 += static_cast<std::uint64_t>(
          __builtin_popcountll(toggles[i] & ~masks[i]));
    }
    benchmark::DoNotOptimize(polaris::tvla::welch_t_binary(n0, ones0, n1, ones1));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BinaryCountWelch)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_MomentMerge(benchmark::State& state) {
  // Batch-parallel accumulation: merge() lets per-batch accumulators
  // combine without replaying samples.
  const auto xs = make_samples(4096);
  for (auto _ : state) {
    polaris::tvla::MomentAccumulator parts[8];
    for (std::size_t i = 0; i < xs.size(); ++i) parts[i % 8].add(xs[i]);
    for (int i = 1; i < 8; ++i) parts[0].merge(parts[i]);
    benchmark::DoNotOptimize(parts[0].variance_sample());
  }
}
BENCHMARK(BM_MomentMerge);

}  // namespace

BENCHMARK_MAIN();
