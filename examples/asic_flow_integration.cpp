// ASIC-flow integration (paper contribution 3): consume a synthesized
// structural-Verilog netlist, run the POLARIS DFS pass, and hand back a
// masked netlist plus sign-off style reports - the drop-in point between
// synthesis and P&R.
//
//   $ ./asic_flow_integration [netlist.v]
// Without an argument the example synthesizes its own stand-in netlist
// (a 12-bit multiplier) so it runs self-contained.
#include <cstdio>
#include <string>

#include "analysis/ppa.hpp"
#include "circuits/arith.hpp"
#include "circuits/suite.hpp"
#include "core/polaris.hpp"
#include "netlist/stats.hpp"
#include "netlist/verilog.hpp"

using namespace polaris;

int main(int argc, char** argv) {
  const auto lib = techlib::TechLibrary::default_library();

  // --- front end: read the mapped netlist ---------------------------------
  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    path = "asic_flow_input.v";
    netlist::write_verilog_file(circuits::make_multiplier(12), path);
    std::printf("no input given - wrote stand-in netlist %s\n", path.c_str());
  }
  netlist::Netlist design_netlist = netlist::read_verilog_file(path);
  std::printf("read %s:\n%s\n", path.c_str(),
              netlist::to_string(netlist::compute_stats(design_netlist)).c_str());

  circuits::Design design{design_netlist.name(), std::move(design_netlist), {}};
  design.roles.assign(design.netlist.primary_inputs().size(),
                      circuits::InputRole::kData);

  // --- the DFS pass ---------------------------------------------------------
  core::PolarisConfig config;
  config.mask_size = 40;
  config.iterations = 40;
  config.tvla.traces = 4096;
  config.model_rounds = 150;
  core::Polaris polaris(config);
  (void)polaris.train(circuits::training_suite(), lib);

  const auto tvla_config = core::tvla_config_for(config, design);
  const auto before = tvla::run_fixed_vs_random(design.netlist, lib, tvla_config);
  const auto outcome = polaris.mask_design(design, lib, before.leaky_count(),
                                           core::InferenceMode::kModel,
                                           /*verify=*/true);

  // --- back end: masked netlist + reports ----------------------------------
  const std::string out_path = design.name + "_masked.v";
  netlist::write_verilog_file(outcome.masked, out_path);

  const auto ppa_before = analysis::analyze(design.netlist, lib);
  const auto ppa_after = analysis::analyze(outcome.masked, lib);
  std::printf("masked netlist written to %s\n\n", out_path.c_str());
  std::printf("sign-off summary:\n");
  std::printf("  leakage/gate : %.3f -> %.3f  (leaky gates %zu -> %zu)\n",
              before.leakage_per_gate(),
              outcome.verification->leakage_per_gate(), before.leaky_count(),
              outcome.verification->leaky_count());
  std::printf("  area         : %.1f -> %.1f um2 (%.2fx)\n",
              ppa_before.area_um2, ppa_after.area_um2,
              ppa_after.area_um2 / ppa_before.area_um2);
  std::printf("  power        : %.3f -> %.3f mW (%.2fx)\n",
              ppa_before.power_mw, ppa_after.power_mw,
              ppa_after.power_mw / ppa_before.power_mw);
  std::printf("  delay        : %.3f -> %.3f ns (%.2fx)\n",
              ppa_before.delay_ns, ppa_after.delay_ns,
              ppa_after.delay_ns / ppa_before.delay_ns);
  return 0;
}
