// POLARIS in 60 seconds: generate training data without any labelled
// dataset (Algorithm 1), train the masking model, and harden an unseen
// design (Algorithm 2) - no TVLA in the masking loop.
//
//   $ ./quickstart
#include <cstdio>

#include "circuits/suite.hpp"
#include "core/polaris.hpp"
#include "techlib/techlib.hpp"

using namespace polaris;

int main() {
  const auto lib = techlib::TechLibrary::default_library();

  // 1. Configure the tool (paper defaults, scaled for a quick demo).
  core::PolarisConfig config;
  config.mask_size = 60;       // Msize per Algorithm-1 iteration
  config.locality = 7;         // L: BFS neighborhood size
  config.iterations = 100;     // itr
  config.theta_r = 0.70;       // "good masking" = >= 70% leakage reduction
  config.tvla.traces = 8192;
  config.model_rounds = 300;

  // 2. Unsupervised training-data generation + model fit + SHAP rules.
  core::Polaris polaris(config);
  const auto training = circuits::training_suite();
  std::printf("training on %zu small designs...\n", training.size());
  const auto summary = polaris.train(training, lib);
  std::printf("  %zu labelled samples (%zu 'good mask'), %.1fs total\n\n",
              summary.samples, summary.positives,
              summary.dataset_seconds + summary.training_seconds);

  // 3. Harden an unseen design: audit, mask, verify. (A reduced-round DES
  // core - the crypto scenario the paper's introduction motivates.)
  auto target = circuits::get_design("des3", 0.5);
  std::printf("target design '%s': %zu gates\n", target.name.c_str(),
              target.netlist.gate_count());

  const auto tvla_config = core::tvla_config_for(config, target);
  const auto before =
      tvla::run_fixed_vs_random(target.netlist, lib, tvla_config);
  std::printf("before: %zu leaky gates, leakage/gate %.3f\n",
              before.leaky_count(), before.leakage_per_gate());

  const auto outcome = polaris.mask_design(target, lib, before.leaky_count(),
                                           core::InferenceMode::kModel,
                                           /*verify=*/true);
  std::printf("masked %zu gates in %.2fs (model inference only - no TVLA)\n",
              outcome.selected.size(), outcome.seconds);
  std::printf("after:  %zu leaky gates, leakage/gate %.3f (%.1f%% total "
              "leakage reduction)\n",
              outcome.verification->leaky_count(),
              outcome.verification->leakage_per_gate(),
              100.0 * (before.total_abs_t() - outcome.verification->total_abs_t()) /
                  before.total_abs_t());

  // 4. The explainable part: the mined masking rules.
  std::printf("\n%zu human-readable rules extracted via SHAP "
              "(run bench_table5_rules for the full list)\n",
              polaris.rules().rules().size());
  return 0;
}
