// POLARIS in 60 seconds: generate training data without any labelled
// dataset (Algorithm 1), train the masking model, and harden an unseen
// design (Algorithm 2) - no TVLA in the masking loop.
//
//   $ ./quickstart
#include <cstdio>

#include "circuits/suite.hpp"
#include "core/polaris.hpp"
#include "techlib/techlib.hpp"
#include "util/math.hpp"

using namespace polaris;

int main() {
  const auto lib = techlib::TechLibrary::default_library();

  // 1. Configure the tool (paper defaults, scaled for a quick demo).
  core::PolarisConfig config;
  config.mask_size = 60;       // Msize per Algorithm-1 iteration
  config.locality = 7;         // L: BFS neighborhood size
  config.iterations = 100;     // itr
  config.theta_r = 0.70;       // "good masking" = >= 70% leakage reduction
  config.tvla.traces = 8192;
  config.model_rounds = 300;

  // 2. Unsupervised training-data generation + model fit + SHAP rules.
  core::Polaris polaris(config);
  const auto training = circuits::training_suite();
  std::printf("training on %zu small designs...\n", training.size());
  const auto summary = polaris.train(training, lib);
  std::printf("  %zu labelled samples (%zu 'good mask'), %.1fs total\n\n",
              summary.samples, summary.positives,
              summary.dataset_seconds + summary.training_seconds);

  // 3. Harden an unseen design: audit, mask, verify. (A reduced-round DES
  // core - the crypto scenario the paper's introduction motivates.)
  auto target = circuits::get_design("des3", 0.5);
  std::printf("target design '%s': %zu gates\n", target.name.c_str(),
              target.netlist.gate_count());

  const auto tvla_config = core::tvla_config_for(config, target);
  const auto before =
      tvla::run_fixed_vs_random(target.netlist, lib, tvla_config);
  std::printf("before: %zu leaky gates, leakage/gate %.3f\n",
              before.leaky_count(), before.leakage_per_gate());

  const auto outcome = polaris.mask_design(target, lib, before.leaky_count(),
                                           core::InferenceMode::kModel,
                                           /*verify=*/true);
  std::printf("masked %zu gates in %.2fs (model inference only - no TVLA)\n",
              outcome.selected.size(), outcome.seconds);
  // Guard the percentage against a clean baseline (nothing leaked before).
  const double reduction = util::reduction_percent(
      before.total_abs_t(), outcome.verification->total_abs_t());
  std::printf("after:  %zu leaky gates, leakage/gate %.3f (%.1f%% total "
              "leakage reduction)\n",
              outcome.verification->leaky_count(),
              outcome.verification->leakage_per_gate(), reduction);

  // 4. The explainable part: the mined masking rules.
  std::printf("\n%zu human-readable rules extracted via SHAP "
              "(run bench_table5_rules for the full list)\n",
              polaris.rules().rules().size());

  // 5. Train once, serve many: bundle the trained model and reload it - a
  // fresh process (or another host) masks designs with zero retraining and
  // bit-identical gate selections. The polaris_cli tool serves the same
  // bundles from the command line.
  polaris.save_bundle("quickstart.plb");
  const auto served = core::Polaris::load_bundle("quickstart.plb");
  const auto again = served.mask_design(target, lib, outcome.selected.size());
  std::printf("\nbundle round-trip: saved quickstart.plb, reloaded, and "
              "re-masked -> %s gate selections\n",
              again.selected == outcome.selected ? "identical" : "DIFFERENT");
  return 0;
}
