// Security/overhead design-space exploration: sweep the masking budget
// (Msize as a fraction of the flagged gates) and the composite scheme
// (Trichina vs DOM), mapping the leakage-vs-area Pareto frontier a designer
// actually navigates.
//
//   $ ./design_space_exploration
#include <cstdio>

#include "analysis/ppa.hpp"
#include "circuits/suite.hpp"
#include "core/polaris.hpp"
#include "util/table.hpp"
#include "util/strings.hpp"

using namespace polaris;

int main() {
  const auto lib = techlib::TechLibrary::default_library();

  core::PolarisConfig config;
  config.mask_size = 40;
  config.iterations = 40;
  config.tvla.traces = 4096;
  config.model_rounds = 150;

  auto target = circuits::get_design("sin", 0.6);
  std::printf("design space exploration on '%s' (%zu gates)\n\n",
              target.name.c_str(), target.netlist.gate_count());

  const auto ppa_original = analysis::analyze(target.netlist, lib);

  util::Table table({"scheme", "budget", "masked", "leaky", "leak/gate",
                     "red%", "area_x", "power_x", "delay_x"});
  for (const auto scheme : {masking::Scheme::kTrichina, masking::Scheme::kDom}) {
    config.scheme = scheme;
    core::Polaris polaris(config);
    (void)polaris.train(circuits::training_suite(), lib);
    const auto tvla_config = core::tvla_config_for(config, target);
    const auto before =
        tvla::run_fixed_vs_random(target.netlist, lib, tvla_config);

    for (const double budget : {0.25, 0.5, 0.75, 1.0}) {
      const auto msize = static_cast<std::size_t>(
          budget * static_cast<double>(before.leaky_count()) + 0.5);
      const auto outcome = polaris.mask_design(target, lib, msize,
                                               core::InferenceMode::kModel,
                                               /*verify=*/true);
      const auto ppa = analysis::analyze(outcome.masked, lib);
      table.add_row(
          {scheme == masking::Scheme::kTrichina ? "trichina" : "dom",
           util::format_double(budget, 2), std::to_string(outcome.selected.size()),
           std::to_string(outcome.verification->leaky_count()),
           util::format_double(outcome.verification->leakage_per_gate(), 3),
           util::format_double(
               100.0 * (before.total_abs_t() - outcome.verification->total_abs_t()) /
                   before.total_abs_t(),
               1),
           util::format_double(ppa.area_um2 / ppa_original.area_um2, 2),
           util::format_double(ppa.power_mw / ppa_original.power_mw, 2),
           util::format_double(ppa.delay_ns / ppa_original.delay_ns, 2)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nreading: pick the cheapest row that clears your leakage "
              "target; DOM trades structure for the same first-order "
              "guarantee.\n");
  return 0;
}
