// Standalone leakage auditor: the assessment half of the flow, usable
// before committing to any mitigation. Reads a structural-Verilog netlist
// (or builds a stand-in), runs fixed-vs-random TVLA at several trace
// budgets, and emits a per-gate report CSV plus a console summary of the
// worst offenders with their structural context.
//
//   $ ./leakage_audit [netlist.v]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "circuits/aes_sbox.hpp"
#include "graph/graph.hpp"
#include "netlist/stats.hpp"
#include "netlist/verilog.hpp"
#include "techlib/techlib.hpp"
#include "tvla/tvla.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

using namespace polaris;

int main(int argc, char** argv) {
  const auto lib = techlib::TechLibrary::default_library();

  netlist::Netlist design = argc > 1
                                ? netlist::read_verilog_file(argv[1])
                                : circuits::make_aes_sbox_layer(2);
  std::printf("auditing '%s':\n%s\n", design.name().c_str(),
              netlist::to_string(netlist::compute_stats(design)).c_str());

  // Escalating trace budgets: report how the flagged set grows (stopping
  // early is how real assessments miss marginal leaks).
  tvla::TvlaConfig config;
  util::Table sweep({"traces", "leaky", "worst|t|", "leak/gate"});
  tvla::LeakageReport last({}, {}, 4.5);
  for (const std::size_t traces : {1024u, 4096u, 16384u}) {
    config.traces = traces;
    last = tvla::run_fixed_vs_random(design, lib, config);
    double worst = 0.0;
    for (const double t : last.t_values()) worst = std::max(worst, std::fabs(t));
    sweep.add_row({std::to_string(traces), std::to_string(last.leaky_count()),
                   util::format_double(worst, 2),
                   util::format_double(last.leakage_per_gate(), 3)});
  }
  std::fputs(sweep.render().c_str(), stdout);

  // Worst offenders with structural context (what POLARIS's features see).
  const graph::GraphView graph(design);
  const auto leaky = last.leaky_groups();
  std::printf("\ntop offenders at %zu traces:\n", config.traces);
  util::Table top({"gate", "type", "|t|", "fanin", "fanout", "neighbors"});
  for (std::size_t i = 0; i < std::min<std::size_t>(8, leaky.size()); ++i) {
    const auto g = leaky[i];
    const auto& gate = design.gate(g);
    std::string hood;
    for (const auto nb : graph::bfs_neighborhood(graph, g, 4)) {
      hood += std::string(netlist::to_string(design.gate(nb).type)) + " ";
    }
    top.add_row({"g" + std::to_string(g),
                 std::string(netlist::to_string(gate.type)),
                 util::format_double(std::fabs(last.t_value(g)), 2),
                 std::to_string(gate.inputs.size()),
                 std::to_string(design.net(gate.output).fanouts.size()), hood});
  }
  std::fputs(top.render().c_str(), stdout);

  util::CsvWriter csv({"gate", "type", "t"});
  for (netlist::GateId g = 0; g < last.group_count(); ++g) {
    if (!last.measured(g)) continue;
    csv.add_row({std::to_string(g),
                 std::string(netlist::to_string(design.gate(g).type)),
                 util::format_double(last.t_value(g), 4)});
  }
  csv.write_file("leakage_audit.csv");
  std::printf("\nfull per-gate report written to leakage_audit.csv\n");
  return 0;
}
