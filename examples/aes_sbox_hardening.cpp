// Crypto-core hardening scenario: a 4-byte AES SubBytes slice
// (AddRoundKey + S-box) - the canonical first-order DPA target. Audits
// per-gate leakage, masks with POLARIS, verifies with TVLA, and explains
// one masking decision with a SHAP waterfall.
//
//   $ ./aes_sbox_hardening
#include <cmath>
#include <cstdio>

#include "circuits/aes_sbox.hpp"
#include "circuits/suite.hpp"
#include "core/polaris.hpp"
#include "graph/features.hpp"
#include "xai/waterfall.hpp"

using namespace polaris;

int main() {
  const auto lib = techlib::TechLibrary::default_library();

  core::PolarisConfig config;
  config.mask_size = 50;
  config.iterations = 60;
  config.tvla.traces = 8192;
  config.model_rounds = 200;
  core::Polaris polaris(config);
  (void)polaris.train(circuits::training_suite(), lib);

  // The device under test: 4 S-boxes, plaintext sensitive, key fixed.
  circuits::Design dut{"aes_subbytes4", circuits::make_aes_sbox_layer(4), {}};
  dut.roles.assign(dut.netlist.primary_inputs().size(),
                   circuits::InputRole::kData);
  for (std::size_t i = 32; i < 64; ++i) dut.roles[i] = circuits::InputRole::kKey;

  const auto tvla_config = core::tvla_config_for(config, dut);
  const auto before = tvla::run_fixed_vs_random(dut.netlist, lib, tvla_config);
  std::printf("AES SubBytes slice: %zu gates, %zu leak above |t|=4.5 "
              "(worst |t| seen: %.1f)\n",
              dut.netlist.gate_count(), before.leaky_count(),
              [&] {
                double worst = 0;
                for (const double t : before.t_values()) {
                  worst = std::max(worst, std::fabs(t));
                }
                return worst;
              }());

  // Mask exactly the flagged count; verify.
  const auto outcome = polaris.mask_design(dut, lib, before.leaky_count(),
                                           core::InferenceMode::kModel,
                                           /*verify=*/true);
  std::printf("POLARIS masked %zu gates -> %zu still above threshold, "
              "leakage/gate %.3f -> %.3f\n\n",
              outcome.selected.size(), outcome.verification->leaky_count(),
              before.leakage_per_gate(),
              outcome.verification->leakage_per_gate());

  // Explain the top-ranked masking decision.
  graph::FeatureExtractor extractor(dut.netlist,
                                    graph::FeatureSpec{config.locality});
  const auto names = graph::FeatureSpec{config.locality}.feature_names();
  const auto gate = outcome.selected.front();
  std::printf("why was gate g%u (%s) masked first?\n", gate,
              std::string(netlist::to_string(dut.netlist.gate(gate).type)).c_str());
  const auto features = extractor.extract(gate);
  const auto wf = xai::make_waterfall(polaris.model(), features, names, 7);
  std::fputs(wf.render().c_str(), stdout);
  return 0;
}
