// Cell alphabet of the gate-level IR.
//
// The alphabet matches what a Design Compiler-style mapped netlist contains
// (simple combinational cells + DFF) plus two framework-specific sources:
//   kRand  - a fresh uniformly random bit every evaluation cycle, modelling
//            the on-chip mask-share generator required by Trichina/DOM
//            masking (Sec. II-B of the paper);
//   kConst0/kConst1 - tie cells.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace polaris::netlist {

enum class CellType : std::uint8_t {
  kInput,   // primary-input driver; no fan-in
  kConst0,  // logic 0 tie
  kConst1,  // logic 1 tie
  kRand,    // fresh random bit per cycle (mask share source)
  kBuf,
  kNot,
  kAnd,     // n-ary, fan-in >= 2
  kOr,
  kNand,
  kNor,
  kXor,
  kXnor,
  kMux,     // inputs {sel, a, b}: sel ? b : a
  kDff,     // input {d}; output q; implicit common clock
};

/// Number of distinct cell types (for one-hot feature encodings).
inline constexpr std::size_t kCellTypeCount = 14;

[[nodiscard]] std::string_view to_string(CellType type);

/// Parses both our canonical names ("nand") and common Verilog primitive
/// spellings. Throws std::invalid_argument for unknown names.
[[nodiscard]] CellType cell_type_from_string(std::string_view name);

/// True for cells that take no fan-in and act as value sources.
[[nodiscard]] constexpr bool is_source(CellType type) noexcept {
  return type == CellType::kInput || type == CellType::kConst0 ||
         type == CellType::kConst1 || type == CellType::kRand;
}

/// True for cells evaluated by the combinational wave (everything except
/// sources and state elements).
[[nodiscard]] constexpr bool is_combinational(CellType type) noexcept {
  return !is_source(type) && type != CellType::kDff;
}

/// True for the cell types the masking transforms can replace
/// (Sec. II-B: composite masked gates exist for these functions).
[[nodiscard]] constexpr bool is_maskable(CellType type) noexcept {
  switch (type) {
    case CellType::kAnd:
    case CellType::kOr:
    case CellType::kNand:
    case CellType::kNor:
    case CellType::kXor:
    case CellType::kXnor:
      return true;
    default:
      return false;
  }
}

/// Fan-in arity contract: {min, max} (max = 0 means unbounded).
struct Arity {
  std::size_t min = 0;
  std::size_t max = 0;
};
[[nodiscard]] Arity arity_of(CellType type) noexcept;

/// Scalar reference evaluation, used by tests and the slow reference
/// simulator. `inputs` are the operand values in gate order. Sources and
/// DFFs are not evaluable here.
[[nodiscard]] bool eval_cell(CellType type, std::span<const bool> inputs);

/// 64-lane word evaluation used by the bit-parallel simulator. Semantics
/// are eval_cell applied lane-wise.
[[nodiscard]] std::uint64_t eval_cell_word(CellType type,
                                           std::span<const std::uint64_t> inputs);

}  // namespace polaris::netlist
