// Exact binary archive bindings for a Netlist - how a coordinator ships a
// design to a remote shard worker (DESIGN.md "Distributed execution").
//
// The structural-Verilog writer (netlist/verilog.hpp) is the human-facing
// serialization; this codec is the machine-facing one: it preserves net
// names, gate order, group ids, and the primary input/output lists
// verbatim, so the reconstructed netlist compiles to the same simulation
// plan and hashes to the same design_fingerprint as the original. Gate ids
// round-trip because every construction path appends gates in ascending
// GateId order (a netlist invariant).
#pragma once

#include "netlist/netlist.hpp"
#include "serialize/archive.hpp"

namespace polaris::netlist {

/// Writes one "NETL" chunk holding the full netlist.
void write_netlist(serialize::Writer& out, const Netlist& netlist);

/// Reads one "NETL" chunk and rebuilds the netlist through the normal
/// construction API (so all structural invariants are re-checked, ending
/// with validate()). Throws std::runtime_error on malformed input.
[[nodiscard]] Netlist read_netlist(serialize::Reader& in);

}  // namespace polaris::netlist
