#include "netlist/netlist_io.hpp"

#include <stdexcept>
#include <string>

namespace polaris::netlist {

void write_netlist(serialize::Writer& out, const Netlist& netlist) {
  out.begin_chunk("NETL");
  out.str(netlist.name());
  out.u64(netlist.net_count());
  for (const Net& net : netlist.nets()) out.str(net.name);
  out.u64(netlist.gate_count());
  for (const Gate& gate : netlist.gates()) {
    out.u8(static_cast<std::uint8_t>(gate.type));
    out.u64(gate.inputs.size());
    for (const NetId input : gate.inputs) out.u32(input);
    out.u32(gate.output);
    out.u32(gate.group);
  }
  out.u64(netlist.primary_inputs().size());
  for (const NetId net : netlist.primary_inputs()) out.u32(net);
  out.u64(netlist.primary_outputs().size());
  for (const NetId net : netlist.primary_outputs()) out.u32(net);
  out.end_chunk();
}

Netlist read_netlist(serialize::Reader& in) {
  in.enter_chunk("NETL");
  Netlist netlist(in.str());
  // Check-before-allocate: a net is at least a length-prefixed name (8
  // bytes), a gate at least 17 bytes, a port id exactly 4.
  const std::uint64_t net_count = in.u64();
  if (net_count > in.remaining() / 8) {
    throw std::runtime_error("polaris netlist: net count exceeds payload");
  }
  for (std::uint64_t n = 0; n < net_count; ++n) (void)netlist.add_net(in.str());
  const std::uint64_t gate_count = in.u64();
  if (gate_count > in.remaining() / 17) {
    throw std::runtime_error("polaris netlist: gate count exceeds payload");
  }
  std::vector<NetId> inputs;
  for (std::uint64_t g = 0; g < gate_count; ++g) {
    const std::uint8_t raw_type = in.u8();
    if (raw_type >= kCellTypeCount) {
      throw std::runtime_error("polaris netlist: unknown cell type " +
                               std::to_string(raw_type));
    }
    const std::uint64_t fan_in = in.u64();
    if (fan_in > in.remaining() / 4) {
      throw std::runtime_error("polaris netlist: gate fan-in exceeds payload");
    }
    inputs.clear();
    inputs.reserve(fan_in);
    for (std::uint64_t i = 0; i < fan_in; ++i) inputs.push_back(in.u32());
    const NetId output = in.u32();
    const GateId group = in.u32();
    if (group != kNoGate && group >= gate_count) {
      throw std::runtime_error("polaris netlist: gate group out of range");
    }
    // add_cell_driving re-checks arity, net ranges, and single-driver-ship,
    // and appends at exactly GateId g (the ascending-id invariant).
    const GateId id = netlist.add_cell_driving(
        static_cast<CellType>(raw_type), inputs, output);
    if (id != static_cast<GateId>(g)) {
      throw std::runtime_error("polaris netlist: gate id drift on decode");
    }
    netlist.gate(id).group = group;
  }
  const std::uint64_t n_inputs = in.u64();
  if (n_inputs > in.remaining() / 4) {
    throw std::runtime_error("polaris netlist: input count exceeds payload");
  }
  for (std::uint64_t i = 0; i < n_inputs; ++i) netlist.mark_input(in.u32());
  const std::uint64_t n_outputs = in.u64();
  if (n_outputs > in.remaining() / 4) {
    throw std::runtime_error("polaris netlist: output count exceeds payload");
  }
  // Empty rename: the serialized net names already carry the port names.
  for (std::uint64_t i = 0; i < n_outputs; ++i) netlist.mark_output(in.u32());
  in.exit_chunk();
  netlist.validate();
  return netlist;
}

}  // namespace polaris::netlist
