// Gate-level netlist IR.
//
// Design D in the paper is a mapped gate-level netlist; POLARIS converts it
// to a graph Gr = (V, E) with V = gates and E = interconnections (Sec. IV-A).
// This class is both: gates and nets are stored in flat arrays addressed by
// dense ids, so the graph view, the simulator, and the feature extractor can
// all index in O(1) without building separate structures.
//
// Invariants (checked by validate()):
//   * every net has exactly one driver gate,
//   * every gate input reads an existing net,
//   * fan-in arity respects arity_of(type),
//   * the combinational part is acyclic (DFF q-outputs act as sources).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "netlist/cell.hpp"

namespace polaris::netlist {

using GateId = std::uint32_t;
using NetId = std::uint32_t;

inline constexpr GateId kNoGate = std::numeric_limits<GateId>::max();
inline constexpr NetId kNoNet = std::numeric_limits<NetId>::max();

struct Gate {
  CellType type = CellType::kBuf;
  std::vector<NetId> inputs;
  NetId output = kNoNet;
  /// Logical-gate group used for leakage accounting. In an original design
  /// each gate is its own group; cells created by expanding gate g into a
  /// masked composite inherit group = g so per-gate TVLA reports stay
  /// aligned with the unmasked design (Sec. IV-C).
  GateId group = kNoGate;
};

struct Net {
  std::string name;
  GateId driver = kNoGate;
  std::vector<GateId> fanouts;
};

class Netlist {
 public:
  explicit Netlist(std::string name = "top") : name_(std::move(name)) {}

  // --- construction -------------------------------------------------------

  /// Creates an undriven net. Mostly internal; prefer the add_* helpers,
  /// which create the driven output net for you.
  NetId add_net(std::string name = {});

  /// Adds a gate driving a fresh net and returns that net.
  NetId add_cell(CellType type, std::span<const NetId> inputs,
                 std::string net_name = {});
  NetId add_cell(CellType type, std::initializer_list<NetId> inputs,
                 std::string net_name = {});

  /// Adds a gate that drives an existing (currently undriven) net.
  GateId add_cell_driving(CellType type, std::span<const NetId> inputs,
                          NetId output);

  /// Primary input: an kInput source cell + its net.
  NetId add_input(std::string name);
  /// Fresh-randomness source (mask share).
  NetId add_rand(std::string name = {});
  NetId add_const(bool value);

  /// Marks a net as a primary output (a net may be an output and still have
  /// internal fanout).
  void mark_output(NetId net, std::string name = {});

  /// Registers an existing kInput-driven net in the primary-input list.
  /// Used by netlist rewrites (masking) that rebuild designs gate by gate.
  void mark_input(NetId net);

  // --- accessors ----------------------------------------------------------

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  [[nodiscard]] std::size_t gate_count() const { return gates_.size(); }
  [[nodiscard]] std::size_t net_count() const { return nets_.size(); }

  [[nodiscard]] const Gate& gate(GateId id) const { return gates_[id]; }
  [[nodiscard]] Gate& gate(GateId id) { return gates_[id]; }
  [[nodiscard]] const Net& net(NetId id) const { return nets_[id]; }
  [[nodiscard]] Net& net(NetId id) { return nets_[id]; }

  [[nodiscard]] const std::vector<Gate>& gates() const { return gates_; }
  [[nodiscard]] const std::vector<Net>& nets() const { return nets_; }

  [[nodiscard]] const std::vector<NetId>& primary_inputs() const {
    return primary_inputs_;
  }
  [[nodiscard]] const std::vector<NetId>& primary_outputs() const {
    return primary_outputs_;
  }

  /// Gates with is_combinational(type) (the maskable universe plus
  /// buf/not/mux).
  [[nodiscard]] std::size_t combinational_gate_count() const;

  // --- integrity ----------------------------------------------------------

  /// Throws std::runtime_error describing the first violated invariant.
  void validate() const;

  /// Topological order over gates: sources first, then combinational gates
  /// in dependency order, then DFFs (which sample at the end of a cycle).
  /// Throws std::runtime_error if a combinational cycle exists.
  [[nodiscard]] std::vector<GateId> topological_order() const;

  /// Logic level per gate: sources/DFF = 0, combinational = 1 + max(input
  /// levels). Computed from topological_order().
  [[nodiscard]] std::vector<std::uint32_t> levels() const;

 private:
  std::string name_;
  std::vector<Gate> gates_;
  std::vector<Net> nets_;
  std::vector<NetId> primary_inputs_;
  std::vector<NetId> primary_outputs_;
};

}  // namespace polaris::netlist
