// Structural-Verilog front-end: the integration point with an ASIC flow
// (paper contribution 3: "Implemented the POLARIS framework as a
// parameterized tool & integrated it into the ASIC design flow").
//
// Supported subset (what a mapped, flattened netlist needs):
//   module NAME (port, ...);
//   input  a, b, ...;      output y, ...;      wire w1, ...;
//   and|or|nand|nor|xor|xnor|not|buf INST (out, in...);
//   mux INST (out, sel, a, b);   dff INST (q, d);   rand INST (r);
//   const0 INST (n);  const1 INST (n);
//   assign n = 1'b0; / assign n = 1'b1; / assign a = b;
//   endmodule
// Comments (// and /* */) are stripped. One module per file.
#pragma once

#include <string>

#include "netlist/netlist.hpp"

namespace polaris::netlist {

/// Serializes a netlist to the structural subset above. Net names are
/// sanitized to Verilog identifiers (non-alphanumerics become '_').
[[nodiscard]] std::string to_verilog(const Netlist& netlist);

/// Parses the structural subset. Throws std::runtime_error with a
/// line-numbered message on syntax or structural errors.
[[nodiscard]] Netlist from_verilog(const std::string& text);

/// File helpers (throw std::runtime_error on I/O failure).
void write_verilog_file(const Netlist& netlist, const std::string& path);
[[nodiscard]] Netlist read_verilog_file(const std::string& path);

}  // namespace polaris::netlist
