// Graphviz DOT export for small design inspection (documentation figures).
#pragma once

#include <string>

#include "netlist/netlist.hpp"

namespace polaris::netlist {

/// Renders gates as nodes (labelled with type) and nets as edges. Intended
/// for designs of up to a few hundred gates.
[[nodiscard]] std::string to_dot(const Netlist& netlist);

}  // namespace polaris::netlist
