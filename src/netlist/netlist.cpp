#include "netlist/netlist.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace polaris::netlist {
namespace {

void check_arity(CellType type, std::size_t fan_in) {
  const Arity arity = arity_of(type);
  if (fan_in < arity.min || (arity.max != 0 && fan_in > arity.max)) {
    throw std::invalid_argument("cell " + std::string(to_string(type)) +
                                ": invalid fan-in " + std::to_string(fan_in));
  }
}

}  // namespace

NetId Netlist::add_net(std::string name) {
  const NetId id = static_cast<NetId>(nets_.size());
  Net net;
  net.name = name.empty() ? "n" + std::to_string(id) : std::move(name);
  nets_.push_back(std::move(net));
  return id;
}

NetId Netlist::add_cell(CellType type, std::span<const NetId> inputs,
                        std::string net_name) {
  const NetId out = add_net(std::move(net_name));
  add_cell_driving(type, inputs, out);
  return out;
}

NetId Netlist::add_cell(CellType type, std::initializer_list<NetId> inputs,
                        std::string net_name) {
  return add_cell(type, std::span<const NetId>(inputs.begin(), inputs.size()),
                  std::move(net_name));
}

GateId Netlist::add_cell_driving(CellType type, std::span<const NetId> inputs,
                                 NetId output) {
  check_arity(type, inputs.size());
  if (output >= nets_.size()) {
    throw std::invalid_argument("add_cell_driving: output net out of range");
  }
  if (nets_[output].driver != kNoGate) {
    throw std::invalid_argument("add_cell_driving: net '" + nets_[output].name +
                                "' already driven");
  }
  const GateId id = static_cast<GateId>(gates_.size());
  Gate gate;
  gate.type = type;
  gate.inputs.assign(inputs.begin(), inputs.end());
  gate.output = output;
  gate.group = id;
  for (const NetId in : gate.inputs) {
    if (in >= nets_.size()) {
      throw std::invalid_argument("add_cell_driving: input net out of range");
    }
    nets_[in].fanouts.push_back(id);
  }
  nets_[output].driver = id;
  gates_.push_back(std::move(gate));
  return id;
}

NetId Netlist::add_input(std::string name) {
  const NetId net = add_cell(CellType::kInput, {}, std::move(name));
  primary_inputs_.push_back(net);
  return net;
}

NetId Netlist::add_rand(std::string name) {
  return add_cell(CellType::kRand, {}, std::move(name));
}

NetId Netlist::add_const(bool value) {
  return add_cell(value ? CellType::kConst1 : CellType::kConst0, {});
}

void Netlist::mark_input(NetId net) {
  if (net >= nets_.size() || nets_[net].driver == kNoGate ||
      gates_[nets_[net].driver].type != CellType::kInput) {
    throw std::invalid_argument("mark_input: net is not driven by an input cell");
  }
  primary_inputs_.push_back(net);
}

void Netlist::mark_output(NetId net, std::string name) {
  if (net >= nets_.size()) {
    throw std::invalid_argument("mark_output: net out of range");
  }
  if (!name.empty()) nets_[net].name = std::move(name);
  primary_outputs_.push_back(net);
}

std::size_t Netlist::combinational_gate_count() const {
  std::size_t count = 0;
  for (const Gate& gate : gates_) {
    if (is_combinational(gate.type)) ++count;
  }
  return count;
}

void Netlist::validate() const {
  for (NetId n = 0; n < nets_.size(); ++n) {
    if (nets_[n].driver == kNoGate) {
      throw std::runtime_error("net '" + nets_[n].name + "' has no driver");
    }
    if (nets_[n].driver >= gates_.size()) {
      throw std::runtime_error("net '" + nets_[n].name + "' driver out of range");
    }
    if (gates_[nets_[n].driver].output != n) {
      throw std::runtime_error("net '" + nets_[n].name +
                               "' driver does not drive it back");
    }
  }
  for (GateId g = 0; g < gates_.size(); ++g) {
    const Gate& gate = gates_[g];
    check_arity(gate.type, gate.inputs.size());
    if (gate.output >= nets_.size()) {
      throw std::runtime_error("gate " + std::to_string(g) + " output out of range");
    }
    for (const NetId in : gate.inputs) {
      if (in >= nets_.size()) {
        throw std::runtime_error("gate " + std::to_string(g) + " input out of range");
      }
    }
  }
  (void)topological_order();  // throws on combinational cycles
}

std::vector<GateId> Netlist::topological_order() const {
  // Kahn's algorithm over combinational dependencies. A combinational gate
  // depends on the drivers of its input nets unless that driver is a source
  // or a DFF (whose q value is state, available at cycle start).
  const std::size_t n = gates_.size();
  std::vector<std::uint32_t> pending(n, 0);
  std::vector<GateId> order;
  order.reserve(n);

  std::vector<GateId> ready;
  for (GateId g = 0; g < n; ++g) {
    const Gate& gate = gates_[g];
    if (!is_combinational(gate.type)) continue;
    std::uint32_t deps = 0;
    for (const NetId in : gate.inputs) {
      const Gate& driver = gates_[nets_[in].driver];
      if (is_combinational(driver.type)) ++deps;
    }
    pending[g] = deps;
  }

  // Sources first (stable order by id), so the simulator can fill them in
  // one linear sweep.
  for (GateId g = 0; g < n; ++g) {
    if (is_source(gates_[g].type)) order.push_back(g);
  }
  for (GateId g = 0; g < n; ++g) {
    if (is_combinational(gates_[g].type) && pending[g] == 0) ready.push_back(g);
  }

  std::size_t comb_emitted = 0;
  while (!ready.empty()) {
    const GateId g = ready.back();
    ready.pop_back();
    order.push_back(g);
    ++comb_emitted;
    for (const GateId reader : nets_[gates_[g].output].fanouts) {
      if (!is_combinational(gates_[reader].type)) continue;
      if (--pending[reader] == 0) ready.push_back(reader);
    }
  }

  std::size_t comb_total = 0;
  for (const Gate& gate : gates_) {
    if (is_combinational(gate.type)) ++comb_total;
  }
  if (comb_emitted != comb_total) {
    throw std::runtime_error("netlist '" + name_ + "': combinational cycle");
  }

  for (GateId g = 0; g < n; ++g) {
    if (gates_[g].type == CellType::kDff) order.push_back(g);
  }
  return order;
}

std::vector<std::uint32_t> Netlist::levels() const {
  std::vector<std::uint32_t> level(gates_.size(), 0);
  for (const GateId g : topological_order()) {
    const Gate& gate = gates_[g];
    if (!is_combinational(gate.type)) continue;
    std::uint32_t max_in = 0;
    for (const NetId in : gate.inputs) {
      const GateId driver = nets_[in].driver;
      if (is_combinational(gates_[driver].type)) {
        max_in = std::max(max_in, level[driver]);
      }
    }
    level[g] = max_in + 1;
  }
  return level;
}

}  // namespace polaris::netlist
