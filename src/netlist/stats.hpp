// Design statistics used in reports and by the training-design selector.
#pragma once

#include <array>
#include <cstddef>
#include <string>

#include "netlist/netlist.hpp"

namespace polaris::netlist {

struct DesignStats {
  std::size_t gates = 0;          // all cells
  std::size_t combinational = 0;  // maskable universe + buf/not/mux
  std::size_t sequential = 0;     // DFFs
  std::size_t inputs = 0;
  std::size_t outputs = 0;
  std::size_t nets = 0;
  std::uint32_t depth = 0;        // max logic level
  double avg_fanin = 0.0;         // over combinational gates
  double avg_fanout = 0.0;        // over all nets
  std::array<std::size_t, kCellTypeCount> type_histogram{};
};

[[nodiscard]] DesignStats compute_stats(const Netlist& netlist);

/// Multi-line human-readable summary.
[[nodiscard]] std::string to_string(const DesignStats& stats);

}  // namespace polaris::netlist
