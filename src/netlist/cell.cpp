#include "netlist/cell.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace polaris::netlist {

std::string_view to_string(CellType type) {
  switch (type) {
    case CellType::kInput: return "input";
    case CellType::kConst0: return "const0";
    case CellType::kConst1: return "const1";
    case CellType::kRand: return "rand";
    case CellType::kBuf: return "buf";
    case CellType::kNot: return "not";
    case CellType::kAnd: return "and";
    case CellType::kOr: return "or";
    case CellType::kNand: return "nand";
    case CellType::kNor: return "nor";
    case CellType::kXor: return "xor";
    case CellType::kXnor: return "xnor";
    case CellType::kMux: return "mux";
    case CellType::kDff: return "dff";
  }
  return "?";
}

CellType cell_type_from_string(std::string_view name) {
  const std::string lower = util::to_lower(name);
  if (lower == "input") return CellType::kInput;
  if (lower == "const0" || lower == "tie0") return CellType::kConst0;
  if (lower == "const1" || lower == "tie1") return CellType::kConst1;
  if (lower == "rand" || lower == "rng") return CellType::kRand;
  if (lower == "buf" || lower == "buff") return CellType::kBuf;
  if (lower == "not" || lower == "inv") return CellType::kNot;
  if (lower == "and") return CellType::kAnd;
  if (lower == "or") return CellType::kOr;
  if (lower == "nand") return CellType::kNand;
  if (lower == "nor") return CellType::kNor;
  if (lower == "xor") return CellType::kXor;
  if (lower == "xnor" || lower == "xnr") return CellType::kXnor;
  if (lower == "mux" || lower == "mux2") return CellType::kMux;
  if (lower == "dff" || lower == "ff") return CellType::kDff;
  throw std::invalid_argument("unknown cell type: " + std::string(name));
}

Arity arity_of(CellType type) noexcept {
  switch (type) {
    case CellType::kInput:
    case CellType::kConst0:
    case CellType::kConst1:
    case CellType::kRand:
      return {0, 0};
    case CellType::kBuf:
    case CellType::kNot:
    case CellType::kDff:
      return {1, 1};
    case CellType::kMux:
      return {3, 3};
    case CellType::kAnd:
    case CellType::kOr:
    case CellType::kNand:
    case CellType::kNor:
    case CellType::kXor:
    case CellType::kXnor:
      return {2, 0};  // n-ary
  }
  return {0, 0};
}

bool eval_cell(CellType type, std::span<const bool> inputs) {
  switch (type) {
    case CellType::kBuf: return inputs[0];
    case CellType::kNot: return !inputs[0];
    case CellType::kMux: return inputs[0] ? inputs[2] : inputs[1];
    case CellType::kAnd:
    case CellType::kNand: {
      bool acc = true;
      for (const bool v : inputs) acc = acc && v;
      return type == CellType::kAnd ? acc : !acc;
    }
    case CellType::kOr:
    case CellType::kNor: {
      bool acc = false;
      for (const bool v : inputs) acc = acc || v;
      return type == CellType::kOr ? acc : !acc;
    }
    case CellType::kXor:
    case CellType::kXnor: {
      bool acc = false;
      for (const bool v : inputs) acc = acc != v;
      return type == CellType::kXor ? acc : !acc;
    }
    default:
      throw std::invalid_argument(
          "eval_cell: not a combinational cell: " + std::string(to_string(type)));
  }
}

std::uint64_t eval_cell_word(CellType type, std::span<const std::uint64_t> inputs) {
  switch (type) {
    case CellType::kBuf: return inputs[0];
    case CellType::kNot: return ~inputs[0];
    case CellType::kMux: return (inputs[0] & inputs[2]) | (~inputs[0] & inputs[1]);
    case CellType::kAnd:
    case CellType::kNand: {
      std::uint64_t acc = ~0ULL;
      for (const std::uint64_t v : inputs) acc &= v;
      return type == CellType::kAnd ? acc : ~acc;
    }
    case CellType::kOr:
    case CellType::kNor: {
      std::uint64_t acc = 0;
      for (const std::uint64_t v : inputs) acc |= v;
      return type == CellType::kOr ? acc : ~acc;
    }
    case CellType::kXor:
    case CellType::kXnor: {
      std::uint64_t acc = 0;
      for (const std::uint64_t v : inputs) acc ^= v;
      return type == CellType::kXor ? acc : ~acc;
    }
    default:
      throw std::invalid_argument(
          "eval_cell_word: not a combinational cell: " + std::string(to_string(type)));
  }
}

}  // namespace polaris::netlist
