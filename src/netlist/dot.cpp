#include "netlist/dot.hpp"

#include <sstream>

namespace polaris::netlist {

std::string to_dot(const Netlist& netlist) {
  std::ostringstream out;
  out << "digraph \"" << netlist.name() << "\" {\n";
  out << "  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  for (GateId g = 0; g < netlist.gate_count(); ++g) {
    const Gate& gate = netlist.gate(g);
    const char* shape = is_source(gate.type) ? "ellipse"
                        : gate.type == CellType::kDff ? "Msquare"
                                                      : "box";
    out << "  g" << g << " [label=\"" << to_string(gate.type) << "\\ng" << g
        << "\", shape=" << shape << "];\n";
  }
  for (GateId g = 0; g < netlist.gate_count(); ++g) {
    const Gate& gate = netlist.gate(g);
    for (const NetId in : gate.inputs) {
      out << "  g" << netlist.net(in).driver << " -> g" << g << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace polaris::netlist
