#include "netlist/stats.hpp"

#include <algorithm>
#include <sstream>

namespace polaris::netlist {

DesignStats compute_stats(const Netlist& netlist) {
  DesignStats stats;
  stats.gates = netlist.gate_count();
  stats.nets = netlist.net_count();
  stats.inputs = netlist.primary_inputs().size();
  stats.outputs = netlist.primary_outputs().size();

  std::size_t fanin_sum = 0;
  for (const Gate& gate : netlist.gates()) {
    stats.type_histogram[static_cast<std::size_t>(gate.type)]++;
    if (is_combinational(gate.type)) {
      ++stats.combinational;
      fanin_sum += gate.inputs.size();
    } else if (gate.type == CellType::kDff) {
      ++stats.sequential;
    }
  }
  stats.avg_fanin = stats.combinational == 0
                        ? 0.0
                        : static_cast<double>(fanin_sum) /
                              static_cast<double>(stats.combinational);

  std::size_t fanout_sum = 0;
  for (const Net& net : netlist.nets()) fanout_sum += net.fanouts.size();
  stats.avg_fanout = stats.nets == 0 ? 0.0
                                     : static_cast<double>(fanout_sum) /
                                           static_cast<double>(stats.nets);

  const auto levels = netlist.levels();
  stats.depth = levels.empty() ? 0 : *std::max_element(levels.begin(), levels.end());
  return stats;
}

std::string to_string(const DesignStats& stats) {
  std::ostringstream out;
  out << "gates=" << stats.gates << " (comb=" << stats.combinational
      << ", seq=" << stats.sequential << ")"
      << " nets=" << stats.nets << " PI=" << stats.inputs
      << " PO=" << stats.outputs << " depth=" << stats.depth << "\n";
  out << "type histogram:";
  for (std::size_t t = 0; t < kCellTypeCount; ++t) {
    if (stats.type_histogram[t] == 0) continue;
    out << ' ' << netlist::to_string(static_cast<CellType>(t)) << '='
        << stats.type_histogram[t];
  }
  out << '\n';
  return out.str();
}

}  // namespace polaris::netlist
