// Masked composite gates and the netlist rewrite that inserts them.
//
// Paper Sec. II-B / Fig. 1 / Eq. 5 (Trichina 2003): with masks x, y on the
// operands and a fresh output mask z,
//   M(a.b) = ((a^.b^) ^ ((x.b^) ^ ((x.y) ^ z))) ^ (y.a^)  where a^ = a^x,
//   b^ = b^y, and M(a.b) = (a.b) ^ z.
// The masked OR follows by De Morgan; XOR/XNOR are linear and are re-shared
// directly. Sec. V-E names DOM (Gross et al. 2016) as an alternative
// composite; both schemes are provided.
//
// Replacement semantics - share passing with boundary demasking:
//   * a masked gate consumes clear fan-in by re-sharing it with fresh
//     randomness, or masked fan-in as (value, mask) share pairs directly;
//   * its original output net carries the MASKED value (value ^ z) with the
//     mask z on a side net, so every cell inside a masked region switches
//     with data-independent statistics;
//   * an UNMASKED reader of a masked net gets a demask XOR at its input,
//     charged to the reader's gate group (the clear value - and its
//     data-dependent switching - reappears inside the receiving cell);
//   * a primary output driven by a masked net is restored by a demask XOR
//     charged to the driver.
// The rewritten design is functionally identical (exhaustively tested), and
// per-gate TVLA groups stay aligned with original gate ids. Masking a
// connected region therefore eliminates its internal leakage entirely and
// pushes the residual to the region boundary - which is why structurally
// coherent masking sets (what POLARIS's locality features capture)
// outperform scattered ones.
#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace polaris::masking {

enum class Scheme {
  kTrichina,  // Eq. 5 composites
  kDom,       // domain-oriented masking composites
};

struct MaskingResult {
  netlist::Netlist design;
  /// Per original-gate flag: was it replaced by a composite?
  std::vector<bool> masked;
  std::size_t masked_gates = 0;
  std::size_t added_cells = 0;      // composite cells minus replaced originals
  std::size_t added_rand_bits = 0;  // fresh mask bits consumed per cycle
  std::size_t skipped = 0;          // requested but not maskable
};

/// Rewrites `original`, replacing every maskable gate in `targets` with a
/// masked composite of the chosen scheme. Unknown/duplicate targets and
/// non-maskable cell types are skipped (counted, not fatal). Gate groups in
/// the result refer to original gate ids.
[[nodiscard]] MaskingResult apply_masking(const netlist::Netlist& original,
                                          std::span<const netlist::GateId> targets,
                                          Scheme scheme = Scheme::kTrichina);

/// Number of cells a masked composite for (type, fan_in) expands to.
/// Useful for overhead estimation before committing to a rewrite.
[[nodiscard]] std::size_t composite_cell_count(netlist::CellType type,
                                               std::size_t fan_in, Scheme scheme);

}  // namespace polaris::masking
