#include "masking/masking.hpp"

#include <array>
#include <stdexcept>

namespace polaris::masking {

using netlist::CellType;
using netlist::GateId;
using netlist::Netlist;
using netlist::NetId;

namespace {

/// A signal in the masked domain: the carried net holds value ^ mask.
/// mask == kNoNet means the signal is in the clear.
struct Share {
  NetId value = netlist::kNoNet;
  NetId mask = netlist::kNoNet;

  [[nodiscard]] bool masked() const { return mask != netlist::kNoNet; }
};

/// Builds the rewritten design. Gates are emitted in topological order so
/// every reader knows whether its input nets are masked. Boundary-crossing
/// rules (see masking.hpp):
///   masked -> masked  : shares pass through, no demasking anywhere;
///   masked -> clear   : a demask XOR is inserted at the reader's input and
///                       charged to the reader's group (input-stage
///                       demasking inside the receiving cell);
///   masked -> primary output: a demask XOR restores the clear value,
///                       charged to the driver's group (output boundary).
class Rewriter {
 public:
  Rewriter(const Netlist& original, Scheme scheme, MaskingResult& result)
      : original_(original), scheme_(scheme), result_(result),
        out_(result.design), net_mask_(original.net_count(), netlist::kNoNet) {}

  void run() {
    for (NetId n = 0; n < original_.net_count(); ++n) {
      out_.add_net(original_.net(n).name);
    }
    for (const GateId g : original_.topological_order()) {
      group_ = g;
      if (result_.masked[g]) emit_masked(g);
      else emit_clear(g);
    }
    for (const NetId n : original_.primary_inputs()) out_.mark_input(n);
    for (const NetId n : original_.primary_outputs()) {
      if (net_mask_[n] == netlist::kNoNet) {
        out_.mark_output(n);
      } else {
        group_ = original_.net(n).driver;  // boundary cost stays with driver
        out_.mark_output(cell(CellType::kXor, {n, net_mask_[n]}));
      }
    }
    result_.added_cells = out_.gate_count() - original_.gate_count();
  }

 private:
  // --- cell emission helpers ----------------------------------------------

  NetId cell(CellType type, std::initializer_list<NetId> inputs) {
    const NetId net = out_.add_cell(type, inputs);
    out_.gate(out_.net(net).driver).group = group_;
    return net;
  }

  NetId fresh_mask() {
    const NetId net = out_.add_rand();
    out_.gate(out_.net(net).driver).group = group_;
    ++result_.added_rand_bits;
    return net;
  }

  /// Ensures a signal carries a mask, re-sharing clear signals with fresh
  /// randomness (the XOR's toggles are randomized by the fresh mask).
  Share reshare(const Share& s) {
    if (s.masked()) return s;
    const NetId x = fresh_mask();
    return {cell(CellType::kXor, {s.value, x}), x};
  }

  [[nodiscard]] Share input_share(NetId n) const { return {n, net_mask_[n]}; }

  // --- masked operators ------------------------------------------------------

  /// Masked NOT: inverting the carried value inverts the clear value while
  /// the mask rides through.
  Share masked_not(const Share& s) {
    return {cell(CellType::kNot, {s.value}), s.mask};
  }

  /// Masked AND via Trichina Eq. 5 or first-order DOM. Both consume the
  /// operand shares directly and emit a freshly-masked product.
  Share masked_and(Share a, Share b) {
    a = reshare(a);
    b = reshare(b);
    const NetId x = a.mask;
    const NetId y = b.mask;
    const NetId z = fresh_mask();
    if (scheme_ == Scheme::kTrichina) {
      // Eq. 5, with its exact parenthesisation: no intermediate net ever
      // carries an unmasked product term.
      const NetId xy = cell(CellType::kAnd, {x, y});
      const NetId xy_z = cell(CellType::kXor, {xy, z});
      const NetId xb = cell(CellType::kAnd, {x, b.value});
      const NetId xb_xyz = cell(CellType::kXor, {xb, xy_z});
      const NetId ab = cell(CellType::kAnd, {a.value, b.value});
      const NetId partial = cell(CellType::kXor, {ab, xb_xyz});
      const NetId ya = cell(CellType::kAnd, {y, a.value});
      return {cell(CellType::kXor, {partial, ya}), z};
    }
    // DOM-indep: domains (x, a.value) x (y, b.value); cross terms refreshed
    // with z; output shares (c0, c1) re-expressed as value = c1, mask = c0.
    const NetId t00 = cell(CellType::kAnd, {x, y});
    const NetId t01 = cell(CellType::kAnd, {x, b.value});
    const NetId t10 = cell(CellType::kAnd, {a.value, y});
    const NetId t11 = cell(CellType::kAnd, {a.value, b.value});
    const NetId c0 = cell(CellType::kXor, {t00, cell(CellType::kXor, {t01, z})});
    const NetId c1 = cell(CellType::kXor, {t11, cell(CellType::kXor, {t10, z})});
    return {c1, c0};
  }

  Share masked_or(const Share& a, const Share& b) {
    return masked_not(masked_and(masked_not(a), masked_not(b)));
  }

  /// Masked XOR is linear: values and masks combine independently. At least
  /// one operand must carry a mask so the result stays masked.
  Share masked_xor(Share a, const Share& b) {
    if (!a.masked() && !b.masked()) a = reshare(a);
    const NetId value = cell(CellType::kXor, {a.value, b.value});
    NetId mask = netlist::kNoNet;
    if (a.masked() && b.masked()) {
      mask = cell(CellType::kXor, {a.mask, b.mask});
    } else {
      mask = a.masked() ? a.mask : b.mask;
    }
    return {value, mask};
  }

  // --- gate emission -----------------------------------------------------------

  void emit_masked(GateId g) {
    const netlist::Gate& gate = original_.gate(g);
    const auto fold = [&](auto&& op) {
      Share acc = input_share(gate.inputs[0]);
      for (std::size_t i = 1; i < gate.inputs.size(); ++i) {
        acc = op(acc, input_share(gate.inputs[i]));
      }
      return acc;
    };

    Share result;
    bool invert = false;
    switch (gate.type) {
      case CellType::kNand:
        invert = true;
        [[fallthrough]];
      case CellType::kAnd:
        result = fold([&](const Share& a, const Share& b) {
          return masked_and(a, b);
        });
        break;
      case CellType::kNor:
        invert = true;
        [[fallthrough]];
      case CellType::kOr:
        result = fold([&](const Share& a, const Share& b) {
          return masked_or(a, b);
        });
        break;
      case CellType::kXnor:
        invert = true;
        [[fallthrough]];
      case CellType::kXor:
        result = fold([&](const Share& a, const Share& b) {
          return masked_xor(a, b);
        });
        break;
      default:
        throw std::logic_error("emit_masked: unmaskable type");
    }
    if (invert) result = masked_not(result);
    // A single-input masked XOR chain can come back unmasked only if the
    // fold degenerated; guard by re-sharing.
    result = reshare(result);

    // The original output net now carries the MASKED value; its mask net is
    // recorded for readers and boundaries.
    out_.add_cell_driving(CellType::kBuf, std::array{result.value}, gate.output);
    out_.gate(out_.net(gate.output).driver).group = g;
    net_mask_[gate.output] = result.mask;
  }

  void emit_clear(GateId g) {
    const netlist::Gate& gate = original_.gate(g);
    std::vector<NetId> inputs;
    inputs.reserve(gate.inputs.size());
    for (const NetId n : gate.inputs) {
      if (net_mask_[n] == netlist::kNoNet) {
        inputs.push_back(n);
      } else {
        // Input-stage demasking inside the receiving cell: charged to THIS
        // gate's group - the clear value reappears here, and so does its
        // data-dependent switching.
        inputs.push_back(cell(CellType::kXor, {n, net_mask_[n]}));
      }
    }
    out_.add_cell_driving(gate.type, inputs, gate.output);
    out_.gate(out_.net(gate.output).driver).group = g;
  }

  const Netlist& original_;
  Scheme scheme_;
  MaskingResult& result_;
  Netlist& out_;
  std::vector<NetId> net_mask_;
  GateId group_ = netlist::kNoGate;
};

}  // namespace

MaskingResult apply_masking(const Netlist& original,
                            std::span<const GateId> targets, Scheme scheme) {
  MaskingResult result{Netlist(original.name() + "_masked"),
                       std::vector<bool>(original.gate_count(), false),
                       0, 0, 0, 0};
  for (const GateId g : targets) {
    if (g >= original.gate_count() ||
        !netlist::is_maskable(original.gate(g).type) || result.masked[g]) {
      ++result.skipped;
      continue;
    }
    result.masked[g] = true;
    ++result.masked_gates;
  }
  Rewriter(original, scheme, result).run();
  return result;
}

std::size_t composite_cell_count(CellType type, std::size_t fan_in,
                                 Scheme scheme) {
  if (!netlist::is_maskable(type) || fan_in < 2) return 0;
  (void)scheme;  // Trichina and DOM expand to the same cell count
  // Exact for fan_in == 2 with clear operands (the dominant case); each
  // extra fold stage reuses the accumulated mask, so n-ary gates cost
  // slightly less per stage. Counts exclude boundary demask XORs, which
  // belong to the readers.
  const std::size_t invert =
      (type == CellType::kNand || type == CellType::kNor ||
       type == CellType::kXnor)
          ? 1
          : 0;
  switch (type) {
    case CellType::kAnd:
    case CellType::kNand:
      // 3 rand + 2 reshare XOR + 4 AND + 4 XOR (+1 final buffer).
      return 13 * (fan_in - 1) + 1 + invert;
    case CellType::kOr:
    case CellType::kNor:
      // AND composite plus 2 input inverters and 1 output inverter.
      return 16 * (fan_in - 1) + 1 + invert;
    case CellType::kXor:
    case CellType::kXnor:
      // 1 reshare (rand + XOR) + value XOR (+1 final buffer).
      return 3 * (fan_in - 1) + 1 + invert;
    default:
      return 0;
  }
}

}  // namespace polaris::masking
