#include "obs/obs.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <ctime>

#include "sim/simd.hpp"

namespace polaris::obs {

std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

namespace detail {

std::size_t thread_shard() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kCounterShards;
  return shard;
}

}  // namespace detail

// --- Histogram bucket layout ---------------------------------------------
//
// [0, 16)           : one bucket per value (index == value)
// [2^m, 2^(m+1))    : 4 sub-buckets of width 2^(m-2), for m in [4, 63]
//
// 16 + 60*4 = 256 buckets total; index never exceeds kBuckets - 1.

std::size_t Histogram::bucket_index(std::uint64_t value) noexcept {
  if (value < kLinearBuckets) return static_cast<std::size_t>(value);
  const int msb = 63 - std::countl_zero(value);  // >= 4 here
  const std::size_t sub = static_cast<std::size_t>(value >> (msb - 2)) & 3;
  return kLinearBuckets + static_cast<std::size_t>(msb - 4) * 4 + sub;
}

std::uint64_t Histogram::bucket_lower(std::size_t index) noexcept {
  if (index < kLinearBuckets) return index;
  const std::size_t log_index = index - kLinearBuckets;
  const int msb = 4 + static_cast<int>(log_index / 4);
  const std::uint64_t sub = log_index % 4;
  return (std::uint64_t{1} << msb) + sub * (std::uint64_t{1} << (msb - 2));
}

std::uint64_t Histogram::bucket_upper(std::size_t index) noexcept {
  if (index + 1 >= kBuckets) return ~std::uint64_t{0};
  return bucket_lower(index + 1);
}

// --- Snapshots ------------------------------------------------------------

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the target sample, 1-based; ceil so p=0.5 over 2 samples picks
  // the first and p=1.0 always picks the last.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(p * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (const auto& [index, bucket_count] : buckets) {
    seen += bucket_count;
    if (seen >= rank) {
      const double lower =
          static_cast<double>(Histogram::bucket_lower(index));
      // The first kLinearBuckets buckets have width 1, so the lower bound
      // IS the recorded value - reporting the midpoint there would shift
      // every small sample by +0.5 (p50 of all-zeros must be 0, not 0.5).
      if (index < Histogram::kLinearBuckets) return lower;
      const double upper =
          static_cast<double>(Histogram::bucket_upper(index));
      return lower + (upper - lower) / 2.0;
    }
  }
  return 0.0;  // unreachable when count matches the buckets
}

namespace {

// Merges the sparse (index, count) lists of `into` and `from` (both
// ascending); `scale` of -1 subtracts instead of adding.
void combine_buckets(
    std::vector<std::pair<std::uint32_t, std::uint64_t>>& into,
    const std::vector<std::pair<std::uint32_t, std::uint64_t>>& from,
    bool subtract) {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> merged;
  merged.reserve(into.size() + from.size());
  std::size_t a = 0;
  std::size_t b = 0;
  while (a < into.size() || b < from.size()) {
    if (b >= from.size() ||
        (a < into.size() && into[a].first < from[b].first)) {
      merged.push_back(into[a++]);
    } else if (a >= into.size() || from[b].first < into[a].first) {
      const auto [index, value] = from[b++];
      if (!subtract) merged.emplace_back(index, value);
      // Subtracting a bucket this snapshot never saw: saturate to zero by
      // dropping it (only happens if the snapshots are unrelated).
    } else {
      const std::uint64_t ours = into[a].second;
      const std::uint64_t theirs = from[b].second;
      const std::uint64_t value =
          subtract ? (ours > theirs ? ours - theirs : 0) : ours + theirs;
      if (value > 0) merged.emplace_back(into[a].first, value);
      ++a;
      ++b;
    }
  }
  into = std::move(merged);
}

}  // namespace

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  combine_buckets(buckets, other.buckets, /*subtract=*/false);
}

void HistogramSnapshot::subtract(const HistogramSnapshot& earlier) {
  count = count > earlier.count ? count - earlier.count : 0;
  sum = sum > earlier.sum ? sum - earlier.sum : 0;
  combine_buckets(buckets, earlier.buckets, /*subtract=*/true);
}

const CounterSnapshot* Snapshot::find_counter(std::string_view name) const {
  for (const auto& counter : counters)
    if (counter.name == name) return &counter;
  return nullptr;
}

const HistogramSnapshot* Snapshot::find_histogram(
    std::string_view name) const {
  for (const auto& histogram : histograms)
    if (histogram.name == name) return &histogram;
  return nullptr;
}

void Snapshot::merge(const Snapshot& other) {
  for (const auto& theirs : other.counters) {
    bool found = false;
    for (auto& ours : counters) {
      if (ours.name == theirs.name) {
        ours.value += theirs.value;
        found = true;
        break;
      }
    }
    if (!found) counters.push_back(theirs);
  }
  for (const auto& theirs : other.histograms) {
    bool found = false;
    for (auto& ours : histograms) {
      if (ours.name == theirs.name) {
        ours.merge(theirs);
        found = true;
        break;
      }
    }
    if (!found) histograms.push_back(theirs);
  }
  std::sort(counters.begin(), counters.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  std::sort(histograms.begin(), histograms.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
}

void Snapshot::subtract(const Snapshot& earlier) {
  for (auto& ours : counters) {
    if (const auto* theirs = earlier.find_counter(ours.name)) {
      ours.value = ours.value > theirs->value ? ours.value - theirs->value : 0;
    }
  }
  for (auto& ours : histograms) {
    if (const auto* theirs = earlier.find_histogram(ours.name)) {
      ours.subtract(*theirs);
    }
  }
}

namespace {

void appendf(std::string& out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* format, ...) {
  char buffer[256];
  va_list args;
  va_start(args, format);
  const int n = std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  if (n > 0) {
    out.append(buffer, std::min(static_cast<std::size_t>(n),
                                sizeof(buffer) - 1));
  }
}

std::string sanitize_metric_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) out += (c == '.' || c == '-') ? '_' : c;
  return out;
}

/// `# HELP` text for the exposition: specific strings for the well-known
/// metrics, a generic-but-honest fallback for the rest (every metric gets
/// a HELP line - scrapers treat its absence as a malformed family).
const char* metric_help(std::string_view name, bool histogram) {
  if (name == "cache.hits") return "Result-cache hits.";
  if (name == "cache.misses") return "Result-cache misses.";
  if (name == "cache.bytes") return "Resident reply-body bytes in the result cache.";
  if (name == "server.frames_in") return "Request frames received.";
  if (name == "server.frames_out") return "Response frames sent.";
  if (name == "server.slow_requests") return "Requests slower than the --slow-request-ms threshold.";
  if (name == "sched.campaigns") return "Campaigns submitted to the shard scheduler.";
  if (name == "sched.shards") return "Shards enqueued on the shard scheduler.";
  if (name == "tvla.campaigns") return "TVLA campaigns constructed.";
  if (name == "tvla.traces") return "Traces budgeted across all campaigns.";
  if (name == "tvla.traces_run") return "Traces actually simulated (lane-block granularity).";
  if (name == "pool.jobs") return "parallel_for jobs submitted to the shared pool.";
  if (name == "obs.log_suppressed") return "Rate-limited log lines dropped by the token bucket.";
  if (name == "server.audit_us") return "Audit request service time, microseconds.";
  if (name == "sched.shard_us") return "Per-shard execution time, microseconds.";
  if (name == "pool.queue_depth") return "Concurrent jobs resident in the pool at submit.";
  return histogram ? "polaris execution histogram (see obs.hpp naming scheme)."
                   : "polaris execution counter (see obs.hpp naming scheme).";
}

}  // namespace

std::string Snapshot::json_fragment() const {
  std::string out = "\"counters\":{";
  bool first = true;
  for (const auto& counter : counters) {
    appendf(out, "%s\"%s\":%" PRIu64, first ? "" : ",",
            counter.name.c_str(), counter.value);
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& histogram : histograms) {
    appendf(out,
            "%s\"%s\":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
            ",\"mean\":%.1f,\"p50\":%.1f,\"p95\":%.1f,\"p99\":%.1f}",
            first ? "" : ",", histogram.name.c_str(), histogram.count,
            histogram.sum, histogram.mean(), histogram.percentile(0.50),
            histogram.percentile(0.95), histogram.percentile(0.99));
    first = false;
  }
  out += '}';
  return out;
}

std::string Snapshot::prometheus(std::string_view prefix,
                                 const ProcessInfo* info) const {
  std::string out;
  if (info != nullptr) {
    const std::string build_info = std::string(prefix) + "build_info";
    appendf(out,
            "# HELP %s Build flavor and the SIMD kernel this process runs.\n"
            "# TYPE %s gauge\n",
            build_info.c_str(), build_info.c_str());
    appendf(out, "%s{build=\"%s\",simd=\"%s\",lane_words=\"%" PRIu64 "\"} 1\n",
            build_info.c_str(), info->build_type.c_str(), info->simd.c_str(),
            info->lane_words);
    const std::string uptime = std::string(prefix) + "uptime_seconds";
    appendf(out,
            "# HELP %s Seconds since the daemon started.\n"
            "# TYPE %s gauge\n%s %.3f\n",
            uptime.c_str(), uptime.c_str(), uptime.c_str(),
            info->uptime_seconds);
  }
  for (const auto& counter : counters) {
    const std::string name =
        std::string(prefix) + sanitize_metric_name(counter.name);
    appendf(out, "# HELP %s %s\n", name.c_str(),
            metric_help(counter.name, /*histogram=*/false));
    appendf(out, "# TYPE %s counter\n%s %" PRIu64 "\n", name.c_str(),
            name.c_str(), counter.value);
  }
  for (const auto& histogram : histograms) {
    const std::string name =
        std::string(prefix) + sanitize_metric_name(histogram.name);
    appendf(out, "# HELP %s %s\n", name.c_str(),
            metric_help(histogram.name, /*histogram=*/true));
    appendf(out, "# TYPE %s summary\n", name.c_str());
    for (const double q : {0.5, 0.95, 0.99}) {
      appendf(out, "%s{quantile=\"%g\"} %.1f\n", name.c_str(), q,
              histogram.percentile(q));
    }
    appendf(out, "%s_sum %" PRIu64 "\n%s_count %" PRIu64 "\n", name.c_str(),
            histogram.sum, name.c_str(), histogram.count);
  }
  return out;
}

// --- Registry -------------------------------------------------------------

Registry& Registry::global() {
  // Leaked on purpose: worker threads may record during static
  // destruction of other objects; an immortal registry has no
  // destruction-order hazards.
  static Registry* registry = new Registry();
  return *registry;
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

Snapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_)
    snapshot.counters.push_back({name, counter->value()});
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.sum = histogram->sum();
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t bucket = histogram->bucket_count(i);
      if (bucket == 0) continue;
      hs.count += bucket;
      hs.buckets.emplace_back(static_cast<std::uint32_t>(i), bucket);
    }
    snapshot.histograms.push_back(std::move(hs));
  }
  return snapshot;
}

// --- Structured log -------------------------------------------------------

std::int64_t wall_clock_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string wall_clock_iso8601() {
  const std::int64_t ms = wall_clock_ms();
  const std::time_t seconds = static_cast<std::time_t>(ms / 1000);
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer),
                "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ", utc.tm_year + 1900,
                utc.tm_mon + 1, utc.tm_mday, utc.tm_hour, utc.tm_min,
                utc.tm_sec, static_cast<int>(ms % 1000));
  return buffer;
}

void log(const char* component, const std::string& message) {
  constexpr double kBurst = 20.0;
  constexpr double kRefillPerSec = 10.0;
  static std::mutex mutex;
  static double tokens = kBurst;
  static std::int64_t last_ns = 0;

  bool emit = false;
  {
    const std::lock_guard<std::mutex> lock(mutex);
    const std::int64_t now = now_ns();
    if (last_ns != 0) {
      tokens = std::min(
          kBurst,
          tokens + static_cast<double>(now - last_ns) * 1e-9 * kRefillPerSec);
    }
    last_ns = now;
    if (tokens >= 1.0) {
      tokens -= 1.0;
      emit = true;
    }
  }
  if (emit) {
    // Wall-clock prefix (the only wall-clock in obs): daemon stderr lines
    // must be correlatable with client-side timestamps across machines.
    std::fprintf(stderr, "%s polaris[%s] %s\n", wall_clock_iso8601().c_str(),
                 component, message.c_str());
  } else {
    static auto& suppressed =
        Registry::global().counter("obs.log_suppressed");
    suppressed.add();
  }
}

// --- Runtime info ---------------------------------------------------------

RuntimeInfo runtime_info() {
  RuntimeInfo info;
#ifdef NDEBUG
  info.build_type = "release";
#else
  info.build_type = "debug";
#endif
  info.lane_words = sim::default_lane_words();
  info.simd = sim::simd_name(info.lane_words);
  info.avx2_supported = sim::avx2_supported();
  info.avx2_built = sim::avx2_built();
  return info;
}

}  // namespace polaris::obs
