// polaris::obs metrics time-series: a fixed-capacity ring of periodic
// registry snapshots, filled by a background sampler thread, so a live
// daemon can answer "what happened in the last interval" - not just "what
// happened since process start". Interval rates (requests/s, traces/s,
// cache hit ratio, interval p50/p95) fall out of Snapshot::subtract
// between consecutive samples, exactly - no separate rate estimator.
//
// The obs contract holds: nothing here is serialized into bundles or
// fingerprints, and sampling on/off leaves every audit/mask output
// byte-identical (the sampler only ever *reads* the registry).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"

namespace polaris::obs {

/// One periodic sample: a full registry snapshot plus when it was taken
/// (wall clock for correlation, steady clock for exact interval widths).
struct TimePoint {
  std::int64_t wall_ms = 0;  // system clock, ms since epoch
  std::int64_t mono_ns = 0;  // obs::now_ns() timebase
  Snapshot snapshot;
};

/// Fixed-capacity ring of TimePoints, oldest evicted first. Internally
/// mutexed: the sampler thread pushes while status requests read.
class TimeSeries {
 public:
  explicit TimeSeries(std::size_t capacity);

  void push(TimePoint point);

  /// The most recent `n` samples (all, when fewer exist), oldest first -
  /// so recent(2) is exactly the (earlier, later) pair Snapshot::subtract
  /// wants.
  [[nodiscard]] std::vector<TimePoint> recent(std::size_t n) const;

  /// Samples currently resident (<= capacity).
  [[nodiscard]] std::size_t size() const;
  /// Samples pushed over the lifetime (monotonic; > size() once the ring
  /// has wrapped).
  [[nodiscard]] std::uint64_t total_pushed() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mutex_;
  std::vector<TimePoint> ring_;
  std::size_t next_ = 0;  // slot the next push writes (ring_ full => oldest)
  std::uint64_t pushed_ = 0;
  std::size_t capacity_;
};

/// Background sampler: snapshots a Registry every `interval_ms` into a
/// TimeSeries, optionally appending one JSON line per interval (the delta
/// against the previous sample) to `metrics_file` for offline trajectory
/// scraping. start()/stop() are idempotent; stop() joins promptly (the
/// sleep is a condvar wait, not a blind sleep).
class Sampler {
 public:
  struct Options {
    std::size_t interval_ms = 1000;
    std::size_t capacity = 128;      // ring depth: ~2 min at the default
    std::string metrics_file;       // empty = no file output
  };

  Sampler(Registry& registry, Options options);
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  void start();
  void stop();

  [[nodiscard]] const TimeSeries& series() const { return series_; }
  [[nodiscard]] std::size_t interval_ms() const { return options_.interval_ms; }

 private:
  void run();
  /// One `{"wall_ms":...,"interval_ms":...,"counters":{...},...}` line:
  /// the interval DELTA, so a scraper reads rates without keeping state.
  void append_metrics_line(const TimePoint& current, const TimePoint* previous);

  Registry& registry_;
  Options options_;
  TimeSeries series_;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stop_requested_ = false;
  bool running_ = false;
};

}  // namespace polaris::obs
