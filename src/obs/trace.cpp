#include "obs/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace polaris::obs {

namespace {

// Per-thread buffer cap: a runaway span source cannot grow a trace without
// bound. 1M events is far above any real CLI run; drops are counted.
constexpr std::size_t kMaxEventsPerThread = 1u << 20;

void appendf(std::string& out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* format, ...) {
  char buffer[256];
  va_list args;
  va_start(args, format);
  const int n = std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  if (n > 0) {
    out.append(buffer, std::min(static_cast<std::size_t>(n),
                                sizeof(buffer) - 1));
  }
}

void append_escaped(std::string& out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          appendf(out, "\\u%04x", static_cast<unsigned>(c));
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

// --- TraceArgs ------------------------------------------------------------

void TraceArgs::open(const char* key) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += key;
  body_ += "\":";
}

TraceArgs& TraceArgs::add(const char* key, std::uint64_t value) {
  open(key);
  appendf(body_, "%" PRIu64, value);
  return *this;
}

TraceArgs& TraceArgs::add(const char* key, std::int64_t value) {
  open(key);
  appendf(body_, "%" PRId64, value);
  return *this;
}

TraceArgs& TraceArgs::add(const char* key, double value) {
  open(key);
  appendf(body_, "%.3f", value);
  return *this;
}

TraceArgs& TraceArgs::add(const char* key, const char* value) {
  open(key);
  body_ += '"';
  append_escaped(body_, value);
  body_ += '"';
  return *this;
}

TraceArgs& TraceArgs::add(const char* key, bool value) {
  open(key);
  body_ += value ? "true" : "false";
  return *this;
}

// --- Tracer ---------------------------------------------------------------

Tracer& Tracer::global() {
  static Tracer* tracer = new Tracer();  // immortal, like Registry::global
  return *tracer;
}

Tracer::ThreadBuffer& Tracer::buffer_for_this_thread() {
  // One buffer per (thread, process) - the global tracer is a singleton,
  // so a single thread_local slot suffices. shared_ptr keeps the buffer
  // alive for the tracer even after the thread exits.
  thread_local std::shared_ptr<ThreadBuffer> buffer;
  if (buffer == nullptr) {
    buffer = std::make_shared<ThreadBuffer>();
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    buffer->tid = next_tid_++;
    buffers_.push_back(buffer);
  }
  return *buffer;
}

void Tracer::push(Event event) {
  ThreadBuffer& buffer = buffer_for_this_thread();
  event.tid = buffer.tid;
  const std::lock_guard<std::mutex> lock(buffer.mutex);
  if (buffer.events.size() >= kMaxEventsPerThread) {
    static auto& dropped =
        Registry::global().counter("obs.trace_events_dropped");
    dropped.add();
    return;
  }
  buffer.events.push_back(std::move(event));
}

void Tracer::start() {
  {
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    for (const auto& buffer : buffers_) {
      const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      buffer->events.clear();
    }
    t0_ns_ = now_ns();
  }
  enabled_.store(true, std::memory_order_relaxed);
}

std::string Tracer::stop_to_json(std::size_t* event_count) {
  enabled_.store(false, std::memory_order_relaxed);

  std::vector<Event> events;
  std::int64_t t0;
  {
    const std::lock_guard<std::mutex> lock(registry_mutex_);
    t0 = t0_ns_;
    for (const auto& buffer : buffers_) {
      const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      events.insert(events.end(),
                    std::make_move_iterator(buffer->events.begin()),
                    std::make_move_iterator(buffer->events.end()));
      buffer->events.clear();
    }
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) {
              return a.start_ns < b.start_ns;
            });
  if (event_count != nullptr) *event_count = events.size();

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const Event& event : events) {
    if (!first) out += ',';
    first = false;
    appendf(out, "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\",\"pid\":1,"
                 "\"tid\":%u,\"ts\":%.3f",
            event.name, event.category, event.phase, event.tid,
            static_cast<double>(event.start_ns - t0) / 1000.0);
    if (event.phase == 'X') {
      appendf(out, ",\"dur\":%.3f",
              static_cast<double>(event.duration_ns) / 1000.0);
    } else {
      appendf(out, ",\"id\":\"0x%" PRIx64 "\"", event.id);
    }
    out += ",\"args\":{";
    out += event.args;
    out += "}}";
  }
  out += "]}";
  return out;
}

void Tracer::complete_event(const char* name, const char* category,
                            std::int64_t start_ns, std::int64_t duration_ns,
                            std::string args_json) {
  if (!enabled()) return;
  push(Event{name, category, 'X', 0, 0, start_ns, duration_ns,
             std::move(args_json)});
}

void Tracer::async_begin(const char* name, const char* category,
                         std::uint64_t id, std::string args_json) {
  if (!enabled()) return;
  push(Event{name, category, 'b', 0, id, now_ns(), 0, std::move(args_json)});
}

void Tracer::async_end(const char* name, const char* category,
                       std::uint64_t id) {
  if (!enabled()) return;
  push(Event{name, category, 'e', 0, id, now_ns(), 0, {}});
}

std::uint64_t Tracer::next_async_id() noexcept {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// --- Span -----------------------------------------------------------------

void Span::begin(const char* name, const char* category) {
  name_ = name;
  category_ = category;
  start_ns_ = now_ns();
  active_ = true;
}

void Span::end() {
  active_ = false;
  const std::int64_t end_ns = now_ns();
  Tracer::global().complete_event(name_, category_, start_ns_,
                                  end_ns - start_ns_,
                                  std::move(args_).str());
}

}  // namespace polaris::obs
