#include "obs/timeseries.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <utility>

namespace polaris::obs {

TimeSeries::TimeSeries(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void TimeSeries::push(TimePoint point) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(point));
  } else {
    ring_[next_] = std::move(point);
  }
  next_ = (next_ + 1) % capacity_;
  ++pushed_;
}

std::vector<TimePoint> TimeSeries::recent(std::size_t n) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.empty()) return {};
  const std::size_t count = std::min(n, ring_.size());
  std::vector<TimePoint> out;
  out.reserve(count);
  // Oldest-first: walk backwards from the newest slot, then reverse. When
  // the ring is not yet full the newest is at next_ - 1 == size() - 1 too.
  const std::size_t newest =
      (next_ + ring_.size() - 1) % ring_.size();
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(ring_[(newest + ring_.size() - i) % ring_.size()]);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::size_t TimeSeries::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::uint64_t TimeSeries::total_pushed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return pushed_;
}

// --- Sampler ---------------------------------------------------------------

Sampler::Sampler(Registry& registry, Options options)
    : registry_(registry),
      options_(std::move(options)),
      series_(options_.capacity) {
  if (options_.interval_ms == 0) options_.interval_ms = 1000;
}

Sampler::~Sampler() { stop(); }

void Sampler::start() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread(&Sampler::run, this);
}

void Sampler::stop() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
  const std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
}

void Sampler::run() {
  static auto& samples = Registry::global().counter("obs.samples");
  TimePoint previous;
  bool have_previous = false;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (wake_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                         [this] { return stop_requested_; })) {
        return;
      }
    }
    TimePoint point;
    point.wall_ms = wall_clock_ms();
    point.mono_ns = now_ns();
    point.snapshot = registry_.snapshot();
    append_metrics_line(point, have_previous ? &previous : nullptr);
    series_.push(point);
    samples.add();
    previous = std::move(point);
    have_previous = true;
  }
}

void Sampler::append_metrics_line(const TimePoint& current,
                                  const TimePoint* previous) {
  if (options_.metrics_file.empty()) return;
  Snapshot delta = current.snapshot;
  std::int64_t interval_ms = static_cast<std::int64_t>(options_.interval_ms);
  if (previous != nullptr) {
    delta.subtract(previous->snapshot);
    interval_ms = (current.mono_ns - previous->mono_ns) / 1000000;
  }
  std::FILE* file = std::fopen(options_.metrics_file.c_str(), "a");
  if (file == nullptr) {
    static auto& errors = Registry::global().counter("obs.metrics_file_errors");
    errors.add();
    return;
  }
  const std::string fragment = delta.json_fragment();
  std::fprintf(file, "{\"wall_ms\":%" PRId64 ",\"interval_ms\":%" PRId64 ",%s}\n",
               current.wall_ms, interval_ms, fragment.c_str());
  std::fclose(file);
}

}  // namespace polaris::obs
