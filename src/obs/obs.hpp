// polaris::obs - process-wide execution telemetry: named counters and
// log-scale latency histograms behind a registry, snapshottable at any
// moment and mergeable across snapshots.
//
// Contract (mirrors `lane_words`): metrics are pure execution-side state.
// Nothing in this registry is ever serialized into bundles, hashed into a
// config or design fingerprint, or allowed to influence a numeric result.
// Turning observability on or off must leave every audit/mask output
// byte-identical; only wall-clock changes.
//
// Naming scheme: `<subsystem>.<metric>` with duration histograms suffixed
// by their unit (`pool.task_us`, `server.drain_us`). Counters count events
// or bytes and carry no suffix (`cache.hits`, `server.frames_in`).
//
// Cost model: counter increments are relaxed fetch_adds on one of a few
// cache-line-padded shards (no CAS loop, no lock, no false sharing between
// concurrently incrementing threads); histogram records are two relaxed
// fetch_adds. Instrumentation sits at shard/request granularity - never
// inside the kernel inner loop.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace polaris::obs {

/// Monotonic timestamp in nanoseconds (steady clock). All obs durations
/// and the tracer share this timebase.
[[nodiscard]] std::int64_t now_ns() noexcept;

namespace detail {
/// Stable per-thread shard index in [0, kCounterShards): threads are
/// assigned round-robin on first use, so up to kCounterShards concurrently
/// incrementing threads never touch the same cache line.
[[nodiscard]] std::size_t thread_shard() noexcept;
}  // namespace detail

inline constexpr std::size_t kCounterShards = 16;

/// Monotonic event counter with per-thread-sharded relaxed increments.
/// `value()` sums the shards; it is a racy-but-consistent snapshot (every
/// increment that happened-before the call is included).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[detail::thread_shard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Wrapping decrement for gauge-style counters (resident bytes):
  /// `value()` sums the shards mod 2^64, so adding the two's complement
  /// of `n` cancels an earlier `add(n)` exactly even when an individual
  /// shard wraps below zero.
  void sub(std::uint64_t n) noexcept { add(~n + 1); }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& shard : shards_)
      total += shard.value.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Shard, kCounterShards> shards_;
};

/// Fixed-bucket log-scale histogram of non-negative integer samples
/// (typically microseconds). Values below 16 get exact buckets; above
/// that, each power of two is split into 4 sub-buckets, so any recorded
/// value lands in a bucket whose width is at most 25% of its lower bound.
/// 256 buckets cover the full uint64 range - recording never saturates.
class Histogram {
 public:
  static constexpr std::size_t kLinearBuckets = 16;
  static constexpr std::size_t kBuckets = 256;

  void record(std::uint64_t value) noexcept {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  [[nodiscard]] static std::size_t bucket_index(std::uint64_t value) noexcept;
  /// Inclusive lower bound of bucket `index`.
  [[nodiscard]] static std::uint64_t bucket_lower(std::size_t index) noexcept;
  /// Exclusive upper bound (lower bound of the next bucket; saturates at
  /// the top of the range).
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t index) noexcept;

  [[nodiscard]] std::uint64_t bucket_count(std::size_t index) const noexcept {
    return buckets_[index].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
};

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  /// Sparse non-zero buckets as (bucket index, count), ascending index.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;

  /// Estimated value at quantile `p` in [0, 1]: exact for samples in the
  /// width-1 buckets below 16, the midpoint of the bucket holding the p-th
  /// sample otherwise (within 12.5% of the true sample for log buckets).
  /// Returns 0 on an empty histogram.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Adds `other`'s samples into this snapshot (histograms with the same
  /// bucket layout merge exactly; merging is associative and commutative).
  void merge(const HistogramSnapshot& other);
  /// Removes `earlier`'s samples (for interval deltas between two
  /// snapshots of the same growing histogram). Saturates at zero.
  void subtract(const HistogramSnapshot& earlier);
};

/// A point-in-time copy of a registry: plain data, safe to ship across
/// threads or encode onto the wire. Names are sorted ascending.
struct Snapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<HistogramSnapshot> histograms;

  [[nodiscard]] const CounterSnapshot* find_counter(
      std::string_view name) const;
  [[nodiscard]] const HistogramSnapshot* find_histogram(
      std::string_view name) const;
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const {
    const auto* counter = find_counter(name);
    return counter == nullptr ? 0 : counter->value;
  }

  /// Merges `other` into this snapshot (union of names, sums where both
  /// sides have a metric). Associative and commutative.
  void merge(const Snapshot& other);

  /// Removes `earlier`'s samples from this snapshot - the interval delta
  /// between two snapshots of the same growing registry. Counter values
  /// and histogram counts saturate at zero; metrics only `earlier` has are
  /// dropped (they no longer exist in the later registry, which cannot
  /// happen for snapshots of one live registry).
  void subtract(const Snapshot& earlier);

  /// `"counters":{...},"histograms":{...}` - a fragment for embedding in a
  /// larger JSON object (histograms report count/sum/mean/p50/p95/p99).
  [[nodiscard]] std::string json_fragment() const;

  /// Process-level identity for the Prometheus exposition below: rendered
  /// as a `<prefix>build_info{...} 1` info gauge plus
  /// `<prefix>uptime_seconds` when passed to prometheus().
  struct ProcessInfo {
    std::string build_type;
    std::string simd;
    std::uint64_t lane_words = 0;
    double uptime_seconds = 0.0;
  };

  /// Prometheus-style text exposition: counters as `counter` metrics,
  /// histograms as `summary` quantiles, each preceded by `# HELP` and
  /// `# TYPE` lines. Metric names are prefixed and sanitized ('.' and '-'
  /// become '_'). A non-null `info` prepends the build_info/uptime gauges.
  [[nodiscard]] std::string prometheus(std::string_view prefix,
                                       const ProcessInfo* info = nullptr) const;
};

/// Named metric registry. `global()` is the process-wide instance every
/// subsystem records into; local instances exist for tests. Lookup takes a
/// mutex - hot sites cache the returned reference once
/// (`static auto& c = Registry::global().counter("pool.tasks");`).
/// References stay valid for the registry's lifetime (the global registry
/// is immortal).
class Registry {
 public:
  [[nodiscard]] static Registry& global();

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);
  [[nodiscard]] Snapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  // Node-based maps: grow never invalidates handed-out references.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Wall-clock timestamp formatted as ISO-8601 UTC with milliseconds
/// (`2026-08-07T12:34:56.789Z`). This is the prefix every log() line
/// carries, exposed so tests (and other emitters) can check the format.
[[nodiscard]] std::string wall_clock_iso8601();

/// Wall-clock milliseconds since the Unix epoch (system clock - the only
/// obs timestamp that is NOT on the steady timebase; use for correlating
/// samples with the outside world, never for durations).
[[nodiscard]] std::int64_t wall_clock_ms();

/// Structured, rate-limited stderr log line:
///   `<ISO-8601 ms UTC> polaris[<component>] <message>`
/// A token bucket (burst 20, refill 10/s) drops excess lines and counts
/// them in the `obs.log_suppressed` counter instead of flooding stderr -
/// safe to call from a tight failure loop.
void log(const char* component, const std::string& message);

/// What this process is actually running - build flavor and the kernel the
/// runtime dispatcher selected. Surfaced by `polaris_cli version` and the
/// serve ping/stats replies, so a live daemon can be asked what it runs.
struct RuntimeInfo {
  std::string build_type;     // "release" or "debug" (from NDEBUG)
  std::string simd;           // dispatch result for the default width
  std::uint64_t lane_words;   // sim::default_lane_words()
  bool avx2_supported;        // CPUID says the CPU can
  bool avx2_built;            // this binary carries the AVX2 TU
};
[[nodiscard]] RuntimeInfo runtime_info();

}  // namespace polaris::obs
