// polaris::obs::Tracer - span tracing exportable as Chrome trace-event
// JSON (the `{"traceEvents":[...]}` format chrome://tracing and Perfetto
// load directly).
//
// Design for a cold disabled path: `Span` construction when tracing is off
// is one relaxed atomic load and a predictable branch - no clock read, no
// allocation, no lock. When tracing is on, events go to per-thread buffers
// (a light mutex each, uncontended because a buffer has exactly one
// writer) and are drained once at `stop_to_json()`. Spans are emitted at
// shard/request granularity, never inside the kernel inner loop.
//
// Same never-serialized contract as the counters (see obs.hpp): traces
// capture timing only and cannot influence results.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace polaris::obs {

/// Renders `"key":value` pairs for a span's `args` object. Values are
/// numbers or escaped strings; keys must be plain identifiers.
class TraceArgs {
 public:
  TraceArgs& add(const char* key, std::uint64_t value);
  TraceArgs& add(const char* key, std::int64_t value);
  TraceArgs& add(const char* key, double value);
  TraceArgs& add(const char* key, const char* value);
  TraceArgs& add(const char* key, const std::string& value) {
    return add(key, value.c_str());
  }
  TraceArgs& add(const char* key, bool value);

  [[nodiscard]] std::string str() && { return std::move(body_); }
  [[nodiscard]] const std::string& body() const { return body_; }

 private:
  void open(const char* key);
  std::string body_;
};

class Tracer {
 public:
  /// The process-wide tracer (immortal, like Registry::global()).
  [[nodiscard]] static Tracer& global();

  /// The one branch paid on instrumented paths while tracing is off.
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Clears previous events and starts collecting. The trace timebase is
  /// the moment of this call.
  void start();

  /// Stops collecting, drains every thread's buffer, and renders one
  /// Chrome trace-event JSON object (events sorted by timestamp). Returns
  /// the number of events via `event_count` when non-null.
  [[nodiscard]] std::string stop_to_json(std::size_t* event_count = nullptr);

  /// Low-level emitters - `Span` is the normal interface. All are no-ops
  /// while disabled. `args_json` is the body of the args object ("" =
  /// none), as built by TraceArgs.
  void complete_event(const char* name, const char* category,
                      std::int64_t start_ns, std::int64_t duration_ns,
                      std::string args_json);
  /// Async begin/end ("b"/"e" phases): spans that start and finish on
  /// different threads (a campaign's shards run anywhere). Matched by
  /// (category, id, name).
  void async_begin(const char* name, const char* category, std::uint64_t id,
                   std::string args_json);
  void async_end(const char* name, const char* category, std::uint64_t id);

  /// Process-unique id for async spans.
  [[nodiscard]] static std::uint64_t next_async_id() noexcept;

 private:
  struct Event {
    const char* name;
    const char* category;
    char phase;  // 'X' complete, 'b' async begin, 'e' async end
    std::uint32_t tid;
    std::uint64_t id;  // async id (phase 'b'/'e' only)
    std::int64_t start_ns;
    std::int64_t duration_ns;  // phase 'X' only
    std::string args;
  };
  struct ThreadBuffer {
    std::mutex mutex;
    std::uint32_t tid = 0;
    std::vector<Event> events;
  };

  ThreadBuffer& buffer_for_this_thread();
  void push(Event event);

  std::atomic<bool> enabled_{false};
  std::int64_t t0_ns_ = 0;
  std::mutex registry_mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::uint32_t next_tid_ = 1;
};

/// RAII complete-span ('X' event): times its own scope. Name and category
/// must be string literals (stored as pointers until export). When the
/// tracer is disabled, construction and destruction cost one branch each.
class Span {
 public:
  Span(const char* name, const char* category) {
    if (Tracer::global().enabled()) begin(name, category);
  }
  ~Span() {
    if (active_) end();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a `"key":value` arg; no-op (one branch) while inactive.
  template <typename T>
  Span& arg(const char* key, T&& value) {
    if (active_) args_.add(key, std::forward<T>(value));
    return *this;
  }

 private:
  void begin(const char* name, const char* category);
  void end();

  const char* name_ = nullptr;
  const char* category_ = nullptr;
  std::int64_t start_ns_ = 0;
  bool active_ = false;
  TraceArgs args_;
};

}  // namespace polaris::obs
