#include "serialize/model_io.hpp"

#include <stdexcept>
#include <string>

#include "ml/adaboost.hpp"
#include "ml/decision_tree.hpp"
#include "ml/forest.hpp"
#include "ml/gbdt.hpp"
#include "ml/model.hpp"

namespace polaris::serialize {

void write_tree(Writer& out, const ml::Tree& tree) {
  out.u64(tree.nodes.size());
  for (const ml::TreeNode& node : tree.nodes) {
    out.i32(node.feature);
    out.f64(node.threshold);
    out.i32(node.left);
    out.i32(node.right);
    out.f64(node.value);
    out.f64(node.cover);
  }
}

ml::Tree read_tree(Reader& in) {
  ml::Tree tree;
  const std::uint64_t count = in.u64();
  tree.nodes.reserve(count < 1u << 20 ? count : 0);
  for (std::uint64_t i = 0; i < count; ++i) {
    ml::TreeNode node;
    node.feature = in.i32();
    node.threshold = in.f64();
    node.left = in.i32();
    node.right = in.i32();
    node.value = in.f64();
    node.cover = in.f64();
    // Children must exist and come after their parent (creation order), so
    // prediction walks terminate even on adversarial input.
    if (!node.is_leaf()) {
      const auto limit = static_cast<std::int64_t>(count);
      if (node.left <= static_cast<std::int64_t>(i) || node.left >= limit ||
          node.right <= static_cast<std::int64_t>(i) || node.right >= limit) {
        throw std::runtime_error(
            "polaris archive: tree node " + std::to_string(i) +
            " has out-of-order children");
      }
    }
    tree.nodes.push_back(node);
  }
  return tree;
}

void write_ensemble(Writer& out, const ml::TreeEnsemble& ensemble) {
  out.u8(ensemble.link == ml::TreeEnsemble::Link::kLogistic ? 1 : 0);
  out.f64(ensemble.base);
  out.u64(ensemble.trees.size());
  for (const auto& wt : ensemble.trees) {
    out.f64(wt.weight);
    write_tree(out, wt.tree);
  }
}

ml::TreeEnsemble read_ensemble(Reader& in) {
  ml::TreeEnsemble ensemble;
  ensemble.link = in.u8() != 0 ? ml::TreeEnsemble::Link::kLogistic
                               : ml::TreeEnsemble::Link::kIdentity;
  ensemble.base = in.f64();
  const std::uint64_t count = in.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const double weight = in.f64();
    ensemble.trees.push_back({read_tree(in), weight});
  }
  return ensemble;
}

void write_dataset(Writer& out, const ml::Dataset& data) {
  out.u64(data.size());
  out.u64(data.feature_count());
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (const double v : data.row(i)) out.f64(v);
  }
  out.i32_vec(data.labels());
  out.f64_vec(data.weights());
}

ml::Dataset read_dataset(Reader& in) {
  const std::uint64_t rows = in.u64();
  const std::uint64_t width = in.u64();
  // Check-before-allocate: a lying length field must raise the layer's
  // clean error, not drive a giant allocation. (Legitimate data always
  // satisfies these - the labels vector alone needs 4 bytes per row.)
  if (width > in.remaining() / 8 ||
      (width == 0 ? rows > in.remaining()
                  : rows > in.remaining() / (8 * width))) {
    throw std::runtime_error("polaris archive: oversized dataset");
  }
  std::vector<std::vector<double>> features(rows);
  for (auto& row : features) {
    row.resize(width);
    for (auto& v : row) v = in.f64();
  }
  std::vector<int> labels = in.i32_vec();
  const std::vector<double> weights = in.f64_vec();
  if (labels.size() != rows || weights.size() != rows) {
    throw std::runtime_error("polaris archive: dataset row/label mismatch");
  }
  ml::Dataset data(std::move(features), std::move(labels));
  for (std::size_t i = 0; i < weights.size(); ++i) data.set_weight(i, weights[i]);
  return data;
}

void write_ruleset(Writer& out, const xai::RuleSet& rules) {
  out.u64(rules.rules().size());
  for (const xai::Rule& rule : rules.rules()) {
    out.u64(rule.literals.size());
    for (const xai::Literal& lit : rule.literals) {
      out.u64(lit.feature);
      out.boolean(lit.positive);
    }
    out.i32(rule.action);
    out.u64(rule.support);
    out.f64(rule.precision);
  }
}

xai::RuleSet read_ruleset(Reader& in) {
  std::vector<xai::Rule> rules;
  const std::uint64_t count = in.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    xai::Rule rule;
    const std::uint64_t literals = in.u64();
    for (std::uint64_t l = 0; l < literals; ++l) {
      xai::Literal lit;
      lit.feature = in.u64();
      lit.positive = in.boolean();
      rule.literals.push_back(lit);
    }
    rule.action = in.i32();
    rule.support = in.u64();
    rule.precision = in.f64();
    rules.push_back(std::move(rule));
  }
  return xai::RuleSet(std::move(rules));
}

}  // namespace polaris::serialize

namespace polaris::ml {

void save_classifier(serialize::Writer& out, const Classifier& model) {
  out.u32(static_cast<std::uint32_t>(model.kind()));
  model.save(out);
}

std::unique_ptr<Classifier> load_classifier(serialize::Reader& in) {
  const auto kind = static_cast<ClassifierKind>(in.u32());
  switch (kind) {
    case ClassifierKind::kDecisionTree:
      return std::make_unique<DecisionTree>(DecisionTree::load(in));
    case ClassifierKind::kRandomForest:
      return std::make_unique<RandomForest>(RandomForest::load(in));
    case ClassifierKind::kGbdt:
      return std::make_unique<Gbdt>(Gbdt::load(in));
    case ClassifierKind::kAdaBoost:
      return std::make_unique<AdaBoost>(AdaBoost::load(in));
  }
  throw std::runtime_error("polaris archive: unknown classifier kind " +
                           std::to_string(static_cast<std::uint32_t>(kind)));
}

}  // namespace polaris::ml
