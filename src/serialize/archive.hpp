// Versioned, endian-safe, tagged-chunk binary archive - the on-disk seam
// for every trained POLARIS artifact (model bundles today; campaign caches
// and cross-host shard results are designed to reuse the same container).
//
// Layout:
//   magic   "PLBA" (4 bytes)
//   version u32 LE (kFormatVersion)
//   chunks  repeated { tag: 4 bytes, length: u64 LE, payload }
//   trailer "CRC0" (4 bytes) + u32 LE CRC-32 over everything before it
//
// Chunks nest (a chunk payload may itself be a chunk sequence), so readers
// can skip whole unknown sections by tag. All multi-byte values are
// little-endian regardless of host; doubles travel as IEEE-754 bit patterns
// (bit-exact round-trip, including NaN payloads).
//
// Failure policy: Reader validates magic, version, and CRC up front and
// bounds-checks every read against the enclosing chunk, so truncated,
// corrupt, or future-version input always raises std::runtime_error -
// never UB, never a silently wrong artifact.
//
// Compatibility policy (see DESIGN.md "Bundle persistence"): appending
// fields at the END of an existing chunk is backward-compatible (old
// readers ignore the remainder on exit_chunk()); any other layout change
// bumps kFormatVersion.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace polaris::serialize {

/// Bumped on any non-append layout change. Readers reject newer versions.
inline constexpr std::uint32_t kFormatVersion = 1;

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320), the trailer checksum.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> bytes);

class Writer {
 public:
  Writer();  // emits magic + format version

  /// Opens a chunk (tag must be exactly 4 characters). Chunks nest.
  void begin_chunk(std::string_view tag);
  /// Closes the innermost open chunk, patching its length prefix.
  void end_chunk();

  void u8(std::uint8_t value);
  void u32(std::uint32_t value);
  void u64(std::uint64_t value);
  void i32(std::int32_t value);
  void f64(double value);
  void boolean(bool value) { u8(value ? 1 : 0); }
  void str(std::string_view value);
  void f64_vec(std::span<const double> values);
  void i32_vec(std::span<const int> values);
  void u8_vec(std::span<const std::uint8_t> values);
  void bool_vec(const std::vector<bool>& values);

  /// Bytes written so far (header + complete chunks; no trailer). Useful
  /// for fingerprinting a serialized section without finishing the archive.
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buffer_; }

  /// Appends the CRC trailer and returns the finished archive. All chunks
  /// must be closed; the Writer is spent afterwards.
  [[nodiscard]] std::vector<std::uint8_t> finish();

 private:
  std::vector<std::uint8_t> buffer_;
  std::vector<std::size_t> open_chunks_;  // offsets of length prefixes
};

class Reader {
 public:
  /// Takes ownership of the raw archive and validates magic, format
  /// version, and CRC trailer immediately. Throws std::runtime_error on
  /// any mismatch (truncation, corruption, future version).
  explicit Reader(std::vector<std::uint8_t> bytes);

  [[nodiscard]] std::uint32_t version() const { return version_; }

  /// Tag of the next chunk in the current scope ("" when the scope is
  /// exhausted). Does not advance.
  [[nodiscard]] std::string peek_tag() const;
  /// Enters the next chunk, which must carry `tag` (throws otherwise).
  void enter_chunk(std::string_view tag);
  /// Enters the next chunk iff it carries `tag`; returns false otherwise.
  [[nodiscard]] bool try_enter_chunk(std::string_view tag);
  /// Leaves the innermost chunk, skipping any unread remainder (how old
  /// readers tolerate fields appended by newer writers).
  void exit_chunk();
  /// Skips the next chunk in the current scope entirely.
  void skip_chunk();

  /// Bytes left in the current scope (chunk or archive body). Lets
  /// artifact readers apply the check-before-allocate policy to their own
  /// length fields, as the built-in vector readers do.
  [[nodiscard]] std::size_t remaining() const { return scope_end() - pos_; }

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int32_t i32();
  [[nodiscard]] double f64();
  [[nodiscard]] bool boolean() { return u8() != 0; }
  [[nodiscard]] std::string str();
  [[nodiscard]] std::vector<double> f64_vec();
  [[nodiscard]] std::vector<int> i32_vec();
  [[nodiscard]] std::vector<std::uint8_t> u8_vec();
  [[nodiscard]] std::vector<bool> bool_vec();

 private:
  [[nodiscard]] std::size_t scope_end() const;
  void require(std::size_t count, const char* what) const;
  [[noreturn]] void fail(const std::string& message) const;

  std::vector<std::uint8_t> buffer_;
  std::size_t pos_ = 0;
  std::size_t body_end_ = 0;  // start of the CRC trailer
  std::uint32_t version_ = 0;
  std::vector<std::size_t> chunk_ends_;
};

/// Whole-file helpers; throw std::runtime_error on I/O failure.
void write_file(const std::string& path, std::span<const std::uint8_t> bytes);
[[nodiscard]] std::vector<std::uint8_t> read_file(const std::string& path);

}  // namespace polaris::serialize
