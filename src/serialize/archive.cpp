#include "serialize/archive.hpp"

#include <array>
#include <bit>
#include <cstdio>
#include <stdexcept>

namespace polaris::serialize {

namespace {

constexpr std::array<std::uint8_t, 4> kMagic = {'P', 'L', 'B', 'A'};
constexpr std::array<std::uint8_t, 4> kTrailerTag = {'C', 'R', 'C', '0'};
constexpr std::size_t kHeaderSize = kMagic.size() + 4;      // magic + version
constexpr std::size_t kTrailerSize = kTrailerTag.size() + 4;  // tag + crc
constexpr std::size_t kChunkPrefixSize = 4 + 8;             // tag + u64 length

const std::array<std::uint32_t, 256>& crc_table() {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void put_u32(std::vector<std::uint8_t>& out, std::size_t at, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::size_t at, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[at + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
  const auto& table = crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t byte : bytes) {
    crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

// --- Writer -----------------------------------------------------------------

Writer::Writer() {
  buffer_.insert(buffer_.end(), kMagic.begin(), kMagic.end());
  buffer_.resize(buffer_.size() + 4);
  put_u32(buffer_, buffer_.size() - 4, kFormatVersion);
}

void Writer::begin_chunk(std::string_view tag) {
  if (tag.size() != 4) {
    throw std::logic_error("archive: chunk tag must be 4 characters");
  }
  buffer_.insert(buffer_.end(), tag.begin(), tag.end());
  open_chunks_.push_back(buffer_.size());
  buffer_.resize(buffer_.size() + 8);  // length placeholder
}

void Writer::end_chunk() {
  if (open_chunks_.empty()) {
    throw std::logic_error("archive: end_chunk without begin_chunk");
  }
  const std::size_t at = open_chunks_.back();
  open_chunks_.pop_back();
  put_u64(buffer_, at, buffer_.size() - (at + 8));
}

void Writer::u8(std::uint8_t value) { buffer_.push_back(value); }

void Writer::u32(std::uint32_t value) {
  buffer_.resize(buffer_.size() + 4);
  put_u32(buffer_, buffer_.size() - 4, value);
}

void Writer::u64(std::uint64_t value) {
  buffer_.resize(buffer_.size() + 8);
  put_u64(buffer_, buffer_.size() - 8, value);
}

void Writer::i32(std::int32_t value) { u32(static_cast<std::uint32_t>(value)); }

void Writer::f64(double value) { u64(std::bit_cast<std::uint64_t>(value)); }

void Writer::str(std::string_view value) {
  u64(value.size());
  buffer_.insert(buffer_.end(), value.begin(), value.end());
}

void Writer::f64_vec(std::span<const double> values) {
  u64(values.size());
  for (const double v : values) f64(v);
}

void Writer::i32_vec(std::span<const int> values) {
  u64(values.size());
  for (const int v : values) i32(v);
}

void Writer::u8_vec(std::span<const std::uint8_t> values) {
  u64(values.size());
  buffer_.insert(buffer_.end(), values.begin(), values.end());
}

void Writer::bool_vec(const std::vector<bool>& values) {
  u64(values.size());
  for (const bool v : values) u8(v ? 1 : 0);
}

std::vector<std::uint8_t> Writer::finish() {
  if (!open_chunks_.empty()) {
    throw std::logic_error("archive: finish with an open chunk");
  }
  const std::uint32_t crc = crc32(buffer_);
  buffer_.insert(buffer_.end(), kTrailerTag.begin(), kTrailerTag.end());
  buffer_.resize(buffer_.size() + 4);
  put_u32(buffer_, buffer_.size() - 4, crc);
  return std::move(buffer_);
}

// --- Reader -----------------------------------------------------------------

Reader::Reader(std::vector<std::uint8_t> bytes) : buffer_(std::move(bytes)) {
  if (buffer_.size() < kHeaderSize + kTrailerSize) {
    fail("truncated archive (" + std::to_string(buffer_.size()) + " bytes)");
  }
  for (std::size_t i = 0; i < kMagic.size(); ++i) {
    if (buffer_[i] != kMagic[i]) fail("bad magic (not a POLARIS archive)");
  }
  version_ = static_cast<std::uint32_t>(buffer_[4]) |
             static_cast<std::uint32_t>(buffer_[5]) << 8 |
             static_cast<std::uint32_t>(buffer_[6]) << 16 |
             static_cast<std::uint32_t>(buffer_[7]) << 24;
  if (version_ > kFormatVersion) {
    fail("format version " + std::to_string(version_) +
         " is newer than this build supports (" +
         std::to_string(kFormatVersion) + "); upgrade polaris");
  }
  body_end_ = buffer_.size() - kTrailerSize;
  for (std::size_t i = 0; i < kTrailerTag.size(); ++i) {
    if (buffer_[body_end_ + i] != kTrailerTag[i]) {
      fail("missing CRC trailer (truncated archive?)");
    }
  }
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<std::uint32_t>(buffer_[body_end_ + 4 +
                                                 static_cast<std::size_t>(i)])
              << (8 * i);
  }
  const std::uint32_t actual =
      crc32(std::span(buffer_.data(), body_end_));
  if (stored != actual) {
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%08x != %08x", actual, stored);
    fail(std::string("CRC mismatch (") + hex + "): corrupt archive");
  }
  pos_ = kHeaderSize;
}

std::size_t Reader::scope_end() const {
  return chunk_ends_.empty() ? body_end_ : chunk_ends_.back();
}

void Reader::require(std::size_t count, const char* what) const {
  // Compared against the remaining span (never pos_ + count, which a
  // corrupt 64-bit length could wrap around).
  if (count > scope_end() - pos_) {
    fail(std::string("unexpected end of ") +
         (chunk_ends_.empty() ? "archive" : "chunk") + " reading " + what);
  }
}

void Reader::fail(const std::string& message) const {
  throw std::runtime_error("polaris archive: " + message);
}

std::string Reader::peek_tag() const {
  if (pos_ == scope_end()) return {};
  if (pos_ + kChunkPrefixSize > scope_end()) return {};
  return {reinterpret_cast<const char*>(buffer_.data() + pos_), 4};
}

void Reader::enter_chunk(std::string_view tag) {
  const std::string found = peek_tag();
  if (found != tag) {
    fail("expected chunk '" + std::string(tag) + "', found '" + found + "'");
  }
  pos_ += 4;
  const std::uint64_t length = u64();
  if (length > scope_end() - pos_) {
    fail("chunk '" + std::string(tag) + "' overruns its container");
  }
  chunk_ends_.push_back(pos_ + length);
}

bool Reader::try_enter_chunk(std::string_view tag) {
  if (peek_tag() != tag) return false;
  enter_chunk(tag);
  return true;
}

void Reader::exit_chunk() {
  if (chunk_ends_.empty()) {
    throw std::logic_error("archive: exit_chunk without enter_chunk");
  }
  pos_ = chunk_ends_.back();
  chunk_ends_.pop_back();
}

void Reader::skip_chunk() {
  const std::string tag = peek_tag();
  if (tag.empty()) fail("skip_chunk at end of scope");
  enter_chunk(tag);
  exit_chunk();
}

std::uint8_t Reader::u8() {
  require(1, "u8");
  return buffer_[pos_++];
}

std::uint32_t Reader::u32() {
  require(4, "u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(buffer_[pos_++]) << (8 * i);
  }
  return v;
}

std::uint64_t Reader::u64() {
  require(8, "u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(buffer_[pos_++]) << (8 * i);
  }
  return v;
}

std::int32_t Reader::i32() { return static_cast<std::int32_t>(u32()); }

double Reader::f64() { return std::bit_cast<double>(u64()); }

std::string Reader::str() {
  const std::uint64_t length = u64();
  require(length, "string");
  std::string value(reinterpret_cast<const char*>(buffer_.data() + pos_),
                    length);
  pos_ += length;
  return value;
}

std::vector<double> Reader::f64_vec() {
  const std::uint64_t count = u64();
  if (count > (scope_end() - pos_) / 8) fail("oversized f64 vector");
  std::vector<double> values(count);
  for (auto& v : values) v = f64();
  return values;
}

std::vector<int> Reader::i32_vec() {
  const std::uint64_t count = u64();
  if (count > (scope_end() - pos_) / 4) fail("oversized i32 vector");
  std::vector<int> values(count);
  for (auto& v : values) v = i32();
  return values;
}

std::vector<std::uint8_t> Reader::u8_vec() {
  const std::uint64_t count = u64();
  require(count, "u8 vector");
  std::vector<std::uint8_t> values(buffer_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                   buffer_.begin() + static_cast<std::ptrdiff_t>(pos_ + count));
  pos_ += count;
  return values;
}

std::vector<bool> Reader::bool_vec() {
  const std::uint64_t count = u64();
  require(count, "bool vector");
  std::vector<bool> values(count);
  for (std::uint64_t i = 0; i < count; ++i) values[i] = buffer_[pos_++] != 0;
  return values;
}

// --- file I/O ---------------------------------------------------------------

void write_file(const std::string& path, std::span<const std::uint8_t> bytes) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    throw std::runtime_error("polaris archive: cannot open '" + path +
                             "' for writing");
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), file);
  const int close_result = std::fclose(file);  // unconditionally: no FD leak
  if (written != bytes.size() || close_result != 0) {
    throw std::runtime_error("polaris archive: short write to '" + path + "'");
  }
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    throw std::runtime_error("polaris archive: cannot open '" + path + "'");
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t block[65536];
  std::size_t got = 0;
  while ((got = std::fread(block, 1, sizeof(block), file)) > 0) {
    bytes.insert(bytes.end(), block, block + got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    throw std::runtime_error("polaris archive: read error on '" + path + "'");
  }
  return bytes;
}

}  // namespace polaris::serialize
