// Archive bindings for the trained POLARIS artifacts: trees, ensembles,
// datasets, and SHAP rule sets. Classifier persistence itself is virtual
// (ml::Classifier::save + ml::load_classifier); the helpers here are the
// shared primitives those implementations and the bundle layer build on.
//
// Every write_* / read_* pair round-trips bit-identically (doubles travel
// as IEEE-754 bit patterns), which is what makes a bundled model's
// score_gates output reproducible across hosts and processes.
#pragma once

#include "ml/dataset.hpp"
#include "ml/tree.hpp"
#include "serialize/archive.hpp"
#include "xai/rules.hpp"

namespace polaris::serialize {

void write_tree(Writer& out, const ml::Tree& tree);
[[nodiscard]] ml::Tree read_tree(Reader& in);

void write_ensemble(Writer& out, const ml::TreeEnsemble& ensemble);
[[nodiscard]] ml::TreeEnsemble read_ensemble(Reader& in);

void write_dataset(Writer& out, const ml::Dataset& data);
[[nodiscard]] ml::Dataset read_dataset(Reader& in);

void write_ruleset(Writer& out, const xai::RuleSet& rules);
[[nodiscard]] xai::RuleSet read_ruleset(Reader& in);

}  // namespace polaris::serialize
