// Reimplementation of the VALIANT flow (Sadhukhan et al., IEEE TC 2024) -
// the state-of-the-art baseline the paper compares against (Tables II, IV).
//
// VALIANT evaluates leakage with TVLA, replaces the flagged gates with
// masked composites, and re-evaluates, iterating until the design passes or
// the round budget is exhausted. Its runtime is dominated by the repeated
// TVLA campaigns - exactly the scalability bottleneck POLARIS removes
// (Sec. III-B), so measuring both flows end to end reproduces the paper's
// ~6x speedup naturally.
#pragma once

#include <cstdint>

#include "masking/masking.hpp"
#include "netlist/netlist.hpp"
#include "techlib/techlib.hpp"
#include "tvla/tvla.hpp"

namespace polaris::valiant {

struct ValiantConfig {
  /// Per-round TVLA settings (traces, noise, input classes, seed).
  tvla::TvlaConfig tvla;
  /// Maximum evaluate-mask rounds before giving up.
  std::size_t max_rounds = 6;
  /// Fraction of the flagged gates masked per round (1.0 = all; smaller
  /// values model the "tailored protection" batching of the original tool).
  double batch_fraction = 1.0;
  masking::Scheme scheme = masking::Scheme::kTrichina;
};

struct ValiantResult {
  netlist::Netlist masked;
  std::vector<netlist::GateId> masked_gates;  // original-design gate ids
  std::size_t rounds = 0;
  double seconds = 0.0;  // wall time of the full flow (TVLA rounds included)
  tvla::LeakageReport before;
  tvla::LeakageReport after;
};

[[nodiscard]] ValiantResult run_valiant(const netlist::Netlist& design,
                                        const techlib::TechLibrary& lib,
                                        const ValiantConfig& config);

}  // namespace polaris::valiant
