#include "valiant/valiant.hpp"

#include <algorithm>

#include "util/timer.hpp"

namespace polaris::valiant {

using netlist::GateId;

ValiantResult run_valiant(const netlist::Netlist& design,
                          const techlib::TechLibrary& lib,
                          const ValiantConfig& config) {
  util::Timer timer;

  tvla::LeakageReport before =
      tvla::run_fixed_vs_random(design, lib, config.tvla);

  std::vector<GateId> masked_set;
  std::vector<bool> in_set(design.gate_count(), false);
  netlist::Netlist current = design;
  tvla::LeakageReport latest = before;
  std::size_t rounds = 0;

  for (std::size_t round = 0; round < config.max_rounds; ++round) {
    // Flagged groups are reported against original gate ids; skip the ones
    // already masked (their residual leakage cannot be reduced further by
    // the same composite).
    std::vector<GateId> flagged;
    for (const GateId g : latest.leaky_groups()) {
      if (g < design.gate_count() && !in_set[g] &&
          netlist::is_maskable(design.gate(g).type)) {
        flagged.push_back(g);
      }
    }
    if (flagged.empty()) break;

    auto batch_size = static_cast<std::size_t>(
        config.batch_fraction * static_cast<double>(flagged.size()) + 0.999);
    batch_size = std::clamp<std::size_t>(batch_size, 1, flagged.size());
    for (std::size_t i = 0; i < batch_size; ++i) {
      masked_set.push_back(flagged[i]);
      in_set[flagged[i]] = true;
    }

    current = masking::apply_masking(design, masked_set, config.scheme).design;
    ++rounds;
    // Re-evaluate: this TVLA round is the flow's runtime cost center.
    latest = tvla::run_fixed_vs_random(current, lib, config.tvla);
  }

  ValiantResult result{std::move(current), std::move(masked_set), rounds,
                       timer.seconds(), std::move(before), std::move(latest)};
  return result;
}

}  // namespace polaris::valiant
