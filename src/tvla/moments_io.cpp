#include "tvla/moments_io.hpp"

#include <stdexcept>

namespace polaris::tvla {

namespace {

void write_accumulator(serialize::Writer& out, const MomentAccumulator& acc) {
  out.u64(acc.count());
  out.f64(acc.mean());
  out.f64(acc.sum2());
  out.f64(acc.sum3());
  out.f64(acc.sum4());
}

MomentAccumulator read_accumulator(serialize::Reader& in) {
  const std::uint64_t n = in.u64();
  const double mean = in.f64();
  const double s2 = in.f64();
  const double s3 = in.f64();
  const double s4 = in.f64();
  return MomentAccumulator::restore(static_cast<std::size_t>(n), mean, s2, s3,
                                    s4);
}

}  // namespace

void write_moments(serialize::Writer& out, const CampaignMoments& moments) {
  out.begin_chunk("MOMS");
  out.u64(moments.n_fixed());
  out.u64(moments.n_random());
  out.u64(moments.group_count());
  for (std::size_t g = 0; g < moments.group_count(); ++g) {
    out.u64(moments.single_ones_fixed(g));
    out.u64(moments.single_ones_random(g));
  }
  out.u64(moments.multi_group_count());
  for (std::size_t i = 0; i < moments.multi_group_count(); ++i) {
    write_accumulator(out, moments.multi_fixed(i));
    write_accumulator(out, moments.multi_random(i));
  }
  out.end_chunk();
}

CampaignMoments read_moments(serialize::Reader& in) {
  in.enter_chunk("MOMS");
  const std::uint64_t n_fixed = in.u64();
  const std::uint64_t n_random = in.u64();
  // Check-before-allocate: a single group is exactly 16 payload bytes, a
  // multi group two 40-byte accumulators - hostile counts are rejected
  // before any reserve.
  const std::uint64_t groups = in.u64();
  if (groups > in.remaining() / 16) {
    throw std::runtime_error("polaris tvla: moments group count exceeds "
                             "payload size");
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> singles;
  singles.reserve(groups);
  for (std::uint64_t g = 0; g < groups; ++g) {
    const std::uint64_t fixed = in.u64();
    const std::uint64_t random = in.u64();
    singles.emplace_back(fixed, random);
  }
  const std::uint64_t multis = in.u64();
  if (multis > in.remaining() / 80) {
    throw std::runtime_error("polaris tvla: moments multi-group count "
                             "exceeds payload size");
  }
  CampaignMoments moments(static_cast<std::size_t>(groups),
                          static_cast<std::size_t>(multis));
  moments.add_lane_counts(n_fixed, n_random);
  for (std::uint64_t g = 0; g < groups; ++g) {
    moments.add_single_ones(static_cast<std::size_t>(g), singles[g].first,
                            singles[g].second);
  }
  for (std::uint64_t i = 0; i < multis; ++i) {
    MomentAccumulator fixed = read_accumulator(in);
    MomentAccumulator random = read_accumulator(in);
    moments.set_multi(static_cast<std::size_t>(i), fixed, random);
  }
  in.exit_chunk();
  return moments;
}

}  // namespace polaris::tvla
