// Archive bindings for CampaignMoments - the work-unit payload of the
// distributed shard backend (DESIGN.md "Distributed execution").
//
// A remote worker runs a shard and ships its UNMERGED per-shard moments
// back; the coordinator replays the scheduler's ascending-shard-order
// merge, so the final report is bit-identical to a single-host run. That
// contract only holds if the codec round-trips the accumulator state
// exactly: integer counters as-is, every double as its IEEE-754 bit
// pattern (which serialize::Writer::f64 already guarantees).
#pragma once

#include "serialize/archive.hpp"
#include "tvla/moments.hpp"

namespace polaris::tvla {

/// Writes one "MOMS" chunk holding the full accumulator state.
void write_moments(serialize::Writer& out, const CampaignMoments& moments);

/// Reads one "MOMS" chunk. Applies the archive's check-before-allocate
/// policy to the group counts; throws std::runtime_error on malformed
/// input. The returned object merges bit-identically to the original.
[[nodiscard]] CampaignMoments read_moments(serialize::Reader& in);

}  // namespace polaris::tvla
