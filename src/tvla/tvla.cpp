#include "tvla/tvla.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "power/power_model.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace polaris::tvla {

using netlist::GateId;
using netlist::NetId;

LeakageReport::LeakageReport(std::vector<double> t_per_group,
                             std::vector<bool> measured, double threshold)
    : t_per_group_(std::move(t_per_group)),
      measured_(std::move(measured)),
      threshold_(threshold) {}

std::size_t LeakageReport::measured_count() const {
  return static_cast<std::size_t>(
      std::count(measured_.begin(), measured_.end(), true));
}

std::vector<GateId> LeakageReport::leaky_groups() const {
  std::vector<GateId> leaky;
  for (GateId g = 0; g < t_per_group_.size(); ++g) {
    if (measured_[g] && std::abs(t_per_group_[g]) > threshold_) leaky.push_back(g);
  }
  std::sort(leaky.begin(), leaky.end(), [this](GateId a, GateId b) {
    return std::abs(t_per_group_[a]) > std::abs(t_per_group_[b]);
  });
  return leaky;
}

double LeakageReport::total_abs_t() const {
  double total = 0.0;
  for (GateId g = 0; g < t_per_group_.size(); ++g) {
    if (measured_[g]) total += std::abs(t_per_group_[g]);
  }
  return total;
}

double LeakageReport::leakage_per_gate() const {
  const std::size_t n = measured_count();
  return n == 0 ? 0.0 : total_abs_t() / static_cast<double>(n);
}

namespace {

enum class Mode { kFixedVsRandom, kFixedVsFixed };

std::vector<bool> derive_fixed_vector(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<bool> bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = (rng() & 1ULL) != 0;
  return bits;
}

class Campaign {
 public:
  Campaign(const netlist::Netlist& design, const techlib::TechLibrary& lib,
           const TvlaConfig& config, Mode mode)
      : design_(design),
        config_(config),
        mode_(mode),
        power_(design, lib),
        master_(config.seed),
        stimulus_(config.seed ^ 0x571371a5ULL),
        simulator_(design, config.seed ^ 0x5e1f5eedULL) {
    const std::size_t n_inputs = design.primary_inputs().size();
    fixed_a_ = config.fixed_input.empty()
                   ? derive_fixed_vector(n_inputs, config.seed ^ 0xf1e1dcafeULL)
                   : config.fixed_input;
    fixed_b_ = config.fixed_input_b.empty()
                   ? derive_fixed_vector(n_inputs, config.seed ^ 0xbeefULL)
                   : config.fixed_input_b;
    if (fixed_a_.size() != n_inputs || fixed_b_.size() != n_inputs) {
      throw std::invalid_argument("TVLA fixed vector size mismatch");
    }
    if (!config.input_class.empty() && config.input_class.size() != n_inputs) {
      throw std::invalid_argument("TVLA input_class size mismatch");
    }
    classify_groups();
  }

  LeakageReport run() {
    const bool sequential = !design_sequential_empty();
    const std::size_t lanes = sim::kLanes;
    const std::size_t samples_per_batch =
        sequential ? lanes * config_.cycles_per_batch : lanes;
    const std::size_t batches =
        config_.traces == 0
            ? 0
            : (config_.traces + samples_per_batch - 1) / samples_per_batch;

    for (std::size_t b = 0; b < batches; ++b) {
      if (sequential) run_sequential_batch(b);
      else run_combinational_batch();
    }
    return finalize();
  }

 private:
  [[nodiscard]] bool design_sequential_empty() const {
    for (const auto& gate : design_.gates()) {
      if (gate.type == netlist::CellType::kDff) return false;
    }
    return true;
  }

  void classify_groups() {
    GateId max_group = 0;
    for (const auto& gate : design_.gates()) {
      max_group = std::max(max_group, gate.group);
    }
    group_count_ = static_cast<std::size_t>(max_group) + 1;

    std::vector<std::uint32_t> group_size(group_count_, 0);
    for (GateId g = 0; g < design_.gate_count(); ++g) {
      if (power_.gate_energy(g) > 0.0) {
        measured_gates_.push_back(g);
        group_size[design_.gate(g).group]++;
      }
    }
    group_measured_.assign(group_count_, false);
    group_multi_index_.assign(group_count_, kNotMulti);
    for (const GateId g : measured_gates_) {
      group_measured_[design_.gate(g).group] = true;
    }
    // Multi-member groups need real-valued samples; single-member groups use
    // the binary counting fast path.
    for (GateId grp = 0; grp < group_count_; ++grp) {
      if (group_size[grp] > 1) {
        group_multi_index_[grp] = static_cast<std::uint32_t>(multi_group_ids_.size());
        multi_group_ids_.push_back(grp);
      }
    }
    single_ones_fixed_.assign(group_count_, 0);
    single_ones_random_.assign(group_count_, 0);
    // For single-member groups the binary counters need the member's energy
    // to place the {0, E} samples on the physical scale the noise floor
    // lives on.
    single_energy_.assign(group_count_, 0.0);
    for (const GateId g : measured_gates_) {
      const GateId grp = design_.gate(g).group;
      if (group_multi_index_[grp] == kNotMulti) {
        single_energy_[grp] = power_.gate_energy(g);
      }
    }
    multi_acc_fixed_.resize(multi_group_ids_.size());
    multi_acc_random_.resize(multi_group_ids_.size());
    lane_sums_.assign(multi_group_ids_.size() * sim::kLanes, 0.0);
  }

  [[nodiscard]] InputClass input_class(std::size_t pi_index) const {
    return config_.input_class.empty() ? InputClass::kSensitive
                                       : config_.input_class[pi_index];
  }

  /// Pre-transition state: every trace starts from a fresh random vector on
  /// data-like inputs; fixed-common inputs (the key) hold their fixed value
  /// even between traces, as a loaded key register would.
  void apply_base_inputs() {
    const auto& inputs = design_.primary_inputs();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const std::uint64_t word = input_class(i) == InputClass::kFixedCommon
                                     ? (fixed_a_[i] ? ~0ULL : 0ULL)
                                     : stimulus_();
      simulator_.set_input(i, word);
    }
  }

  void apply_target_inputs(std::uint64_t fixed_mask) {
    const auto& inputs = design_.primary_inputs();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const std::uint64_t a = fixed_a_[i] ? ~0ULL : 0ULL;
      const std::uint64_t b = fixed_b_[i] ? ~0ULL : 0ULL;
      std::uint64_t word = 0;
      switch (input_class(i)) {
        case InputClass::kSensitive:
          word = (mode_ == Mode::kFixedVsRandom)
                     ? (a & fixed_mask) | (stimulus_() & ~fixed_mask)
                     : (a & fixed_mask) | (b & ~fixed_mask);
          break;
        case InputClass::kFixedCommon:
          word = a;
          break;
        case InputClass::kRandomCommon:
          word = stimulus_();
          break;
      }
      simulator_.set_input(i, word);
    }
  }

  void run_combinational_batch() {
    apply_base_inputs();
    simulator_.eval();  // base state; not sampled
    const std::uint64_t mask = master_();
    apply_target_inputs(mask);
    simulator_.eval();
    sample(mask);
  }

  void run_sequential_batch(std::size_t batch_index) {
    simulator_.reset(config_.seed ^ (0x9e3779b9ULL * (batch_index + 1)));
    const std::uint64_t mask = master_();
    for (std::size_t cycle = 0;
         cycle < config_.warmup_cycles + config_.cycles_per_batch; ++cycle) {
      apply_target_inputs(mask);
      simulator_.eval();
      if (cycle >= config_.warmup_cycles) sample(mask);
      simulator_.latch();
    }
  }

  void sample(std::uint64_t fixed_mask) {
    const auto n_fixed = static_cast<std::uint64_t>(__builtin_popcountll(fixed_mask));
    n_fixed_ += n_fixed;
    n_random_ += sim::kLanes - n_fixed;

    for (const GateId g : measured_gates_) {
      const std::uint64_t toggles = simulator_.toggles(g);
      if (toggles == 0) continue;
      const GateId group = design_.gate(g).group;
      const std::uint32_t multi = group_multi_index_[group];
      if (multi == kNotMulti) {
        single_ones_fixed_[group] +=
            static_cast<std::uint64_t>(__builtin_popcountll(toggles & fixed_mask));
        single_ones_random_[group] +=
            static_cast<std::uint64_t>(__builtin_popcountll(toggles & ~fixed_mask));
      } else {
        const double energy = power_.gate_energy(g);
        double* lane_sum = &lane_sums_[multi * sim::kLanes];
        std::uint64_t bits = toggles;
        while (bits != 0) {
          const int lane = __builtin_ctzll(bits);
          lane_sum[lane] += energy;
          bits &= bits - 1;
        }
      }
    }
    // Every sample step contributes one sample per lane to each multi group
    // (possibly zero-valued); push and clear.
    if (!multi_group_ids_.empty()) {
      for (std::size_t m = 0; m < multi_group_ids_.size(); ++m) {
        double* lane_sum = &lane_sums_[m * sim::kLanes];
        for (std::size_t lane = 0; lane < sim::kLanes; ++lane) {
          const bool fixed = ((fixed_mask >> lane) & 1ULL) != 0;
          (fixed ? multi_acc_fixed_[m] : multi_acc_random_[m]).add(lane_sum[lane]);
          lane_sum[lane] = 0.0;
        }
      }
    }
  }

  LeakageReport finalize() {
    const double noise_var = config_.noise_std_fj * config_.noise_std_fj;
    std::vector<double> t(group_count_, 0.0);
    for (GateId grp = 0; grp < group_count_; ++grp) {
      if (!group_measured_[grp]) continue;
      const std::uint32_t multi = group_multi_index_[grp];
      if (multi == kNotMulti) {
        // Samples are {0, E}; with additive noise the class means are
        // E*p and the sample variances E^2*v + sigma^2.
        if (n_fixed_ < 2 || n_random_ < 2) continue;
        const double energy = single_energy_[grp];
        const double n0 = static_cast<double>(n_fixed_);
        const double n1 = static_cast<double>(n_random_);
        const double p0 = static_cast<double>(single_ones_fixed_[grp]) / n0;
        const double p1 = static_cast<double>(single_ones_random_[grp]) / n1;
        const double v0 = n0 * p0 * (1.0 - p0) / (n0 - 1.0);
        const double v1 = n1 * p1 * (1.0 - p1) / (n1 - 1.0);
        t[grp] = welch_t(energy * p0, energy * energy * v0 + noise_var, n0,
                         energy * p1, energy * energy * v1 + noise_var, n1)
                     .t;
      } else {
        const auto& q0 = multi_acc_fixed_[multi];
        const auto& q1 = multi_acc_random_[multi];
        t[grp] = welch_t(q0.mean(), q0.variance_sample() + noise_var,
                         static_cast<double>(q0.count()), q1.mean(),
                         q1.variance_sample() + noise_var,
                         static_cast<double>(q1.count()))
                     .t;
      }
    }
    return LeakageReport(std::move(t), std::move(group_measured_),
                         config_.threshold);
  }

  static constexpr std::uint32_t kNotMulti = 0xffffffffU;

  const netlist::Netlist& design_;
  TvlaConfig config_;
  Mode mode_;
  power::PowerModel power_;
  util::Xoshiro256 master_;
  util::Xoshiro256 stimulus_;
  sim::Simulator simulator_;
  std::vector<bool> fixed_a_, fixed_b_;

  std::size_t group_count_ = 0;
  std::vector<GateId> measured_gates_;
  std::vector<bool> group_measured_;
  std::vector<std::uint32_t> group_multi_index_;
  std::vector<GateId> multi_group_ids_;

  std::uint64_t n_fixed_ = 0, n_random_ = 0;
  std::vector<std::uint64_t> single_ones_fixed_, single_ones_random_;
  std::vector<double> single_energy_;
  std::vector<MomentAccumulator> multi_acc_fixed_, multi_acc_random_;
  std::vector<double> lane_sums_;
};

}  // namespace

LeakageReport run_fixed_vs_random(const netlist::Netlist& design,
                                  const techlib::TechLibrary& lib,
                                  const TvlaConfig& config) {
  return Campaign(design, lib, config, Mode::kFixedVsRandom).run();
}

LeakageReport run_fixed_vs_fixed(const netlist::Netlist& design,
                                 const techlib::TechLibrary& lib,
                                 const TvlaConfig& config) {
  return Campaign(design, lib, config, Mode::kFixedVsFixed).run();
}

}  // namespace polaris::tvla
