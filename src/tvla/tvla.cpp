#include "tvla/tvla.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <utility>

#include "engine/scheduler.hpp"
#include "engine/trace_engine.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "power/power_model.hpp"
#include "power/sample_plan.hpp"
#include "sim/compiled.hpp"
#include "sim/simd.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace polaris::tvla {

using netlist::GateId;
using netlist::NetId;

LeakageReport::LeakageReport(std::vector<double> t_per_group,
                             std::vector<bool> measured, double threshold)
    : t_per_group_(std::move(t_per_group)),
      measured_(std::move(measured)),
      threshold_(threshold) {}

std::size_t LeakageReport::measured_count() const {
  return static_cast<std::size_t>(
      std::count(measured_.begin(), measured_.end(), true));
}

std::vector<GateId> LeakageReport::leaky_groups() const {
  std::vector<GateId> leaky;
  for (GateId g = 0; g < t_per_group_.size(); ++g) {
    if (measured_[g] && std::abs(t_per_group_[g]) > threshold_) leaky.push_back(g);
  }
  std::sort(leaky.begin(), leaky.end(), [this](GateId a, GateId b) {
    return std::abs(t_per_group_[a]) > std::abs(t_per_group_[b]);
  });
  return leaky;
}

std::size_t LeakageReport::leaky_count() const {
  std::size_t count = 0;
  for (GateId g = 0; g < t_per_group_.size(); ++g) {
    if (measured_[g] && std::abs(t_per_group_[g]) > threshold_) ++count;
  }
  return count;
}

double LeakageReport::total_abs_t() const {
  double total = 0.0;
  for (GateId g = 0; g < t_per_group_.size(); ++g) {
    if (measured_[g]) total += std::abs(t_per_group_[g]);
  }
  return total;
}

double LeakageReport::leakage_per_gate() const {
  const std::size_t n = measured_count();
  return n == 0 ? 0.0 : total_abs_t() / static_cast<double>(n);
}

namespace {

enum class Mode { kFixedVsRandom, kFixedVsFixed };

// Stream tags for engine::stream_seed: every random quantity a batch
// consumes is keyed by (campaign seed, batch index, tag), making batches
// independent of execution order and shard placement (see DESIGN.md).
constexpr std::uint64_t kTagStimulus = 0x5354494d554c5553ULL;  // "STIMULUS"
constexpr std::uint64_t kTagClassMask = 0x434c415353ULL;  // "CLASS"
constexpr std::uint64_t kTagMaskShares = 0x52414e44ULL;  // kRand cells

std::vector<bool> derive_fixed_vector(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<bool> bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = (rng() & 1ULL) != 0;
  return bits;
}

/// Out-of-line instantiation point for the blocked readout. The library
/// targets baseline x86-64, where __builtin_popcountll compiles to a
/// multi-op bit-twiddling sequence - and two popcounts per (single op,
/// lane word) dominate the sampling loop. target_clones emits a second
/// clone of this function (template body inlined) compiled with the
/// hardware popcnt instruction and picks it via the loader's ifunc
/// resolver on CPUs that have it: same integer results, no portability
/// loss, no per-call dispatch cost.
#if defined(__x86_64__) && defined(__GNUC__)
__attribute__((target_clones("popcnt", "default")))
#endif
void sample_block(const power::SamplePlan& plan,
                  const std::uint64_t* toggle_words, std::size_t lane_words,
                  std::size_t active_words, const std::uint64_t* class_masks,
                  double* lane_sums, CampaignMoments& moments) {
  plan.sample(toggle_words, lane_words, active_words, class_masks, lane_sums,
              moments);
}

/// Thin protocol layer: owns the campaign-wide, read-only context (the
/// compiled design plan, power model, sampling plan, fixed vectors) and
/// defines how one batch of traces is stimulated and sampled. The design
/// is compiled ONCE here; every shard's Simulator shares the plan, so
/// per-shard setup never re-runs topological_order() or rebuilds a
/// schedule. Execution and merging belong to the trace engine; all mutable
/// per-shard state lives in ShardState.
/// sim::compile wrapped in telemetry: the once-per-campaign cost the
/// compiled-kernel refactor moved out of the shard loop, now visible as
/// the `tvla.compile_us` histogram and a "compile" span.
sim::CompiledDesignPtr compile_timed(const netlist::Netlist& design) {
  static auto& compile_us =
      obs::Registry::global().histogram("tvla.compile_us");
  obs::Span span("compile", "tvla");
  span.arg("gates", static_cast<std::uint64_t>(design.gate_count()));
  const std::int64_t t0 = obs::now_ns();
  auto compiled = sim::compile(design);
  compile_us.record(static_cast<std::uint64_t>((obs::now_ns() - t0) / 1000));
  return compiled;
}

class Campaign {
 public:
  Campaign(const netlist::Netlist& design, const techlib::TechLibrary& lib,
           const TvlaConfig& config, Mode mode)
      : Campaign(compile_timed(design), lib, config, mode) {}

  Campaign(sim::CompiledDesignPtr compiled, const techlib::TechLibrary& lib,
           const TvlaConfig& config, Mode mode)
      : design_(compiled->design()),
        config_(config),
        mode_(mode),
        compiled_(std::move(compiled)),
        power_(design_, lib),
        plan_(*compiled_, power_) {
    const std::size_t n_inputs = design_.primary_inputs().size();
    fixed_a_ = config.fixed_input.empty()
                   ? derive_fixed_vector(n_inputs, config.seed ^ 0xf1e1dcafeULL)
                   : config.fixed_input;
    fixed_b_ = config.fixed_input_b.empty()
                   ? derive_fixed_vector(n_inputs, config.seed ^ 0xbeefULL)
                   : config.fixed_input_b;
    if (fixed_a_.size() != n_inputs || fixed_b_.size() != n_inputs) {
      throw std::invalid_argument("TVLA fixed vector size mismatch");
    }
    if (!config.input_class.empty() && config.input_class.size() != n_inputs) {
      throw std::invalid_argument("TVLA input_class size mismatch");
    }
    if (config.lane_words != 0 && !sim::valid_lane_words(config.lane_words)) {
      throw std::invalid_argument("TvlaConfig.lane_words must be 1, 2, 4, or 8");
    }
    sequential_ = design_has_dff();
    if (config.budget.enabled && config.budget.min_traces == 0) {
      throw std::invalid_argument(
          "TvlaBudget.min_traces must be positive when enabled");
    }
    // Sequential campaigns stay at one word per pass: a K-batch lockstep
    // would push samples cycle-major across batches instead of the
    // batch-major order the moment accumulators saw pre-blocking, breaking
    // float bit-identity. The Simulator itself supports K > 1 on
    // sequential designs (oracle-tested); only the campaign protocol pins
    // the width.
    lane_words_ = sequential_ ? 1
                              : (config.lane_words != 0
                                     ? config.lane_words
                                     : sim::default_lane_words());
    if (config_.budget.enabled) build_checkpoint_schedule();

    // Telemetry only (never serialized, never fingerprinted): campaign
    // count/trace budget counters, and an async trace span that follows
    // the campaign across whichever threads run its shards. The span
    // closes in finalize().
    static auto& campaigns =
        obs::Registry::global().counter("tvla.campaigns");
    static auto& traces = obs::Registry::global().counter("tvla.traces");
    campaigns.add();
    traces.add(config_.traces);
    auto& tracer = obs::Tracer::global();
    if (tracer.enabled()) {
      trace_id_ = obs::Tracer::next_async_id();
      obs::TraceArgs args;
      args.add("gates", static_cast<std::uint64_t>(design_.gate_count()))
          .add("traces", static_cast<std::uint64_t>(config_.traces))
          .add("lane_words", static_cast<std::uint64_t>(lane_words_))
          .add("simd", sim::simd_name(lane_words_))
          .add("sequential", sequential_)
          .add("mode", mode_ == Mode::kFixedVsRandom ? "fixed-vs-random"
                                                     : "fixed-vs-fixed");
      tracer.async_begin("campaign", "tvla", trace_id_, std::move(args).str());
    }
  }

  /// Traces one batch contributes (sequential designs pack
  /// 64 * cycles_per_batch samples per batch).
  [[nodiscard]] std::size_t samples_per_batch() const {
    return sequential_ ? sim::kLanes * config_.cycles_per_batch : sim::kLanes;
  }

  /// Trace budget in whole 64-lane batches.
  [[nodiscard]] std::size_t batch_count() const {
    const std::size_t per_batch = samples_per_batch();
    return config_.traces == 0
               ? 0
               : (config_.traces + per_batch - 1) / per_batch;
  }

  /// Scheduler priority: a proxy for the campaign's simulation cost, so the
  /// global queue drains heavier campaigns first (LPT order).
  [[nodiscard]] std::size_t cost_weight() const {
    const std::size_t cycles = sequential_ ? config_.cycles_per_batch : 1;
    return batch_count() * cycles * std::max<std::size_t>(1, design_.gate_count());
  }

  /// Synchronous entry point. Budget-disabled campaigns take the
  /// pre-existing TraceEngine path unchanged (byte-identical results);
  /// budget-enabled ones route through a private Scheduler so the
  /// checkpointed submit/drain seam is the ONLY early-stop implementation.
  static LeakageReport run(std::shared_ptr<Campaign> self) {
    if (!self->config_.budget.enabled) return self->run_sync();
    engine::Scheduler scheduler(self->config_.threads);
    auto future = submit(std::move(self), scheduler);
    scheduler.drain();
    return future.get();
  }

  /// Installs the per-checkpoint observer (streaming audits). Must be set
  /// before submit()/run().
  void set_progress(ProgressFn progress) { progress_ = std::move(progress); }

  /// Names the campaign in the scheduler's live progress table. Telemetry
  /// only - never serialized, never part of the report.
  void set_label(std::string label) { label_ = std::move(label); }

  /// Queues this campaign on the global scheduler. `self` keeps the
  /// campaign (and its power model / group layout) alive inside the shard
  /// closures until the last shard finalized the report.
  static std::future<LeakageReport> submit(std::shared_ptr<Campaign> self,
                                           engine::Scheduler& scheduler) {
    auto make = [self](std::size_t) { return self->make_shard_state(); };
    auto run_blk = [self](ShardState& state, std::size_t batch_begin,
                          std::size_t words) {
      self->run_block(state, batch_begin, words);
    };
    auto merge = [](ShardState& into, ShardState&& from) {
      into.moments.merge(from.moments);
    };
    auto fin = [self](ShardState&& total) {
      return self->finalize(total.moments);
    };
    if (!self->config_.budget.enabled) {
      return scheduler.submit_blocks<ShardState>(
          self->batch_count(), self->lane_words_, std::move(make),
          std::move(run_blk), std::move(merge), std::move(fin),
          self->cost_weight(), self->label_);
    }
    // Budget-enabled campaigns use the checkpointed seam even when the
    // milestone list is empty (floor >= budget): the incremental ascending
    // merge runs the same float op sequence, and finalize() still records
    // trace usage.
    auto checkpoint = [self](const ShardState& merged,
                             std::size_t shards_merged) {
      return self->evaluate_checkpoint(merged.moments, shards_merged);
    };
    return scheduler.submit_checkpointed<ShardState>(
        self->batch_count(), self->lane_words_, std::move(make),
        std::move(run_blk), std::move(merge), std::move(fin),
        self->checkpoint_shards_, std::move(checkpoint), self->cost_weight(),
        self->label_);
  }

  /// Shard-granular execution for tvla::ShardRunner: runs one shard of the
  /// campaign's ShardPlan into a fresh moments block - the exact block loop
  /// the scheduler's run_shard executes (fresh state, blocks re-anchored at
  /// the shard begin), so the result is the shard state any scheduler,
  /// thread count, or host would have produced.
  [[nodiscard]] CampaignMoments run_shard_moments(std::size_t shard) const {
    const engine::ShardPlan plan = engine::ShardPlan::make(batch_count());
    ShardState state = make_shard_state();
    const std::size_t end = plan.end(shard);
    for (std::size_t b = plan.begin(shard); b < end; b += lane_words_) {
      run_block(state, b, std::min(lane_words_, end - b));
    }
    return std::move(state.moments);
  }

  [[nodiscard]] const std::vector<std::size_t>& checkpoint_shards() const {
    return checkpoint_shards_;
  }
  /// A zeroed moments block with the campaign's group layout - the merge
  /// identity, and the finalize input for zero-batch campaigns (mirroring
  /// the scheduler's finalize(make(0)) semantics).
  [[nodiscard]] CampaignMoments empty_moments() const {
    return CampaignMoments(plan_.group_count(), plan_.multi_group_count());
  }
  /// Public seams over the private checkpoint/finalize paths, for the
  /// coordinator-side merge replay (tvla::ShardRunner).
  [[nodiscard]] bool checkpoint_decision(const CampaignMoments& merged,
                                         std::size_t shards_merged) {
    return evaluate_checkpoint(merged, shards_merged);
  }
  [[nodiscard]] LeakageReport finalize_moments(const CampaignMoments& total) {
    return finalize(total);
  }

 private:
  /// Everything one shard mutates: its own K-word simulator, one
  /// per-batch stimulus stream and class mask per lane word, the mergeable
  /// statistics, and the per-(word, lane) group energy scratch (the fused
  /// power accumulation - no per-lane power vector is ever materialized).
  struct ShardState {
    sim::Simulator simulator;
    std::vector<util::Xoshiro256> stimulus;   // one stream per lane word
    std::vector<std::uint64_t> class_masks;   // per-word fixed-class mask
    CampaignMoments moments;
    std::vector<double> lane_sums;
  };

  /// The fixed-budget TraceEngine path, untouched by the budget feature.
  LeakageReport run_sync() {
    const engine::TraceEngine eng(config_.threads);
    ShardState merged = eng.run_blocks<ShardState>(
        batch_count(), lane_words_,
        [this](std::size_t) { return make_shard_state(); },
        [this](ShardState& state, std::size_t batch_begin, std::size_t words) {
          run_block(state, batch_begin, words);
        },
        [](ShardState& into, ShardState&& from) {
          into.moments.merge(from.moments);
        });
    return finalize(merged.moments);
  }

  /// Fixed trace milestones (min_traces, 2x, 4x, ... strictly below the
  /// full budget), each rounded UP to the next shard boundary of the same
  /// ShardPlan the execution uses - a pure function of the batch count and
  /// the budget floor, so the schedule (and with it every stop decision)
  /// is independent of threads and lane_words.
  void build_checkpoint_schedule() {
    const engine::ShardPlan plan = engine::ShardPlan::make(batch_count());
    if (plan.shard_count <= 1) return;
    const std::size_t per_batch = samples_per_batch();
    const std::size_t total = plan.total_batches * per_batch;
    std::size_t target = config_.budget.min_traces;
    for (std::size_t s = 1; s < plan.shard_count && target < total; ++s) {
      const std::size_t covered = plan.end(s - 1) * per_batch;
      if (covered < target) continue;
      checkpoint_shards_.push_back(s);
      // Advance to the smallest power-of-two multiple of the floor that
      // this prefix does NOT already cover.
      while (target <= covered && target < total) {
        target = target > total / 2 ? total : target * 2;
      }
    }
  }

  /// The two-sided decision rule, evaluated on the merged shard prefix at
  /// one milestone (see TvlaBudget). Returns true to stop the campaign.
  bool evaluate_checkpoint(const CampaignMoments& moments,
                           std::size_t shards_merged) {
    static auto& checkpoint_us =
        obs::Registry::global().histogram("tvla.checkpoint_us");
    obs::Span span("checkpoint", "tvla");
    const std::int64_t t0 = obs::now_ns();
    const engine::ShardPlan plan = engine::ShardPlan::make(batch_count());
    const std::size_t traces_done =
        plan.end(shards_merged - 1) * samples_per_batch();
    const std::size_t total = plan.total_batches * samples_per_batch();
    std::vector<double> t;
    std::vector<bool> measured;
    compute_t(moments, t, measured);
    const double projection =
        std::sqrt(static_cast<double>(total) / static_cast<double>(traces_done));
    const double margin = config_.budget.margin;
    // Asymmetric campaign verdict (see TvlaBudget): one confidently leaky
    // group fails the design outright, while a clean verdict must rule out
    // every measured group.
    bool any_leaky = false;
    bool all_clean = true;
    for (GateId grp = 0; grp < t.size(); ++grp) {
      if (!measured[grp]) continue;
      const double abs_t = std::abs(t[grp]);
      if (abs_t > config_.threshold + margin) {
        any_leaky = true;
        break;
      }
      if (!(abs_t * projection < config_.threshold - margin)) {
        all_clean = false;
      }
    }
    const bool all_decided = any_leaky || all_clean;
    if (progress_) {
      LeakageReport partial(std::move(t), std::move(measured),
                            config_.threshold);
      partial.set_trace_usage(traces_done, false);
      progress_(partial, traces_done);
    }
    if (all_decided) {
      stopped_ = true;
      traces_used_ = traces_done;
    }
    span.arg("traces", static_cast<std::uint64_t>(traces_done))
        .arg("stop", static_cast<std::uint64_t>(all_decided ? 1 : 0));
    checkpoint_us.record(
        static_cast<std::uint64_t>((obs::now_ns() - t0) / 1000));
    return all_decided;
  }

  [[nodiscard]] ShardState make_shard_state() const {
    return ShardState{
        sim::Simulator(compiled_, /*seed=*/0, lane_words_),
        std::vector<util::Xoshiro256>(lane_words_, util::Xoshiro256(0)),
        std::vector<std::uint64_t>(lane_words_, 0),
        CampaignMoments(plan_.group_count(), plan_.multi_group_count()),
        std::vector<double>(
            plan_.multi_group_count() * lane_words_ * sim::kLanes, 0.0)};
  }

  [[nodiscard]] bool design_has_dff() const {
    for (const auto& gate : design_.gates()) {
      if (gate.type == netlist::CellType::kDff) return true;
    }
    return false;
  }

  [[nodiscard]] InputClass input_class(std::size_t pi_index) const {
    return config_.input_class.empty() ? InputClass::kSensitive
                                       : config_.input_class[pi_index];
  }

  /// Pre-transition state: every trace starts from a fresh random vector on
  /// data-like inputs; fixed-common inputs (the key) hold their fixed value
  /// even between traces, as a loaded key register would. Inputs outer,
  /// lane words inner: each word's stimulus stream draws in the same
  /// input-ascending order the one-word path used.
  void apply_base_inputs(ShardState& state, std::size_t words) const {
    const auto& inputs = design_.primary_inputs();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      if (input_class(i) == InputClass::kFixedCommon) {
        const std::uint64_t word = fixed_a_[i] ? ~0ULL : 0ULL;
        for (std::size_t w = 0; w < words; ++w) {
          state.simulator.set_input_word(i, w, word);
        }
      } else {
        for (std::size_t w = 0; w < words; ++w) {
          state.simulator.set_input_word(i, w, state.stimulus[w]());
        }
      }
    }
  }

  void apply_target_inputs(ShardState& state, std::size_t words) const {
    const auto& inputs = design_.primary_inputs();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const std::uint64_t a = fixed_a_[i] ? ~0ULL : 0ULL;
      const std::uint64_t b = fixed_b_[i] ? ~0ULL : 0ULL;
      for (std::size_t w = 0; w < words; ++w) {
        const std::uint64_t fixed_mask = state.class_masks[w];
        std::uint64_t word = 0;
        switch (input_class(i)) {
          case InputClass::kSensitive:
            word = (mode_ == Mode::kFixedVsRandom)
                       ? (a & fixed_mask) |
                             (state.stimulus[w]() & ~fixed_mask)
                       : (a & fixed_mask) | (b & ~fixed_mask);
            break;
          case InputClass::kFixedCommon:
            word = a;
            break;
          case InputClass::kRandomCommon:
            word = state.stimulus[w]();
            break;
        }
        state.simulator.set_input_word(i, w, word);
      }
    }
  }

  /// One lane block of `words` consecutive batches, each fully keyed by
  /// its global index: lane word w carries batch batch_begin + w, with
  /// stimulus stream, class mask, and mask-share randomness all derived
  /// from (seed, batch_begin + w) - exactly the streams that batch
  /// consumed when it ran alone, so any block width, shard, or thread
  /// reproduces it bit-identically. Tail blocks (words < lane_words_)
  /// evaluate the full simulator width but only seed and sample the
  /// leading `words` lane words.
  void run_block(ShardState& state, std::size_t batch_begin,
                 std::size_t words) const {
    // One relaxed add per lane block (~64*words traces), NOT per trace:
    // live throughput (traces/s via interval deltas) at the documented
    // shard/block instrumentation granularity, never the kernel loop.
    static auto& traces_run =
        obs::Registry::global().counter("tvla.traces_run");
    traces_run.add(static_cast<std::uint64_t>(words) * samples_per_batch());
    for (std::size_t w = 0; w < words; ++w) {
      const auto index = static_cast<std::uint64_t>(batch_begin + w);
      state.stimulus[w] = util::Xoshiro256(
          engine::stream_seed(config_.seed, index, kTagStimulus));
      state.class_masks[w] =
          engine::stream_seed(config_.seed, index, kTagClassMask);
    }

    if (sequential_) {  // lane_words_ == 1: one batch per block
      state.simulator.reset(
          engine::stream_seed(config_.seed, batch_begin, kTagMaskShares));
      for (std::size_t cycle = 0;
           cycle < config_.warmup_cycles + config_.cycles_per_batch; ++cycle) {
        apply_target_inputs(state, words);
        state.simulator.eval();
        if (cycle >= config_.warmup_cycles) sample(state, words);
        state.simulator.latch();
      }
      return;
    }

    for (std::size_t w = 0; w < words; ++w) {
      state.simulator.reseed_word(
          w, engine::stream_seed(config_.seed,
                                 static_cast<std::uint64_t>(batch_begin + w),
                                 kTagMaskShares));
    }
    apply_base_inputs(state, words);
    // Base state: never sampled, so skip toggle recording - the target
    // eval recomputes every gate's toggle (base -> target) from values.
    state.simulator.eval(/*record_toggles=*/false);
    apply_target_inputs(state, words);
    state.simulator.eval();
    sample(state, words);
  }

  /// Fused toggle/energy readout of the block via the compiled sampling
  /// plan (power::SamplePlan::sample): singles feed the binary counters,
  /// multi members accumulate pre-resolved energies per (word, lane) in
  /// ascending-GateId order, and per-group samples are pushed word-major -
  /// the accumulation-order contract that keeps every t-stat bit-identical
  /// to the one-word path.
  void sample(ShardState& state, std::size_t words) const {
    sample_block(plan_, state.simulator.toggle_words(), lane_words_, words,
                 state.class_masks.data(), state.lane_sums.data(),
                 state.moments);
  }

  /// Per-group Welch t from (possibly partial) campaign moments - the one
  /// math path both the final report and every checkpoint evaluate, so a
  /// stop decision is made on exactly the numbers the report would show.
  void compute_t(const CampaignMoments& moments, std::vector<double>& t,
                 std::vector<bool>& measured) const {
    const double noise_var = config_.noise_std_fj * config_.noise_std_fj;
    t.assign(plan_.group_count(), 0.0);
    measured = plan_.group_measured();
    for (GateId grp = 0; grp < plan_.group_count(); ++grp) {
      if (!measured[grp]) continue;
      const std::uint32_t multi = plan_.group_multi_index(grp);
      if (multi == power::SamplePlan::kNotMulti) {
        t[grp] = welch_t_binary_energy(
                     moments.n_fixed(), moments.single_ones_fixed(grp),
                     moments.n_random(), moments.single_ones_random(grp),
                     plan_.single_energy(grp), noise_var)
                     .t;
      } else {
        t[grp] = welch_t(moments.multi_fixed(multi),
                         moments.multi_random(multi), noise_var)
                     .t;
      }
    }
  }

  LeakageReport finalize(const CampaignMoments& moments) {
    std::vector<double> t;
    std::vector<bool> measured;
    compute_t(moments, t, measured);
    if (trace_id_ != 0) {
      obs::Tracer::global().async_end("campaign", "tvla", trace_id_);
    }
    LeakageReport report(std::move(t), std::move(measured),
                         config_.threshold);
    if (config_.budget.enabled) {
      // `stopped_`/`traces_used_` were written under the campaign merge
      // lock; the finisher thread observed the last shard's decrement
      // under the scheduler mutex, which those writes happen-before.
      static auto& traces_saved =
          obs::Registry::global().counter("tvla.traces_saved");
      const std::size_t full = batch_count() * samples_per_batch();
      const std::size_t used = stopped_ ? traces_used_ : full;
      report.set_trace_usage(used, stopped_);
      traces_saved.add(full - used);
    }
    return report;
  }

  const netlist::Netlist& design_;
  TvlaConfig config_;
  Mode mode_;
  sim::CompiledDesignPtr compiled_;
  power::PowerModel power_;
  power::SamplePlan plan_;
  bool sequential_ = false;
  std::size_t lane_words_ = 1;
  std::uint64_t trace_id_ = 0;  // async span id; 0 = tracing was off
  std::vector<bool> fixed_a_, fixed_b_;
  // Early-stop state (budget-enabled campaigns only). The schedule is
  // fixed at construction; stopped_/traces_used_ are written by at most
  // one checkpoint (under the scheduler's campaign merge lock) and read
  // by finalize() after the last shard's publication.
  std::vector<std::size_t> checkpoint_shards_;  // ascending prefix counts
  std::string label_;  // progress-table name (empty = unnamed)
  ProgressFn progress_;
  bool stopped_ = false;
  std::size_t traces_used_ = 0;
};

}  // namespace

LeakageReport run_fixed_vs_random(const netlist::Netlist& design,
                                  const techlib::TechLibrary& lib,
                                  const TvlaConfig& config) {
  return Campaign::run(
      std::make_shared<Campaign>(design, lib, config, Mode::kFixedVsRandom));
}

LeakageReport run_fixed_vs_fixed(const netlist::Netlist& design,
                                 const techlib::TechLibrary& lib,
                                 const TvlaConfig& config) {
  return Campaign::run(
      std::make_shared<Campaign>(design, lib, config, Mode::kFixedVsFixed));
}

LeakageReport run_fixed_vs_random(sim::CompiledDesignPtr design,
                                  const techlib::TechLibrary& lib,
                                  const TvlaConfig& config) {
  return Campaign::run(std::make_shared<Campaign>(std::move(design), lib,
                                                  config,
                                                  Mode::kFixedVsRandom));
}

LeakageReport run_fixed_vs_fixed(sim::CompiledDesignPtr design,
                                 const techlib::TechLibrary& lib,
                                 const TvlaConfig& config) {
  return Campaign::run(std::make_shared<Campaign>(std::move(design), lib,
                                                  config,
                                                  Mode::kFixedVsFixed));
}

namespace {
std::future<LeakageReport> submit_campaign(std::shared_ptr<Campaign> campaign,
                                           engine::Scheduler& scheduler,
                                           ProgressFn progress,
                                           std::string label) {
  campaign->set_progress(std::move(progress));
  campaign->set_label(std::move(label));
  return Campaign::submit(std::move(campaign), scheduler);
}
}  // namespace

std::future<LeakageReport> submit_fixed_vs_random(
    engine::Scheduler& scheduler, const netlist::Netlist& design,
    const techlib::TechLibrary& lib, const TvlaConfig& config,
    ProgressFn progress, std::string label) {
  return submit_campaign(
      std::make_shared<Campaign>(design, lib, config, Mode::kFixedVsRandom),
      scheduler, std::move(progress), std::move(label));
}

std::future<LeakageReport> submit_fixed_vs_fixed(
    engine::Scheduler& scheduler, const netlist::Netlist& design,
    const techlib::TechLibrary& lib, const TvlaConfig& config,
    ProgressFn progress, std::string label) {
  return submit_campaign(
      std::make_shared<Campaign>(design, lib, config, Mode::kFixedVsFixed),
      scheduler, std::move(progress), std::move(label));
}

std::future<LeakageReport> submit_fixed_vs_random(
    engine::Scheduler& scheduler, sim::CompiledDesignPtr design,
    const techlib::TechLibrary& lib, const TvlaConfig& config,
    ProgressFn progress, std::string label) {
  return submit_campaign(std::make_shared<Campaign>(std::move(design), lib,
                                                    config,
                                                    Mode::kFixedVsRandom),
                         scheduler, std::move(progress), std::move(label));
}

std::future<LeakageReport> submit_fixed_vs_fixed(
    engine::Scheduler& scheduler, sim::CompiledDesignPtr design,
    const techlib::TechLibrary& lib, const TvlaConfig& config,
    ProgressFn progress, std::string label) {
  return submit_campaign(std::make_shared<Campaign>(std::move(design), lib,
                                                    config,
                                                    Mode::kFixedVsFixed),
                         scheduler, std::move(progress), std::move(label));
}

// --- ShardRunner -------------------------------------------------------------

struct ShardRunner::Impl {
  std::shared_ptr<Campaign> campaign;
  engine::ShardPlan plan;
};

ShardRunner::ShardRunner(const netlist::Netlist& design,
                         const techlib::TechLibrary& lib,
                         const TvlaConfig& config)
    : impl_(std::make_unique<Impl>()) {
  impl_->campaign =
      std::make_shared<Campaign>(design, lib, config, Mode::kFixedVsRandom);
  impl_->plan = engine::ShardPlan::make(impl_->campaign->batch_count());
}

ShardRunner::~ShardRunner() = default;

std::size_t ShardRunner::batch_count() const {
  return impl_->campaign->batch_count();
}

std::size_t ShardRunner::shard_count() const { return impl_->plan.shard_count; }

std::size_t ShardRunner::cost_weight() const {
  return impl_->campaign->cost_weight();
}

CampaignMoments ShardRunner::run_shard(std::size_t shard) const {
  return impl_->campaign->run_shard_moments(shard);
}

CampaignMoments ShardRunner::empty_moments() const {
  return impl_->campaign->empty_moments();
}

const std::vector<std::size_t>& ShardRunner::checkpoint_shards() const {
  return impl_->campaign->checkpoint_shards();
}

bool ShardRunner::evaluate_checkpoint(const CampaignMoments& merged,
                                      std::size_t shards_merged) {
  return impl_->campaign->checkpoint_decision(merged, shards_merged);
}

void ShardRunner::set_progress(ProgressFn progress) {
  impl_->campaign->set_progress(std::move(progress));
}

LeakageReport ShardRunner::finalize(const CampaignMoments& total) {
  return impl_->campaign->finalize_moments(total);
}

}  // namespace polaris::tvla
