#include "tvla/tvla.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <utility>

#include "engine/scheduler.hpp"
#include "engine/trace_engine.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "power/power_model.hpp"
#include "power/sample_plan.hpp"
#include "sim/compiled.hpp"
#include "sim/simd.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace polaris::tvla {

using netlist::GateId;
using netlist::NetId;

LeakageReport::LeakageReport(std::vector<double> t_per_group,
                             std::vector<bool> measured, double threshold)
    : t_per_group_(std::move(t_per_group)),
      measured_(std::move(measured)),
      threshold_(threshold) {}

std::size_t LeakageReport::measured_count() const {
  return static_cast<std::size_t>(
      std::count(measured_.begin(), measured_.end(), true));
}

std::vector<GateId> LeakageReport::leaky_groups() const {
  std::vector<GateId> leaky;
  for (GateId g = 0; g < t_per_group_.size(); ++g) {
    if (measured_[g] && std::abs(t_per_group_[g]) > threshold_) leaky.push_back(g);
  }
  std::sort(leaky.begin(), leaky.end(), [this](GateId a, GateId b) {
    return std::abs(t_per_group_[a]) > std::abs(t_per_group_[b]);
  });
  return leaky;
}

std::size_t LeakageReport::leaky_count() const {
  std::size_t count = 0;
  for (GateId g = 0; g < t_per_group_.size(); ++g) {
    if (measured_[g] && std::abs(t_per_group_[g]) > threshold_) ++count;
  }
  return count;
}

double LeakageReport::total_abs_t() const {
  double total = 0.0;
  for (GateId g = 0; g < t_per_group_.size(); ++g) {
    if (measured_[g]) total += std::abs(t_per_group_[g]);
  }
  return total;
}

double LeakageReport::leakage_per_gate() const {
  const std::size_t n = measured_count();
  return n == 0 ? 0.0 : total_abs_t() / static_cast<double>(n);
}

namespace {

enum class Mode { kFixedVsRandom, kFixedVsFixed };

// Stream tags for engine::stream_seed: every random quantity a batch
// consumes is keyed by (campaign seed, batch index, tag), making batches
// independent of execution order and shard placement (see DESIGN.md).
constexpr std::uint64_t kTagStimulus = 0x5354494d554c5553ULL;  // "STIMULUS"
constexpr std::uint64_t kTagClassMask = 0x434c415353ULL;  // "CLASS"
constexpr std::uint64_t kTagMaskShares = 0x52414e44ULL;  // kRand cells

std::vector<bool> derive_fixed_vector(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<bool> bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = (rng() & 1ULL) != 0;
  return bits;
}

/// Out-of-line instantiation point for the blocked readout. The library
/// targets baseline x86-64, where __builtin_popcountll compiles to a
/// multi-op bit-twiddling sequence - and two popcounts per (single op,
/// lane word) dominate the sampling loop. target_clones emits a second
/// clone of this function (template body inlined) compiled with the
/// hardware popcnt instruction and picks it via the loader's ifunc
/// resolver on CPUs that have it: same integer results, no portability
/// loss, no per-call dispatch cost.
#if defined(__x86_64__) && defined(__GNUC__)
__attribute__((target_clones("popcnt", "default")))
#endif
void sample_block(const power::SamplePlan& plan,
                  const std::uint64_t* toggle_words, std::size_t lane_words,
                  std::size_t active_words, const std::uint64_t* class_masks,
                  double* lane_sums, CampaignMoments& moments) {
  plan.sample(toggle_words, lane_words, active_words, class_masks, lane_sums,
              moments);
}

/// Thin protocol layer: owns the campaign-wide, read-only context (the
/// compiled design plan, power model, sampling plan, fixed vectors) and
/// defines how one batch of traces is stimulated and sampled. The design
/// is compiled ONCE here; every shard's Simulator shares the plan, so
/// per-shard setup never re-runs topological_order() or rebuilds a
/// schedule. Execution and merging belong to the trace engine; all mutable
/// per-shard state lives in ShardState.
/// sim::compile wrapped in telemetry: the once-per-campaign cost the
/// compiled-kernel refactor moved out of the shard loop, now visible as
/// the `tvla.compile_us` histogram and a "compile" span.
sim::CompiledDesignPtr compile_timed(const netlist::Netlist& design) {
  static auto& compile_us =
      obs::Registry::global().histogram("tvla.compile_us");
  obs::Span span("compile", "tvla");
  span.arg("gates", static_cast<std::uint64_t>(design.gate_count()));
  const std::int64_t t0 = obs::now_ns();
  auto compiled = sim::compile(design);
  compile_us.record(static_cast<std::uint64_t>((obs::now_ns() - t0) / 1000));
  return compiled;
}

class Campaign {
 public:
  Campaign(const netlist::Netlist& design, const techlib::TechLibrary& lib,
           const TvlaConfig& config, Mode mode)
      : Campaign(compile_timed(design), lib, config, mode) {}

  Campaign(sim::CompiledDesignPtr compiled, const techlib::TechLibrary& lib,
           const TvlaConfig& config, Mode mode)
      : design_(compiled->design()),
        config_(config),
        mode_(mode),
        compiled_(std::move(compiled)),
        power_(design_, lib),
        plan_(*compiled_, power_) {
    const std::size_t n_inputs = design_.primary_inputs().size();
    fixed_a_ = config.fixed_input.empty()
                   ? derive_fixed_vector(n_inputs, config.seed ^ 0xf1e1dcafeULL)
                   : config.fixed_input;
    fixed_b_ = config.fixed_input_b.empty()
                   ? derive_fixed_vector(n_inputs, config.seed ^ 0xbeefULL)
                   : config.fixed_input_b;
    if (fixed_a_.size() != n_inputs || fixed_b_.size() != n_inputs) {
      throw std::invalid_argument("TVLA fixed vector size mismatch");
    }
    if (!config.input_class.empty() && config.input_class.size() != n_inputs) {
      throw std::invalid_argument("TVLA input_class size mismatch");
    }
    if (config.lane_words != 0 && !sim::valid_lane_words(config.lane_words)) {
      throw std::invalid_argument("TvlaConfig.lane_words must be 1, 2, 4, or 8");
    }
    sequential_ = design_has_dff();
    // Sequential campaigns stay at one word per pass: a K-batch lockstep
    // would push samples cycle-major across batches instead of the
    // batch-major order the moment accumulators saw pre-blocking, breaking
    // float bit-identity. The Simulator itself supports K > 1 on
    // sequential designs (oracle-tested); only the campaign protocol pins
    // the width.
    lane_words_ = sequential_ ? 1
                              : (config.lane_words != 0
                                     ? config.lane_words
                                     : sim::default_lane_words());

    // Telemetry only (never serialized, never fingerprinted): campaign
    // count/trace budget counters, and an async trace span that follows
    // the campaign across whichever threads run its shards. The span
    // closes in finalize().
    static auto& campaigns =
        obs::Registry::global().counter("tvla.campaigns");
    static auto& traces = obs::Registry::global().counter("tvla.traces");
    campaigns.add();
    traces.add(config_.traces);
    auto& tracer = obs::Tracer::global();
    if (tracer.enabled()) {
      trace_id_ = obs::Tracer::next_async_id();
      obs::TraceArgs args;
      args.add("gates", static_cast<std::uint64_t>(design_.gate_count()))
          .add("traces", static_cast<std::uint64_t>(config_.traces))
          .add("lane_words", static_cast<std::uint64_t>(lane_words_))
          .add("simd", sim::simd_name(lane_words_))
          .add("sequential", sequential_)
          .add("mode", mode_ == Mode::kFixedVsRandom ? "fixed-vs-random"
                                                     : "fixed-vs-fixed");
      tracer.async_begin("campaign", "tvla", trace_id_, std::move(args).str());
    }
  }

  /// Trace budget in whole 64-lane batches (sequential designs pack
  /// 64 * cycles_per_batch samples per batch).
  [[nodiscard]] std::size_t batch_count() const {
    const std::size_t lanes = sim::kLanes;
    const std::size_t samples_per_batch =
        sequential_ ? lanes * config_.cycles_per_batch : lanes;
    return config_.traces == 0
               ? 0
               : (config_.traces + samples_per_batch - 1) / samples_per_batch;
  }

  /// Scheduler priority: a proxy for the campaign's simulation cost, so the
  /// global queue drains heavier campaigns first (LPT order).
  [[nodiscard]] std::size_t cost_weight() const {
    const std::size_t cycles = sequential_ ? config_.cycles_per_batch : 1;
    return batch_count() * cycles * std::max<std::size_t>(1, design_.gate_count());
  }

  LeakageReport run() {
    const engine::TraceEngine eng(config_.threads);
    ShardState merged = eng.run_blocks<ShardState>(
        batch_count(), lane_words_,
        [this](std::size_t) { return make_shard_state(); },
        [this](ShardState& state, std::size_t batch_begin, std::size_t words) {
          run_block(state, batch_begin, words);
        },
        [](ShardState& into, ShardState&& from) {
          into.moments.merge(from.moments);
        });
    return finalize(merged.moments);
  }

  /// Queues this campaign on the global scheduler. `self` keeps the
  /// campaign (and its power model / group layout) alive inside the shard
  /// closures until the last shard finalized the report.
  static std::future<LeakageReport> submit(std::shared_ptr<Campaign> self,
                                           engine::Scheduler& scheduler) {
    return scheduler.submit_blocks<ShardState>(
        self->batch_count(), self->lane_words_,
        [self](std::size_t) { return self->make_shard_state(); },
        [self](ShardState& state, std::size_t batch_begin, std::size_t words) {
          self->run_block(state, batch_begin, words);
        },
        [](ShardState& into, ShardState&& from) {
          into.moments.merge(from.moments);
        },
        [self](ShardState&& total) { return self->finalize(total.moments); },
        self->cost_weight());
  }

 private:
  /// Everything one shard mutates: its own K-word simulator, one
  /// per-batch stimulus stream and class mask per lane word, the mergeable
  /// statistics, and the per-(word, lane) group energy scratch (the fused
  /// power accumulation - no per-lane power vector is ever materialized).
  struct ShardState {
    sim::Simulator simulator;
    std::vector<util::Xoshiro256> stimulus;   // one stream per lane word
    std::vector<std::uint64_t> class_masks;   // per-word fixed-class mask
    CampaignMoments moments;
    std::vector<double> lane_sums;
  };

  [[nodiscard]] ShardState make_shard_state() const {
    return ShardState{
        sim::Simulator(compiled_, /*seed=*/0, lane_words_),
        std::vector<util::Xoshiro256>(lane_words_, util::Xoshiro256(0)),
        std::vector<std::uint64_t>(lane_words_, 0),
        CampaignMoments(plan_.group_count(), plan_.multi_group_count()),
        std::vector<double>(
            plan_.multi_group_count() * lane_words_ * sim::kLanes, 0.0)};
  }

  [[nodiscard]] bool design_has_dff() const {
    for (const auto& gate : design_.gates()) {
      if (gate.type == netlist::CellType::kDff) return true;
    }
    return false;
  }

  [[nodiscard]] InputClass input_class(std::size_t pi_index) const {
    return config_.input_class.empty() ? InputClass::kSensitive
                                       : config_.input_class[pi_index];
  }

  /// Pre-transition state: every trace starts from a fresh random vector on
  /// data-like inputs; fixed-common inputs (the key) hold their fixed value
  /// even between traces, as a loaded key register would. Inputs outer,
  /// lane words inner: each word's stimulus stream draws in the same
  /// input-ascending order the one-word path used.
  void apply_base_inputs(ShardState& state, std::size_t words) const {
    const auto& inputs = design_.primary_inputs();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      if (input_class(i) == InputClass::kFixedCommon) {
        const std::uint64_t word = fixed_a_[i] ? ~0ULL : 0ULL;
        for (std::size_t w = 0; w < words; ++w) {
          state.simulator.set_input_word(i, w, word);
        }
      } else {
        for (std::size_t w = 0; w < words; ++w) {
          state.simulator.set_input_word(i, w, state.stimulus[w]());
        }
      }
    }
  }

  void apply_target_inputs(ShardState& state, std::size_t words) const {
    const auto& inputs = design_.primary_inputs();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const std::uint64_t a = fixed_a_[i] ? ~0ULL : 0ULL;
      const std::uint64_t b = fixed_b_[i] ? ~0ULL : 0ULL;
      for (std::size_t w = 0; w < words; ++w) {
        const std::uint64_t fixed_mask = state.class_masks[w];
        std::uint64_t word = 0;
        switch (input_class(i)) {
          case InputClass::kSensitive:
            word = (mode_ == Mode::kFixedVsRandom)
                       ? (a & fixed_mask) |
                             (state.stimulus[w]() & ~fixed_mask)
                       : (a & fixed_mask) | (b & ~fixed_mask);
            break;
          case InputClass::kFixedCommon:
            word = a;
            break;
          case InputClass::kRandomCommon:
            word = state.stimulus[w]();
            break;
        }
        state.simulator.set_input_word(i, w, word);
      }
    }
  }

  /// One lane block of `words` consecutive batches, each fully keyed by
  /// its global index: lane word w carries batch batch_begin + w, with
  /// stimulus stream, class mask, and mask-share randomness all derived
  /// from (seed, batch_begin + w) - exactly the streams that batch
  /// consumed when it ran alone, so any block width, shard, or thread
  /// reproduces it bit-identically. Tail blocks (words < lane_words_)
  /// evaluate the full simulator width but only seed and sample the
  /// leading `words` lane words.
  void run_block(ShardState& state, std::size_t batch_begin,
                 std::size_t words) const {
    for (std::size_t w = 0; w < words; ++w) {
      const auto index = static_cast<std::uint64_t>(batch_begin + w);
      state.stimulus[w] = util::Xoshiro256(
          engine::stream_seed(config_.seed, index, kTagStimulus));
      state.class_masks[w] =
          engine::stream_seed(config_.seed, index, kTagClassMask);
    }

    if (sequential_) {  // lane_words_ == 1: one batch per block
      state.simulator.reset(
          engine::stream_seed(config_.seed, batch_begin, kTagMaskShares));
      for (std::size_t cycle = 0;
           cycle < config_.warmup_cycles + config_.cycles_per_batch; ++cycle) {
        apply_target_inputs(state, words);
        state.simulator.eval();
        if (cycle >= config_.warmup_cycles) sample(state, words);
        state.simulator.latch();
      }
      return;
    }

    for (std::size_t w = 0; w < words; ++w) {
      state.simulator.reseed_word(
          w, engine::stream_seed(config_.seed,
                                 static_cast<std::uint64_t>(batch_begin + w),
                                 kTagMaskShares));
    }
    apply_base_inputs(state, words);
    // Base state: never sampled, so skip toggle recording - the target
    // eval recomputes every gate's toggle (base -> target) from values.
    state.simulator.eval(/*record_toggles=*/false);
    apply_target_inputs(state, words);
    state.simulator.eval();
    sample(state, words);
  }

  /// Fused toggle/energy readout of the block via the compiled sampling
  /// plan (power::SamplePlan::sample): singles feed the binary counters,
  /// multi members accumulate pre-resolved energies per (word, lane) in
  /// ascending-GateId order, and per-group samples are pushed word-major -
  /// the accumulation-order contract that keeps every t-stat bit-identical
  /// to the one-word path.
  void sample(ShardState& state, std::size_t words) const {
    sample_block(plan_, state.simulator.toggle_words(), lane_words_, words,
                 state.class_masks.data(), state.lane_sums.data(),
                 state.moments);
  }

  LeakageReport finalize(const CampaignMoments& moments) {
    const double noise_var = config_.noise_std_fj * config_.noise_std_fj;
    std::vector<double> t(plan_.group_count(), 0.0);
    std::vector<bool> measured = plan_.group_measured();
    for (GateId grp = 0; grp < plan_.group_count(); ++grp) {
      if (!measured[grp]) continue;
      const std::uint32_t multi = plan_.group_multi_index(grp);
      if (multi == power::SamplePlan::kNotMulti) {
        t[grp] = welch_t_binary_energy(
                     moments.n_fixed(), moments.single_ones_fixed(grp),
                     moments.n_random(), moments.single_ones_random(grp),
                     plan_.single_energy(grp), noise_var)
                     .t;
      } else {
        t[grp] = welch_t(moments.multi_fixed(multi),
                         moments.multi_random(multi), noise_var)
                     .t;
      }
    }
    if (trace_id_ != 0) {
      obs::Tracer::global().async_end("campaign", "tvla", trace_id_);
    }
    return LeakageReport(std::move(t), std::move(measured), config_.threshold);
  }

  const netlist::Netlist& design_;
  TvlaConfig config_;
  Mode mode_;
  sim::CompiledDesignPtr compiled_;
  power::PowerModel power_;
  power::SamplePlan plan_;
  bool sequential_ = false;
  std::size_t lane_words_ = 1;
  std::uint64_t trace_id_ = 0;  // async span id; 0 = tracing was off
  std::vector<bool> fixed_a_, fixed_b_;
};

}  // namespace

LeakageReport run_fixed_vs_random(const netlist::Netlist& design,
                                  const techlib::TechLibrary& lib,
                                  const TvlaConfig& config) {
  return Campaign(design, lib, config, Mode::kFixedVsRandom).run();
}

LeakageReport run_fixed_vs_fixed(const netlist::Netlist& design,
                                 const techlib::TechLibrary& lib,
                                 const TvlaConfig& config) {
  return Campaign(design, lib, config, Mode::kFixedVsFixed).run();
}

LeakageReport run_fixed_vs_random(sim::CompiledDesignPtr design,
                                  const techlib::TechLibrary& lib,
                                  const TvlaConfig& config) {
  return Campaign(std::move(design), lib, config, Mode::kFixedVsRandom).run();
}

LeakageReport run_fixed_vs_fixed(sim::CompiledDesignPtr design,
                                 const techlib::TechLibrary& lib,
                                 const TvlaConfig& config) {
  return Campaign(std::move(design), lib, config, Mode::kFixedVsFixed).run();
}

std::future<LeakageReport> submit_fixed_vs_random(
    engine::Scheduler& scheduler, const netlist::Netlist& design,
    const techlib::TechLibrary& lib, const TvlaConfig& config) {
  return Campaign::submit(
      std::make_shared<Campaign>(design, lib, config, Mode::kFixedVsRandom),
      scheduler);
}

std::future<LeakageReport> submit_fixed_vs_fixed(
    engine::Scheduler& scheduler, const netlist::Netlist& design,
    const techlib::TechLibrary& lib, const TvlaConfig& config) {
  return Campaign::submit(
      std::make_shared<Campaign>(design, lib, config, Mode::kFixedVsFixed),
      scheduler);
}

std::future<LeakageReport> submit_fixed_vs_random(
    engine::Scheduler& scheduler, sim::CompiledDesignPtr design,
    const techlib::TechLibrary& lib, const TvlaConfig& config) {
  return Campaign::submit(std::make_shared<Campaign>(std::move(design), lib,
                                                     config,
                                                     Mode::kFixedVsRandom),
                          scheduler);
}

std::future<LeakageReport> submit_fixed_vs_fixed(
    engine::Scheduler& scheduler, sim::CompiledDesignPtr design,
    const techlib::TechLibrary& lib, const TvlaConfig& config) {
  return Campaign::submit(std::make_shared<Campaign>(std::move(design), lib,
                                                     config,
                                                     Mode::kFixedVsFixed),
                          scheduler);
}

}  // namespace polaris::tvla
