#include "tvla/tvla.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "engine/scheduler.hpp"
#include "engine/trace_engine.hpp"
#include "power/power_model.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace polaris::tvla {

using netlist::GateId;
using netlist::NetId;

LeakageReport::LeakageReport(std::vector<double> t_per_group,
                             std::vector<bool> measured, double threshold)
    : t_per_group_(std::move(t_per_group)),
      measured_(std::move(measured)),
      threshold_(threshold) {}

std::size_t LeakageReport::measured_count() const {
  return static_cast<std::size_t>(
      std::count(measured_.begin(), measured_.end(), true));
}

std::vector<GateId> LeakageReport::leaky_groups() const {
  std::vector<GateId> leaky;
  for (GateId g = 0; g < t_per_group_.size(); ++g) {
    if (measured_[g] && std::abs(t_per_group_[g]) > threshold_) leaky.push_back(g);
  }
  std::sort(leaky.begin(), leaky.end(), [this](GateId a, GateId b) {
    return std::abs(t_per_group_[a]) > std::abs(t_per_group_[b]);
  });
  return leaky;
}

std::size_t LeakageReport::leaky_count() const {
  std::size_t count = 0;
  for (GateId g = 0; g < t_per_group_.size(); ++g) {
    if (measured_[g] && std::abs(t_per_group_[g]) > threshold_) ++count;
  }
  return count;
}

double LeakageReport::total_abs_t() const {
  double total = 0.0;
  for (GateId g = 0; g < t_per_group_.size(); ++g) {
    if (measured_[g]) total += std::abs(t_per_group_[g]);
  }
  return total;
}

double LeakageReport::leakage_per_gate() const {
  const std::size_t n = measured_count();
  return n == 0 ? 0.0 : total_abs_t() / static_cast<double>(n);
}

namespace {

enum class Mode { kFixedVsRandom, kFixedVsFixed };

// Stream tags for engine::stream_seed: every random quantity a batch
// consumes is keyed by (campaign seed, batch index, tag), making batches
// independent of execution order and shard placement (see DESIGN.md).
constexpr std::uint64_t kTagStimulus = 0x5354494d554c5553ULL;  // "STIMULUS"
constexpr std::uint64_t kTagClassMask = 0x434c415353ULL;  // "CLASS"
constexpr std::uint64_t kTagMaskShares = 0x52414e44ULL;  // kRand cells

std::vector<bool> derive_fixed_vector(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<bool> bits(n);
  for (std::size_t i = 0; i < n; ++i) bits[i] = (rng() & 1ULL) != 0;
  return bits;
}

/// Thin protocol layer: owns the campaign-wide, read-only context (design,
/// power model, group layout, fixed vectors) and defines how one batch of
/// traces is stimulated and sampled. Execution and merging belong to the
/// trace engine; all mutable per-shard state lives in ShardState.
class Campaign {
 public:
  Campaign(const netlist::Netlist& design, const techlib::TechLibrary& lib,
           const TvlaConfig& config, Mode mode)
      : design_(design), config_(config), mode_(mode), power_(design, lib) {
    const std::size_t n_inputs = design.primary_inputs().size();
    fixed_a_ = config.fixed_input.empty()
                   ? derive_fixed_vector(n_inputs, config.seed ^ 0xf1e1dcafeULL)
                   : config.fixed_input;
    fixed_b_ = config.fixed_input_b.empty()
                   ? derive_fixed_vector(n_inputs, config.seed ^ 0xbeefULL)
                   : config.fixed_input_b;
    if (fixed_a_.size() != n_inputs || fixed_b_.size() != n_inputs) {
      throw std::invalid_argument("TVLA fixed vector size mismatch");
    }
    if (!config.input_class.empty() && config.input_class.size() != n_inputs) {
      throw std::invalid_argument("TVLA input_class size mismatch");
    }
    sequential_ = design_has_dff();
    classify_groups();
  }

  /// Trace budget in whole 64-lane batches (sequential designs pack
  /// 64 * cycles_per_batch samples per batch).
  [[nodiscard]] std::size_t batch_count() const {
    const std::size_t lanes = sim::kLanes;
    const std::size_t samples_per_batch =
        sequential_ ? lanes * config_.cycles_per_batch : lanes;
    return config_.traces == 0
               ? 0
               : (config_.traces + samples_per_batch - 1) / samples_per_batch;
  }

  /// Scheduler priority: a proxy for the campaign's simulation cost, so the
  /// global queue drains heavier campaigns first (LPT order).
  [[nodiscard]] std::size_t cost_weight() const {
    const std::size_t cycles = sequential_ ? config_.cycles_per_batch : 1;
    return batch_count() * cycles * std::max<std::size_t>(1, design_.gate_count());
  }

  LeakageReport run() {
    const engine::TraceEngine eng(config_.threads);
    ShardState merged = eng.run<ShardState>(
        batch_count(), [this](std::size_t) { return make_shard_state(); },
        [this](ShardState& state, std::size_t batch) { run_batch(state, batch); },
        [](ShardState& into, ShardState&& from) {
          into.moments.merge(from.moments);
        });
    return finalize(merged.moments);
  }

  /// Queues this campaign on the global scheduler. `self` keeps the
  /// campaign (and its power model / group layout) alive inside the shard
  /// closures until the last shard finalized the report.
  static std::future<LeakageReport> submit(std::shared_ptr<Campaign> self,
                                           engine::Scheduler& scheduler) {
    return scheduler.submit<ShardState>(
        self->batch_count(),
        [self](std::size_t) { return self->make_shard_state(); },
        [self](ShardState& state, std::size_t batch) {
          self->run_batch(state, batch);
        },
        [](ShardState& into, ShardState&& from) {
          into.moments.merge(from.moments);
        },
        [self](ShardState&& total) { return self->finalize(total.moments); },
        self->cost_weight());
  }

 private:
  /// Everything one shard mutates: its own simulator, the per-batch
  /// stimulus stream, the mergeable statistics, and the per-lane group
  /// energy scratch (the fused power accumulation - no per-lane power
  /// vector is ever materialized).
  struct ShardState {
    sim::Simulator simulator;
    util::Xoshiro256 stimulus;
    CampaignMoments moments;
    std::vector<double> lane_sums;
  };

  [[nodiscard]] ShardState make_shard_state() const {
    return ShardState{sim::Simulator(design_, /*seed=*/0),
                      util::Xoshiro256(0),
                      CampaignMoments(group_count_, multi_group_ids_.size()),
                      std::vector<double>(multi_group_ids_.size() * sim::kLanes,
                                          0.0)};
  }

  [[nodiscard]] bool design_has_dff() const {
    for (const auto& gate : design_.gates()) {
      if (gate.type == netlist::CellType::kDff) return true;
    }
    return false;
  }

  void classify_groups() {
    GateId max_group = 0;
    for (const auto& gate : design_.gates()) {
      max_group = std::max(max_group, gate.group);
    }
    group_count_ = static_cast<std::size_t>(max_group) + 1;

    std::vector<std::uint32_t> group_size(group_count_, 0);
    for (const GateId g : power_.active_gates()) {
      group_size[design_.gate(g).group]++;
    }
    group_measured_.assign(group_count_, false);
    group_multi_index_.assign(group_count_, kNotMulti);
    for (const GateId g : power_.active_gates()) {
      group_measured_[design_.gate(g).group] = true;
    }
    // Multi-member groups need real-valued samples; single-member groups use
    // the binary counting fast path.
    for (GateId grp = 0; grp < group_count_; ++grp) {
      if (group_size[grp] > 1) {
        group_multi_index_[grp] = static_cast<std::uint32_t>(multi_group_ids_.size());
        multi_group_ids_.push_back(grp);
      }
    }
    // For single-member groups the binary counters need the member's energy
    // to place the {0, E} samples on the physical scale the noise floor
    // lives on.
    single_energy_.assign(group_count_, 0.0);
    for (const GateId g : power_.active_gates()) {
      const GateId grp = design_.gate(g).group;
      if (group_multi_index_[grp] == kNotMulti) {
        single_energy_[grp] = power_.gate_energy(g);
      }
    }
  }

  [[nodiscard]] InputClass input_class(std::size_t pi_index) const {
    return config_.input_class.empty() ? InputClass::kSensitive
                                       : config_.input_class[pi_index];
  }

  /// Pre-transition state: every trace starts from a fresh random vector on
  /// data-like inputs; fixed-common inputs (the key) hold their fixed value
  /// even between traces, as a loaded key register would.
  void apply_base_inputs(ShardState& state) const {
    const auto& inputs = design_.primary_inputs();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const std::uint64_t word = input_class(i) == InputClass::kFixedCommon
                                     ? (fixed_a_[i] ? ~0ULL : 0ULL)
                                     : state.stimulus();
      state.simulator.set_input(i, word);
    }
  }

  void apply_target_inputs(ShardState& state, std::uint64_t fixed_mask) const {
    const auto& inputs = design_.primary_inputs();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const std::uint64_t a = fixed_a_[i] ? ~0ULL : 0ULL;
      const std::uint64_t b = fixed_b_[i] ? ~0ULL : 0ULL;
      std::uint64_t word = 0;
      switch (input_class(i)) {
        case InputClass::kSensitive:
          word = (mode_ == Mode::kFixedVsRandom)
                     ? (a & fixed_mask) | (state.stimulus() & ~fixed_mask)
                     : (a & fixed_mask) | (b & ~fixed_mask);
          break;
        case InputClass::kFixedCommon:
          word = a;
          break;
        case InputClass::kRandomCommon:
          word = state.stimulus();
          break;
      }
      state.simulator.set_input(i, word);
    }
  }

  /// One batch, fully keyed by its global index: stimulus stream, class
  /// mask, and mask-share randomness are all derived from (seed, batch),
  /// so any shard on any thread reproduces it exactly.
  void run_batch(ShardState& state, std::size_t batch) const {
    const auto index = static_cast<std::uint64_t>(batch);
    state.stimulus = util::Xoshiro256(
        engine::stream_seed(config_.seed, index, kTagStimulus));
    const std::uint64_t mask =
        engine::stream_seed(config_.seed, index, kTagClassMask);
    const std::uint64_t sim_seed =
        engine::stream_seed(config_.seed, index, kTagMaskShares);

    if (sequential_) {
      state.simulator.reset(sim_seed);
      for (std::size_t cycle = 0;
           cycle < config_.warmup_cycles + config_.cycles_per_batch; ++cycle) {
        apply_target_inputs(state, mask);
        state.simulator.eval();
        if (cycle >= config_.warmup_cycles) sample(state, mask);
        state.simulator.latch();
      }
    } else {
      state.simulator.reseed(sim_seed);
      apply_base_inputs(state);
      state.simulator.eval();  // base state; not sampled
      apply_target_inputs(state, mask);
      state.simulator.eval();
      sample(state, mask);
    }
  }

  void sample(ShardState& state, std::uint64_t fixed_mask) const {
    const auto n_fixed =
        static_cast<std::uint64_t>(__builtin_popcountll(fixed_mask));
    state.moments.add_lane_counts(n_fixed, sim::kLanes - n_fixed);

    for (const GateId g : power_.active_gates()) {
      const std::uint64_t toggles = state.simulator.toggles(g);
      if (toggles == 0) continue;
      const GateId group = design_.gate(g).group;
      const std::uint32_t multi = group_multi_index_[group];
      if (multi == kNotMulti) {
        state.moments.add_single_ones(
            group,
            static_cast<std::uint64_t>(__builtin_popcountll(toggles & fixed_mask)),
            static_cast<std::uint64_t>(
                __builtin_popcountll(toggles & ~fixed_mask)));
      } else {
        const double energy = power_.gate_energy(g);
        double* lane_sum = &state.lane_sums[multi * sim::kLanes];
        std::uint64_t bits = toggles;
        while (bits != 0) {
          const int lane = __builtin_ctzll(bits);
          lane_sum[lane] += energy;
          bits &= bits - 1;
        }
      }
    }
    // Every sample step contributes one sample per lane to each multi group
    // (possibly zero-valued); push and clear.
    for (std::size_t m = 0; m < multi_group_ids_.size(); ++m) {
      double* lane_sum = &state.lane_sums[m * sim::kLanes];
      for (std::size_t lane = 0; lane < sim::kLanes; ++lane) {
        const bool fixed = ((fixed_mask >> lane) & 1ULL) != 0;
        state.moments.add_multi_sample(m, fixed, lane_sum[lane]);
        lane_sum[lane] = 0.0;
      }
    }
  }

  LeakageReport finalize(const CampaignMoments& moments) {
    const double noise_var = config_.noise_std_fj * config_.noise_std_fj;
    std::vector<double> t(group_count_, 0.0);
    for (GateId grp = 0; grp < group_count_; ++grp) {
      if (!group_measured_[grp]) continue;
      const std::uint32_t multi = group_multi_index_[grp];
      if (multi == kNotMulti) {
        t[grp] = welch_t_binary_energy(
                     moments.n_fixed(), moments.single_ones_fixed(grp),
                     moments.n_random(), moments.single_ones_random(grp),
                     single_energy_[grp], noise_var)
                     .t;
      } else {
        t[grp] = welch_t(moments.multi_fixed(multi),
                         moments.multi_random(multi), noise_var)
                     .t;
      }
    }
    return LeakageReport(std::move(t), std::move(group_measured_),
                         config_.threshold);
  }

  static constexpr std::uint32_t kNotMulti = 0xffffffffU;

  const netlist::Netlist& design_;
  TvlaConfig config_;
  Mode mode_;
  power::PowerModel power_;
  bool sequential_ = false;
  std::vector<bool> fixed_a_, fixed_b_;

  std::size_t group_count_ = 0;
  std::vector<bool> group_measured_;
  std::vector<std::uint32_t> group_multi_index_;
  std::vector<GateId> multi_group_ids_;
  std::vector<double> single_energy_;
};

}  // namespace

LeakageReport run_fixed_vs_random(const netlist::Netlist& design,
                                  const techlib::TechLibrary& lib,
                                  const TvlaConfig& config) {
  return Campaign(design, lib, config, Mode::kFixedVsRandom).run();
}

LeakageReport run_fixed_vs_fixed(const netlist::Netlist& design,
                                 const techlib::TechLibrary& lib,
                                 const TvlaConfig& config) {
  return Campaign(design, lib, config, Mode::kFixedVsFixed).run();
}

std::future<LeakageReport> submit_fixed_vs_random(
    engine::Scheduler& scheduler, const netlist::Netlist& design,
    const techlib::TechLibrary& lib, const TvlaConfig& config) {
  return Campaign::submit(
      std::make_shared<Campaign>(design, lib, config, Mode::kFixedVsRandom),
      scheduler);
}

std::future<LeakageReport> submit_fixed_vs_fixed(
    engine::Scheduler& scheduler, const netlist::Netlist& design,
    const techlib::TechLibrary& lib, const TvlaConfig& config) {
  return Campaign::submit(
      std::make_shared<Campaign>(design, lib, config, Mode::kFixedVsFixed),
      scheduler);
}

}  // namespace polaris::tvla
