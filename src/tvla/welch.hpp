// Welch's t-test (paper Eq. 1) and the naive two-pass reference (Eq. 2).
#pragma once

#include <cstdint>
#include <span>

#include "tvla/moments.hpp"

namespace polaris::tvla {

/// TVLA pass/fail threshold: |t| > 4.5 with dof > 1000 gives p < 1e-5
/// ("99.999% confidence against the null hypothesis", Sec. II-A).
inline constexpr double kLeakageThreshold = 4.5;

struct WelchResult {
  double t = 0.0;
  double dof = 0.0;

  [[nodiscard]] bool leaky(double threshold = kLeakageThreshold) const {
    return t > threshold || t < -threshold;
  }
};

/// Eq. 1 from summary statistics (sample variances, i.e. n-1 denominator).
/// Degenerate inputs (any class empty, or both variances zero) give t = 0.
[[nodiscard]] WelchResult welch_t(double mean0, double var0, double n0,
                                  double mean1, double var1, double n1);

/// Eq. 1 from two one-pass accumulators (Eq. 3-4 pipeline).
[[nodiscard]] WelchResult welch_t(const MomentAccumulator& q0,
                                  const MomentAccumulator& q1);

/// Same, with an additive per-sample noise floor: means unchanged, both
/// class variances gain `noise_var` (TvlaConfig::noise_std_fj squared).
[[nodiscard]] WelchResult welch_t(const MomentAccumulator& q0,
                                  const MomentAccumulator& q1,
                                  double noise_var);

/// Binary samples on a physical scale: x in {0, energy} per class, plus the
/// additive noise floor. Class means are energy*p and sample variances
/// energy^2 * n*p*(1-p)/(n-1) + noise_var. This is the single-member-group
/// fast path of the campaign (counts come from 64-lane popcounts).
[[nodiscard]] WelchResult welch_t_binary_energy(std::uint64_t n0,
                                                std::uint64_t ones0,
                                                std::uint64_t n1,
                                                std::uint64_t ones1,
                                                double energy,
                                                double noise_var);

/// Specialization for binary-valued samples x in {0, E}: only counts are
/// needed, so per-gate TVLA can run on popcounts of 64-lane toggle words.
/// The scale E cancels out of the statistic.
[[nodiscard]] WelchResult welch_t_binary(std::uint64_t n0, std::uint64_t ones0,
                                         std::uint64_t n1, std::uint64_t ones1);

/// Naive two-pass computation (mean sweep then Eq. 2 variance sweep).
/// Reference implementation for tests and for bench_ablation_moments.
[[nodiscard]] WelchResult welch_t_two_pass(std::span<const double> q0,
                                           std::span<const double> q1);

}  // namespace polaris::tvla
