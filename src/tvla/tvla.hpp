// TVLA campaigns: per-gate (per-group) leakage assessment.
//
// This is the `leak_estimate(D)` primitive of Algorithms 1 and 2. For each
// logical gate group, the per-trace power sample is the summed switching
// energy of the group's member cells; Welch's t (Eq. 1) compares the fixed
// class against the random class. Gates with |t| > 4.5 are considered leaky
// (Fig. 4).
//
// Two stimulus protocols are provided (Sec. II-A):
//  * fixed-vs-random - lanes in the fixed class switch from a random base
//    vector to a fixed target vector; random-class lanes switch to a fresh
//    random vector.
//  * fixed-vs-fixed  - two distinct fixed target vectors (known intermediate
//    values) are compared.
// Sequential designs (DFFs present) run free-running multi-cycle traces with
// per-cycle sampling instead of vector pairs.
//
// Execution: campaigns are a thin protocol layer over the shard-parallel
// trace engine (engine/trace_engine.hpp). The design is compiled once per
// campaign (sim::CompiledDesign) together with a fused toggle/energy
// sampling plan (power::SamplePlan); the trace budget is split into
// shards, each owning a thin Simulator over the shared plan plus
// per-batch-keyed RNG streams; shard statistics are mergeable
// CampaignMoments combined in shard order. Reports are bit-identical for
// every `threads` setting (see DESIGN.md).
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/compiled.hpp"
#include "techlib/techlib.hpp"
#include "tvla/moments.hpp"
#include "tvla/welch.hpp"

namespace polaris::engine {
class Scheduler;
}  // namespace polaris::engine

namespace polaris::tvla {

/// Role of a primary input in the TVLA protocol.
enum class InputClass : std::uint8_t {
  kSensitive,     // fixed in the fixed class, random in the random class
  kFixedCommon,   // same fixed value in BOTH classes (e.g. the key)
  kRandomCommon,  // fresh random in both classes (e.g. a nonce)
};

/// Early-stopping ("adaptive") trace budget for a campaign. Disabled by
/// default, and the disabled path is byte-identical to a build without the
/// feature: serialization and config fingerprints only change when
/// `enabled` is set.
///
/// When enabled, the campaign evaluates its merged moments at a
/// deterministic checkpoint schedule: trace milestones at min_traces,
/// 2*min_traces, 4*min_traces, ... (strictly below the full budget), each
/// rounded up to the next shard boundary of the campaign's ShardPlan - a
/// pure function of the batch count, never of `threads` or `lane_words`,
/// so stop decisions and reported t-stats are bit-reproducible across
/// every execution configuration (see DESIGN.md).
struct TvlaBudget {
  bool enabled = false;
  /// First checkpoint milestone, in traces. Must be positive when enabled;
  /// a floor at or above `traces` simply disables checkpoints (the full
  /// budget runs).
  std::size_t min_traces = 1024;
  /// Two-sided decision margin around the |t| threshold: a group is
  /// decided LEAKY when |t| > threshold + margin, decided CLEAN when its
  /// projection to the full budget stays below it,
  /// |t| * sqrt(total_traces / traces_so_far) < threshold - margin
  /// (Welch t grows like sqrt(n) for a true effect, so the projection is
  /// what the decided-clean group could at most reach).
  ///
  /// The campaign-level verdict composes the per-group rule asymmetrically,
  /// matching TVLA practice: it stops LEAKY at the first checkpoint where
  /// ANY measured group is confidently leaky (one decided excursion fails
  /// the design - later traces cannot un-fail it), but stops CLEAN only
  /// when EVERY measured group is confidently clean (a clean bill of
  /// health must cover all groups, so clean-looking designs keep their
  /// full budget unless the projection rules every group out).
  double margin = 0.5;
};

struct TvlaConfig {
  /// Total traces; rounded up to a whole number of 64-lane batches.
  std::size_t traces = 4096;
  /// Sequential designs: cycles discarded after reset, and sampled cycles
  /// per batch run.
  std::size_t warmup_cycles = 4;
  std::size_t cycles_per_batch = 32;
  double threshold = kLeakageThreshold;
  std::uint64_t seed = 1;
  /// Worker threads for trace collection: 0 = all hardware threads,
  /// 1 = fully serial. Results do not depend on this value. Note: when a
  /// campaign is driven through core::tvla_config_for, a nonzero
  /// PolarisConfig::threads overrides this field.
  std::size_t threads = 0;
  /// Per-sample additive measurement/electrical noise (std dev, fJ). Real
  /// trace acquisition never sees noise-free per-gate energies; without
  /// this floor every data-dependent gate saturates the t-test. Modelled
  /// analytically: means are unchanged, both class variances gain sigma^2.
  double noise_std_fj = 1.5;
  /// Lane-block width for the compiled kernel: 64-trace words evaluated
  /// per simulator pass (1, 2, 4, or 8; 0 = auto, i.e.
  /// sim::default_lane_words(), overridable via POLARIS_SIM_WORDS).
  /// Sequential campaigns always run 1 (the per-cycle sample order of a
  /// multi-batch lockstep would differ from the batch-major order; see
  /// DESIGN.md). Pure execution knob like `threads`: reports are
  /// bit-identical for every setting, and the field is never serialized
  /// nor part of config fingerprints.
  std::size_t lane_words = 0;
  /// Role of each primary input (empty = all kSensitive, the classic
  /// full-vector fixed-vs-random protocol).
  std::vector<InputClass> input_class;
  /// Fixed target vector (one bit per primary input). Empty = derived
  /// deterministically from `seed`.
  std::vector<bool> fixed_input;
  /// Second fixed vector for fixed-vs-fixed. Empty = derived from seed.
  std::vector<bool> fixed_input_b;
  /// Early-stopping trace budget (off by default; see TvlaBudget).
  TvlaBudget budget;
};

class LeakageReport {
 public:
  LeakageReport(std::vector<double> t_per_group, std::vector<bool> measured,
                double threshold);

  /// Welch t of group g (0 when unmeasured).
  [[nodiscard]] double t_value(netlist::GateId group) const {
    return t_per_group_[group];
  }
  [[nodiscard]] const std::vector<double>& t_values() const { return t_per_group_; }
  [[nodiscard]] bool measured(netlist::GateId group) const {
    return measured_[group];
  }

  [[nodiscard]] std::size_t group_count() const { return t_per_group_.size(); }
  [[nodiscard]] std::size_t measured_count() const;

  /// Groups with |t| above the threshold, sorted by descending |t|.
  [[nodiscard]] std::vector<netlist::GateId> leaky_groups() const;
  /// Number of such groups, counted in place (no allocation or sort).
  [[nodiscard]] std::size_t leaky_count() const;

  /// Sum of |t| over measured groups ("total leakage").
  [[nodiscard]] double total_abs_t() const;
  /// Mean |t| over measured groups - the paper's "Leakage Value (Per Gate)".
  [[nodiscard]] double leakage_per_gate() const;

  [[nodiscard]] double threshold() const { return threshold_; }

  /// Traces the campaign actually consumed producing this report. Only
  /// populated on budget-enabled campaigns (0 otherwise - the fixed path
  /// spends exactly the configured budget, and stays byte-identical).
  [[nodiscard]] std::size_t traces_used() const { return traces_used_; }
  /// True when an early-stop checkpoint decided the campaign before the
  /// full budget ran.
  [[nodiscard]] bool early_stopped() const { return early_stopped_; }
  void set_trace_usage(std::size_t traces_used, bool early_stopped) {
    traces_used_ = traces_used;
    early_stopped_ = early_stopped;
  }

 private:
  std::vector<double> t_per_group_;
  std::vector<bool> measured_;
  double threshold_;
  std::size_t traces_used_ = 0;
  bool early_stopped_ = false;
};

/// Checkpoint observer for budget-enabled campaigns (streaming audits):
/// called once per checkpoint in milestone order with the partial report
/// computed from the merged shard prefix and the traces it covers. Runs
/// under the campaign's merge lock on whichever drain thread crossed the
/// milestone - never concurrently with itself for one campaign. An
/// exception thrown from the observer fails the campaign (the future
/// rethrows it). Ignored when the budget is disabled.
using ProgressFn =
    std::function<void(const LeakageReport& partial, std::size_t traces_done)>;

/// Shard-granular access to a fixed-vs-random campaign - the seam the
/// distributed backend (server/remote.hpp, server/worker.hpp) executes
/// through. A ShardRunner owns exactly the campaign context the scheduler
/// path owns (compiled design, power model, sampling plan, fixed vectors,
/// checkpoint schedule); run_shard(s) produces the same CampaignMoments
/// shard s accumulates under any scheduler, thread count, or lane width,
/// so per-shard moments computed on ANY host merge - in ascending shard
/// order - into a report bit-identical to the single-host entry points.
///
/// The caller owns the merge loop: merge shard moments ascending, calling
/// evaluate_checkpoint after each prefix listed in checkpoint_shards()
/// (budget-enabled campaigns; a true return stops the merge at that
/// prefix), then finalize() the merged total. run_shard is const and
/// thread-safe; evaluate_checkpoint/finalize are single-threaded.
class ShardRunner {
 public:
  /// Compiles the design once. Throws like the campaign entry points on
  /// invalid configs. `design` and `lib` must outlive the runner.
  ShardRunner(const netlist::Netlist& design, const techlib::TechLibrary& lib,
              const TvlaConfig& config);
  ~ShardRunner();

  ShardRunner(const ShardRunner&) = delete;
  ShardRunner& operator=(const ShardRunner&) = delete;

  /// Trace budget in whole batches - the input to engine::ShardPlan::make,
  /// which defines the shard index space run_shard accepts.
  [[nodiscard]] std::size_t batch_count() const;
  /// Shards in the campaign's ShardPlan (pure function of batch_count).
  [[nodiscard]] std::size_t shard_count() const;
  /// The campaign's LPT scheduling weight (simulation-cost proxy).
  [[nodiscard]] std::size_t cost_weight() const;

  /// Runs shard `shard` of the plan into a fresh moments block.
  [[nodiscard]] CampaignMoments run_shard(std::size_t shard) const;
  /// A zeroed moments block with the campaign's group layout - the merge
  /// identity, and the finalize input for zero-shard campaigns.
  [[nodiscard]] CampaignMoments empty_moments() const;

  /// Ascending shard-prefix counts at which evaluate_checkpoint must run
  /// during the ascending merge (empty when the budget is disabled).
  [[nodiscard]] const std::vector<std::size_t>& checkpoint_shards() const;
  /// Early-stop decision on the merged prefix of `shards_merged` shards.
  /// Returns true to stop (the caller finalizes the current total and
  /// discards later shards). Also drives the progress observer.
  [[nodiscard]] bool evaluate_checkpoint(const CampaignMoments& merged,
                                         std::size_t shards_merged);
  /// Installs the per-checkpoint observer (see ProgressFn). Must be set
  /// before the merge loop runs.
  void set_progress(ProgressFn progress);

  /// Computes the final report from the merged total, including budget
  /// trace-usage when an earlier evaluate_checkpoint stopped the campaign.
  [[nodiscard]] LeakageReport finalize(const CampaignMoments& total);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Fixed-vs-random campaign (the protocol used for all paper tables).
/// Compiles the design once (sim::compile) and shares the plan across all
/// shards; see the CompiledDesignPtr overload to reuse a caller-held plan.
[[nodiscard]] LeakageReport run_fixed_vs_random(const netlist::Netlist& design,
                                                const techlib::TechLibrary& lib,
                                                const TvlaConfig& config);

/// Fixed-vs-fixed campaign (known intermediate values).
[[nodiscard]] LeakageReport run_fixed_vs_fixed(const netlist::Netlist& design,
                                               const techlib::TechLibrary& lib,
                                               const TvlaConfig& config);

/// Same campaigns over a pre-compiled execution plan: callers that run
/// several campaigns on one design (or want compile time measured apart
/// from trace time, as bench_fig4_tvla does) compile once and pass the
/// plan. The plan's netlist must outlive the call.
[[nodiscard]] LeakageReport run_fixed_vs_random(sim::CompiledDesignPtr design,
                                                const techlib::TechLibrary& lib,
                                                const TvlaConfig& config);
[[nodiscard]] LeakageReport run_fixed_vs_fixed(sim::CompiledDesignPtr design,
                                               const techlib::TechLibrary& lib,
                                               const TvlaConfig& config);

/// Asynchronous campaigns for multi-design / multi-campaign flows: queue
/// this campaign's shards on a global engine::Scheduler alongside every
/// other pending campaign's. The future becomes ready during
/// Scheduler::drain() and yields a report bit-identical to the synchronous
/// entry point above (tests/test_scheduler.cpp), regardless of thread
/// count, queue interleaving, or submission order. `config.threads` is
/// ignored - the scheduler owns the fan-out. The caller keeps `design` and
/// `lib` alive until the future is ready; campaign-construction errors
/// (e.g. a fixed-vector size mismatch) throw from the submit call itself.
/// `label` names the campaign in the scheduler's live progress table
/// (engine::CampaignProgress) - pure telemetry, never part of the result.
[[nodiscard]] std::future<LeakageReport> submit_fixed_vs_random(
    engine::Scheduler& scheduler, const netlist::Netlist& design,
    const techlib::TechLibrary& lib, const TvlaConfig& config,
    ProgressFn progress = {}, std::string label = {});

[[nodiscard]] std::future<LeakageReport> submit_fixed_vs_fixed(
    engine::Scheduler& scheduler, const netlist::Netlist& design,
    const techlib::TechLibrary& lib, const TvlaConfig& config,
    ProgressFn progress = {}, std::string label = {});

/// Pre-compiled-plan variants of the async entry points (see the
/// run_fixed_vs_random CompiledDesignPtr overload): the caller's plan is
/// shared by every shard instead of compiling in the submit call. The
/// plan's netlist must stay alive until the future is ready.
[[nodiscard]] std::future<LeakageReport> submit_fixed_vs_random(
    engine::Scheduler& scheduler, sim::CompiledDesignPtr design,
    const techlib::TechLibrary& lib, const TvlaConfig& config,
    ProgressFn progress = {}, std::string label = {});

[[nodiscard]] std::future<LeakageReport> submit_fixed_vs_fixed(
    engine::Scheduler& scheduler, sim::CompiledDesignPtr design,
    const techlib::TechLibrary& lib, const TvlaConfig& config,
    ProgressFn progress = {}, std::string label = {});

}  // namespace polaris::tvla
