// One-pass raw/central moment computation.
//
// Paper Sec. II-A: "TVLA trace collection is slow due to repeated mean and
// variance calculations. To accelerate it, [Schneider-Moradi 2015] proposed
// an efficient one-pass method for raw and central moments computation
// during trace acquisition", Eq. 3:  M1' = M1 + delta/n, and Eq. 4:
// mu = M1, s^2 = CM2 = M2 - M1^2, extensible to d > 1.
//
// We implement the numerically stable incremental update of the centered
// power sums Sd = sum (x - mean)^d for d = 2..4 (Pebay's formulas, which are
// the same family the Schneider-Moradi paper derives), plus a pairwise
// merge() so accumulators can be combined across batches. The naive two-pass
// reference (Eq. 2) lives in welch.hpp for tests and the ablation bench.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace polaris::tvla {

class MomentAccumulator {
 public:
  void add(double x) noexcept;

  /// Combine with another accumulator (Chan/Pebay pairwise update).
  void merge(const MomentAccumulator& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Central moment CM_d = S_d / n (population form, as in Eq. 4).
  [[nodiscard]] double central_moment(int d) const noexcept;

  /// Population variance CM2 (paper Eq. 4) and unbiased sample variance.
  [[nodiscard]] double variance_population() const noexcept;
  [[nodiscard]] double variance_sample() const noexcept;

  /// Standardized moments: skewness (d=3), kurtosis (d=4). Zero variance
  /// yields 0.
  [[nodiscard]] double skewness() const noexcept;
  [[nodiscard]] double kurtosis() const noexcept;

  /// Raw centered power sums S_d = sum (x-mean)^d, d = 2..4 - the exact
  /// internal state, exposed so shard results can travel across hosts
  /// (tvla/moments_io.hpp) and be restored bit-identically.
  [[nodiscard]] double sum2() const noexcept { return s2_; }
  [[nodiscard]] double sum3() const noexcept { return s3_; }
  [[nodiscard]] double sum4() const noexcept { return s4_; }

  /// Rebuilds an accumulator from its exact serialized state. merge() on a
  /// restored accumulator runs the same float ops as on the original.
  [[nodiscard]] static MomentAccumulator restore(std::size_t n, double mean,
                                                 double s2, double s3,
                                                 double s4) noexcept {
    MomentAccumulator acc;
    acc.n_ = n;
    acc.mean_ = mean;
    acc.s2_ = s2;
    acc.s3_ = s3;
    acc.s4_ = s4;
    return acc;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double s2_ = 0.0;  // sum (x-mean)^2
  double s3_ = 0.0;
  double s4_ = 0.0;
};

/// Mergeable per-campaign statistics block - the unit of state a trace
/// shard accumulates and the engine merges (engine/trace_engine.hpp).
///
/// Two representations coexist, mirroring the campaign fast paths:
///  * single-member gate groups: samples are binary {0, E}, so only toggle
///    counts per class are kept (exact integer merge);
///  * multi-member groups: real-valued group-energy sums per trace, kept as
///    one MomentAccumulator per class (Chan/Pebay merge).
/// Class sample counts (fixed/random lane totals) are shared by all groups
/// of a campaign and stored once.
class CampaignMoments {
 public:
  CampaignMoments() = default;
  CampaignMoments(std::size_t group_count, std::size_t multi_group_count)
      : single_ones_fixed_(group_count, 0),
        single_ones_random_(group_count, 0),
        multi_fixed_(multi_group_count),
        multi_random_(multi_group_count) {}

  /// Per sample step: how many lanes were in each class.
  void add_lane_counts(std::uint64_t fixed, std::uint64_t random) noexcept {
    n_fixed_ += fixed;
    n_random_ += random;
  }
  /// Single-member group: toggle counts observed in each class.
  void add_single_ones(std::size_t group, std::uint64_t fixed,
                       std::uint64_t random) noexcept {
    single_ones_fixed_[group] += fixed;
    single_ones_random_[group] += random;
  }
  /// Multi-member group: one summed-energy sample in the given class.
  void add_multi_sample(std::size_t multi_index, bool fixed_class,
                        double value) noexcept {
    (fixed_class ? multi_fixed_ : multi_random_)[multi_index].add(value);
  }

  /// Combines another shard's statistics. Integer counters merge exactly;
  /// moment accumulators use the pairwise Chan merge, so calling merge() in
  /// a fixed shard order gives bit-reproducible results.
  void merge(const CampaignMoments& other);

  [[nodiscard]] std::uint64_t n_fixed() const noexcept { return n_fixed_; }
  [[nodiscard]] std::uint64_t n_random() const noexcept { return n_random_; }
  [[nodiscard]] std::uint64_t single_ones_fixed(std::size_t group) const noexcept {
    return single_ones_fixed_[group];
  }
  [[nodiscard]] std::uint64_t single_ones_random(std::size_t group) const noexcept {
    return single_ones_random_[group];
  }
  [[nodiscard]] const MomentAccumulator& multi_fixed(std::size_t i) const noexcept {
    return multi_fixed_[i];
  }
  [[nodiscard]] const MomentAccumulator& multi_random(std::size_t i) const noexcept {
    return multi_random_[i];
  }

  [[nodiscard]] std::size_t group_count() const noexcept {
    return single_ones_fixed_.size();
  }
  [[nodiscard]] std::size_t multi_group_count() const noexcept {
    return multi_fixed_.size();
  }

  /// Restores one multi-member group's accumulator pair from serialized
  /// state (tvla/moments_io.hpp). Counts and single-group toggles are
  /// restorable through add_lane_counts/add_single_ones on a fresh object;
  /// only the accumulators need direct placement.
  void set_multi(std::size_t multi_index, MomentAccumulator fixed,
                 MomentAccumulator random) noexcept {
    multi_fixed_[multi_index] = fixed;
    multi_random_[multi_index] = random;
  }

 private:
  std::uint64_t n_fixed_ = 0, n_random_ = 0;
  std::vector<std::uint64_t> single_ones_fixed_, single_ones_random_;
  std::vector<MomentAccumulator> multi_fixed_, multi_random_;
};

}  // namespace polaris::tvla
