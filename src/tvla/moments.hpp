// One-pass raw/central moment computation.
//
// Paper Sec. II-A: "TVLA trace collection is slow due to repeated mean and
// variance calculations. To accelerate it, [Schneider-Moradi 2015] proposed
// an efficient one-pass method for raw and central moments computation
// during trace acquisition", Eq. 3:  M1' = M1 + delta/n, and Eq. 4:
// mu = M1, s^2 = CM2 = M2 - M1^2, extensible to d > 1.
//
// We implement the numerically stable incremental update of the centered
// power sums Sd = sum (x - mean)^d for d = 2..4 (Pebay's formulas, which are
// the same family the Schneider-Moradi paper derives), plus a pairwise
// merge() so accumulators can be combined across batches. The naive two-pass
// reference (Eq. 2) lives in welch.hpp for tests and the ablation bench.
#pragma once

#include <cstddef>

namespace polaris::tvla {

class MomentAccumulator {
 public:
  void add(double x) noexcept;

  /// Combine with another accumulator (Chan/Pebay pairwise update).
  void merge(const MomentAccumulator& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Central moment CM_d = S_d / n (population form, as in Eq. 4).
  [[nodiscard]] double central_moment(int d) const noexcept;

  /// Population variance CM2 (paper Eq. 4) and unbiased sample variance.
  [[nodiscard]] double variance_population() const noexcept;
  [[nodiscard]] double variance_sample() const noexcept;

  /// Standardized moments: skewness (d=3), kurtosis (d=4). Zero variance
  /// yields 0.
  [[nodiscard]] double skewness() const noexcept;
  [[nodiscard]] double kurtosis() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double s2_ = 0.0;  // sum (x-mean)^2
  double s3_ = 0.0;
  double s4_ = 0.0;
};

}  // namespace polaris::tvla
