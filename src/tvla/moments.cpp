#include "tvla/moments.hpp"

#include <cmath>

namespace polaris::tvla {

void MomentAccumulator::add(double x) noexcept {
  const double n1 = static_cast<double>(n_);
  ++n_;
  const double n = static_cast<double>(n_);
  const double delta = x - mean_;
  const double delta_n = delta / n;
  const double delta_n2 = delta_n * delta_n;
  const double term1 = delta * delta_n * n1;
  mean_ += delta_n;
  s4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * s2_ -
         4.0 * delta_n * s3_;
  s3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * s2_;
  s2_ += term1;
}

void MomentAccumulator::merge(const MomentAccumulator& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double n = na + nb;
  const double delta = other.mean_ - mean_;
  const double delta2 = delta * delta;
  const double delta3 = delta2 * delta;
  const double delta4 = delta3 * delta;

  const double s4 = s4_ + other.s4_ +
                    delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n) +
                    6.0 * delta2 * (na * na * other.s2_ + nb * nb * s2_) / (n * n) +
                    4.0 * delta * (na * other.s3_ - nb * s3_) / n;
  const double s3 = s3_ + other.s3_ +
                    delta3 * na * nb * (na - nb) / (n * n) +
                    3.0 * delta * (na * other.s2_ - nb * s2_) / n;
  const double s2 = s2_ + other.s2_ + delta2 * na * nb / n;

  mean_ += delta * nb / n;
  s2_ = s2;
  s3_ = s3;
  s4_ = s4;
  n_ = static_cast<std::size_t>(n);
}

void CampaignMoments::merge(const CampaignMoments& other) {
  n_fixed_ += other.n_fixed_;
  n_random_ += other.n_random_;
  for (std::size_t g = 0; g < single_ones_fixed_.size(); ++g) {
    single_ones_fixed_[g] += other.single_ones_fixed_[g];
    single_ones_random_[g] += other.single_ones_random_[g];
  }
  for (std::size_t m = 0; m < multi_fixed_.size(); ++m) {
    multi_fixed_[m].merge(other.multi_fixed_[m]);
    multi_random_[m].merge(other.multi_random_[m]);
  }
}

double MomentAccumulator::central_moment(int d) const noexcept {
  if (n_ == 0) return 0.0;
  const double n = static_cast<double>(n_);
  switch (d) {
    case 1: return 0.0;  // by definition of centering
    case 2: return s2_ / n;
    case 3: return s3_ / n;
    case 4: return s4_ / n;
    default: return 0.0;
  }
}

double MomentAccumulator::variance_population() const noexcept {
  return central_moment(2);
}

double MomentAccumulator::variance_sample() const noexcept {
  return n_ < 2 ? 0.0 : s2_ / static_cast<double>(n_ - 1);
}

double MomentAccumulator::skewness() const noexcept {
  const double v = variance_population();
  if (v <= 0.0) return 0.0;
  return central_moment(3) / std::pow(v, 1.5);
}

double MomentAccumulator::kurtosis() const noexcept {
  const double v = variance_population();
  if (v <= 0.0) return 0.0;
  return central_moment(4) / (v * v);
}

}  // namespace polaris::tvla
