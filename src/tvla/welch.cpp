#include "tvla/welch.hpp"

#include <cmath>

namespace polaris::tvla {

WelchResult welch_t(double mean0, double var0, double n0, double mean1,
                    double var1, double n1) {
  WelchResult result;
  if (n0 < 2.0 || n1 < 2.0) return result;
  const double se0 = var0 / n0;
  const double se1 = var1 / n1;
  const double se = se0 + se1;
  if (se <= 0.0) return result;
  result.t = (mean0 - mean1) / std::sqrt(se);
  const double denom = se0 * se0 / (n0 - 1.0) + se1 * se1 / (n1 - 1.0);
  result.dof = denom > 0.0 ? se * se / denom : 0.0;
  return result;
}

WelchResult welch_t(const MomentAccumulator& q0, const MomentAccumulator& q1) {
  return welch_t(q0.mean(), q0.variance_sample(), static_cast<double>(q0.count()),
                 q1.mean(), q1.variance_sample(), static_cast<double>(q1.count()));
}

WelchResult welch_t(const MomentAccumulator& q0, const MomentAccumulator& q1,
                    double noise_var) {
  return welch_t(q0.mean(), q0.variance_sample() + noise_var,
                 static_cast<double>(q0.count()), q1.mean(),
                 q1.variance_sample() + noise_var,
                 static_cast<double>(q1.count()));
}

WelchResult welch_t_binary_energy(std::uint64_t n0, std::uint64_t ones0,
                                  std::uint64_t n1, std::uint64_t ones1,
                                  double energy, double noise_var) {
  if (n0 < 2 || n1 < 2) return {};
  const double dn0 = static_cast<double>(n0);
  const double dn1 = static_cast<double>(n1);
  const double p0 = static_cast<double>(ones0) / dn0;
  const double p1 = static_cast<double>(ones1) / dn1;
  const double v0 = dn0 * p0 * (1.0 - p0) / (dn0 - 1.0);
  const double v1 = dn1 * p1 * (1.0 - p1) / (dn1 - 1.0);
  return welch_t(energy * p0, energy * energy * v0 + noise_var, dn0,
                 energy * p1, energy * energy * v1 + noise_var, dn1);
}

WelchResult welch_t_binary(std::uint64_t n0, std::uint64_t ones0,
                           std::uint64_t n1, std::uint64_t ones1) {
  if (n0 < 2 || n1 < 2) return {};
  const double dn0 = static_cast<double>(n0);
  const double dn1 = static_cast<double>(n1);
  const double m0 = static_cast<double>(ones0) / dn0;
  const double m1 = static_cast<double>(ones1) / dn1;
  // For x in {0,1}: sum x^2 = sum x, so the unbiased sample variance is
  // (ones - n*m^2) / (n-1) = n*m*(1-m) / (n-1).
  const double v0 = dn0 * m0 * (1.0 - m0) / (dn0 - 1.0);
  const double v1 = dn1 * m1 * (1.0 - m1) / (dn1 - 1.0);
  return welch_t(m0, v0, dn0, m1, v1, dn1);
}

WelchResult welch_t_two_pass(std::span<const double> q0,
                             std::span<const double> q1) {
  const auto two_pass = [](std::span<const double> q, double& mean, double& var) {
    mean = 0.0;
    for (const double x : q) mean += x;
    mean /= static_cast<double>(q.size());
    double sum_sq = 0.0;
    for (const double x : q) sum_sq += (x - mean) * (x - mean);  // Eq. 2
    var = q.size() < 2 ? 0.0 : sum_sq / static_cast<double>(q.size() - 1);
  };
  if (q0.size() < 2 || q1.size() < 2) return {};
  double m0 = 0.0, v0 = 0.0, m1 = 0.0, v1 = 0.0;
  two_pass(q0, m0, v0);
  two_pass(q1, m1, v1);
  return welch_t(m0, v0, static_cast<double>(q0.size()), m1, v1,
                 static_cast<double>(q1.size()));
}

}  // namespace polaris::tvla
