#include "server/remote.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <deque>
#include <optional>
#include <set>
#include <thread>

#include "obs/obs.hpp"

namespace polaris::server {

namespace {

/// Client-side socket poll cadence: SO_*TIMEO expiry re-checks the cancel
/// probe, which enforces the per-roundtrip deadline and batch completion.
constexpr int kFeederPollMs = 100;

obs::Counter& shards_out_counter() {
  static auto& counter = obs::Registry::global().counter("net.shards_out");
  return counter;
}
obs::Counter& moments_in_counter() {
  static auto& counter = obs::Registry::global().counter("net.moments_in");
  return counter;
}
obs::Counter& bytes_counter() {
  static auto& counter = obs::Registry::global().counter("net.bytes");
  return counter;
}
obs::Counter& resends_counter() {
  static auto& counter = obs::Registry::global().counter("net.resends");
  return counter;
}

}  // namespace

/// Shared state of one audit() call. Lanes pull chunks from the queue;
/// completed shard moments land in per-(design, shard) slots (distinct
/// objects, so concurrent stores never race); `remaining` counts shards
/// still unstored and flips `done` at zero.
struct WorkerPool::Batch {
  struct Chunk {
    std::size_t design = 0;
    std::size_t begin = 0;  // shard range [begin, end)
    std::size_t end = 0;
  };

  std::span<const circuits::Design> designs;
  const core::PolarisConfig* config = nullptr;
  std::vector<std::uint64_t> fingerprints;  // per design
  std::vector<std::unique_ptr<tvla::ShardRunner>> runners;
  std::vector<std::vector<std::optional<tvla::CampaignMoments>>> slots;

  std::mutex queue_mutex;
  std::deque<Chunk> queue;
  std::atomic<std::size_t> remaining{0};
  std::atomic<bool> done{false};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr error;

  std::optional<Chunk> pop() {
    const std::lock_guard<std::mutex> lock(queue_mutex);
    if (queue.empty()) return std::nullopt;
    Chunk chunk = queue.front();
    queue.pop_front();
    return chunk;
  }

  /// Requeues at the FRONT: a dead worker's chunks are the oldest
  /// outstanding work and should not wait behind the whole tail.
  void requeue(const Chunk& chunk) {
    const std::lock_guard<std::mutex> lock(queue_mutex);
    queue.push_front(chunk);
  }

  void store(std::size_t design, std::size_t shard,
             tvla::CampaignMoments moments) {
    slots[design][shard] = std::move(moments);
    if (remaining.fetch_sub(1) == 1) done.store(true);
  }

  void fail(std::exception_ptr error_in) {
    {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!error) error = std::move(error_in);
    }
    failed.store(true);
    done.store(true);  // release every lane
  }

  [[nodiscard]] bool finished() const {
    return done.load() || failed.load();
  }
};

WorkerPool::WorkerPool(WorkerPoolOptions options)
    : options_(std::move(options)) {
  std::string spec;
  for (std::size_t i = 0; i <= options_.workers.size(); ++i) {
    if (i == options_.workers.size() || options_.workers[i] == ',') {
      if (!spec.empty()) {
        auto slot = std::make_unique<WorkerSlot>();
        slot->endpoint = net::parse_endpoint(spec);
        slot->display = net::to_string(slot->endpoint);
        workers_.push_back(std::move(slot));
        spec.clear();
      }
    } else {
      spec.push_back(options_.workers[i]);
    }
  }
}

std::vector<WorkerHealthEntry> WorkerPool::health() const {
  std::vector<WorkerHealthEntry> entries;
  entries.reserve(workers_.size());
  for (const auto& slot : workers_) {
    WorkerHealthEntry entry;
    entry.endpoint = slot->display;
    entry.alive = slot->alive.load();
    entry.inflight = slot->inflight.load();
    entry.shards_done = slot->shards_done.load();
    entry.bytes_out = slot->bytes_out.load();
    entry.bytes_in = slot->bytes_in.load();
    entry.resends = slot->resends.load();
    entries.push_back(std::move(entry));
  }
  return entries;
}

WorkerPool::Totals WorkerPool::totals() const {
  Totals totals;
  for (const auto& slot : workers_) {
    totals.shards_out += slot->shards_done.load() + slot->inflight.load();
    totals.moments_in += slot->shards_done.load();
    totals.bytes += slot->bytes_out.load() + slot->bytes_in.load();
    totals.resends += slot->resends.load();
  }
  return totals;
}

std::vector<tvla::LeakageReport> WorkerPool::audit(
    std::span<const circuits::Design> designs,
    const techlib::TechLibrary& lib, const core::PolarisConfig& config,
    tvla::ProgressFn progress) {
  core::validate(config);
  Batch batch;
  batch.designs = designs;
  batch.config = &config;

  // Compile every campaign once, up front: the coordinator needs each
  // ShardRunner anyway for the merge replay, checkpoints, and finalize,
  // and cost_weight() drives the LPT chunk order below.
  batch.runners.reserve(designs.size());
  batch.fingerprints.reserve(designs.size());
  batch.slots.resize(designs.size());
  std::size_t total_shards = 0;
  for (std::size_t d = 0; d < designs.size(); ++d) {
    batch.fingerprints.push_back(core::design_fingerprint(designs[d]));
    batch.runners.push_back(std::make_unique<tvla::ShardRunner>(
        designs[d].netlist, lib, core::tvla_config_for(config, designs[d])));
    batch.slots[d].resize(batch.runners[d]->shard_count());
    total_shards += batch.runners[d]->shard_count();
  }
  batch.remaining.store(total_shards);
  if (total_shards == 0) batch.done.store(true);

  // LPT chunk order: heaviest campaign first (ties by input order), then
  // ascending shard ranges within a campaign - the same weight-desc /
  // sequence-asc / shard-asc policy the local scheduler queue uses.
  std::vector<std::size_t> order(designs.size());
  for (std::size_t d = 0; d < designs.size(); ++d) order[d] = d;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return batch.runners[a]->cost_weight() >
                            batch.runners[b]->cost_weight();
                   });
  for (const std::size_t d : order) {
    const std::size_t shards = batch.runners[d]->shard_count();
    for (std::size_t begin = 0; begin < shards; begin += kShardsPerChunk) {
      Batch::Chunk chunk;
      chunk.design = d;
      chunk.begin = begin;
      chunk.end = std::min(begin + kShardsPerChunk, shards);
      batch.queue.push_back(chunk);
    }
  }

  // One feeder thread per remote worker, plus local lanes. At least one
  // local lane always runs: it is the completion guarantee - any chunk a
  // dead worker returns to the queue can be executed in-process.
  std::vector<std::thread> lanes;
  for (const auto& slot : workers_) {
    slot->alive.store(true);
    lanes.emplace_back([this, &batch, raw = slot.get()] {
      feed_worker(*raw, batch);
    });
  }
  std::size_t local = options_.local_threads != 0
                          ? options_.local_threads
                          : std::thread::hardware_concurrency();
  local = std::max<std::size_t>(1, local);
  for (std::size_t t = 0; t < local; ++t) {
    lanes.emplace_back([this, &batch] { run_local_lane(batch); });
  }
  for (auto& lane : lanes) lane.join();
  if (batch.failed.load()) {
    const std::lock_guard<std::mutex> lock(batch.error_mutex);
    std::rethrow_exception(batch.error);
  }

  // Merge replay: EXACTLY the scheduler's checkpointed ascending merge
  // (scheduler.hpp run_shard) - merge one shard, advance the cursor, fire
  // at most one checkpoint per advance, stop merging the moment one
  // decides. Byte-identity with single-host execution rests on this loop.
  std::vector<tvla::LeakageReport> reports;
  reports.reserve(designs.size());
  for (std::size_t d = 0; d < designs.size(); ++d) {
    auto& runner = *batch.runners[d];
    if (progress) runner.set_progress(progress);
    const std::size_t shard_count = runner.shard_count();
    const auto& checkpoints = runner.checkpoint_shards();
    tvla::CampaignMoments total = runner.empty_moments();
    std::size_t merged = 0;
    std::size_t next_checkpoint = 0;
    while (merged < shard_count) {
      if (merged == 0) {
        total = std::move(*batch.slots[d][0]);
      } else {
        total.merge(*batch.slots[d][merged]);
      }
      ++merged;
      if (next_checkpoint < checkpoints.size() &&
          merged == checkpoints[next_checkpoint]) {
        ++next_checkpoint;
        if (runner.evaluate_checkpoint(total, merged)) break;
      }
    }
    reports.push_back(runner.finalize(total));
  }
  return reports;
}

void WorkerPool::run_local_lane(Batch& batch) {
  for (;;) {
    const auto chunk = batch.pop();
    if (!chunk) {
      if (batch.finished()) return;
      // Empty queue but unstored shards: a remote worker still holds
      // them, and might die and requeue - stay available.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      continue;
    }
    try {
      auto& runner = *batch.runners[chunk->design];
      for (std::size_t shard = chunk->begin; shard < chunk->end; ++shard) {
        if (batch.failed.load()) return;
        batch.store(chunk->design, shard, runner.run_shard(shard));
      }
    } catch (...) {
      batch.fail(std::current_exception());
      return;
    }
  }
}

void WorkerPool::feed_worker(WorkerSlot& slot, Batch& batch) {
  struct Pending {
    bool is_chunk = false;
    Batch::Chunk chunk;       // valid when is_chunk
    std::size_t bytes = 0;    // request payload size (admission control)
  };
  std::deque<Pending> outstanding;
  std::set<std::size_t> installed;  // designs installed on this connection
  std::size_t inflight_bytes = 0;
  int fd = -1;

  // The deadline is per roundtrip: armed when a reply wait starts,
  // checked by the probe on every socket-timeout tick.
  const bool has_deadline = options_.timeout_ms != 0;
  std::chrono::steady_clock::time_point deadline;
  const CancelProbe probe = [&] {
    if (batch.failed.load()) return true;
    return has_deadline && std::chrono::steady_clock::now() > deadline;
  };

  try {
    fd = net::connect_endpoint(slot.endpoint);
    timeval timeout{};
    timeout.tv_usec = kFeederPollMs * 1000;
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

    std::vector<std::uint8_t> payload;
    for (;;) {
      // Admission control: pipeline up to `pipeline_depth` chunks, but
      // never more than `max_inflight_bytes` of unanswered request
      // payload - a slow worker's queue stays bounded.
      std::size_t chunks_out = 0;
      for (const auto& pending : outstanding) chunks_out += pending.is_chunk;
      while (chunks_out < options_.pipeline_depth &&
             inflight_bytes < options_.max_inflight_bytes) {
        const auto chunk = batch.pop();
        if (!chunk) break;
        deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(options_.timeout_ms);
        // Between pop and the Pending landing in `outstanding`, the chunk
        // is invisible to the outer requeue loop: if a send fails here
        // (torn connection, deadline probe firing mid-EAGAIN), give the
        // chunk back before withdrawing, or Batch::remaining never
        // reaches zero and every surviving lane spins forever.
        try {
          if (installed.find(chunk->design) == installed.end()) {
            const auto install =
                encode_design_request(batch.designs[chunk->design]);
            write_frame(fd, install, probe);
            slot.bytes_out.fetch_add(install.size());
            bytes_counter().add(install.size());
            outstanding.push_back(Pending{});
            installed.insert(chunk->design);
          }
          ShardRequest request;
          request.fingerprint = batch.fingerprints[chunk->design];
          request.config = *batch.config;
          request.shard_begin = chunk->begin;
          request.shard_end = chunk->end;
          const auto frame = encode_shard_request(request);
          write_frame(fd, frame, probe);
          slot.bytes_out.fetch_add(frame.size());
          bytes_counter().add(frame.size());
          shards_out_counter().add(chunk->end - chunk->begin);
          Pending pending;
          pending.is_chunk = true;
          pending.chunk = *chunk;
          pending.bytes = frame.size();
          inflight_bytes += frame.size();
          outstanding.push_back(std::move(pending));
        } catch (...) {
          slot.resends.fetch_add(chunk->end - chunk->begin);
          resends_counter().add(chunk->end - chunk->begin);
          batch.requeue(*chunk);
          throw;
        }
        slot.inflight.fetch_add(1);
        ++chunks_out;
      }
      if (outstanding.empty()) {
        if (batch.finished()) break;
        // Queue drained but shards remain elsewhere; new chunks can
        // reappear if another worker dies.
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        continue;
      }

      // One reply, FIFO: the worker serves a connection's frames in
      // order, so the front pending is always the one being answered.
      deadline = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(options_.timeout_ms);
      const FrameResult result =
          read_frame(fd, options_.max_frame, payload, probe);
      if (result != FrameResult::kFrame) {
        throw std::runtime_error("polaris net: worker '" + slot.display +
                                 "' closed the connection");
      }
      const std::size_t reply_bytes = payload.size();
      Response response = decode_response(std::move(payload));
      const Pending pending = outstanding.front();
      outstanding.pop_front();
      slot.bytes_in.fetch_add(reply_bytes);
      bytes_counter().add(reply_bytes);
      if (!pending.is_chunk) {  // design-install ack
        if (response.status != Status::kOk) {
          throw std::runtime_error("polaris net: worker '" + slot.display +
                                   "' rejected design install: " +
                                   response.message);
        }
        continue;
      }
      inflight_bytes -= pending.bytes;
      slot.inflight.fetch_sub(1);
      if (response.status == Status::kUnknownDesign) {
        // Worker restarted between install and shard request: force a
        // re-install on the next send and give the chunk back.
        installed.erase(pending.chunk.design);
        slot.resends.fetch_add(pending.chunk.end - pending.chunk.begin);
        resends_counter().add(pending.chunk.end - pending.chunk.begin);
        batch.requeue(pending.chunk);
        continue;
      }
      // The chunk left `outstanding` above, so from here until its
      // shards are stored, a throw would strand it in neither the
      // outstanding list nor the queue - the campaign would never
      // complete. Validate the WHOLE reply first, store only after
      // (store never throws), and requeue the chunk on any failure.
      try {
        if (response.status != Status::kOk) {
          throw std::runtime_error("polaris net: worker '" + slot.display +
                                   "' failed shard request: " +
                                   response.message);
        }
        ShardReply reply = decode_shard_reply(response.body);
        if (reply.shards.size() !=
            pending.chunk.end - pending.chunk.begin) {
          throw std::runtime_error("polaris net: worker '" + slot.display +
                                   "' answered the wrong shard count");
        }
        // The worker fills a chunk's shards in ascending order, so entry
        // i must be exactly begin + i. This is stricter than a range
        // check on purpose: a duplicate in-range index would
        // double-store one slot and double-decrement Batch::remaining,
        // flipping `done` with shards still unstored - then the merge
        // replay dereferences an empty slot. Network input never gets to
        // do that, which is why validation completes before any store.
        for (std::size_t i = 0; i < reply.shards.size(); ++i) {
          if (reply.shards[i].shard != pending.chunk.begin + i) {
            throw std::runtime_error("polaris net: worker '" + slot.display +
                                     "' answered an unrequested shard");
          }
        }
        for (auto& result_in : reply.shards) {
          batch.store(pending.chunk.design,
                      static_cast<std::size_t>(result_in.shard),
                      std::move(result_in.moments));
        }
        slot.shards_done.fetch_add(reply.shards.size());
        moments_in_counter().add(reply.shards.size());
      } catch (...) {
        slot.resends.fetch_add(pending.chunk.end - pending.chunk.begin);
        resends_counter().add(pending.chunk.end - pending.chunk.begin);
        batch.requeue(pending.chunk);
        throw;
      }
    }
  } catch (const std::exception&) {
    // Worker lost (unreachable, timed out, torn connection, or a failed
    // request): requeue every unacknowledged chunk for the surviving
    // lanes and withdraw from this batch. The chunks may have executed
    // remotely - that is harmless, re-running a shard yields the same
    // bits and only one copy is ever stored (nothing was stored here).
    for (const auto& pending : outstanding) {
      if (!pending.is_chunk) continue;
      slot.inflight.fetch_sub(1);
      slot.resends.fetch_add(pending.chunk.end - pending.chunk.begin);
      resends_counter().add(pending.chunk.end - pending.chunk.begin);
      batch.requeue(pending.chunk);
    }
    slot.alive.store(false);
  }
  if (fd >= 0) ::close(fd);
}

}  // namespace polaris::server
