#include "server/flight_recorder.hpp"

#include <algorithm>
#include <string>

#include "obs/obs.hpp"

namespace polaris::server {

FlightRecorder::FlightRecorder(std::size_t capacity,
                               std::uint64_t slow_threshold_us)
    : capacity_(std::max<std::size_t>(capacity, 1)),
      slow_threshold_us_(slow_threshold_us) {}

void FlightRecorder::record(const Record& record, std::string_view kind_name) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (ring_.size() < capacity_) {
      ring_.push_back(record);
    } else {
      ring_[next_] = record;
      next_ = (next_ + 1) % capacity_;
    }
    ++total_;
  }
  if (slow_threshold_us_ != 0 && record.duration_us >= slow_threshold_us_) {
    static auto& slow = obs::Registry::global().counter("server.slow_requests");
    slow.add();
    // obs::log is already token-bucket limited, so a pathological burst of
    // slow requests costs a handful of lines plus obs.log_suppressed.
    obs::log("server", "slow request: kind=" + std::string(kind_name) +
                           " duration_us=" + std::to_string(record.duration_us) +
                           " bytes=" + std::to_string(record.bytes) +
                           " status=" + std::to_string(record.status) +
                           (record.cache_hit ? " cache_hit" : ""));
  }
}

std::vector<FlightRecorder::Record> FlightRecorder::recent() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Record> out;
  out.reserve(ring_.size());
  // Newest first: walk backward from the slot before next_ (the most
  // recently written once the ring wrapped; ring_.back() before that).
  if (ring_.size() < capacity_) {
    for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) out.push_back(*it);
  } else {
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      const std::size_t slot =
          (next_ + ring_.size() - 1 - i) % ring_.size();
      out.push_back(ring_[slot]);
    }
  }
  return out;
}

std::uint64_t FlightRecorder::total_recorded() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

}  // namespace polaris::server
