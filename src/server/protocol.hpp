// Wire protocol of the POLARIS serve daemon (see DESIGN.md "Serve wire
// protocol" for the normative spec).
//
// A connection carries a sequence of independent frames, each:
//
//   magic   "PLFR"  (4 bytes)
//   version u32 LE  (kProtocolVersion; readers reject newer)
//   length  u64 LE  (payload byte count; checked against the receiver's
//                    max-frame limit BEFORE any allocation)
//   payload         a complete serialize:: archive (own magic + CRC), so
//                   payload decoding inherits the archive's endian safety,
//                   corruption detection, and check-before-allocate
//                   hardening for free.
//
// Request payload:  "POLQ" chunk (kind byte) + one kind-specific chunk.
// Response payload: "POLS" chunk (status, message, cache_hit) + "BODY"
// chunk wrapping the kind-specific reply as a nested archive. The nested
// archive is exactly what the result cache stores, so a cache hit replays
// byte-identical reply bytes.
//
// Error handling: a malformed frame gets a structured error RESPONSE
// (status != kOk) rather than a dropped connection. Errors that leave the
// byte stream unsynchronizable (bad magic, future version, oversized
// length) are answered and then the connection is closed; payload-level
// errors (archive CRC mismatch, unknown request kind) keep it open - the
// framing was intact, so the next frame boundary is known.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "circuits/suite.hpp"
#include "core/config.hpp"
#include "core/polaris.hpp"
#include "engine/scheduler.hpp"
#include "netlist/netlist.hpp"
#include "obs/obs.hpp"
#include "serialize/archive.hpp"
#include "tvla/tvla.hpp"

namespace polaris::server {

inline constexpr char kFrameMagic[4] = {'P', 'L', 'F', 'R'};
inline constexpr std::uint32_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderSize = 16;
/// Default --max-frame: generous for netlist-sized payloads, small enough
/// that a corrupt length field cannot drive a multi-GiB allocation.
inline constexpr std::size_t kDefaultMaxFrame = std::size_t{64} << 20;

enum class RequestKind : std::uint8_t {
  kPing = 0,
  kAudit = 1,
  kMask = 2,
  kScore = 3,
  kShutdown = 4,
  kStats = 5,  // registry snapshot; unknown to pre-obs servers, which
               // answer kBadPayload and keep the connection open - no
               // protocol version bump needed
  kAuditStream = 6,  // audit with per-checkpoint partial frames (budget-
                     // enabled configs); same AUDQ payload and cache key
                     // as kAudit. Unknown to older servers: kBadPayload,
                     // connection stays open, no version bump.
  kStatus = 7,  // live-operations snapshot: in-flight requests, campaign
                // progress, flight-recorder ring. Pure telemetry, never
                // cached. Unknown to older servers: kBadPayload, same
                // append-only contract as kStats - no version bump.
  kDesign = 8,  // distributed execution: install a netlist + roles under
                // its design fingerprint in a worker's plan cache, so the
                // shard requests that follow can reference it by the
                // 8-byte fingerprint alone. Empty-body kOk ack.
  kShard = 9,   // distributed execution: run a contiguous shard range of a
                // TVLA campaign against an installed design; the reply
                // ships per-shard UNMERGED CampaignMoments so the
                // coordinator can replay the exact single-host merge
                // order (bit-identical audits at any worker count).
};

/// Short lowercase name for a request kind ("ping", "audit", ...), used in
/// log lines, span args, and the flight recorder. Never "?" for a kind
/// decode_request_kind accepts.
[[nodiscard]] const char* request_kind_name(RequestKind kind);

/// On-the-wire status codes (append-only, like every on-disk enum).
enum class Status : std::uint8_t {
  kOk = 0,
  kBadMagic = 1,     // frame header did not start with "PLFR"
  kBadVersion = 2,   // frame protocol version newer than this server
  kTooLarge = 3,     // declared payload length exceeds --max-frame
  kBadPayload = 4,   // payload archive failed to parse (CRC, truncation)
  kBadRequest = 5,   // well-formed payload, invalid request (bad design...)
  kServerError = 6,  // request failed while executing
  kShuttingDown = 7, // server is draining; request not accepted
  kUnknownDesign = 8, // kShard named a fingerprint this worker has not
                      // seen; the coordinator answers by re-sending
                      // kDesign and retrying the shard request
};

[[nodiscard]] const char* to_string(Status status);

/// An error reply from the server, rethrown client-side. Inherits
/// std::runtime_error so every served failure exits 1 from the CLI -
/// exactly like its offline counterpart (an unknown design is a runtime
/// failure there too; only flag misuse exits 2).
struct ServerError : std::runtime_error {
  ServerError(Status status, const std::string& message)
      : std::runtime_error(message), status(status) {}
  Status status;
};

/// A client-side deadline expired while waiting on the peer (see
/// Client's timeout_ms option). Distinct from ServerError - the server
/// never answered, so the request may or may not have executed; callers
/// that care (the distributed coordinator) catch this type and requeue.
struct TimeoutError : std::runtime_error {
  explicit TimeoutError(const std::string& message)
      : std::runtime_error(message) {}
};

// --- requests ---------------------------------------------------------------

struct AuditRequest {
  std::string design;  // suite name or .v path, resolved server-side
  double scale = 1.0;
  /// Full config: the audit result depends on the TVLA knobs and seed, so
  /// the request carries exactly what the offline CLI would have built.
  core::PolarisConfig config;
};

struct MaskRequest {
  std::string design;
  double scale = 1.0;
  std::size_t mask_size = 0;  // 0 = the bundle's configured Msize
  core::InferenceMode mode = core::InferenceMode::kModel;
  bool verify = false;  // before/after TVLA sign-off on top
};

struct ScoreRequest {
  std::string design;
  double scale = 1.0;
  core::InferenceMode mode = core::InferenceMode::kModel;
};

/// Installs a design in a worker's compiled-plan cache. Carries the FULL
/// netlist (nets, gates, groups, ports) plus per-input roles, keyed by the
/// same content fingerprint the result cache uses - the worker recomputes
/// the fingerprint after decoding and rejects a mismatch, so a corrupted
/// design can never silently contaminate shard results.
struct DesignRequest {
  std::uint64_t fingerprint = 0;
  circuits::Design design;
};

/// One work unit: run shards [shard_begin, shard_end) of the campaign that
/// `config` and the installed design `fingerprint` determine. The config
/// travels in canonical serialized form, which zeroes the host-local
/// `threads` knob - and lane_words is never serialized at all - so the
/// work unit pins the RESULT, not the execution strategy: the worker is
/// free to pick its own thread count and SIMD width.
struct ShardRequest {
  std::uint64_t fingerprint = 0;
  core::PolarisConfig config;
  std::uint64_t shard_begin = 0;
  std::uint64_t shard_end = 0;
};

// --- replies ----------------------------------------------------------------

struct PingReply {
  std::uint32_t protocol = kProtocolVersion;
  std::string model_name;
  std::uint64_t config_fingerprint = 0;
  std::uint64_t requests_served = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_entries = 0;
  // Version/runtime identity (appended fields; see obs::runtime_info):
  // what kernel is this daemon actually running?
  std::string build_type;
  std::string simd;
  std::uint64_t lane_words = 0;
};

/// Registry snapshot plus the same runtime identity as PingReply. The
/// snapshot is process-wide execution telemetry - by the obs contract it
/// never feeds a fingerprint, so stats responses are never cached.
struct StatsReply {
  std::uint32_t protocol = kProtocolVersion;
  std::string model_name;
  std::uint64_t config_fingerprint = 0;
  std::string build_type;
  std::string simd;
  std::uint64_t lane_words = 0;
  std::uint64_t requests_served = 0;
  std::uint64_t connections = 0;
  obs::Snapshot snapshot;
  /// Milliseconds since the daemon started (appended field; 0 from older
  /// servers). Lets `client stats --prom` export polaris_uptime_seconds.
  std::uint64_t uptime_ms = 0;
};

/// One request currently being serviced by a handler thread (decoded but
/// not yet answered) at the instant the status snapshot was taken.
struct InflightEntry {
  std::uint8_t kind = 0;        // RequestKind as sent on the wire
  std::uint64_t bytes = 0;      // request payload size
  std::uint64_t age_us = 0;     // time since the payload was decoded
};

/// One completed request from the server's flight-recorder ring.
struct FlightRecordEntry {
  std::uint8_t kind = 0;
  std::uint8_t status = 0;       // Status the response carried
  bool cache_hit = false;
  std::uint64_t bytes = 0;       // request payload size
  std::uint64_t duration_us = 0; // decode-to-encode service time
  std::uint64_t age_us = 0;      // time since completion
};

/// Live-operations snapshot: what the daemon is doing RIGHT NOW (in-flight
/// requests, per-campaign shard progress) plus what it just finished (the
/// flight-recorder ring, newest first). Point-in-time telemetry gathered
/// under the scheduler/connection locks - never cached, never part of any
/// fingerprint or result.
/// Health of one remote worker as seen by the coordinator's worker pool.
/// Pure telemetry, same caveats as the rest of the status snapshot.
struct WorkerHealthEntry {
  std::string endpoint;          // display form of the worker's endpoint
  bool alive = true;             // false once the feeder thread gave up
  std::uint64_t inflight = 0;    // shard chunks sent but not yet answered
  std::uint64_t shards_done = 0; // shards whose moments arrived
  std::uint64_t bytes_out = 0;   // request payload bytes shipped
  std::uint64_t bytes_in = 0;    // moments payload bytes received
  std::uint64_t resends = 0;     // chunks requeued after loss/timeout
};

struct StatusReply {
  std::uint32_t protocol = kProtocolVersion;
  std::string model_name;
  std::uint64_t requests_served = 0;
  std::uint64_t connections_active = 0;  // handler threads currently open
  std::uint64_t connections_total = 0;   // accepted since startup
  std::uint64_t uptime_ms = 0;
  std::uint64_t sample_interval_ms = 0;  // metrics sampler period (0 = off)
  std::uint64_t samples = 0;             // time-series points collected
  std::vector<InflightEntry> inflight;
  std::vector<engine::CampaignProgress> campaigns;
  std::vector<FlightRecordEntry> recent;  // newest first
  /// Remote-worker fleet health (appended "WRKR" chunk; empty from
  /// daemons without --workers and from pre-distributed daemons).
  std::vector<WorkerHealthEntry> workers;
};

struct AuditReply {
  std::string design_name;
  std::uint64_t gate_count = 0;
  std::uint64_t traces = 0;
  tvla::LeakageReport report{{}, {}, 0.0};
  bool cache_hit = false;
  // Early-stop outcome (appended fields; zero/false from pre-budget
  // servers or fixed-budget runs).
  std::uint64_t traces_used = 0;
  bool early_stopped = false;
};

/// One streaming checkpoint frame: the partial report computed from the
/// traces collected so far. A kAuditStream response is a sequence of kOk
/// frames whose BODY is an "AUDP" archive (one per checkpoint, possibly
/// zero), terminated by a normal "AUDS" body - byte-identical to (and
/// cached as) the non-streaming reply.
struct AuditPartial {
  std::uint64_t traces_done = 0;
  std::uint64_t traces_total = 0;
  tvla::LeakageReport report{{}, {}, 0.0};
};

struct MaskReply {
  std::string design_name;
  std::uint64_t gate_count = 0;         // original design
  std::uint64_t masked_gate_count = 0;  // after composite insertion
  std::vector<netlist::GateId> selected;
  double seconds = 0.0;  // inference + rewrite, measured at compute time
  std::string verilog;   // the masked netlist, exactly what mask would write
  std::optional<tvla::LeakageReport> before;  // only when verify was set
  std::optional<tvla::LeakageReport> after;
  bool cache_hit = false;
};

struct ScoreReply {
  std::string design_name;
  std::vector<double> scores;  // per gate id, non-maskable = 0
  bool cache_hit = false;
};

/// One shard's UNMERGED statistics block, exactly as the shard loop
/// accumulated it. Per-shard moments are a pure function of (design,
/// config, shard index) - independent of lane width, thread count, and
/// host - which is what lets the coordinator merge them in ascending
/// shard order and land on bit-identical audit output.
struct ShardResult {
  std::uint64_t shard = 0;
  tvla::CampaignMoments moments;
};

struct ShardReply {
  std::vector<ShardResult> shards;  // ascending shard index
};

// --- payload codecs ---------------------------------------------------------

/// Request payload archives. decode_request_kind reads the "POLQ" chunk;
/// the kind-specific decoder must then be called on the same reader.
[[nodiscard]] std::vector<std::uint8_t> encode_ping_request();
[[nodiscard]] std::vector<std::uint8_t> encode_shutdown_request();
[[nodiscard]] std::vector<std::uint8_t> encode_stats_request();
[[nodiscard]] std::vector<std::uint8_t> encode_status_request();
[[nodiscard]] std::vector<std::uint8_t> encode_audit_request(const AuditRequest& request);
/// Same AUDQ payload as encode_audit_request under kind kAuditStream.
[[nodiscard]] std::vector<std::uint8_t> encode_audit_stream_request(
    const AuditRequest& request);
[[nodiscard]] std::vector<std::uint8_t> encode_mask_request(const MaskRequest& request);
[[nodiscard]] std::vector<std::uint8_t> encode_score_request(const ScoreRequest& request);
/// Design install; the fingerprint is computed from `design` internally so
/// sender and receiver can never disagree on the key derivation.
[[nodiscard]] std::vector<std::uint8_t> encode_design_request(
    const circuits::Design& design);
[[nodiscard]] std::vector<std::uint8_t> encode_shard_request(
    const ShardRequest& request);

[[nodiscard]] RequestKind decode_request_kind(serialize::Reader& in);
[[nodiscard]] AuditRequest decode_audit_request(serialize::Reader& in);
[[nodiscard]] MaskRequest decode_mask_request(serialize::Reader& in);
[[nodiscard]] ScoreRequest decode_score_request(serialize::Reader& in);
[[nodiscard]] DesignRequest decode_design_request(serialize::Reader& in);
[[nodiscard]] ShardRequest decode_shard_request(serialize::Reader& in);

/// Reply BODY archives (the nested archive the result cache stores).
[[nodiscard]] std::vector<std::uint8_t> encode_ping_reply(const PingReply& reply);
[[nodiscard]] std::vector<std::uint8_t> encode_audit_reply(const AuditReply& reply);
[[nodiscard]] std::vector<std::uint8_t> encode_mask_reply(const MaskReply& reply);
[[nodiscard]] std::vector<std::uint8_t> encode_score_reply(const ScoreReply& reply);
[[nodiscard]] std::vector<std::uint8_t> encode_stats_reply(const StatsReply& reply);
[[nodiscard]] std::vector<std::uint8_t> encode_status_reply(const StatusReply& reply);

/// Partial-checkpoint bodies for the streaming audit. is_audit_partial
/// peeks the body's leading chunk tag so a streaming client can tell an
/// AUDP checkpoint from the final AUDS reply without trial decoding.
[[nodiscard]] std::vector<std::uint8_t> encode_audit_partial(
    const AuditPartial& partial);
[[nodiscard]] AuditPartial decode_audit_partial(
    std::span<const std::uint8_t> body);
[[nodiscard]] bool is_audit_partial(std::span<const std::uint8_t> body);

[[nodiscard]] PingReply decode_ping_reply(std::span<const std::uint8_t> body);
[[nodiscard]] AuditReply decode_audit_reply(std::span<const std::uint8_t> body);
[[nodiscard]] MaskReply decode_mask_reply(std::span<const std::uint8_t> body);
[[nodiscard]] ScoreReply decode_score_reply(std::span<const std::uint8_t> body);
[[nodiscard]] StatsReply decode_stats_reply(std::span<const std::uint8_t> body);
[[nodiscard]] StatusReply decode_status_reply(std::span<const std::uint8_t> body);
[[nodiscard]] std::vector<std::uint8_t> encode_shard_reply(const ShardReply& reply);
[[nodiscard]] ShardReply decode_shard_reply(std::span<const std::uint8_t> body);

/// Full response payload: POLS header (status/message/cache_hit) + BODY.
/// `body` may be empty for error responses and ping-less bodies.
[[nodiscard]] std::vector<std::uint8_t> encode_response(
    Status status, const std::string& message, bool cache_hit,
    std::span<const std::uint8_t> body);

struct Response {
  Status status = Status::kOk;
  std::string message;
  bool cache_hit = false;
  std::vector<std::uint8_t> body;  // nested reply archive (empty on error)
};
[[nodiscard]] Response decode_response(std::vector<std::uint8_t> payload);

// --- frame I/O over a connected socket --------------------------------------

/// Outcome of read_frame: distinguishes "peer closed cleanly between
/// frames" from "frame arrived" and from header-level protocol errors.
enum class FrameResult : std::uint8_t {
  kFrame,       // payload filled in
  kClosed,      // EOF at a frame boundary (clean close)
  kBadMagic,    // header corrupt: connection cannot be resynchronized
  kBadVersion,  // protocol newer than ours: drop after replying
  kTooLarge,    // declared length above max_frame: drop after replying
};

/// Optional cancellation probe for the blocking frame I/O below. It is
/// consulted whenever a read/write times out (which requires the fd to
/// carry SO_RCVTIMEO/SO_SNDTIMEO - the server sets both on every accepted
/// connection); returning true aborts the transfer with
/// std::runtime_error. A stalled peer can therefore never pin a handler
/// thread across a shutdown drain.
using CancelProbe = std::function<bool()>;

/// Reads one frame. Blocks until a full frame, clean EOF, or error; the
/// payload buffer is only allocated after the declared length passes the
/// `max_frame` check. Throws std::runtime_error on socket I/O errors,
/// mid-frame EOF (torn frame - nothing to answer), or cancellation.
[[nodiscard]] FrameResult read_frame(int fd, std::size_t max_frame,
                                     std::vector<std::uint8_t>& payload,
                                     const CancelProbe& cancelled = {});

/// Writes one frame (header + payload). Throws std::runtime_error on
/// socket errors or cancellation.
void write_frame(int fd, std::span<const std::uint8_t> payload,
                 const CancelProbe& cancelled = {});

}  // namespace polaris::server
