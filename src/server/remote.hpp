// Distributed shard coordinator: fans a multi-design TVLA audit out over
// local lanes plus remote shard workers (server/worker.hpp), and merges
// the per-shard moment blocks back in EXACTLY the single-host order.
//
// Work decomposition reuses the engine's own unit: every campaign's
// engine::ShardPlan already splits the trace budget into shards whose
// per-shard statistics are a pure function of (design, config, shard
// index). The pool chunks consecutive shards (kShardsPerChunk) into work
// units, orders chunks LPT-style (heaviest campaign first, ascending
// shard within a campaign), and lets every lane - local threads and one
// feeder thread per remote worker - pull from one shared queue.
//
// Bit-identity contract: the coordinator collects UNMERGED per-shard
// moments and replays the scheduler's ascending merge (shard 0, 1, 2...,
// firing early-stop checkpoints at exactly the same shard-prefix counts),
// so audit output is byte-identical to a single-host run at ANY worker
// count, including zero and including workers dying mid-campaign.
//
// Failure semantics: a worker that cannot be reached, times out, or
// closes its connection is marked dead; its unacknowledged chunks go back
// on the shared queue (counted as resends) and are completed by the
// remaining lanes - a campaign always finishes as long as the
// coordinator itself lives, because local lanes can run anything.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "server/net.hpp"
#include "server/protocol.hpp"
#include "techlib/techlib.hpp"

namespace polaris::server {

/// Consecutive shards per work unit: big enough to amortize a round trip,
/// small enough that LPT balancing still has pieces to place (a campaign
/// has 16..64 shards).
inline constexpr std::size_t kShardsPerChunk = 4;

struct WorkerPoolOptions {
  std::string workers;             // comma-separated endpoint specs
  std::size_t local_threads = 0;   // local lanes; 0 = all hardware threads
  std::size_t pipeline_depth = 2;  // outstanding chunks per worker
  /// Admission control: a feeder stops sending when the request bytes of
  /// its outstanding chunks exceed this (bounds worker-side queue memory).
  std::size_t max_inflight_bytes = std::size_t{4} << 20;
  /// Per-roundtrip deadline. A worker that exceeds it is treated as dead
  /// and its chunks are requeued; 0 disables the deadline (a hung worker
  /// would then pin its chunks forever, so keep it on in production).
  std::size_t timeout_ms = 30000;
  std::size_t max_frame = kDefaultMaxFrame;
};

class WorkerPool {
 public:
  /// Parses the worker list (no connections are made until audit()).
  /// Throws std::runtime_error on an unparseable endpoint spec.
  explicit WorkerPool(WorkerPoolOptions options);

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }

  /// Audits every design, one result per input design in input order -
  /// the distributed drop-in for core::audit_designs, byte-identical
  /// output included. `progress` mirrors the scheduler path: it fires on
  /// early-stop checkpoint evaluations during the merge replay.
  [[nodiscard]] std::vector<tvla::LeakageReport> audit(
      std::span<const circuits::Design> designs,
      const techlib::TechLibrary& lib, const core::PolarisConfig& config,
      tvla::ProgressFn progress = {});

  /// Per-worker fleet health, cumulative across audit() calls.
  [[nodiscard]] std::vector<WorkerHealthEntry> health() const;

  struct Totals {
    std::uint64_t shards_out = 0;   // shards shipped to remote workers
    std::uint64_t moments_in = 0;   // shard moment blocks received back
    std::uint64_t bytes = 0;        // payload bytes, both directions
    std::uint64_t resends = 0;      // shards requeued after worker loss
  };
  [[nodiscard]] Totals totals() const;

 private:
  /// Cumulative per-worker stats; feeder threads update them across
  /// audit() calls, health() snapshots them.
  struct WorkerSlot {
    net::Endpoint endpoint;
    std::string display;
    std::atomic<bool> alive{true};
    std::atomic<std::uint64_t> inflight{0};
    std::atomic<std::uint64_t> shards_done{0};
    std::atomic<std::uint64_t> bytes_out{0};
    std::atomic<std::uint64_t> bytes_in{0};
    std::atomic<std::uint64_t> resends{0};
  };

  struct Batch;  // one audit() call's shared state (remote.cpp)

  void feed_worker(WorkerSlot& slot, Batch& batch);
  void run_local_lane(Batch& batch);

  WorkerPoolOptions options_;
  std::vector<std::unique_ptr<WorkerSlot>> workers_;
};

}  // namespace polaris::server
