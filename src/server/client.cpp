#include "server/client.hpp"

#include <errno.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

namespace polaris::server {

Client::Client(const std::string& socket_path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("polaris client: bad socket path '" +
                             socket_path + "'");
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("polaris client: socket: ") +
                             std::strerror(errno));
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("polaris client: cannot connect to '" +
                             socket_path + "': " + std::strerror(saved) +
                             " (is the daemon running?)");
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Response Client::roundtrip(std::span<const std::uint8_t> payload) {
  write_frame(fd_, payload);
  std::vector<std::uint8_t> reply;
  // No client-side cap beyond sanity: the server is trusted, but a
  // corrupted stream should still fail cleanly, not allocate unboundedly.
  const FrameResult result = read_frame(fd_, kDefaultMaxFrame * 4, reply);
  if (result == FrameResult::kClosed) {
    throw std::runtime_error("polaris client: server closed the connection");
  }
  if (result != FrameResult::kFrame) {
    throw std::runtime_error("polaris client: malformed response frame");
  }
  Response response = decode_response(std::move(reply));
  if (response.status != Status::kOk) {
    throw ServerError(response.status,
                      response.message.empty() ? to_string(response.status)
                                               : response.message);
  }
  return response;
}

PingReply Client::ping() {
  const Response response = roundtrip(encode_ping_request());
  return decode_ping_reply(response.body);
}

StatsReply Client::stats() {
  const Response response = roundtrip(encode_stats_request());
  return decode_stats_reply(response.body);
}

StatusReply Client::status() {
  const Response response = roundtrip(encode_status_request());
  return decode_status_reply(response.body);
}

AuditReply Client::audit(const AuditRequest& request) {
  const Response response = roundtrip(encode_audit_request(request));
  AuditReply reply = decode_audit_reply(response.body);
  reply.cache_hit = response.cache_hit;
  return reply;
}

AuditReply Client::audit_stream(
    const AuditRequest& request,
    const std::function<void(const AuditPartial&)>& on_partial) {
  const std::vector<std::uint8_t> payload =
      encode_audit_stream_request(request);
  write_frame(fd_, payload);
  // The response is a sequence of kOk frames: zero or more AUDP checkpoint
  // bodies, terminated by the AUDS reply (or a single error frame).
  for (;;) {
    std::vector<std::uint8_t> raw;
    const FrameResult result = read_frame(fd_, kDefaultMaxFrame * 4, raw);
    if (result == FrameResult::kClosed) {
      throw std::runtime_error("polaris client: server closed the connection");
    }
    if (result != FrameResult::kFrame) {
      throw std::runtime_error("polaris client: malformed response frame");
    }
    Response response = decode_response(std::move(raw));
    if (response.status != Status::kOk) {
      throw ServerError(response.status,
                        response.message.empty() ? to_string(response.status)
                                                 : response.message);
    }
    if (is_audit_partial(response.body)) {
      if (on_partial) on_partial(decode_audit_partial(response.body));
      continue;
    }
    AuditReply reply = decode_audit_reply(response.body);
    reply.cache_hit = response.cache_hit;
    return reply;
  }
}

MaskReply Client::mask(const MaskRequest& request) {
  const Response response = roundtrip(encode_mask_request(request));
  MaskReply reply = decode_mask_reply(response.body);
  reply.cache_hit = response.cache_hit;
  return reply;
}

ScoreReply Client::score(const ScoreRequest& request) {
  const Response response = roundtrip(encode_score_request(request));
  ScoreReply reply = decode_score_reply(response.body);
  reply.cache_hit = response.cache_hit;
  return reply;
}

void Client::shutdown_server() {
  (void)roundtrip(encode_shutdown_request());
}

}  // namespace polaris::server
