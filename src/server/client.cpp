#include "server/client.hpp"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "server/net.hpp"

namespace polaris::server {

namespace {

/// Socket poll tick while a deadline is armed: every SO_*TIMEO expiry
/// re-checks the deadline probe, so the timeout resolution is ~100 ms
/// regardless of how long the configured deadline is.
constexpr int kClientPollMs = 100;

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Client::Client(const std::string& endpoint, std::size_t timeout_ms)
    : timeout_ms_(timeout_ms) {
  fd_ = net::connect_endpoint(net::parse_endpoint(endpoint));
  if (timeout_ms_ > 0) {
    // The timeouts make the blocking frame I/O surface EAGAIN every tick,
    // at which point it consults the deadline probe from arm_deadline().
    timeval timeout{};
    timeout.tv_usec = kClientPollMs * 1000;
    (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                       sizeof(timeout));
    (void)::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &timeout,
                       sizeof(timeout));
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

CancelProbe Client::arm_deadline() {
  if (timeout_ms_ == 0) return {};
  deadline_ns_ = steady_now_ns() +
                 static_cast<std::int64_t>(timeout_ms_) * 1'000'000;
  // Throwing from the probe (instead of returning true) surfaces the
  // structured TimeoutError rather than the generic cancellation message.
  return [this]() -> bool {
    if (steady_now_ns() > deadline_ns_) {
      throw TimeoutError("polaris client: no response within " +
                         std::to_string(timeout_ms_) + " ms");
    }
    return false;
  };
}

Response Client::roundtrip(std::span<const std::uint8_t> payload) {
  const CancelProbe deadline = arm_deadline();
  write_frame(fd_, payload, deadline);
  std::vector<std::uint8_t> reply;
  // No client-side cap beyond sanity: the server is trusted, but a
  // corrupted stream should still fail cleanly, not allocate unboundedly.
  const FrameResult result =
      read_frame(fd_, kDefaultMaxFrame * 4, reply, deadline);
  if (result == FrameResult::kClosed) {
    throw std::runtime_error("polaris client: server closed the connection");
  }
  if (result != FrameResult::kFrame) {
    throw std::runtime_error("polaris client: malformed response frame");
  }
  Response response = decode_response(std::move(reply));
  if (response.status != Status::kOk) {
    throw ServerError(response.status,
                      response.message.empty() ? to_string(response.status)
                                               : response.message);
  }
  return response;
}

PingReply Client::ping() {
  const Response response = roundtrip(encode_ping_request());
  return decode_ping_reply(response.body);
}

StatsReply Client::stats() {
  const Response response = roundtrip(encode_stats_request());
  return decode_stats_reply(response.body);
}

StatusReply Client::status() {
  const Response response = roundtrip(encode_status_request());
  return decode_status_reply(response.body);
}

AuditReply Client::audit(const AuditRequest& request) {
  const Response response = roundtrip(encode_audit_request(request));
  AuditReply reply = decode_audit_reply(response.body);
  reply.cache_hit = response.cache_hit;
  return reply;
}

AuditReply Client::audit_stream(
    const AuditRequest& request,
    const std::function<void(const AuditPartial&)>& on_partial) {
  const std::vector<std::uint8_t> payload =
      encode_audit_stream_request(request);
  write_frame(fd_, payload, arm_deadline());
  // The response is a sequence of kOk frames: zero or more AUDP checkpoint
  // bodies, terminated by the AUDS reply (or a single error frame). The
  // deadline re-arms per frame: checkpoints are separated by compute, and
  // the timeout bounds silence, not total campaign time.
  for (;;) {
    std::vector<std::uint8_t> raw;
    const FrameResult result =
        read_frame(fd_, kDefaultMaxFrame * 4, raw, arm_deadline());
    if (result == FrameResult::kClosed) {
      throw std::runtime_error("polaris client: server closed the connection");
    }
    if (result != FrameResult::kFrame) {
      throw std::runtime_error("polaris client: malformed response frame");
    }
    Response response = decode_response(std::move(raw));
    if (response.status != Status::kOk) {
      throw ServerError(response.status,
                        response.message.empty() ? to_string(response.status)
                                                 : response.message);
    }
    if (is_audit_partial(response.body)) {
      if (on_partial) on_partial(decode_audit_partial(response.body));
      continue;
    }
    AuditReply reply = decode_audit_reply(response.body);
    reply.cache_hit = response.cache_hit;
    return reply;
  }
}

MaskReply Client::mask(const MaskRequest& request) {
  const Response response = roundtrip(encode_mask_request(request));
  MaskReply reply = decode_mask_reply(response.body);
  reply.cache_hit = response.cache_hit;
  return reply;
}

ScoreReply Client::score(const ScoreRequest& request) {
  const Response response = roundtrip(encode_score_request(request));
  ScoreReply reply = decode_score_reply(response.body);
  reply.cache_hit = response.cache_hit;
  return reply;
}

void Client::shutdown_server() {
  (void)roundtrip(encode_shutdown_request());
}

}  // namespace polaris::server
