// Endpoint transport for the serve daemon, workers, and clients: one
// parser and one pair of listen/connect helpers shared by every socket
// user, so the UDS path and the TCP path cannot drift apart.
//
// An endpoint spec is either
//   "tcp:host:port"  - TCP over IPv4/IPv6 (host resolved via getaddrinfo;
//                      port 0 binds an ephemeral port, readable back
//                      through bound_endpoint()), or
//   anything else    - a Unix-domain socket path (the original transport).
//
// The frame protocol (protocol.hpp) is transport-agnostic: both listeners
// produce connected stream fds the PLFR codec reads and writes unchanged.
#pragma once

#include <cstdint>
#include <string>

namespace polaris::server::net {

struct Endpoint {
  bool tcp = false;
  std::string host;         // TCP only
  std::uint16_t port = 0;   // TCP only (0 = ephemeral)
  std::string path;         // UDS only
};

/// Parses an endpoint spec (see file comment). A bare "host:port" with a
/// numeric port is also accepted as TCP - the natural spelling for
/// --workers lists. Throws std::runtime_error on an empty or unusable
/// spec.
[[nodiscard]] Endpoint parse_endpoint(const std::string& spec);

/// Canonical display form: "tcp:host:port" or the UDS path.
[[nodiscard]] std::string to_string(const Endpoint& endpoint);

/// Binds and listens. UDS: replaces a STALE socket file only (connecting
/// to a live daemon's socket throws instead of hijacking it). TCP: sets
/// SO_REUSEADDR before bind so restart-in-place works in CI and smoke
/// scripts. Throws std::runtime_error on failure.
[[nodiscard]] int listen_endpoint(const Endpoint& endpoint, int backlog);

/// The endpoint a listening fd actually bound - resolves an ephemeral TCP
/// port 0 to the kernel-assigned port. UDS endpoints return unchanged.
[[nodiscard]] Endpoint bound_endpoint(int listen_fd, const Endpoint& endpoint);

/// Connects a stream socket to the endpoint. Throws std::runtime_error
/// (with the spec in the message) when nothing listens there.
[[nodiscard]] int connect_endpoint(const Endpoint& endpoint);

/// Removes a UDS endpoint's socket file; no-op for TCP.
void unlink_if_uds(const Endpoint& endpoint);

}  // namespace polaris::server::net
