// The POLARIS masking daemon: load a .plb bundle once, serve audit / mask /
// score requests over a Unix-domain socket for the lifetime of the process.
//
// polaris_cli pays a process launch, a bundle load, and cold caches on
// every invocation; the daemon pays them once. Every connection gets its
// own handler thread, but all TVLA work funnels into ONE engine::Scheduler
// - concurrent clients' campaign shards interleave in a single LPT queue,
// so a small audit rides in a big one's idle lanes exactly as multi-design
// offline audits do. Repeated requests for an unchanged design hit the
// core::ResultCache and replay byte-identical reply bodies.
//
// Shutdown is graceful: request_stop() (async-signal-safe: one write to a
// pipe) stops the accept loop; in-flight requests run to completion and
// their responses are delivered before wait() returns and the socket file
// is unlinked.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/polaris.hpp"
#include "core/result_cache.hpp"
#include "engine/scheduler.hpp"
#include "obs/timeseries.hpp"
#include "server/flight_recorder.hpp"
#include "server/net.hpp"
#include "server/protocol.hpp"
#include "server/remote.hpp"
#include "techlib/techlib.hpp"

namespace polaris::server {

struct ServerOptions {
  std::string socket_path;  // endpoint spec: a UDS path (<= ~100 chars on
                            // Linux) or "tcp:host:port" (port 0 binds an
                            // ephemeral port; see Server::endpoint())
  std::string bundle_path;  // trained .plb bundle, loaded once at startup
  std::size_t threads = 0;  // scheduler fan-out: 0 = all hardware threads
  std::size_t max_frame = kDefaultMaxFrame;  // per-frame payload cap, bytes
  std::size_t cache_capacity = 256;          // result-cache entries
  int backlog = 64;  // listen(2) backlog: connections the kernel queues
                     // while the accept loop is busy spawning handlers
  /// Comma-separated shard-worker endpoints. Non-empty routes every audit
  /// campaign through a WorkerPool (local lanes + these workers) instead
  /// of the in-process scheduler; results stay byte-identical, so the
  /// result cache and its keys are untouched.
  std::string workers;
  // Live-operations knobs (pure telemetry; none affect served results):
  std::size_t sample_interval_ms = 1000;  // metrics sampler period, 0 = off
  std::string metrics_file;      // append one JSON delta line per interval
  std::size_t flight_records = 64;       // completed-request ring depth
  std::size_t slow_request_ms = 1000;    // log threshold, 0 = never log
};

struct ServerStats {
  std::uint64_t requests_served = 0;  // responses sent, errors included
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_entries = 0;
  std::uint64_t cache_bytes = 0;  // resident reply-body bytes in the cache
  std::uint64_t connections = 0;  // accepted over the lifetime
};

class Server {
 public:
  /// Loads the bundle and binds + listens on the socket (replacing a stale
  /// socket file). Throws std::runtime_error on a bad bundle or bind
  /// failure. No requests are served until start().
  explicit Server(ServerOptions options);
  /// Stops (as request_stop + wait) if still running, then closes fds.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawns the accept loop. Call once.
  void start();

  /// Initiates a graceful stop: no new connections, in-flight requests
  /// complete. Async-signal-safe (a single write to an internal pipe), so
  /// SIGINT/SIGTERM handlers may call it directly. Idempotent.
  void request_stop();

  /// Blocks until the accept loop and every connection handler have
  /// exited (after request_stop, or a served shutdown request). The socket
  /// file is unlinked before wait() returns.
  void wait();

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] const core::BundleInfo& bundle_info() const { return info_; }
  [[nodiscard]] const std::string& socket_path() const {
    return options_.socket_path;
  }
  /// The endpoint actually bound - an ephemeral TCP port 0 in the options
  /// resolves to the kernel-assigned port here (tests depend on this).
  [[nodiscard]] const net::Endpoint& endpoint() const { return endpoint_; }

 private:
  /// One accepted connection: its handler thread plus a completion flag
  /// the accept loop reaps on (a long-lived daemon must not accumulate a
  /// dead thread per past connection).
  struct Connection {
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  /// Joins and discards connections whose handlers have finished. Only
  /// ever called from the accept thread.
  void reap_finished_connections();
  void handle_connection(int fd);
  /// Decodes and serves one request payload. Returns false when the
  /// connection should close (a served shutdown request).
  bool handle_payload(int fd, std::vector<std::uint8_t>& payload);

  core::ResultCache::Body serve_ping();
  /// Registry snapshot + runtime identity. Never cached: the snapshot is
  /// execution telemetry and changes between any two calls.
  core::ResultCache::Body serve_stats();
  /// Live-operations snapshot: in-flight requests, per-campaign scheduler
  /// progress, flight-recorder ring. Never cached, for the same reason.
  core::ResultCache::Body serve_status();
  core::ResultCache::Body serve_audit(serialize::Reader& in, bool& cache_hit);
  /// Streaming audit: identical compute and cache key to serve_audit, but
  /// while the campaign runs it pushes one kOk frame per early-stop
  /// checkpoint (AUDP body) onto `fd`. The returned body is the final AUDS
  /// reply - byte-identical to the non-streaming one, so both kinds share
  /// cache entries (a cache hit streams zero partials).
  core::ResultCache::Body serve_audit_stream(int fd, serialize::Reader& in,
                                             bool& cache_hit);
  /// Shared audit implementation behind both kinds: validate, cache
  /// lookup, submit + drain, encode, cache fill.
  core::ResultCache::Body audit_body(const AuditRequest& request,
                                     bool& cache_hit,
                                     tvla::ProgressFn progress);
  core::ResultCache::Body serve_mask(serialize::Reader& in, bool& cache_hit);
  core::ResultCache::Body serve_score(serialize::Reader& in, bool& cache_hit);

  ServerOptions options_;
  net::Endpoint endpoint_;
  core::Polaris polaris_;
  core::BundleInfo info_;
  techlib::TechLibrary lib_ = techlib::TechLibrary::default_library();
  engine::Scheduler scheduler_;
  /// Non-null when --workers was given: audits run distributed.
  std::unique_ptr<WorkerPool> pool_;
  core::ResultCache cache_;
  FlightRecorder recorder_;
  obs::Sampler sampler_;
  std::int64_t start_mono_ns_ = 0;  // obs::now_ns() at construction
  std::int64_t start_wall_ms_ = 0;  // wall clock at construction

  /// Requests currently being serviced (decoded, not yet answered), keyed
  /// by a per-request token so concurrent handlers never collide.
  struct Inflight {
    std::uint8_t kind = 0;
    std::uint64_t bytes = 0;
    std::int64_t start_ns = 0;
  };
  std::mutex inflight_mutex_;
  std::unordered_map<std::uint64_t, Inflight> inflight_;
  std::atomic<std::uint64_t> next_inflight_token_{0};

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> connections_accepted_{0};

  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
  bool started_ = false;
};

}  // namespace polaris::server
