// The POLARIS shard worker: a process that executes TVLA campaign shards
// on behalf of a remote coordinator (server/remote.hpp).
//
// A worker is the serve daemon's little sibling: the same accept loop,
// handler threads, frame codec, and graceful drain, but no bundle, no
// result cache, and only four request kinds (ping / design / shard /
// shutdown). A coordinator first installs each design ONCE with kDesign
// (netlist + input roles under the content fingerprint); the worker
// compiles it into a tvla::ShardRunner it caches per (config, design)
// fingerprint pair, so every later kShard for the same campaign reuses
// the compiled plan. Shard requests carry only the fingerprint, the
// canonical config, and a shard range - a few hundred bytes - and the
// reply ships the per-shard UNMERGED moment blocks back as an archive.
//
// Determinism: per-shard moments are a pure function of (design, config,
// shard index) - stimulus streams are counter-keyed per batch and blocks
// re-anchor at the shard boundary - so the worker is free to pick its own
// thread count and SIMD width without perturbing a single output bit.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/net.hpp"
#include "server/protocol.hpp"
#include "techlib/techlib.hpp"

namespace polaris::server {

struct WorkerOptions {
  std::string listen;       // endpoint spec: "tcp:host:port" or a UDS path
                            // (tcp port 0 binds ephemeral; see endpoint())
  std::size_t threads = 0;  // shard-level fan-out: 0 = all hardware threads
  std::size_t max_frame = kDefaultMaxFrame;  // per-frame payload cap, bytes
  int backlog = 64;         // listen(2) backlog
};

class Worker {
 public:
  /// Binds + listens on the configured endpoint. Throws std::runtime_error
  /// on bind failure. No requests are served until start().
  explicit Worker(WorkerOptions options);
  /// Stops (as request_stop + wait) if still running, then closes fds.
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// Spawns the accept loop. Call once.
  void start();

  /// Graceful stop, async-signal-safe (one pipe write). Idempotent.
  void request_stop();

  /// Blocks until the accept loop and every handler have exited.
  void wait();

  /// The endpoint actually bound - an ephemeral TCP port 0 in the options
  /// resolves to the kernel-assigned port here (tests depend on this).
  [[nodiscard]] const net::Endpoint& endpoint() const { return endpoint_; }

  [[nodiscard]] std::uint64_t shards_run() const { return shards_run_.load(); }
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_served_.load();
  }

 private:
  struct Connection {
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void reap_finished_connections();
  void handle_connection(int fd);
  /// Decodes and serves one request payload. Returns false when the
  /// connection should close (a served shutdown request).
  bool handle_payload(int fd, std::vector<std::uint8_t>& payload);

  std::vector<std::uint8_t> serve_ping();
  std::vector<std::uint8_t> serve_design(serialize::Reader& in);
  std::vector<std::uint8_t> serve_shards(serialize::Reader& in);

  /// The compiled-plan cache entry for one (config, design) pair.
  std::shared_ptr<tvla::ShardRunner> runner_for(const ShardRequest& request);

  WorkerOptions options_;
  net::Endpoint endpoint_;
  techlib::TechLibrary lib_ = techlib::TechLibrary::default_library();

  /// Installed designs, heap-owned: ShardRunner keeps references into the
  /// netlist, so the Design objects must have stable addresses for the
  /// worker's lifetime (they are never evicted - a worker serves one
  /// coordinator's suite, a bounded set).
  std::mutex designs_mutex_;
  std::unordered_map<std::uint64_t, std::unique_ptr<circuits::Design>> designs_;
  std::unordered_map<std::uint64_t, std::shared_ptr<tvla::ShardRunner>>
      runners_;  // keyed by combine(config_fp, design_fp)

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> shards_run_{0};

  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
  bool started_ = false;
};

}  // namespace polaris::server
