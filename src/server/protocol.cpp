#include "server/protocol.hpp"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "netlist/netlist_io.hpp"
#include "tvla/moments_io.hpp"

namespace polaris::server {

namespace {

// --- LeakageReport codec (t-values travel as IEEE-754 bit patterns) ---------

void write_report(serialize::Writer& out, const tvla::LeakageReport& report) {
  out.f64(report.threshold());
  out.f64_vec(report.t_values());
  std::vector<bool> measured(report.group_count());
  for (std::size_t g = 0; g < measured.size(); ++g) {
    measured[g] = report.measured(static_cast<netlist::GateId>(g));
  }
  out.bool_vec(measured);
}

tvla::LeakageReport read_report(serialize::Reader& in) {
  const double threshold = in.f64();
  auto t_values = in.f64_vec();
  auto measured = in.bool_vec();
  if (measured.size() != t_values.size()) {
    throw std::runtime_error("polaris serve: leakage report size mismatch");
  }
  return tvla::LeakageReport(std::move(t_values), std::move(measured),
                             threshold);
}

std::uint8_t read_mode(serialize::Reader& in) {
  const std::uint8_t mode = in.u8();
  if (mode > static_cast<std::uint8_t>(core::InferenceMode::kModelPlusRules)) {
    throw std::runtime_error("polaris serve: unknown inference mode " +
                             std::to_string(mode));
  }
  return mode;
}

std::vector<std::uint8_t> finish_request(serialize::Writer& out) {
  return out.finish();
}

serialize::Writer request_header(RequestKind kind) {
  serialize::Writer out;
  out.begin_chunk("POLQ");
  out.u8(static_cast<std::uint8_t>(kind));
  out.end_chunk();
  return out;
}

// --- low-level socket helpers ----------------------------------------------

/// EAGAIN/EWOULDBLOCK (an SO_*TIMEO expiry) retries unless the probe says
/// to abort - how a handler escapes a peer that stalls mid-transfer.
void check_cancelled(const CancelProbe& cancelled, const char* what) {
  if (cancelled && cancelled()) {
    throw std::runtime_error(std::string("polaris serve: ") + what +
                             " cancelled (shutdown while peer stalled)");
  }
}

void write_all(int fd, const std::uint8_t* data, std::size_t size,
               const CancelProbe& cancelled) {
  std::size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a peer that disconnected before its response arrives
    // must surface as EPIPE here, not as a process-killing SIGPIPE - one
    // vanished client must never take the daemon (or the CLI) down.
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        check_cancelled(cancelled, "write");
        continue;
      }
      throw std::runtime_error(std::string("polaris serve: socket write: ") +
                               std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

/// Reads exactly `size` bytes. Returns false on EOF before the first byte
/// when `eof_ok`; EOF mid-buffer always throws (torn frame).
bool read_all(int fd, std::uint8_t* data, std::size_t size, bool eof_ok,
              const CancelProbe& cancelled) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, data + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        check_cancelled(cancelled, "read");
        continue;
      }
      throw std::runtime_error(std::string("polaris serve: socket read: ") +
                               std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0 && eof_ok) return false;
      throw std::runtime_error("polaris serve: connection closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

const char* request_kind_name(RequestKind kind) {
  switch (kind) {
    case RequestKind::kPing: return "ping";
    case RequestKind::kAudit: return "audit";
    case RequestKind::kMask: return "mask";
    case RequestKind::kScore: return "score";
    case RequestKind::kShutdown: return "shutdown";
    case RequestKind::kStats: return "stats";
    case RequestKind::kAuditStream: return "audit_stream";
    case RequestKind::kStatus: return "status";
    case RequestKind::kDesign: return "design";
    case RequestKind::kShard: return "shard";
  }
  return "?";
}

const char* to_string(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kBadMagic: return "bad frame magic";
    case Status::kBadVersion: return "unsupported protocol version";
    case Status::kTooLarge: return "frame exceeds max-frame limit";
    case Status::kBadPayload: return "malformed payload archive";
    case Status::kBadRequest: return "bad request";
    case Status::kServerError: return "server error";
    case Status::kShuttingDown: return "server shutting down";
    case Status::kUnknownDesign: return "design not installed on worker";
  }
  return "?";
}

// --- request codecs ---------------------------------------------------------

std::vector<std::uint8_t> encode_ping_request() {
  auto out = request_header(RequestKind::kPing);
  return finish_request(out);
}

std::vector<std::uint8_t> encode_shutdown_request() {
  auto out = request_header(RequestKind::kShutdown);
  return finish_request(out);
}

std::vector<std::uint8_t> encode_stats_request() {
  auto out = request_header(RequestKind::kStats);
  return finish_request(out);
}

std::vector<std::uint8_t> encode_status_request() {
  auto out = request_header(RequestKind::kStatus);
  return finish_request(out);
}

namespace {
std::vector<std::uint8_t> encode_audit_request_as(RequestKind kind,
                                                  const AuditRequest& request) {
  auto out = request_header(kind);
  out.begin_chunk("AUDQ");
  out.str(request.design);
  out.f64(request.scale);
  core::write_config(out, request.config);
  out.end_chunk();
  return finish_request(out);
}
}  // namespace

std::vector<std::uint8_t> encode_audit_request(const AuditRequest& request) {
  return encode_audit_request_as(RequestKind::kAudit, request);
}

std::vector<std::uint8_t> encode_audit_stream_request(
    const AuditRequest& request) {
  return encode_audit_request_as(RequestKind::kAuditStream, request);
}

std::vector<std::uint8_t> encode_mask_request(const MaskRequest& request) {
  auto out = request_header(RequestKind::kMask);
  out.begin_chunk("MSKQ");
  out.str(request.design);
  out.f64(request.scale);
  out.u64(request.mask_size);
  out.u8(static_cast<std::uint8_t>(request.mode));
  out.boolean(request.verify);
  out.end_chunk();
  return finish_request(out);
}

std::vector<std::uint8_t> encode_score_request(const ScoreRequest& request) {
  auto out = request_header(RequestKind::kScore);
  out.begin_chunk("SCRQ");
  out.str(request.design);
  out.f64(request.scale);
  out.u8(static_cast<std::uint8_t>(request.mode));
  out.end_chunk();
  return finish_request(out);
}

RequestKind decode_request_kind(serialize::Reader& in) {
  in.enter_chunk("POLQ");
  const std::uint8_t kind = in.u8();
  in.exit_chunk();
  if (kind > static_cast<std::uint8_t>(RequestKind::kShard)) {
    throw std::runtime_error("polaris serve: unknown request kind " +
                             std::to_string(kind));
  }
  return static_cast<RequestKind>(kind);
}

AuditRequest decode_audit_request(serialize::Reader& in) {
  AuditRequest request;
  in.enter_chunk("AUDQ");
  request.design = in.str();
  request.scale = in.f64();
  request.config = core::read_config(in);
  in.exit_chunk();
  return request;
}

MaskRequest decode_mask_request(serialize::Reader& in) {
  MaskRequest request;
  in.enter_chunk("MSKQ");
  request.design = in.str();
  request.scale = in.f64();
  request.mask_size = in.u64();
  request.mode = static_cast<core::InferenceMode>(read_mode(in));
  request.verify = in.boolean();
  in.exit_chunk();
  return request;
}

ScoreRequest decode_score_request(serialize::Reader& in) {
  ScoreRequest request;
  in.enter_chunk("SCRQ");
  request.design = in.str();
  request.scale = in.f64();
  request.mode = static_cast<core::InferenceMode>(read_mode(in));
  in.exit_chunk();
  return request;
}

std::vector<std::uint8_t> encode_design_request(const circuits::Design& design) {
  auto out = request_header(RequestKind::kDesign);
  out.begin_chunk("DSGQ");
  out.u64(core::design_fingerprint(design));
  out.str(design.name);
  out.u64(design.roles.size());
  for (const auto role : design.roles) {
    out.u8(static_cast<std::uint8_t>(role));
  }
  netlist::write_netlist(out, design.netlist);
  out.end_chunk();
  return finish_request(out);
}

DesignRequest decode_design_request(serialize::Reader& in) {
  DesignRequest request;
  in.enter_chunk("DSGQ");
  request.fingerprint = in.u64();
  request.design.name = in.str();
  const std::uint64_t role_count = in.u64();
  if (role_count > in.remaining()) {  // one byte per role
    throw std::runtime_error("polaris serve: role count exceeds payload");
  }
  request.design.roles.reserve(role_count);
  for (std::uint64_t i = 0; i < role_count; ++i) {
    const std::uint8_t role = in.u8();
    if (role > static_cast<std::uint8_t>(circuits::InputRole::kControl)) {
      throw std::runtime_error("polaris serve: unknown input role " +
                               std::to_string(role));
    }
    request.design.roles.push_back(static_cast<circuits::InputRole>(role));
  }
  request.design.netlist = netlist::read_netlist(in);
  in.exit_chunk();
  if (request.design.roles.size() !=
      request.design.netlist.primary_inputs().size()) {
    throw std::runtime_error("polaris serve: design role count does not "
                             "match primary input count");
  }
  // Content check: the recomputed fingerprint must equal the advertised
  // one, or a corrupted/mistranslated design would contaminate every shard
  // result filed under this key.
  if (core::design_fingerprint(request.design) != request.fingerprint) {
    throw std::runtime_error("polaris serve: design fingerprint mismatch "
                             "after decode");
  }
  return request;
}

std::vector<std::uint8_t> encode_shard_request(const ShardRequest& request) {
  auto out = request_header(RequestKind::kShard);
  out.begin_chunk("SHRQ");
  out.u64(request.fingerprint);
  core::write_config(out, request.config);
  out.u64(request.shard_begin);
  out.u64(request.shard_end);
  out.end_chunk();
  return finish_request(out);
}

ShardRequest decode_shard_request(serialize::Reader& in) {
  ShardRequest request;
  in.enter_chunk("SHRQ");
  request.fingerprint = in.u64();
  request.config = core::read_config(in);
  request.shard_begin = in.u64();
  request.shard_end = in.u64();
  in.exit_chunk();
  if (request.shard_begin >= request.shard_end) {
    throw std::runtime_error("polaris serve: empty shard range");
  }
  return request;
}

// --- reply codecs -----------------------------------------------------------

std::vector<std::uint8_t> encode_ping_reply(const PingReply& reply) {
  serialize::Writer out;
  out.begin_chunk("PONG");
  out.u32(reply.protocol);
  out.str(reply.model_name);
  out.u64(reply.config_fingerprint);
  out.u64(reply.requests_served);
  out.u64(reply.cache_hits);
  out.u64(reply.cache_entries);
  // Runtime identity, appended at end-of-chunk (old readers skip it via
  // the chunk length; new readers default the fields when absent).
  out.str(reply.build_type);
  out.str(reply.simd);
  out.u64(reply.lane_words);
  out.end_chunk();
  return out.finish();
}

PingReply decode_ping_reply(std::span<const std::uint8_t> body) {
  serialize::Reader in(std::vector<std::uint8_t>(body.begin(), body.end()));
  PingReply reply;
  in.enter_chunk("PONG");
  reply.protocol = in.u32();
  reply.model_name = in.str();
  reply.config_fingerprint = in.u64();
  reply.requests_served = in.u64();
  reply.cache_hits = in.u64();
  reply.cache_entries = in.u64();
  if (in.remaining() > 0) {  // pre-obs daemons end the chunk here
    reply.build_type = in.str();
    reply.simd = in.str();
    reply.lane_words = in.u64();
  }
  in.exit_chunk();
  return reply;
}

std::vector<std::uint8_t> encode_audit_reply(const AuditReply& reply) {
  serialize::Writer out;
  out.begin_chunk("AUDS");
  out.str(reply.design_name);
  out.u64(reply.gate_count);
  out.u64(reply.traces);
  write_report(out, reply.report);
  // Early-stop outcome, appended at end-of-chunk: pre-budget readers skip
  // it via the chunk length, and pre-budget writers simply omit it. Only
  // written when populated, so fixed-budget replies stay byte-identical.
  if (reply.traces_used != 0 || reply.early_stopped) {
    out.u64(reply.traces_used);
    out.boolean(reply.early_stopped);
  }
  out.end_chunk();
  return out.finish();
}

AuditReply decode_audit_reply(std::span<const std::uint8_t> body) {
  serialize::Reader in(std::vector<std::uint8_t>(body.begin(), body.end()));
  in.enter_chunk("AUDS");
  AuditReply reply;
  reply.design_name = in.str();
  reply.gate_count = in.u64();
  reply.traces = in.u64();
  reply.report = read_report(in);
  if (in.remaining() > 0) {  // fixed-budget / pre-budget bodies end here
    reply.traces_used = in.u64();
    reply.early_stopped = in.boolean();
    reply.report.set_trace_usage(reply.traces_used, reply.early_stopped);
  }
  in.exit_chunk();
  return reply;
}

std::vector<std::uint8_t> encode_audit_partial(const AuditPartial& partial) {
  serialize::Writer out;
  out.begin_chunk("AUDP");
  out.u64(partial.traces_done);
  out.u64(partial.traces_total);
  write_report(out, partial.report);
  out.end_chunk();
  return out.finish();
}

AuditPartial decode_audit_partial(std::span<const std::uint8_t> body) {
  serialize::Reader in(std::vector<std::uint8_t>(body.begin(), body.end()));
  in.enter_chunk("AUDP");
  AuditPartial partial;
  partial.traces_done = in.u64();
  partial.traces_total = in.u64();
  partial.report = read_report(in);
  partial.report.set_trace_usage(partial.traces_done, false);
  in.exit_chunk();
  return partial;
}

bool is_audit_partial(std::span<const std::uint8_t> body) {
  serialize::Reader in(std::vector<std::uint8_t>(body.begin(), body.end()));
  return in.peek_tag() == "AUDP";
}

std::vector<std::uint8_t> encode_mask_reply(const MaskReply& reply) {
  serialize::Writer out;
  out.begin_chunk("MSKS");
  out.str(reply.design_name);
  out.u64(reply.gate_count);
  out.u64(reply.masked_gate_count);
  out.u64(reply.selected.size());
  for (const auto gate : reply.selected) out.u32(gate);
  out.f64(reply.seconds);
  out.str(reply.verilog);
  out.boolean(reply.before.has_value());
  if (reply.before.has_value()) {
    write_report(out, *reply.before);
    write_report(out, *reply.after);
  }
  out.end_chunk();
  return out.finish();
}

MaskReply decode_mask_reply(std::span<const std::uint8_t> body) {
  serialize::Reader in(std::vector<std::uint8_t>(body.begin(), body.end()));
  in.enter_chunk("MSKS");
  MaskReply reply;
  reply.design_name = in.str();
  reply.gate_count = in.u64();
  reply.masked_gate_count = in.u64();
  const std::uint64_t selected = in.u64();
  // Check-before-allocate: each gate id is 4 payload bytes.
  if (selected > in.remaining() / 4) {
    throw std::runtime_error("polaris serve: selected-gate count exceeds "
                             "payload size");
  }
  reply.selected.reserve(selected);
  for (std::uint64_t i = 0; i < selected; ++i) reply.selected.push_back(in.u32());
  reply.seconds = in.f64();
  reply.verilog = in.str();
  if (in.boolean()) {
    reply.before = read_report(in);
    reply.after = read_report(in);
  }
  in.exit_chunk();
  return reply;
}

std::vector<std::uint8_t> encode_score_reply(const ScoreReply& reply) {
  serialize::Writer out;
  out.begin_chunk("SCRS");
  out.str(reply.design_name);
  out.f64_vec(reply.scores);
  out.end_chunk();
  return out.finish();
}

ScoreReply decode_score_reply(std::span<const std::uint8_t> body) {
  serialize::Reader in(std::vector<std::uint8_t>(body.begin(), body.end()));
  in.enter_chunk("SCRS");
  ScoreReply reply;
  reply.design_name = in.str();
  reply.scores = in.f64_vec();
  in.exit_chunk();
  return reply;
}

std::vector<std::uint8_t> encode_shard_reply(const ShardReply& reply) {
  serialize::Writer out;
  out.begin_chunk("SHRS");
  out.u64(reply.shards.size());
  for (const auto& result : reply.shards) {
    out.u64(result.shard);
    tvla::write_moments(out, result.moments);
  }
  out.end_chunk();
  return out.finish();
}

ShardReply decode_shard_reply(std::span<const std::uint8_t> body) {
  serialize::Reader in(std::vector<std::uint8_t>(body.begin(), body.end()));
  in.enter_chunk("SHRS");
  ShardReply reply;
  // Check-before-allocate: a shard entry is at least its 8-byte index
  // plus a MOMS chunk header and counters.
  const std::uint64_t count = in.u64();
  if (count > in.remaining() / 16) {
    throw std::runtime_error("polaris serve: shard count exceeds payload");
  }
  reply.shards.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    ShardResult result;
    result.shard = in.u64();
    result.moments = tvla::read_moments(in);
    reply.shards.push_back(std::move(result));
  }
  in.exit_chunk();
  return reply;
}

std::vector<std::uint8_t> encode_stats_reply(const StatsReply& reply) {
  serialize::Writer out;
  out.begin_chunk("STTS");
  out.u32(reply.protocol);
  out.str(reply.model_name);
  out.u64(reply.config_fingerprint);
  out.str(reply.build_type);
  out.str(reply.simd);
  out.u64(reply.lane_words);
  out.u64(reply.requests_served);
  out.u64(reply.connections);
  // Uptime, appended at end-of-chunk: pre-status readers skip it via the
  // chunk length; new readers default it to 0 when absent.
  out.u64(reply.uptime_ms);
  out.end_chunk();
  // The registry snapshot, as its own chunk: counters as (name, value),
  // histograms as (name, count, sum, sparse non-zero buckets).
  out.begin_chunk("SNAP");
  out.u64(reply.snapshot.counters.size());
  for (const auto& counter : reply.snapshot.counters) {
    out.str(counter.name);
    out.u64(counter.value);
  }
  out.u64(reply.snapshot.histograms.size());
  for (const auto& histogram : reply.snapshot.histograms) {
    out.str(histogram.name);
    out.u64(histogram.count);
    out.u64(histogram.sum);
    out.u64(histogram.buckets.size());
    for (const auto& [index, count] : histogram.buckets) {
      out.u32(index);
      out.u64(count);
    }
  }
  out.end_chunk();
  return out.finish();
}

StatsReply decode_stats_reply(std::span<const std::uint8_t> body) {
  serialize::Reader in(std::vector<std::uint8_t>(body.begin(), body.end()));
  StatsReply reply;
  in.enter_chunk("STTS");
  reply.protocol = in.u32();
  reply.model_name = in.str();
  reply.config_fingerprint = in.u64();
  reply.build_type = in.str();
  reply.simd = in.str();
  reply.lane_words = in.u64();
  reply.requests_served = in.u64();
  reply.connections = in.u64();
  if (in.remaining() > 0) {  // pre-status daemons end the chunk here
    reply.uptime_ms = in.u64();
  }
  in.exit_chunk();
  in.enter_chunk("SNAP");
  // Check-before-allocate: a counter is at least a length-prefixed name
  // plus a u64, a histogram at least four u64-sized fields, a bucket
  // exactly 12 bytes - so hostile counts are rejected before any reserve.
  const std::uint64_t n_counters = in.u64();
  if (n_counters > in.remaining() / 16) {
    throw std::runtime_error("polaris serve: stats counter count exceeds "
                             "payload size");
  }
  reply.snapshot.counters.reserve(n_counters);
  for (std::uint64_t i = 0; i < n_counters; ++i) {
    obs::CounterSnapshot counter;
    counter.name = in.str();
    counter.value = in.u64();
    reply.snapshot.counters.push_back(std::move(counter));
  }
  const std::uint64_t n_histograms = in.u64();
  if (n_histograms > in.remaining() / 32) {
    throw std::runtime_error("polaris serve: stats histogram count exceeds "
                             "payload size");
  }
  reply.snapshot.histograms.reserve(n_histograms);
  for (std::uint64_t i = 0; i < n_histograms; ++i) {
    obs::HistogramSnapshot histogram;
    histogram.name = in.str();
    histogram.count = in.u64();
    histogram.sum = in.u64();
    const std::uint64_t n_buckets = in.u64();
    if (n_buckets > in.remaining() / 12) {
      throw std::runtime_error("polaris serve: stats bucket count exceeds "
                               "payload size");
    }
    histogram.buckets.reserve(n_buckets);
    for (std::uint64_t b = 0; b < n_buckets; ++b) {
      const std::uint32_t index = in.u32();
      const std::uint64_t count = in.u64();
      histogram.buckets.emplace_back(index, count);
    }
    reply.snapshot.histograms.push_back(std::move(histogram));
  }
  in.exit_chunk();
  return reply;
}

std::vector<std::uint8_t> encode_status_reply(const StatusReply& reply) {
  serialize::Writer out;
  out.begin_chunk("STAT");
  out.u32(reply.protocol);
  out.str(reply.model_name);
  out.u64(reply.requests_served);
  out.u64(reply.connections_active);
  out.u64(reply.connections_total);
  out.u64(reply.uptime_ms);
  out.u64(reply.sample_interval_ms);
  out.u64(reply.samples);
  out.end_chunk();
  out.begin_chunk("INFL");
  out.u64(reply.inflight.size());
  for (const auto& entry : reply.inflight) {
    out.u8(entry.kind);
    out.u64(entry.bytes);
    out.u64(entry.age_us);
  }
  out.end_chunk();
  out.begin_chunk("PROG");
  out.u64(reply.campaigns.size());
  for (const auto& row : reply.campaigns) {
    out.str(row.label);
    out.u64(row.sequence);
    out.u64(row.shards_done);
    out.u64(row.shards_total);
    out.u64(row.queue_position);
    out.u64(row.age_us);
    out.boolean(row.stopped);
  }
  out.end_chunk();
  out.begin_chunk("FREC");
  out.u64(reply.recent.size());
  for (const auto& record : reply.recent) {
    out.u8(record.kind);
    out.u8(record.status);
    out.boolean(record.cache_hit);
    out.u64(record.bytes);
    out.u64(record.duration_us);
    out.u64(record.age_us);
  }
  out.end_chunk();
  // Worker-fleet health, as an appended chunk only when a fleet exists:
  // pre-distributed readers never reach it, pre-distributed writers never
  // emit it, and workerless daemons stay byte-identical to before.
  if (!reply.workers.empty()) {
    out.begin_chunk("WRKR");
    out.u64(reply.workers.size());
    for (const auto& worker : reply.workers) {
      out.str(worker.endpoint);
      out.boolean(worker.alive);
      out.u64(worker.inflight);
      out.u64(worker.shards_done);
      out.u64(worker.bytes_out);
      out.u64(worker.bytes_in);
      out.u64(worker.resends);
    }
    out.end_chunk();
  }
  return out.finish();
}

StatusReply decode_status_reply(std::span<const std::uint8_t> body) {
  serialize::Reader in(std::vector<std::uint8_t>(body.begin(), body.end()));
  StatusReply reply;
  in.enter_chunk("STAT");
  reply.protocol = in.u32();
  reply.model_name = in.str();
  reply.requests_served = in.u64();
  reply.connections_active = in.u64();
  reply.connections_total = in.u64();
  reply.uptime_ms = in.u64();
  reply.sample_interval_ms = in.u64();
  reply.samples = in.u64();
  in.exit_chunk();
  in.enter_chunk("INFL");
  // Check-before-allocate, like the stats codec: an in-flight entry is
  // exactly 17 payload bytes, a progress row at least a length-prefixed
  // label plus five u64s and a bool, a flight record exactly 27 bytes -
  // hostile counts are rejected before any reserve.
  const std::uint64_t n_inflight = in.u64();
  if (n_inflight > in.remaining() / 17) {
    throw std::runtime_error("polaris serve: in-flight count exceeds "
                             "payload size");
  }
  reply.inflight.reserve(n_inflight);
  for (std::uint64_t i = 0; i < n_inflight; ++i) {
    InflightEntry entry;
    entry.kind = in.u8();
    entry.bytes = in.u64();
    entry.age_us = in.u64();
    reply.inflight.push_back(entry);
  }
  in.exit_chunk();
  in.enter_chunk("PROG");
  const std::uint64_t n_campaigns = in.u64();
  if (n_campaigns > in.remaining() / 48) {
    throw std::runtime_error("polaris serve: campaign count exceeds "
                             "payload size");
  }
  reply.campaigns.reserve(n_campaigns);
  for (std::uint64_t i = 0; i < n_campaigns; ++i) {
    engine::CampaignProgress row;
    row.label = in.str();
    row.sequence = in.u64();
    row.shards_done = static_cast<std::size_t>(in.u64());
    row.shards_total = static_cast<std::size_t>(in.u64());
    row.queue_position = static_cast<std::size_t>(in.u64());
    row.age_us = in.u64();
    row.stopped = in.boolean();
    reply.campaigns.push_back(std::move(row));
  }
  in.exit_chunk();
  in.enter_chunk("FREC");
  const std::uint64_t n_records = in.u64();
  if (n_records > in.remaining() / 27) {
    throw std::runtime_error("polaris serve: flight-record count exceeds "
                             "payload size");
  }
  reply.recent.reserve(n_records);
  for (std::uint64_t i = 0; i < n_records; ++i) {
    FlightRecordEntry record;
    record.kind = in.u8();
    record.status = in.u8();
    record.cache_hit = in.boolean();
    record.bytes = in.u64();
    record.duration_us = in.u64();
    record.age_us = in.u64();
    reply.recent.push_back(record);
  }
  in.exit_chunk();
  if (in.try_enter_chunk("WRKR")) {
    // A worker row is at least a length-prefixed endpoint, a bool, and
    // five u64s.
    const std::uint64_t n_workers = in.u64();
    if (n_workers > in.remaining() / 49) {
      throw std::runtime_error("polaris serve: worker count exceeds "
                               "payload size");
    }
    reply.workers.reserve(n_workers);
    for (std::uint64_t i = 0; i < n_workers; ++i) {
      WorkerHealthEntry worker;
      worker.endpoint = in.str();
      worker.alive = in.boolean();
      worker.inflight = in.u64();
      worker.shards_done = in.u64();
      worker.bytes_out = in.u64();
      worker.bytes_in = in.u64();
      worker.resends = in.u64();
      reply.workers.push_back(std::move(worker));
    }
    in.exit_chunk();
  }
  return reply;
}

// --- response envelope ------------------------------------------------------

std::vector<std::uint8_t> encode_response(Status status,
                                          const std::string& message,
                                          bool cache_hit,
                                          std::span<const std::uint8_t> body) {
  serialize::Writer out;
  out.begin_chunk("POLS");
  out.u8(static_cast<std::uint8_t>(status));
  out.str(message);
  out.boolean(cache_hit);
  out.end_chunk();
  if (!body.empty()) {
    out.begin_chunk("BODY");
    out.u8_vec(body);
    out.end_chunk();
  }
  return out.finish();
}

Response decode_response(std::vector<std::uint8_t> payload) {
  serialize::Reader in(std::move(payload));
  Response response;
  in.enter_chunk("POLS");
  const std::uint8_t status = in.u8();
  if (status > static_cast<std::uint8_t>(Status::kUnknownDesign)) {
    throw std::runtime_error("polaris serve: unknown status code " +
                             std::to_string(status));
  }
  response.status = static_cast<Status>(status);
  response.message = in.str();
  response.cache_hit = in.boolean();
  in.exit_chunk();
  if (in.try_enter_chunk("BODY")) {
    response.body = in.u8_vec();
    in.exit_chunk();
  }
  return response;
}

// --- frame I/O --------------------------------------------------------------

FrameResult read_frame(int fd, std::size_t max_frame,
                       std::vector<std::uint8_t>& payload,
                       const CancelProbe& cancelled) {
  std::uint8_t header[kFrameHeaderSize];
  if (!read_all(fd, header, sizeof(header), /*eof_ok=*/true, cancelled)) {
    return FrameResult::kClosed;
  }
  if (std::memcmp(header, kFrameMagic, 4) != 0) return FrameResult::kBadMagic;
  std::uint32_t version = 0;
  for (int i = 0; i < 4; ++i) {
    version |= static_cast<std::uint32_t>(header[4 + i]) << (8 * i);
  }
  if (version > kProtocolVersion) return FrameResult::kBadVersion;
  std::uint64_t length = 0;
  for (int i = 0; i < 8; ++i) {
    length |= static_cast<std::uint64_t>(header[8 + i]) << (8 * i);
  }
  // The max-frame gate runs BEFORE the payload buffer exists: a corrupt or
  // hostile length field never drives an allocation.
  if (length > max_frame) return FrameResult::kTooLarge;
  payload.resize(static_cast<std::size_t>(length));
  if (length > 0) {
    read_all(fd, payload.data(), payload.size(), /*eof_ok=*/false, cancelled);
  }
  return FrameResult::kFrame;
}

void write_frame(int fd, std::span<const std::uint8_t> payload,
                 const CancelProbe& cancelled) {
  std::uint8_t header[kFrameHeaderSize];
  std::memcpy(header, kFrameMagic, 4);
  for (int i = 0; i < 4; ++i) {
    header[4 + i] = static_cast<std::uint8_t>(kProtocolVersion >> (8 * i));
  }
  const std::uint64_t length = payload.size();
  for (int i = 0; i < 8; ++i) {
    header[8 + i] = static_cast<std::uint8_t>(length >> (8 * i));
  }
  write_all(fd, header, sizeof(header), cancelled);
  if (!payload.empty()) {
    write_all(fd, payload.data(), payload.size(), cancelled);
  }
}

}  // namespace polaris::server
