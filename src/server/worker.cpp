#include "server/worker.hpp"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <optional>

#include "core/result_cache.hpp"
#include "obs/obs.hpp"

namespace polaris::server {

namespace {

// Same poll cadence as the serve daemon: SO_*TIMEO on every accepted
// socket bounds how long a stalled peer can pin a handler across a drain.
constexpr int kHandlerPollMs = 100;
constexpr int kAcceptPollMs = 500;

}  // namespace

Worker::Worker(WorkerOptions options) : options_(std::move(options)) {
  const net::Endpoint requested = net::parse_endpoint(options_.listen);
  listen_fd_ = net::listen_endpoint(requested, options_.backlog);
  endpoint_ = net::bound_endpoint(listen_fd_, requested);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    net::unlink_if_uds(endpoint_);
    throw std::runtime_error("polaris worker: pipe: " +
                             std::string(std::strerror(errno)));
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
}

Worker::~Worker() {
  if (started_) {
    request_stop();
    wait();
  } else if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    net::unlink_if_uds(endpoint_);
  }
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

void Worker::start() {
  if (started_) throw std::logic_error("polaris worker: start() called twice");
  started_ = true;
  accept_thread_ = std::thread(&Worker::accept_loop, this);
}

void Worker::request_stop() {
  const std::uint8_t byte = 1;
  (void)!::write(wake_write_fd_, &byte, 1);
}

void Worker::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
}

void Worker::accept_loop() {
  for (;;) {
    reap_finished_connections();
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_read_fd_, POLLIN, 0}};
    const int ready = ::poll(fds, 2, kAcceptPollMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;  // reap tick
    if ((fds[1].revents & (POLLIN | POLLERR | POLLHUP)) != 0) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    timeval timeout{};
    timeout.tv_usec = kHandlerPollMs * 1000;
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    auto connection = std::make_unique<Connection>();
    Connection* raw = connection.get();
    {
      const std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(std::move(connection));
    }
    raw->thread = std::thread([this, fd, raw] {
      handle_connection(fd);
      raw->done.store(true);
    });
  }

  // Graceful drain, exactly like the serve daemon: in-flight shard runs
  // complete and their replies are delivered before wait() returns.
  stopping_.store(true);
  ::close(listen_fd_);
  listen_fd_ = -1;
  net::unlink_if_uds(endpoint_);
  std::vector<std::unique_ptr<Connection>> remaining;
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    remaining.swap(connections_);
  }
  for (auto& connection : remaining) {
    if (connection->thread.joinable()) connection->thread.join();
  }
}

void Worker::reap_finished_connections() {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    auto& live = connections_;
    for (auto it = live.begin(); it != live.end();) {
      if ((*it)->done.load()) {
        finished.push_back(std::move(*it));
        it = live.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& connection : finished) {
    if (connection->thread.joinable()) connection->thread.join();
  }
}

void Worker::handle_connection(int fd) {
  const CancelProbe stop_probe = [this] { return stopping_.load(); };
  std::vector<std::uint8_t> payload;
  try {
    for (;;) {
      const FrameResult result =
          read_frame(fd, options_.max_frame, payload, stop_probe);
      if (result == FrameResult::kClosed) break;
      if (result != FrameResult::kFrame) {
        const Status status = result == FrameResult::kBadMagic
                                  ? Status::kBadMagic
                                  : result == FrameResult::kBadVersion
                                        ? Status::kBadVersion
                                        : Status::kTooLarge;
        write_frame(fd,
                    encode_response(status, to_string(status),
                                    /*cache_hit=*/false, {}),
                    stop_probe);
        requests_served_.fetch_add(1);
        break;
      }
      if (!handle_payload(fd, payload)) break;
    }
  } catch (const std::exception&) {
    // Torn frame or socket error: drop this one connection. The
    // coordinator treats the loss as a dead worker and requeues.
  }
  ::close(fd);
}

bool Worker::handle_payload(int fd, std::vector<std::uint8_t>& payload) {
  Status status = Status::kOk;
  std::string message;
  bool keep_open = true;
  std::vector<std::uint8_t> body;
  try {
    serialize::Reader in(std::move(payload));
    const RequestKind kind = decode_request_kind(in);
    switch (kind) {
      case RequestKind::kPing: body = serve_ping(); break;
      case RequestKind::kDesign: body = serve_design(in); break;
      case RequestKind::kShard: body = serve_shards(in); break;
      case RequestKind::kShutdown:
        keep_open = false;
        request_stop();
        break;
      default:
        throw ServerError(Status::kBadRequest,
                          std::string("polaris worker: request kind '") +
                              request_kind_name(kind) +
                              "' not served by shard workers");
    }
  } catch (const ServerError& error) {
    status = error.status;
    message = error.what();
    body.clear();
  } catch (const std::exception& error) {
    status = Status::kBadPayload;
    message = error.what();
    body.clear();
  }
  write_frame(fd, encode_response(status, message, /*cache_hit=*/false, body),
              [this] { return stopping_.load(); });
  requests_served_.fetch_add(1);
  return keep_open;
}

std::vector<std::uint8_t> Worker::serve_ping() {
  const obs::RuntimeInfo runtime = obs::runtime_info();
  PingReply reply;
  reply.model_name = "shard-worker";
  reply.requests_served = requests_served_.load();
  reply.build_type = runtime.build_type;
  reply.simd = runtime.simd;
  reply.lane_words = runtime.lane_words;
  return encode_ping_reply(reply);
}

std::vector<std::uint8_t> Worker::serve_design(serialize::Reader& in) {
  DesignRequest request = decode_design_request(in);
  static auto& installed =
      obs::Registry::global().counter("worker.designs_installed");
  {
    const std::lock_guard<std::mutex> lock(designs_mutex_);
    if (designs_.find(request.fingerprint) == designs_.end()) {
      designs_.emplace(request.fingerprint,
                       std::make_unique<circuits::Design>(
                           std::move(request.design)));
      installed.add();
    }
  }
  return {};  // empty-body kOk ack
}

std::shared_ptr<tvla::ShardRunner> Worker::runner_for(
    const ShardRequest& request) {
  const std::uint64_t key = core::ResultCache::combine(
      core::config_fingerprint(request.config), request.fingerprint);
  const std::lock_guard<std::mutex> lock(designs_mutex_);
  if (const auto it = runners_.find(key); it != runners_.end()) {
    return it->second;
  }
  const auto design = designs_.find(request.fingerprint);
  if (design == designs_.end()) {
    throw ServerError(Status::kUnknownDesign,
                      "polaris worker: no installed design with fingerprint " +
                          std::to_string(request.fingerprint));
  }
  // Compile once per (config, design): this is the whole point of the
  // worker-local plan cache - later shard requests skip straight to
  // simulation. Held under the mutex: compiling twice concurrently would
  // be wasted work, and compilation is short next to a shard run.
  auto runner = std::make_shared<tvla::ShardRunner>(
      design->second->netlist, lib_,
      core::tvla_config_for(request.config, *design->second));
  runners_.emplace(key, runner);
  return runner;
}

std::vector<std::uint8_t> Worker::serve_shards(serialize::Reader& in) {
  const ShardRequest request = decode_shard_request(in);
  const auto runner = runner_for(request);
  if (request.shard_end > runner->shard_count()) {
    throw ServerError(Status::kBadRequest,
                      "polaris worker: shard range [" +
                          std::to_string(request.shard_begin) + ", " +
                          std::to_string(request.shard_end) +
                          ") exceeds plan shard count " +
                          std::to_string(runner->shard_count()));
  }
  static auto& shards_counter =
      obs::Registry::global().counter("worker.shards_run");
  const std::size_t count =
      static_cast<std::size_t>(request.shard_end - request.shard_begin);
  std::vector<std::optional<tvla::CampaignMoments>> results(count);
  try {
    // Shard fan-out across the worker's own threads. Each run_shard is
    // independent and const; results land in distinct slots.
    std::size_t threads = options_.threads != 0
                              ? options_.threads
                              : std::thread::hardware_concurrency();
    threads = std::max<std::size_t>(1, std::min(threads, count));
    if (threads == 1) {
      for (std::size_t i = 0; i < count; ++i) {
        results[i] = runner->run_shard(
            static_cast<std::size_t>(request.shard_begin) + i);
      }
    } else {
      std::atomic<std::size_t> next{0};
      // An exception escaping a thread entry point is std::terminate, so
      // each pool thread traps into a first-wins exception_ptr that the
      // spawning thread rethrows after join - the request then fails
      // with kServerError like the single-threaded path instead of
      // killing the worker process.
      std::mutex error_mutex;
      std::exception_ptr first_error;
      std::vector<std::thread> pool;
      pool.reserve(threads);
      for (std::size_t t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
          try {
            for (std::size_t i = next.fetch_add(1); i < count;
                 i = next.fetch_add(1)) {
              results[i] = runner->run_shard(
                  static_cast<std::size_t>(request.shard_begin) + i);
            }
          } catch (...) {
            const std::lock_guard<std::mutex> lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
            next.store(count);  // stop the other threads early
          }
        });
      }
      for (auto& thread : pool) thread.join();
      if (first_error) std::rethrow_exception(first_error);
    }
  } catch (const std::exception& error) {
    throw ServerError(Status::kServerError, error.what());
  }
  ShardReply reply;
  reply.shards.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ShardResult result;
    result.shard = request.shard_begin + i;
    result.moments = std::move(*results[i]);
    reply.shards.push_back(std::move(result));
  }
  shards_counter.add(count);
  shards_run_.fetch_add(count);
  return encode_shard_reply(reply);
}

}  // namespace polaris::server
