// Request flight recorder: a fixed-capacity ring of the last N completed
// requests, kept by the daemon for post-hoc "what just happened" queries.
//
// Every request the server answers (success or error) deposits one Record:
// kind, final status, payload size, service duration, cache hit, and a
// monotonic completion timestamp. A status request (protocol.hpp kStatus)
// returns the ring newest-first so `polaris_cli client status` can show the
// recent request history without any server-side log scraping.
//
// Requests slower than a configurable threshold additionally emit one
// rate-limited obs::log line and bump the `server.slow_requests` counter -
// the push-side complement to the pull-side ring.
//
// Pure telemetry: nothing here feeds responses, caches, or result bytes.
#pragma once

#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

namespace polaris::server {

class FlightRecorder {
 public:
  struct Record {
    std::uint8_t kind = 0;       // RequestKind as sent on the wire
    std::uint8_t status = 0;     // Status the response carried
    bool cache_hit = false;      // body served from the result cache
    std::uint64_t bytes = 0;     // request payload size
    std::uint64_t duration_us = 0;  // decode-to-encode service time
    std::int64_t completed_ns = 0;  // obs::now_ns() at completion
  };

  /// `capacity` is clamped to at least 1. `slow_threshold_us` = 0 disables
  /// slow-request logging (every request would be "slow").
  explicit FlightRecorder(std::size_t capacity,
                          std::uint64_t slow_threshold_us = 0);

  /// Deposits one completed request, evicting the oldest once full.
  /// `kind_name` only feeds the slow-request log line.
  void record(const Record& record, std::string_view kind_name);

  /// Completed requests, newest first (at most `capacity` of them).
  [[nodiscard]] std::vector<Record> recent() const;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Total records ever deposited (not capped by the ring).
  [[nodiscard]] std::uint64_t total_recorded() const;

 private:
  const std::size_t capacity_;
  const std::uint64_t slow_threshold_us_;
  mutable std::mutex mutex_;
  std::vector<Record> ring_;   // grows to capacity_, then wraps
  std::size_t next_ = 0;       // ring_[next_] is the oldest once full
  std::uint64_t total_ = 0;
};

}  // namespace polaris::server
