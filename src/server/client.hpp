// Thin framed-protocol client for the POLARIS serve daemon. Used by the
// `polaris_cli client` subcommands, the server tests, and bench_serve - one
// implementation of the wire contract on the client side.
#pragma once

#include <cstddef>
#include <string>

#include "server/protocol.hpp"

namespace polaris::server {

class Client {
 public:
  /// Connects to a serving daemon or shard worker. `endpoint` is an
  /// endpoint spec (a UDS path or "tcp:host:port"; see server/net.hpp).
  /// `timeout_ms` > 0 arms a per-call deadline: a call that cannot finish
  /// its frame I/O within it throws TimeoutError (SO_RCVTIMEO/SO_SNDTIMEO
  /// make the blocking I/O re-check the deadline every poll tick). 0 means
  /// block indefinitely, the original behavior. Throws std::runtime_error
  /// when nothing listens on the endpoint.
  explicit Client(const std::string& endpoint, std::size_t timeout_ms = 0);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Each call sends one request frame and blocks for the response frame.
  /// An error response rethrows as ServerError (status + server message).
  [[nodiscard]] PingReply ping();
  /// Registry snapshot + runtime identity of the daemon process.
  [[nodiscard]] StatsReply stats();
  /// Live-operations snapshot: in-flight requests, campaign progress,
  /// flight-recorder ring. Older daemons answer kBadPayload (thrown here
  /// as ServerError), exactly like stats() against a pre-obs daemon.
  [[nodiscard]] StatusReply status();
  [[nodiscard]] AuditReply audit(const AuditRequest& request);
  /// Streaming audit: sends kAuditStream and consumes kOk frames until the
  /// final AUDS reply, invoking `on_partial` (may be empty) per AUDP
  /// checkpoint frame. The returned reply is byte-identical to audit() for
  /// the same request; a cache hit on the server delivers zero partials.
  [[nodiscard]] AuditReply audit_stream(
      const AuditRequest& request,
      const std::function<void(const AuditPartial&)>& on_partial);
  [[nodiscard]] MaskReply mask(const MaskRequest& request);
  [[nodiscard]] ScoreReply score(const ScoreRequest& request);
  /// Asks the daemon to drain and exit. The acknowledgement arrives before
  /// the server begins its drain, so the call returning means the request
  /// was accepted, not that the process has exited.
  void shutdown_server();

 private:
  Response roundtrip(std::span<const std::uint8_t> payload);
  /// Starts a fresh deadline window (one per public call) and returns the
  /// probe the frame I/O consults; empty when timeouts are disabled.
  CancelProbe arm_deadline();

  int fd_ = -1;
  std::size_t timeout_ms_ = 0;
  std::int64_t deadline_ns_ = 0;  // obs::now_ns()-based, 0 = unarmed
};

}  // namespace polaris::server
