// Thin framed-protocol client for the POLARIS serve daemon. Used by the
// `polaris_cli client` subcommands, the server tests, and bench_serve - one
// implementation of the wire contract on the client side.
#pragma once

#include <string>

#include "server/protocol.hpp"

namespace polaris::server {

class Client {
 public:
  /// Connects to a serving daemon. Throws std::runtime_error when nothing
  /// listens on `socket_path`.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Each call sends one request frame and blocks for the response frame.
  /// An error response rethrows as ServerError (status + server message).
  [[nodiscard]] PingReply ping();
  /// Registry snapshot + runtime identity of the daemon process.
  [[nodiscard]] StatsReply stats();
  /// Live-operations snapshot: in-flight requests, campaign progress,
  /// flight-recorder ring. Older daemons answer kBadPayload (thrown here
  /// as ServerError), exactly like stats() against a pre-obs daemon.
  [[nodiscard]] StatusReply status();
  [[nodiscard]] AuditReply audit(const AuditRequest& request);
  /// Streaming audit: sends kAuditStream and consumes kOk frames until the
  /// final AUDS reply, invoking `on_partial` (may be empty) per AUDP
  /// checkpoint frame. The returned reply is byte-identical to audit() for
  /// the same request; a cache hit on the server delivers zero partials.
  [[nodiscard]] AuditReply audit_stream(
      const AuditRequest& request,
      const std::function<void(const AuditPartial&)>& on_partial);
  [[nodiscard]] MaskReply mask(const MaskRequest& request);
  [[nodiscard]] ScoreReply score(const ScoreRequest& request);
  /// Asks the daemon to drain and exit. The acknowledgement arrives before
  /// the server begins its drain, so the call returning means the request
  /// was accepted, not that the process has exited.
  void shutdown_server();

 private:
  Response roundtrip(std::span<const std::uint8_t> payload);

  int fd_ = -1;
};

}  // namespace polaris::server
