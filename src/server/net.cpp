#include "server/net.hpp"

#include <errno.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

namespace polaris::server::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("polaris net: " + what + ": " +
                           std::strerror(errno));
}

/// True when a daemon is actively listening on the UDS path (a connect
/// attempt succeeds). Distinguishes a live socket from a stale file left
/// by a crashed process.
bool uds_is_live(const sockaddr_un& addr) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return false;
  const bool live = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                              sizeof(addr)) == 0;
  ::close(fd);
  return live;
}

sockaddr_un uds_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error(
        "polaris net: socket path must be 1.." +
        std::to_string(sizeof(addr.sun_path) - 1) + " characters, got '" +
        path + "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// getaddrinfo wrapper; the caller owns the returned list.
addrinfo* resolve_tcp(const Endpoint& endpoint, bool passive) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (passive) hints.ai_flags = AI_PASSIVE;
  addrinfo* result = nullptr;
  const std::string port = std::to_string(endpoint.port);
  const int rc = ::getaddrinfo(endpoint.host.c_str(), port.c_str(), &hints,
                               &result);
  if (rc != 0) {
    throw std::runtime_error("polaris net: cannot resolve '" + endpoint.host +
                             "': " + ::gai_strerror(rc));
  }
  return result;
}

bool all_digits(const std::string& text) {
  if (text.empty()) return false;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

std::uint16_t parse_port(const std::string& text, const std::string& spec) {
  if (!all_digits(text) || text.size() > 5) {
    throw std::runtime_error("polaris net: bad port in endpoint '" + spec +
                             "'");
  }
  const unsigned long value = std::stoul(text);
  if (value > 65535) {
    throw std::runtime_error("polaris net: bad port in endpoint '" + spec +
                             "'");
  }
  return static_cast<std::uint16_t>(value);
}

}  // namespace

Endpoint parse_endpoint(const std::string& spec) {
  if (spec.empty()) {
    throw std::runtime_error("polaris net: empty endpoint spec");
  }
  Endpoint endpoint;
  std::string rest;
  if (spec.rfind("tcp:", 0) == 0) {
    rest = spec.substr(4);
  } else {
    // A bare "host:port" (numeric port, no path separator) also reads as
    // TCP - the natural spelling in a --workers list. Anything else is a
    // UDS path.
    const std::size_t colon = spec.rfind(':');
    if (colon == std::string::npos || spec.find('/') != std::string::npos ||
        !all_digits(spec.substr(colon + 1))) {
      endpoint.path = spec;
      return endpoint;
    }
    rest = spec;
  }
  const std::size_t colon = rest.rfind(':');
  if (colon == std::string::npos || colon == 0) {
    throw std::runtime_error("polaris net: TCP endpoint must be "
                             "tcp:host:port, got '" + spec + "'");
  }
  endpoint.tcp = true;
  endpoint.host = rest.substr(0, colon);
  endpoint.port = parse_port(rest.substr(colon + 1), spec);
  return endpoint;
}

std::string to_string(const Endpoint& endpoint) {
  if (!endpoint.tcp) return endpoint.path;
  return "tcp:" + endpoint.host + ":" + std::to_string(endpoint.port);
}

int listen_endpoint(const Endpoint& endpoint, int backlog) {
  if (backlog <= 0) backlog = 1;
  if (!endpoint.tcp) {
    const sockaddr_un addr = uds_addr(endpoint.path);
    // Replace a STALE socket file only: silently unlinking a live daemon's
    // socket would hijack its clients while it keeps running invisibly.
    if (uds_is_live(addr)) {
      throw std::runtime_error("polaris net: a daemon is already serving on '" +
                               endpoint.path + "'");
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket");
    ::unlink(endpoint.path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      throw_errno("bind '" + endpoint.path + "'");
    }
    if (::listen(fd, backlog) != 0) {
      const int saved = errno;
      ::close(fd);
      ::unlink(endpoint.path.c_str());
      errno = saved;
      throw_errno("listen");
    }
    return fd;
  }

  addrinfo* addresses = resolve_tcp(endpoint, /*passive=*/true);
  int fd = -1;
  int last_errno = 0;
  for (const addrinfo* ai = addresses; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    // Restart-in-place: without SO_REUSEADDR a daemon restarted within
    // TIME_WAIT of its predecessor fails the bind, which breaks CI smoke
    // scripts that cycle coordinators and workers on fixed ports.
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, backlog) == 0) {
      break;
    }
    last_errno = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(addresses);
  if (fd < 0) {
    errno = last_errno;
    throw_errno("listen on '" + to_string(endpoint) + "'");
  }
  return fd;
}

Endpoint bound_endpoint(int listen_fd, const Endpoint& endpoint) {
  if (!endpoint.tcp || endpoint.port != 0) return endpoint;
  Endpoint bound = endpoint;
  sockaddr_storage addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return bound;
  }
  if (addr.ss_family == AF_INET) {
    bound.port = ntohs(reinterpret_cast<const sockaddr_in*>(&addr)->sin_port);
  } else if (addr.ss_family == AF_INET6) {
    bound.port =
        ntohs(reinterpret_cast<const sockaddr_in6*>(&addr)->sin6_port);
  }
  return bound;
}

int connect_endpoint(const Endpoint& endpoint) {
  if (!endpoint.tcp) {
    const sockaddr_un addr = uds_addr(endpoint.path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      const int saved = errno;
      ::close(fd);
      throw std::runtime_error("polaris net: cannot connect to '" +
                               endpoint.path + "': " + std::strerror(saved) +
                               " (is the daemon running?)");
    }
    return fd;
  }
  addrinfo* addresses = resolve_tcp(endpoint, /*passive=*/false);
  int fd = -1;
  int last_errno = 0;
  for (const addrinfo* ai = addresses; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    last_errno = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(addresses);
  if (fd < 0) {
    throw std::runtime_error("polaris net: cannot connect to '" +
                             to_string(endpoint) +
                             "': " + std::strerror(last_errno) +
                             " (is the worker/daemon running?)");
  }
  return fd;
}

void unlink_if_uds(const Endpoint& endpoint) {
  if (!endpoint.tcp) ::unlink(endpoint.path.c_str());
}

}  // namespace polaris::server::net
