#include "server/server.hpp"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <initializer_list>
#include <utility>

#include "netlist/verilog.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace polaris::server {

namespace {

/// Poll interval for connection handlers: the latency bound on noticing a
/// stop request while a client holds an idle connection open. The same
/// interval is set as SO_RCVTIMEO/SO_SNDTIMEO on every accepted socket, so
/// a peer that stalls MID-frame also cannot pin a handler across a drain
/// (the frame I/O layer re-checks its cancel probe on every timeout).
constexpr int kHandlerPollMs = 100;

/// Accept-loop poll interval: bounds how long a finished connection's
/// thread lingers before being reaped.
constexpr int kAcceptPollMs = 500;

std::uint64_t combine_all(std::uint64_t key,
                          std::initializer_list<std::uint64_t> values) {
  for (const auto value : values) key = core::ResultCache::combine(key, value);
  return key;
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("polaris serve: " + what + ": " +
                           std::strerror(errno));
}

/// Per-request-type service-time histogram (request decode + compute +
/// cache lookup; frame I/O excluded). Nullptr is never returned - every
/// decodable kind has a histogram.
obs::Histogram& request_histogram(RequestKind kind) {
  auto& registry = obs::Registry::global();
  static auto& ping = registry.histogram("server.ping_us");
  static auto& audit = registry.histogram("server.audit_us");
  static auto& mask = registry.histogram("server.mask_us");
  static auto& score = registry.histogram("server.score_us");
  static auto& shutdown = registry.histogram("server.shutdown_us");
  static auto& stats = registry.histogram("server.stats_us");
  static auto& audit_stream = registry.histogram("server.audit_stream_us");
  static auto& status = registry.histogram("server.status_us");
  static auto& design = registry.histogram("server.design_us");
  static auto& shard = registry.histogram("server.shard_us");
  switch (kind) {
    case RequestKind::kPing: return ping;
    case RequestKind::kAudit: return audit;
    case RequestKind::kMask: return mask;
    case RequestKind::kScore: return score;
    case RequestKind::kShutdown: return shutdown;
    case RequestKind::kStats: return stats;
    case RequestKind::kAuditStream: return audit_stream;
    case RequestKind::kStatus: return status;
    case RequestKind::kDesign: return design;
    case RequestKind::kShard: return shard;
  }
  return ping;  // unreachable: decode_request_kind rejects unknown kinds
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      scheduler_(options_.threads),
      cache_(options_.cache_capacity),
      recorder_(options_.flight_records,
                static_cast<std::uint64_t>(options_.slow_request_ms) * 1000),
      sampler_(obs::Registry::global(),
               obs::Sampler::Options{
                   options_.sample_interval_ms == 0
                       ? std::size_t{1000}
                       : options_.sample_interval_ms,
                   /*capacity=*/128, options_.metrics_file}) {
  start_mono_ns_ = obs::now_ns();
  start_wall_ms_ = obs::wall_clock_ms();
  polaris_ = core::Polaris::load_bundle(options_.bundle_path, &info_);
  if (!options_.workers.empty()) {
    WorkerPoolOptions pool_options;
    pool_options.workers = options_.workers;
    pool_options.local_threads = options_.threads;
    pool_options.max_frame = options_.max_frame;
    pool_ = std::make_unique<WorkerPool>(std::move(pool_options));
  }

  // The endpoint layer handles both transports: UDS with the stale-socket
  // replacement this daemon always had, TCP with SO_REUSEADDR before bind.
  const net::Endpoint requested = net::parse_endpoint(options_.socket_path);
  listen_fd_ = net::listen_endpoint(requested, options_.backlog);
  endpoint_ = net::bound_endpoint(listen_fd_, requested);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    net::unlink_if_uds(endpoint_);
    throw_errno("pipe");
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
}

Server::~Server() {
  if (started_) {
    request_stop();
    wait();
  } else if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    net::unlink_if_uds(endpoint_);
  }
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

void Server::start() {
  if (started_) throw std::logic_error("polaris serve: start() called twice");
  started_ = true;
  if (options_.sample_interval_ms > 0) sampler_.start();
  accept_thread_ = std::thread(&Server::accept_loop, this);
}

void Server::request_stop() {
  // One write to a pipe: async-signal-safe, so SIGINT/SIGTERM handlers can
  // call this directly. The accept loop owns all the non-signal-safe work.
  const std::uint8_t byte = 1;
  (void)!::write(wake_write_fd_, &byte, 1);
}

void Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
}

ServerStats Server::stats() const {
  ServerStats stats;
  stats.requests_served = requests_served_.load();
  stats.cache_hits = cache_.hits();
  stats.cache_misses = cache_.misses();
  stats.cache_entries = cache_.size();
  stats.cache_bytes = cache_.bytes();
  stats.connections = connections_accepted_.load();
  return stats;
}

void Server::accept_loop() {
  for (;;) {
    reap_finished_connections();
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_read_fd_, POLLIN, 0}};
    const int ready = ::poll(fds, 2, kAcceptPollMs);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;  // reap tick
    if ((fds[1].revents & (POLLIN | POLLERR | POLLHUP)) != 0) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    // Timeouts make the frame I/O loops re-check the handler's cancel
    // probe, so a peer stalling mid-frame cannot pin the handler.
    timeval timeout{};
    timeout.tv_usec = kHandlerPollMs * 1000;
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    connections_accepted_.fetch_add(1);
    {
      static auto& opened =
          obs::Registry::global().counter("server.connections_opened");
      opened.add();
    }
    auto connection = std::make_unique<Connection>();
    Connection* raw = connection.get();
    {
      const std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(std::move(connection));
    }
    raw->thread = std::thread([this, fd, raw] {
      handle_connection(fd);
      raw->done.store(true);
    });
  }

  // Graceful drain: stop accepting, let every handler finish its in-flight
  // request (handlers notice stopping_ within kHandlerPollMs), then remove
  // the socket file so "zero leaked sockets" is checkable from outside.
  stopping_.store(true);
  ::close(listen_fd_);
  listen_fd_ = -1;
  net::unlink_if_uds(endpoint_);
  const std::int64_t drain_start = obs::now_ns();
  std::vector<std::unique_ptr<Connection>> remaining;
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    remaining.swap(connections_);
  }
  for (auto& connection : remaining) {
    if (connection->thread.joinable()) connection->thread.join();
  }
  static auto& drain_us = obs::Registry::global().histogram("server.drain_us");
  drain_us.record(
      static_cast<std::uint64_t>((obs::now_ns() - drain_start) / 1000));
  // Last: the sampler outlives the handlers so the final intervals (the
  // drain itself included) still land in the time-series and metrics file.
  sampler_.stop();
}

void Server::reap_finished_connections() {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    auto& live = connections_;
    for (auto it = live.begin(); it != live.end();) {
      if ((*it)->done.load()) {
        finished.push_back(std::move(*it));
        it = live.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Joining outside the lock: done was set by the handler's last action,
  // so these joins return immediately.
  for (auto& connection : finished) {
    if (connection->thread.joinable()) connection->thread.join();
  }
}

void Server::handle_connection(int fd) {
  auto& registry = obs::Registry::global();
  static auto& frames_in = registry.counter("server.frames_in");
  static auto& frames_out = registry.counter("server.frames_out");
  static auto& frame_errors = registry.counter("server.frame_errors");
  static auto& closed = registry.counter("server.connections_closed");
  // Consulted by the frame I/O loops on every socket timeout: a peer that
  // stalls mid-frame cannot hold this handler across a shutdown drain.
  const CancelProbe stop_probe = [this] { return stopping_.load(); };
  std::vector<std::uint8_t> payload;
  try {
    for (;;) {
      // Idle waiting happens INSIDE read_frame: the socket's SO_RCVTIMEO
      // expires every kHandlerPollMs and the probe is re-checked, so both
      // an idle connection and a mid-frame stall notice a drain through
      // the same mechanism (the probe throws; the catch below closes).
      const FrameResult result =
          read_frame(fd, options_.max_frame, payload, stop_probe);
      if (result == FrameResult::kClosed) break;
      if (result != FrameResult::kFrame) {
        // Header-level failure: answer with a structured error frame, then
        // close - after a bad magic or an untrusted length field the byte
        // stream has no trustworthy next frame boundary.
        frame_errors.add();
        const Status status = result == FrameResult::kBadMagic
                                  ? Status::kBadMagic
                                  : result == FrameResult::kBadVersion
                                        ? Status::kBadVersion
                                        : Status::kTooLarge;
        write_frame(fd,
                    encode_response(status, to_string(status),
                                    /*cache_hit=*/false, {}),
                    stop_probe);
        frames_out.add();
        requests_served_.fetch_add(1);
        break;
      }
      frames_in.add();
      if (!handle_payload(fd, payload)) break;
    }
  } catch (const std::exception&) {
    // Torn frame or socket error: there is no answerable request and no
    // usable stream; dropping this one connection is the contract.
  }
  ::close(fd);
  closed.add();
}

bool Server::handle_payload(int fd, std::vector<std::uint8_t>& payload) {
  auto& registry = obs::Registry::global();
  static auto& frames_out = registry.counter("server.frames_out");
  static auto& request_errors = registry.counter("server.request_errors");
  Status status = Status::kOk;
  std::string message;
  bool cache_hit = false;
  bool keep_open = true;
  core::ResultCache::Body body;
  // Per-kind service time: decode through compute/cache lookup, known only
  // once the kind decoded - an undecodable payload records nowhere.
  obs::Histogram* service_us = nullptr;
  const std::uint64_t payload_bytes = payload.size();
  // 0xFF marks "payload never yielded a kind" in the flight recorder; it
  // can never collide with a real RequestKind (decode rejects > kStatus).
  std::uint8_t wire_kind = 0xFF;
  const char* kind_name = "?";
  const std::uint64_t token = next_inflight_token_.fetch_add(1);
  bool tracked = false;
  const std::int64_t t0 = obs::now_ns();
  obs::Span span("request", "server");
  try {
    serialize::Reader in(std::move(payload));
    const RequestKind kind = decode_request_kind(in);
    service_us = &request_histogram(kind);
    wire_kind = static_cast<std::uint8_t>(kind);
    kind_name = request_kind_name(kind);
    span.arg("kind", kind_name);
    {
      // Visible to status requests from here until just before the reply
      // frame is written - the decode-to-encode span the flight recorder
      // times, so "in flight" and duration_us describe the same window.
      const std::lock_guard<std::mutex> lock(inflight_mutex_);
      inflight_.emplace(token, Inflight{wire_kind, payload_bytes, t0});
      tracked = true;
    }
    if (stopping_.load() && kind != RequestKind::kPing &&
        kind != RequestKind::kShutdown) {
      throw ServerError(Status::kShuttingDown, to_string(Status::kShuttingDown));
    }
    switch (kind) {
      case RequestKind::kPing: body = serve_ping(); break;
      case RequestKind::kAudit: body = serve_audit(in, cache_hit); break;
      case RequestKind::kAuditStream:
        body = serve_audit_stream(fd, in, cache_hit);
        break;
      case RequestKind::kMask: body = serve_mask(in, cache_hit); break;
      case RequestKind::kScore: body = serve_score(in, cache_hit); break;
      case RequestKind::kStats: body = serve_stats(); break;
      case RequestKind::kStatus: body = serve_status(); break;
      case RequestKind::kDesign:
      case RequestKind::kShard:
        // Worker-plane requests: the daemon is a coordinator, not a shard
        // worker - point the peer at `polaris_cli worker`.
        throw ServerError(Status::kBadRequest,
                          std::string("polaris serve: request kind '") +
                              kind_name +
                              "' is served by shard workers "
                              "(polaris_cli worker), not the daemon");
      case RequestKind::kShutdown:
        keep_open = false;
        request_stop();
        break;
    }
  } catch (const ServerError& error) {
    status = error.status;
    message = error.what();
    body.reset();
  } catch (const std::exception& error) {
    // Anything the decode layer threw: the frame arrived intact but its
    // payload archive or request structure did not parse.
    status = Status::kBadPayload;
    message = error.what();
    body.reset();
  }
  if (status != Status::kOk) request_errors.add();
  const auto elapsed_us =
      static_cast<std::uint64_t>((obs::now_ns() - t0) / 1000);
  if (service_us != nullptr) service_us->record(elapsed_us);
  span.arg("status", to_string(status)).arg("cache_hit", cache_hit);
  // Untrack BEFORE the reply write: write_frame may throw (torn peer), and
  // an entry that outlives its handler would sit in the status table
  // forever.
  if (tracked) {
    const std::lock_guard<std::mutex> lock(inflight_mutex_);
    inflight_.erase(token);
  }
  // The probe only fires on a send timeout: a cooperating client (blocked
  // in read) always gets its in-flight response, even mid-drain; only a
  // stalled peer with a full buffer is dropped.
  const std::span<const std::uint8_t> body_span =
      body ? std::span<const std::uint8_t>(*body)
           : std::span<const std::uint8_t>();
  write_frame(fd, encode_response(status, message, cache_hit, body_span),
              [this] { return stopping_.load(); });
  frames_out.add();
  requests_served_.fetch_add(1);
  FlightRecorder::Record record;
  record.kind = wire_kind;
  record.status = static_cast<std::uint8_t>(status);
  record.cache_hit = cache_hit;
  record.bytes = payload_bytes;
  record.duration_us = elapsed_us;
  record.completed_ns = obs::now_ns();
  recorder_.record(record, kind_name);
  return keep_open;
}

core::ResultCache::Body Server::serve_ping() {
  const obs::RuntimeInfo runtime = obs::runtime_info();
  PingReply reply;
  reply.model_name = info_.model_name;
  reply.config_fingerprint = info_.config_fingerprint;
  reply.requests_served = requests_served_.load();
  reply.cache_hits = cache_.hits();
  reply.cache_entries = cache_.size();
  reply.build_type = runtime.build_type;
  reply.simd = runtime.simd;
  reply.lane_words = runtime.lane_words;
  return std::make_shared<const std::vector<std::uint8_t>>(
      encode_ping_reply(reply));
}

core::ResultCache::Body Server::serve_stats() {
  const obs::RuntimeInfo runtime = obs::runtime_info();
  StatsReply reply;
  reply.model_name = info_.model_name;
  reply.config_fingerprint = info_.config_fingerprint;
  reply.build_type = runtime.build_type;
  reply.simd = runtime.simd;
  reply.lane_words = runtime.lane_words;
  reply.requests_served = requests_served_.load();
  reply.connections = connections_accepted_.load();
  reply.snapshot = obs::Registry::global().snapshot();
  reply.uptime_ms = static_cast<std::uint64_t>(
      (obs::now_ns() - start_mono_ns_) / 1'000'000);
  return std::make_shared<const std::vector<std::uint8_t>>(
      encode_stats_reply(reply));
}

core::ResultCache::Body Server::serve_status() {
  const std::int64_t now = obs::now_ns();
  StatusReply reply;
  reply.model_name = info_.model_name;
  reply.requests_served = requests_served_.load();
  reply.connections_total = connections_accepted_.load();
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    std::uint64_t active = 0;
    for (const auto& connection : connections_) {
      if (!connection->done.load()) ++active;
    }
    reply.connections_active = active;
  }
  reply.uptime_ms =
      static_cast<std::uint64_t>((now - start_mono_ns_) / 1'000'000);
  reply.sample_interval_ms = options_.sample_interval_ms;
  reply.samples = sampler_.series().total_pushed();
  {
    const std::lock_guard<std::mutex> lock(inflight_mutex_);
    reply.inflight.reserve(inflight_.size());
    for (const auto& [token, request] : inflight_) {
      InflightEntry entry;
      entry.kind = request.kind;
      entry.bytes = request.bytes;
      entry.age_us =
          static_cast<std::uint64_t>((now - request.start_ns) / 1000);
      reply.inflight.push_back(entry);
    }
  }
  // Oldest first: the map iterates in hash order, which would shuffle the
  // table between polls.
  std::sort(reply.inflight.begin(), reply.inflight.end(),
            [](const InflightEntry& a, const InflightEntry& b) {
              return a.age_us > b.age_us;
            });
  reply.campaigns = scheduler_.progress();
  if (pool_) reply.workers = pool_->health();
  const auto records = recorder_.recent();
  reply.recent.reserve(records.size());
  for (const auto& record : records) {
    FlightRecordEntry entry;
    entry.kind = record.kind;
    entry.status = record.status;
    entry.cache_hit = record.cache_hit;
    entry.bytes = record.bytes;
    entry.duration_us = record.duration_us;
    entry.age_us =
        static_cast<std::uint64_t>((now - record.completed_ns) / 1000);
    reply.recent.push_back(entry);
  }
  return std::make_shared<const std::vector<std::uint8_t>>(
      encode_status_reply(reply));
}

core::ResultCache::Body Server::serve_audit(serialize::Reader& in,
                                            bool& cache_hit) {
  const AuditRequest request = decode_audit_request(in);
  return audit_body(request, cache_hit, {});
}

core::ResultCache::Body Server::serve_audit_stream(int fd,
                                                   serialize::Reader& in,
                                                   bool& cache_hit) {
  const AuditRequest request = decode_audit_request(in);
  static auto& partials_out =
      obs::Registry::global().counter("server.audit_partials_out");
  // Partials are best-effort: a send failure must not fail the campaign
  // (the final reply still lands in the cache for the next caller), so the
  // first failed write just stops further partials.
  auto failed = std::make_shared<std::atomic<bool>>(false);
  const std::uint64_t traces_total = request.config.tvla.traces;
  tvla::ProgressFn progress =
      [this, fd, failed, traces_total](const tvla::LeakageReport& partial,
                                       std::size_t traces_done) {
        if (failed->load()) return;
        AuditPartial frame;
        frame.traces_done = traces_done;
        frame.traces_total = traces_total;
        frame.report = partial;
        try {
          write_frame(fd,
                      encode_response(Status::kOk, "", /*cache_hit=*/false,
                                      encode_audit_partial(frame)),
                      [this] { return stopping_.load(); });
          partials_out.add();
        } catch (const std::exception&) {
          failed->store(true);
        }
      };
  return audit_body(request, cache_hit, std::move(progress));
}

core::ResultCache::Body Server::audit_body(const AuditRequest& request,
                                           bool& cache_hit,
                                           tvla::ProgressFn progress) {
  circuits::Design design;
  try {
    core::validate(request.config);
    design = circuits::load_design(request.design, request.scale);
  } catch (const std::exception& error) {
    throw ServerError(Status::kBadRequest, error.what());
  }
  // Streaming and non-streaming audits share one cache key (the compute
  // and the reply bytes are identical); a streamed request that hits the
  // cache replays the final body and emits zero partial frames.
  const std::uint64_t key = combine_all(
      core::config_fingerprint(request.config),
      {core::design_fingerprint(design),
       static_cast<std::uint64_t>(RequestKind::kAudit)});
  if (auto cached = cache_.get(key)) {
    cache_hit = true;
    return cached;
  }
  try {
    tvla::LeakageReport report{{}, {}, 0.0};
    if (pool_) {
      // Distributed backend: same shards, same ascending merge, same
      // bits - which is exactly why the cache key above is unchanged.
      report = pool_->audit({&design, 1}, lib_, request.config,
                            std::move(progress))[0];
    } else {
      auto pending = core::submit_audits(scheduler_, {&design, 1}, lib_,
                                         request.config, std::move(progress));
      scheduler_.drain();
      report = pending[0].get();
    }
    AuditReply reply;
    reply.design_name = design.name;
    reply.gate_count = design.netlist.gate_count();
    reply.traces = request.config.tvla.traces;
    reply.report = std::move(report);
    reply.traces_used = reply.report.traces_used();
    reply.early_stopped = reply.report.early_stopped();
    auto body = std::make_shared<const std::vector<std::uint8_t>>(
        encode_audit_reply(reply));
    cache_.put(key, body);
    return body;
  } catch (const std::exception& error) {
    throw ServerError(Status::kServerError, error.what());
  }
}

core::ResultCache::Body Server::serve_mask(serialize::Reader& in,
                                           bool& cache_hit) {
  const MaskRequest request = decode_mask_request(in);
  circuits::Design design;
  try {
    design = circuits::load_design(request.design, request.scale);
  } catch (const std::exception& error) {
    throw ServerError(Status::kBadRequest, error.what());
  }
  const std::size_t mask_size =
      request.mask_size != 0 ? request.mask_size : polaris_.config().mask_size;
  const std::uint64_t key = combine_all(
      info_.config_fingerprint,
      {core::design_fingerprint(design),
       static_cast<std::uint64_t>(RequestKind::kMask), mask_size,
       static_cast<std::uint64_t>(request.mode),
       static_cast<std::uint64_t>(request.verify)});
  if (auto cached = cache_.get(key)) {
    cache_hit = true;
    return cached;
  }
  try {
    auto outcome = polaris_.mask_design(design, lib_, mask_size, request.mode,
                                        /*verify=*/false);
    MaskReply reply;
    reply.design_name = design.name;
    reply.gate_count = design.netlist.gate_count();
    reply.masked_gate_count = outcome.masked.gate_count();
    reply.selected = std::move(outcome.selected);
    reply.seconds = outcome.seconds;
    reply.verilog = netlist::to_verilog(outcome.masked);
    if (request.verify) {
      // Sign-off campaigns (before on the original, after on the masked
      // netlist) drain the shared queue together, interleaved with every
      // other client's shards.
      const auto tvla_config = core::tvla_config_for(polaris_.config(), design);
      auto before = tvla::submit_fixed_vs_random(
          scheduler_, design.netlist, lib_, tvla_config, {},
          design.name + ":before");
      auto after = tvla::submit_fixed_vs_random(
          scheduler_, outcome.masked, lib_, tvla_config, {},
          design.name + ":after");
      scheduler_.drain();
      reply.before = before.get();
      reply.after = after.get();
    }
    auto body = std::make_shared<const std::vector<std::uint8_t>>(
        encode_mask_reply(reply));
    cache_.put(key, body);
    return body;
  } catch (const std::exception& error) {
    throw ServerError(Status::kServerError, error.what());
  }
}

core::ResultCache::Body Server::serve_score(serialize::Reader& in,
                                            bool& cache_hit) {
  const ScoreRequest request = decode_score_request(in);
  circuits::Design design;
  try {
    design = circuits::load_design(request.design, request.scale);
  } catch (const std::exception& error) {
    throw ServerError(Status::kBadRequest, error.what());
  }
  const std::uint64_t key = combine_all(
      info_.config_fingerprint,
      {core::design_fingerprint(design),
       static_cast<std::uint64_t>(RequestKind::kScore),
       static_cast<std::uint64_t>(request.mode)});
  if (auto cached = cache_.get(key)) {
    cache_hit = true;
    return cached;
  }
  try {
    ScoreReply reply;
    reply.design_name = design.name;
    reply.scores = polaris_.score_gates(design, request.mode);
    auto body = std::make_shared<const std::vector<std::uint8_t>>(
        encode_score_reply(reply));
    cache_.put(key, body);
    return body;
  } catch (const std::exception& error) {
    throw ServerError(Status::kServerError, error.what());
  }
}

}  // namespace polaris::server
