#include "sim/reference.hpp"

#include <algorithm>
#include <stdexcept>

namespace polaris::sim {

using netlist::CellType;
using netlist::GateId;
using netlist::NetId;

ReferenceSimulator::ReferenceSimulator(const netlist::Netlist& netlist,
                                       std::uint64_t seed)
    : netlist_(netlist), rng_(seed) {
  const auto order = netlist.topological_order();  // validates acyclicity
  for (const GateId g : order) {
    const auto& gate = netlist.gate(g);
    switch (gate.type) {
      case CellType::kInput:
        break;  // written by set_input*
      case CellType::kConst0:
        const0_nets_.push_back(gate.output);
        break;
      case CellType::kConst1:
        const1_nets_.push_back(gate.output);
        break;
      case CellType::kRand:
        rand_nets_.push_back(gate.output);
        break;
      case CellType::kDff:
        dff_q_d_.emplace_back(gate.output, gate.inputs[0]);
        break;
      default: {
        Op op;
        op.type = gate.type;
        op.fan_in = static_cast<std::uint32_t>(gate.inputs.size());
        op.input_offset = static_cast<std::uint32_t>(input_nets_.size());
        op.output = gate.output;
        op.gate = g;
        input_nets_.insert(input_nets_.end(), gate.inputs.begin(),
                           gate.inputs.end());
        comb_schedule_.push_back(op);
        break;
      }
    }
  }
  values_.assign(netlist.net_count(), 0);
  previous_.assign(netlist.net_count(), 0);
  dff_state_.assign(dff_q_d_.size(), 0);
}

void ReferenceSimulator::set_input(std::size_t pi_index, std::uint64_t word) {
  values_[netlist_.primary_inputs().at(pi_index)] = word;
}

void ReferenceSimulator::set_inputs_random() {
  for (const NetId net : netlist_.primary_inputs()) values_[net] = rng_();
}

void ReferenceSimulator::set_inputs_mixed(const std::vector<bool>& fixed,
                                          std::uint64_t fixed_mask) {
  const auto& inputs = netlist_.primary_inputs();
  if (fixed.size() != inputs.size()) {
    throw std::invalid_argument("set_inputs_mixed: fixed vector size mismatch");
  }
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const std::uint64_t fixed_word = fixed[i] ? ~0ULL : 0ULL;
    values_[inputs[i]] = (fixed_word & fixed_mask) | (rng_() & ~fixed_mask);
  }
}

void ReferenceSimulator::eval() {
  // Snapshot for toggle computation. The snapshot is taken before sources
  // are refreshed so kRand/DFF/const toggles are visible to the power model;
  // primary inputs were staged into values_ already, so their own toggles
  // read as zero.
  previous_ = values_;

  for (const NetId net : const0_nets_) values_[net] = 0;
  for (const NetId net : const1_nets_) values_[net] = ~0ULL;
  for (const NetId net : rand_nets_) values_[net] = rng_();
  for (std::size_t i = 0; i < dff_q_d_.size(); ++i) {
    values_[dff_q_d_[i].first] = dff_state_[i];
  }

  std::vector<std::uint64_t> operands;
  for (const Op& op : comb_schedule_) {
    const NetId* in = &input_nets_[op.input_offset];
    operands.assign(op.fan_in, 0);
    for (std::uint32_t i = 0; i < op.fan_in; ++i) operands[i] = values_[in[i]];
    values_[op.output] =
        netlist::eval_cell_word(op.type, {operands.data(), op.fan_in});
  }
  ++cycle_;
}

void ReferenceSimulator::latch() {
  for (std::size_t i = 0; i < dff_q_d_.size(); ++i) {
    dff_state_[i] = values_[dff_q_d_[i].second];
  }
}

void ReferenceSimulator::reset(std::uint64_t seed) {
  rng_ = util::Xoshiro256(seed);
  std::fill(values_.begin(), values_.end(), 0);
  std::fill(previous_.begin(), previous_.end(), 0);
  std::fill(dff_state_.begin(), dff_state_.end(), 0);
  cycle_ = 0;
}

std::vector<bool> ReferenceSimulator::eval_single(
    const std::vector<bool>& bits) {
  const auto& inputs = netlist_.primary_inputs();
  if (bits.size() != inputs.size()) {
    throw std::invalid_argument("eval_single: input size mismatch");
  }
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    values_[inputs[i]] = bits[i] ? ~0ULL : 0ULL;  // broadcast, lane 0 read back
  }
  eval();
  std::vector<bool> out;
  out.reserve(netlist_.primary_outputs().size());
  for (const NetId net : netlist_.primary_outputs()) {
    out.push_back((values_[net] & 1ULL) != 0);
  }
  return out;
}

}  // namespace polaris::sim
