#include "sim/compiled.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>

namespace polaris::sim {

using netlist::CellType;
using netlist::GateId;
using netlist::NetId;

namespace {

constexpr std::uint32_t kUnassigned = 0xffffffffU;

void check_arity_or_throw(CellType type, std::size_t fan_in) {
  const netlist::Arity arity = netlist::arity_of(type);
  if (fan_in < arity.min || (arity.max != 0 && fan_in > arity.max)) {
    throw std::invalid_argument(
        "CompiledDesign: cell " + std::string(netlist::to_string(type)) +
        " has invalid fan-in " + std::to_string(fan_in));
  }
}

}  // namespace

CompiledDesign::OpKernel CompiledDesign::select_kernel(CellType type,
                                                       std::size_t fan_in) {
  using K = CompiledDesign::OpKernel;
  switch (type) {
    case CellType::kBuf: return K::kBuf;
    case CellType::kNot: return K::kNot;
    case CellType::kMux: return K::kMux;
    case CellType::kAnd: return fan_in == 2 ? K::kAnd2 : K::kAndN;
    case CellType::kOr: return fan_in == 2 ? K::kOr2 : K::kOrN;
    case CellType::kNand: return fan_in == 2 ? K::kNand2 : K::kNandN;
    case CellType::kNor: return fan_in == 2 ? K::kNor2 : K::kNorN;
    case CellType::kXor: return fan_in == 2 ? K::kXor2 : K::kXorN;
    case CellType::kXnor: return fan_in == 2 ? K::kXnor2 : K::kXnorN;
    default:
      throw std::invalid_argument(
          "CompiledDesign: cell kind not evaluable by the combinational "
          "wave: " +
          std::string(netlist::to_string(type)));
  }
}

CompiledDesign::CompiledDesign(const netlist::Netlist& netlist)
    : netlist_(&netlist) {
  const auto order = netlist.topological_order();  // throws on comb cycles

  slot_of_net_.assign(netlist.net_count(), kUnassigned);
  std::uint32_t next_slot = 0;
  const auto assign = [&](NetId net) {
    if (slot_of_net_[net] == kUnassigned) slot_of_net_[net] = next_slot++;
    return slot_of_net_[net];
  };

  // Slot order: sources first (ascending GateId - for kRand cells this IS
  // the per-cycle RNG draw order, so it must match the reference
  // simulator's source sweep), then DFF q outputs, then combinational
  // outputs in schedule order, then any undriven leftover nets.
  for (GateId g = 0; g < netlist.gate_count(); ++g) {
    const auto& gate = netlist.gate(g);
    switch (gate.type) {
      case CellType::kInput:
        assign(gate.output);
        break;
      case CellType::kConst0:
        const0_slots_.push_back(assign(gate.output));
        break;
      case CellType::kConst1:
        const1_slots_.push_back(assign(gate.output));
        break;
      case CellType::kRand:
        rand_slots_.push_back(assign(gate.output));
        break;
      default:
        break;
    }
  }
  std::vector<std::pair<std::uint32_t, NetId>> dff_q_dnet;  // d resolved below
  for (GateId g = 0; g < netlist.gate_count(); ++g) {
    const auto& gate = netlist.gate(g);
    if (gate.type != CellType::kDff) continue;
    check_arity_or_throw(gate.type, gate.inputs.size());
    dff_q_dnet.emplace_back(assign(gate.output), gate.inputs[0]);
  }

  // Levelize the combinational gates (validating each one), then batch
  // each level by (cell type, fan-in). The map key order - and ascending
  // GateId within each bucket - makes the emitted plan a pure function of
  // the netlist, independent of topological_order()'s pop order.
  std::vector<std::uint32_t> level(netlist.gate_count(), 0);
  std::vector<std::vector<GateId>> by_level;
  for (const GateId g : order) {
    const auto& gate = netlist.gate(g);
    if (!netlist::is_combinational(gate.type)) continue;
    check_arity_or_throw(gate.type, gate.inputs.size());
    (void)select_kernel(gate.type, gate.inputs.size());  // kind evaluable?
    std::uint32_t lvl = 0;
    for (const NetId in : gate.inputs) {
      const GateId driver = netlist.net(in).driver;
      if (netlist::is_combinational(netlist.gate(driver).type)) {
        lvl = std::max(lvl, level[driver] + 1);
      }
    }
    level[g] = lvl;
    if (by_level.size() <= lvl) by_level.resize(lvl + 1);
    by_level[lvl].push_back(g);
  }
  level_count_ = by_level.size();

  for (auto& gates_in_level : by_level) {
    std::map<std::pair<CellType, std::uint32_t>, std::vector<GateId>> buckets;
    std::sort(gates_in_level.begin(), gates_in_level.end());
    for (const GateId g : gates_in_level) {
      const auto& gate = netlist.gate(g);
      buckets[{gate.type, static_cast<std::uint32_t>(gate.inputs.size())}]
          .push_back(g);
    }
    for (const auto& [key, members] : buckets) {
      OpRun run;
      run.kernel = select_kernel(key.first, key.second);
      run.fan_in = key.second;
      run.op_begin = static_cast<std::uint32_t>(op_out_slots_.size());
      run.op_count = static_cast<std::uint32_t>(members.size());
      run.input_base = static_cast<std::uint32_t>(op_input_slots_.size());
      for (const GateId g : members) {
        const auto& gate = netlist.gate(g);
        // Operands live strictly below this level (or are sources/DFF q),
        // so their slots are already assigned.
        for (const NetId in : gate.inputs) {
          op_input_slots_.push_back(slot_of_net_[in]);
        }
        op_out_slots_.push_back(assign(gate.output));
      }
      runs_.push_back(run);
    }
  }

  // Undriven (construction-leftover) nets still deserve stable slots so
  // value(net) stays total.
  for (NetId n = 0; n < netlist.net_count(); ++n) {
    (void)assign(n);
  }

  dff_qd_slots_.reserve(dff_q_dnet.size());
  for (const auto& [q_slot, d_net] : dff_q_dnet) {
    dff_qd_slots_.emplace_back(q_slot, slot_of_net_[d_net]);
  }
  out_slot_of_gate_.resize(netlist.gate_count());
  for (GateId g = 0; g < netlist.gate_count(); ++g) {
    out_slot_of_gate_[g] = slot_of_net_[netlist.gate(g).output];
  }
  pi_slots_.reserve(netlist.primary_inputs().size());
  for (const NetId net : netlist.primary_inputs()) {
    pi_slots_.push_back(slot_of_net_[net]);
  }
  po_slots_.reserve(netlist.primary_outputs().size());
  for (const NetId net : netlist.primary_outputs()) {
    po_slots_.push_back(slot_of_net_[net]);
  }
}

void CompiledDesign::eval_comb(std::uint64_t* values,
                               std::uint64_t* toggles) const {
  for (const OpRun& run : runs_) {
    const std::uint32_t* out = op_out_slots_.data() + run.op_begin;
    const std::uint32_t* in = op_input_slots_.data() + run.input_base;
    const std::size_t n = run.op_count;
    const std::size_t k = run.fan_in;
    switch (run.kernel) {
      case OpKernel::kBuf:
        for (std::size_t i = 0; i < n; ++i) {
          write_slot(values, toggles, out[i], values[in[i]]);
        }
        break;
      case OpKernel::kNot:
        for (std::size_t i = 0; i < n; ++i) {
          write_slot(values, toggles, out[i], ~values[in[i]]);
        }
        break;
      case OpKernel::kMux:
        for (std::size_t i = 0; i < n; ++i) {
          const std::uint64_t sel = values[in[3 * i]];
          write_slot(values, toggles, out[i],
                     (sel & values[in[3 * i + 2]]) |
                         (~sel & values[in[3 * i + 1]]));
        }
        break;
      case OpKernel::kAnd2:
        for (std::size_t i = 0; i < n; ++i) {
          write_slot(values, toggles, out[i],
                     values[in[2 * i]] & values[in[2 * i + 1]]);
        }
        break;
      case OpKernel::kOr2:
        for (std::size_t i = 0; i < n; ++i) {
          write_slot(values, toggles, out[i],
                     values[in[2 * i]] | values[in[2 * i + 1]]);
        }
        break;
      case OpKernel::kNand2:
        for (std::size_t i = 0; i < n; ++i) {
          write_slot(values, toggles, out[i],
                     ~(values[in[2 * i]] & values[in[2 * i + 1]]));
        }
        break;
      case OpKernel::kNor2:
        for (std::size_t i = 0; i < n; ++i) {
          write_slot(values, toggles, out[i],
                     ~(values[in[2 * i]] | values[in[2 * i + 1]]));
        }
        break;
      case OpKernel::kXor2:
        for (std::size_t i = 0; i < n; ++i) {
          write_slot(values, toggles, out[i],
                     values[in[2 * i]] ^ values[in[2 * i + 1]]);
        }
        break;
      case OpKernel::kXnor2:
        for (std::size_t i = 0; i < n; ++i) {
          write_slot(values, toggles, out[i],
                     ~(values[in[2 * i]] ^ values[in[2 * i + 1]]));
        }
        break;
      case OpKernel::kAndN:
      case OpKernel::kNandN:
        for (std::size_t i = 0; i < n; ++i) {
          std::uint64_t acc = ~0ULL;
          for (std::size_t j = 0; j < k; ++j) acc &= values[in[i * k + j]];
          write_slot(values, toggles, out[i],
                     run.kernel == OpKernel::kAndN ? acc : ~acc);
        }
        break;
      case OpKernel::kOrN:
      case OpKernel::kNorN:
        for (std::size_t i = 0; i < n; ++i) {
          std::uint64_t acc = 0;
          for (std::size_t j = 0; j < k; ++j) acc |= values[in[i * k + j]];
          write_slot(values, toggles, out[i],
                     run.kernel == OpKernel::kOrN ? acc : ~acc);
        }
        break;
      case OpKernel::kXorN:
      case OpKernel::kXnorN:
        for (std::size_t i = 0; i < n; ++i) {
          std::uint64_t acc = 0;
          for (std::size_t j = 0; j < k; ++j) acc ^= values[in[i * k + j]];
          write_slot(values, toggles, out[i],
                     run.kernel == OpKernel::kXorN ? acc : ~acc);
        }
        break;
    }
  }
}

CompiledDesignPtr compile(const netlist::Netlist& netlist) {
  return std::make_shared<const CompiledDesign>(netlist);
}

}  // namespace polaris::sim
