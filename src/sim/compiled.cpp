#include "sim/compiled.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>

#include "sim/compiled_kernels.hpp"

namespace polaris::sim {

using netlist::CellType;
using netlist::GateId;
using netlist::NetId;

namespace {

constexpr std::uint32_t kUnassigned = 0xffffffffU;

void check_arity_or_throw(CellType type, std::size_t fan_in) {
  const netlist::Arity arity = netlist::arity_of(type);
  if (fan_in < arity.min || (arity.max != 0 && fan_in > arity.max)) {
    throw std::invalid_argument(
        "CompiledDesign: cell " + std::string(netlist::to_string(type)) +
        " has invalid fan-in " + std::to_string(fan_in));
  }
}

}  // namespace

CompiledDesign::OpKernel CompiledDesign::select_kernel(CellType type,
                                                       std::size_t fan_in) {
  using K = CompiledDesign::OpKernel;
  switch (type) {
    case CellType::kBuf: return K::kBuf;
    case CellType::kNot: return K::kNot;
    case CellType::kMux: return K::kMux;
    case CellType::kAnd: return fan_in == 2 ? K::kAnd2 : K::kAndN;
    case CellType::kOr: return fan_in == 2 ? K::kOr2 : K::kOrN;
    case CellType::kNand: return fan_in == 2 ? K::kNand2 : K::kNandN;
    case CellType::kNor: return fan_in == 2 ? K::kNor2 : K::kNorN;
    case CellType::kXor: return fan_in == 2 ? K::kXor2 : K::kXorN;
    case CellType::kXnor: return fan_in == 2 ? K::kXnor2 : K::kXnorN;
    default:
      throw std::invalid_argument(
          "CompiledDesign: cell kind not evaluable by the combinational "
          "wave: " +
          std::string(netlist::to_string(type)));
  }
}

CompiledDesign::CompiledDesign(const netlist::Netlist& netlist)
    : netlist_(&netlist) {
  const auto order = netlist.topological_order();  // throws on comb cycles

  slot_of_net_.assign(netlist.net_count(), kUnassigned);
  std::uint32_t next_slot = 0;
  const auto assign = [&](NetId net) {
    if (slot_of_net_[net] == kUnassigned) slot_of_net_[net] = next_slot++;
    return slot_of_net_[net];
  };

  // Slot order: sources first (ascending GateId - for kRand cells this IS
  // the per-cycle RNG draw order, so it must match the reference
  // simulator's source sweep), then DFF q outputs, then combinational
  // outputs in schedule order, then any undriven leftover nets.
  for (GateId g = 0; g < netlist.gate_count(); ++g) {
    const auto& gate = netlist.gate(g);
    switch (gate.type) {
      case CellType::kInput:
        assign(gate.output);
        break;
      case CellType::kConst0:
        const0_slots_.push_back(assign(gate.output));
        break;
      case CellType::kConst1:
        const1_slots_.push_back(assign(gate.output));
        break;
      case CellType::kRand:
        rand_slots_.push_back(assign(gate.output));
        break;
      default:
        break;
    }
  }
  std::vector<std::pair<std::uint32_t, NetId>> dff_q_dnet;  // d resolved below
  for (GateId g = 0; g < netlist.gate_count(); ++g) {
    const auto& gate = netlist.gate(g);
    if (gate.type != CellType::kDff) continue;
    check_arity_or_throw(gate.type, gate.inputs.size());
    dff_q_dnet.emplace_back(assign(gate.output), gate.inputs[0]);
  }

  // Levelize the combinational gates (validating each one), then batch
  // each level by (cell type, fan-in). The map key order - and ascending
  // GateId within each bucket - makes the emitted plan a pure function of
  // the netlist, independent of topological_order()'s pop order.
  std::vector<std::uint32_t> level(netlist.gate_count(), 0);
  std::vector<std::vector<GateId>> by_level;
  for (const GateId g : order) {
    const auto& gate = netlist.gate(g);
    if (!netlist::is_combinational(gate.type)) continue;
    check_arity_or_throw(gate.type, gate.inputs.size());
    (void)select_kernel(gate.type, gate.inputs.size());  // kind evaluable?
    std::uint32_t lvl = 0;
    for (const NetId in : gate.inputs) {
      const GateId driver = netlist.net(in).driver;
      if (netlist::is_combinational(netlist.gate(driver).type)) {
        lvl = std::max(lvl, level[driver] + 1);
      }
    }
    level[g] = lvl;
    if (by_level.size() <= lvl) by_level.resize(lvl + 1);
    by_level[lvl].push_back(g);
  }
  level_count_ = by_level.size();

  for (auto& gates_in_level : by_level) {
    std::map<std::pair<CellType, std::uint32_t>, std::vector<GateId>> buckets;
    std::sort(gates_in_level.begin(), gates_in_level.end());
    for (const GateId g : gates_in_level) {
      const auto& gate = netlist.gate(g);
      buckets[{gate.type, static_cast<std::uint32_t>(gate.inputs.size())}]
          .push_back(g);
    }
    for (const auto& [key, members] : buckets) {
      OpRun run;
      run.kernel = select_kernel(key.first, key.second);
      run.fan_in = key.second;
      run.op_begin = static_cast<std::uint32_t>(op_out_slots_.size());
      run.op_count = static_cast<std::uint32_t>(members.size());
      run.input_base = static_cast<std::uint32_t>(op_input_slots_.size());
      for (const GateId g : members) {
        const auto& gate = netlist.gate(g);
        // Operands live strictly below this level (or are sources/DFF q),
        // so their slots are already assigned.
        for (const NetId in : gate.inputs) {
          op_input_slots_.push_back(slot_of_net_[in]);
        }
        op_out_slots_.push_back(assign(gate.output));
      }
      runs_.push_back(run);
    }
  }

  // Prelude fusion: a kBuf/kNot run whose outputs are all consumed by the
  // run that immediately follows it is folded into that run as a prelude.
  // The folded ops still execute first and still write their value/toggle
  // slots, inside the consumer's dispatch - the per-slot write order is
  // exactly the unfused order, so the result is bit-identical and the
  // fusion is purely a dispatch-count optimization. Runs that already
  // received a prelude are not folded further (no chaining).
  {
    std::vector<std::uint32_t> consumer_count(next_slot, 0);
    for (const std::uint32_t s : op_input_slots_) ++consumer_count[s];
    std::vector<std::uint32_t> next_count(next_slot, 0);
    std::vector<std::uint32_t> touched;
    std::vector<OpRun> kept;
    kept.reserve(runs_.size());
    for (std::size_t i = 0; i < runs_.size(); ++i) {
      const OpRun& run = runs_[i];
      const bool candidate =
          (run.kernel == OpKernel::kBuf || run.kernel == OpKernel::kNot) &&
          run.prelude_op_count == 0 && run.op_count > 0 &&
          i + 1 < runs_.size();
      bool fold = false;
      if (candidate) {
        const OpRun& next = runs_[i + 1];
        const std::uint32_t* next_in = op_input_slots_.data() + next.input_base;
        const std::size_t next_inputs =
            static_cast<std::size_t>(next.op_count) * next.fan_in;
        for (std::size_t t = 0; t < next_inputs; ++t) {
          if (next_count[next_in[t]]++ == 0) touched.push_back(next_in[t]);
        }
        fold = true;
        for (std::uint32_t o = 0; o < run.op_count; ++o) {
          const std::uint32_t s = op_out_slots_[run.op_begin + o];
          if (consumer_count[s] == 0 || next_count[s] != consumer_count[s]) {
            fold = false;
            break;
          }
        }
        for (const std::uint32_t s : touched) next_count[s] = 0;
        touched.clear();
      }
      if (fold) {
        OpRun& next = runs_[i + 1];
        next.prelude_op_begin = run.op_begin;
        next.prelude_op_count = run.op_count;
        next.prelude_input_base = run.input_base;
        next.prelude_invert = run.kernel == OpKernel::kNot;
        ++fused_run_count_;
      } else {
        kept.push_back(run);
      }
    }
    runs_ = std::move(kept);
  }

  // Undriven (construction-leftover) nets still deserve stable slots so
  // value(net) stays total.
  for (NetId n = 0; n < netlist.net_count(); ++n) {
    (void)assign(n);
  }

  dff_qd_slots_.reserve(dff_q_dnet.size());
  for (const auto& [q_slot, d_net] : dff_q_dnet) {
    dff_qd_slots_.emplace_back(q_slot, slot_of_net_[d_net]);
  }
  out_slot_of_gate_.resize(netlist.gate_count());
  for (GateId g = 0; g < netlist.gate_count(); ++g) {
    out_slot_of_gate_[g] = slot_of_net_[netlist.gate(g).output];
  }
  pi_slots_.reserve(netlist.primary_inputs().size());
  for (const NetId net : netlist.primary_inputs()) {
    pi_slots_.push_back(slot_of_net_[net]);
  }
  po_slots_.reserve(netlist.primary_outputs().size());
  for (const NetId net : netlist.primary_outputs()) {
    po_slots_.push_back(slot_of_net_[net]);
  }
}

void CompiledDesign::eval_comb(std::uint64_t* values, std::uint64_t* toggles,
                               std::size_t lane_words,
                               bool record_toggles) const {
  detail::resolve_eval_fn(lane_words, record_toggles)(*this, values, toggles);
}

namespace detail {

// Portable kernel table: the shared template (compiled_kernels.hpp) over
// unrolled-uint64 blocks, one instantiation per valid width and toggle
// mode. The AVX2 entries live in compiled_avx2.cpp, the only TU built
// with -mavx2.
EvalFn portable_kernel(std::size_t lane_words, bool record_toggles) noexcept {
  if (record_toggles) {
    switch (lane_words) {
      case 1: return &KernelAccess::eval<U64Block<1>, true>;
      case 2: return &KernelAccess::eval<U64Block<2>, true>;
      case 4: return &KernelAccess::eval<U64Block<4>, true>;
      case 8: return &KernelAccess::eval<U64Block<8>, true>;
      default: return nullptr;
    }
  }
  switch (lane_words) {
    case 1: return &KernelAccess::eval<U64Block<1>, false>;
    case 2: return &KernelAccess::eval<U64Block<2>, false>;
    case 4: return &KernelAccess::eval<U64Block<4>, false>;
    case 8: return &KernelAccess::eval<U64Block<8>, false>;
    default: return nullptr;
  }
}

}  // namespace detail

CompiledDesignPtr compile(const netlist::Netlist& netlist) {
  return std::make_shared<const CompiledDesign>(netlist);
}

}  // namespace polaris::sim
