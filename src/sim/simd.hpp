// Runtime SIMD dispatch control for the compiled simulation kernel.
//
// The kernel (compiled.hpp) evaluates K-word *lane blocks*: every value
// slot owns K contiguous 64-bit words, so one op processes 64*K traces.
// Two implementations of the same width-generic kernel template exist:
//  * a portable unrolled-uint64 path, always available, for every valid
//    width (1/2/4/8 words);
//  * an AVX2 path (__m256i, one vector per 4 words) compiled in its own
//    -mavx2 translation unit, eligible for widths that fill whole 256-bit
//    vectors (4 and 8 words).
// Which one runs is decided here, once per eval dispatch:
//  * kAuto (the default): AVX2 whenever the CPU reports it (CPUID via
//    __builtin_cpu_supports) and the build contains the AVX2 unit;
//  * POLARIS_SIMD=off|0|portable|none in the environment flips the
//    process default to kPortable (the CI portable-fallback leg);
//  * set_simd_mode() overrides both - the property tests force kPortable
//    and kAvx2 in turn and assert bit-identical words.
// Sub-vector widths (1 and 2 words) always take the portable path;
// simd_name() reports the path a given width would actually use.
#pragma once

#include <cstddef>

namespace polaris::sim {

/// Widest supported lane block: 8 words = 512 traces per pass.
inline constexpr std::size_t kMaxLaneWords = 8;

enum class SimdMode { kAuto, kPortable, kAvx2 };

/// Lane-block widths the kernel tables cover: 1, 2, 4, or 8 words.
[[nodiscard]] constexpr bool valid_lane_words(std::size_t words) noexcept {
  return words == 1 || words == 2 || words == 4 || words == 8;
}

/// CPU reports AVX2 (CPUID; cached). False on non-x86 builds.
[[nodiscard]] bool avx2_supported() noexcept;
/// The build contains the -mavx2 kernel translation unit.
[[nodiscard]] bool avx2_built() noexcept;

/// Current process-wide mode (initially kAuto, or kPortable when the
/// POLARIS_SIMD environment variable says off|0|portable|none|false).
[[nodiscard]] SimdMode simd_mode() noexcept;
/// Overrides the mode. Throws std::runtime_error for kAvx2 when the CPU or
/// the build lacks AVX2 (callers probe avx2_supported() && avx2_built()).
void set_simd_mode(SimdMode mode);

/// True when a kernel dispatch at this width takes the AVX2 path under the
/// current mode.
[[nodiscard]] bool simd_active(std::size_t lane_words) noexcept;
/// "avx2" or "portable" - the path simd_active() resolves to. Bench probes
/// record this next to traces/sec.
[[nodiscard]] const char* simd_name(std::size_t lane_words) noexcept;

/// Default lane-block width for campaigns that leave lane_words = 0:
/// POLARIS_SIM_WORDS when set (snapped down to the nearest valid width),
/// otherwise 4 (256 traces per pass).
[[nodiscard]] std::size_t default_lane_words() noexcept;

}  // namespace polaris::sim
