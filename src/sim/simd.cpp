#include "sim/simd.hpp"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "sim/compiled_kernels.hpp"

namespace polaris::sim {

namespace {

bool env_disables_simd() {
  const char* raw = std::getenv("POLARIS_SIMD");
  if (raw == nullptr) return false;
  std::string value(raw);
  for (char& c : value) c = static_cast<char>(std::tolower(c));
  return value == "off" || value == "0" || value == "portable" ||
         value == "none" || value == "false";
}

std::atomic<SimdMode>& mode_slot() {
  static std::atomic<SimdMode> mode{env_disables_simd() ? SimdMode::kPortable
                                                        : SimdMode::kAuto};
  return mode;
}

}  // namespace

bool avx2_supported() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  static const bool supported = __builtin_cpu_supports("avx2") != 0;
  return supported;
#else
  return false;
#endif
}

bool avx2_built() noexcept { return detail::avx2_built_impl(); }

SimdMode simd_mode() noexcept {
  return mode_slot().load(std::memory_order_relaxed);
}

void set_simd_mode(SimdMode mode) {
  if (mode == SimdMode::kAvx2 && !(avx2_supported() && avx2_built())) {
    throw std::runtime_error(
        "set_simd_mode: AVX2 unavailable on this CPU or build");
  }
  mode_slot().store(mode, std::memory_order_relaxed);
}

bool simd_active(std::size_t lane_words) noexcept {
  if (lane_words != 4 && lane_words != 8) return false;  // sub-vector widths
  switch (simd_mode()) {
    case SimdMode::kPortable: return false;
    case SimdMode::kAvx2: return true;
    case SimdMode::kAuto: return avx2_supported() && avx2_built();
  }
  return false;
}

const char* simd_name(std::size_t lane_words) noexcept {
  return simd_active(lane_words) ? "avx2" : "portable";
}

std::size_t default_lane_words() noexcept {
  static const std::size_t words = [] {
    constexpr std::size_t kDefault = 4;
    const char* raw = std::getenv("POLARIS_SIM_WORDS");
    if (raw == nullptr || *raw == '\0') return kDefault;
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(raw, &end, 10);
    if (end == raw || parsed == 0) return kDefault;
    // Snap down to the nearest valid width.
    if (parsed >= 8) return std::size_t{8};
    if (parsed >= 4) return std::size_t{4};
    if (parsed >= 2) return std::size_t{2};
    return std::size_t{1};
  }();
  return words;
}

namespace detail {

EvalFn resolve_eval_fn(std::size_t lane_words, bool record_toggles) noexcept {
  if (simd_active(lane_words)) {
    const EvalFn fn = avx2_kernel(lane_words, record_toggles);
    if (fn != nullptr) return fn;
  }
  return portable_kernel(lane_words, record_toggles);
}

}  // namespace detail

}  // namespace polaris::sim
