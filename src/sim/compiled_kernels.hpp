// Internal width-generic kernel bodies for CompiledDesign::eval_comb.
//
// The combinational wave is written ONCE as a template over a lane-block
// type and instantiated per (width, instruction set): compiled.cpp stamps
// out the portable U64Block entries for every valid width, and
// compiled_avx2.cpp (built with -mavx2) stamps out __m256i entries for the
// widths that fill whole 256-bit vectors. A block type provides
//   kWords, load/store, zeros/ones, and the bitwise operators & | ^ ~
// and nothing else - the kernel bodies, the prelude execution, and the
// write-time toggle update are identical across instantiations, which is
// what makes "forced portable vs forced AVX2 produce identical words" a
// property of construction rather than of testing luck.
//
// This header is internal to src/sim: nothing outside the kernel
// translation units should include it.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/compiled.hpp"

namespace polaris::sim::detail {

/// One fully-specialized evaluator: runs the whole combinational wave over
/// blocked values/toggles arrays (slot i owns words [i*W, (i+1)*W)).
using EvalFn = void (*)(const CompiledDesign&, std::uint64_t*, std::uint64_t*);

/// Portable lane block: W unrolled uint64 words. The compiler's
/// autovectorizer may still widen these loops, but correctness never
/// depends on it - this is the fallback every width supports.
template <std::size_t W>
struct U64Block {
  static constexpr std::size_t kWords = W;
  std::uint64_t w[W];

  static U64Block load(const std::uint64_t* p) noexcept {
    U64Block b;
    for (std::size_t i = 0; i < W; ++i) b.w[i] = p[i];
    return b;
  }
  void store(std::uint64_t* p) const noexcept {
    for (std::size_t i = 0; i < W; ++i) p[i] = w[i];
  }
  static U64Block zeros() noexcept {
    U64Block b;
    for (std::size_t i = 0; i < W; ++i) b.w[i] = 0;
    return b;
  }
  static U64Block ones() noexcept {
    U64Block b;
    for (std::size_t i = 0; i < W; ++i) b.w[i] = ~0ULL;
    return b;
  }
  friend U64Block operator&(U64Block a, U64Block b) noexcept {
    for (std::size_t i = 0; i < W; ++i) a.w[i] &= b.w[i];
    return a;
  }
  friend U64Block operator|(U64Block a, U64Block b) noexcept {
    for (std::size_t i = 0; i < W; ++i) a.w[i] |= b.w[i];
    return a;
  }
  friend U64Block operator^(U64Block a, U64Block b) noexcept {
    for (std::size_t i = 0; i < W; ++i) a.w[i] ^= b.w[i];
    return a;
  }
  friend U64Block operator~(U64Block a) noexcept {
    for (std::size_t i = 0; i < W; ++i) a.w[i] = ~a.w[i];
    return a;
  }
};

/// Friend gateway into CompiledDesign's private plan arrays: the kernel
/// template needs the run list and slot tables but nothing else does.
///
/// WithToggles=false skips the toggle computation and store entirely - the
/// value wave is identical, only the side channel recording is elided.
/// Used for "scaffolding" evals whose toggles nothing ever reads (e.g. the
/// base-state pass of a fixed-vs-random trace pair, where only the
/// base->target transition is sampled and the target pass recomputes every
/// toggle from the values array). Each elided write saves a load, an XOR,
/// and a store per op output.
struct KernelAccess {
  template <class Block, bool WithToggles = true>
  static void eval(const CompiledDesign& plan, std::uint64_t* values,
                   [[maybe_unused]] std::uint64_t* toggles) {
    constexpr std::size_t W = Block::kWords;
    const auto load = [&](std::uint32_t slot) {
      return Block::load(values + static_cast<std::size_t>(slot) * W);
    };
    // Blocked form of write_slot: each slot is written at most once per
    // eval, so old XOR new is the per-word toggle.
    const auto write = [&](std::uint32_t slot, Block v) {
      const std::size_t off = static_cast<std::size_t>(slot) * W;
      if constexpr (WithToggles) {
        (Block::load(values + off) ^ v).store(toggles + off);
      }
      v.store(values + off);
    };
    using K = CompiledDesign::OpKernel;

    for (const auto& run : plan.runs_) {
      // Fused buf/not prelude: the folded run's ops execute first, inside
      // this dispatch, in their original order - same writes, same order,
      // one switch fewer.
      if (run.prelude_op_count != 0) {
        const std::uint32_t* pout =
            plan.op_out_slots_.data() + run.prelude_op_begin;
        const std::uint32_t* pin =
            plan.op_input_slots_.data() + run.prelude_input_base;
        if (run.prelude_invert) {
          for (std::size_t i = 0; i < run.prelude_op_count; ++i) {
            write(pout[i], ~load(pin[i]));
          }
        } else {
          for (std::size_t i = 0; i < run.prelude_op_count; ++i) {
            write(pout[i], load(pin[i]));
          }
        }
      }

      const std::uint32_t* out = plan.op_out_slots_.data() + run.op_begin;
      const std::uint32_t* in = plan.op_input_slots_.data() + run.input_base;
      const std::size_t n = run.op_count;
      const std::size_t k = run.fan_in;
      switch (run.kernel) {
        case K::kBuf:
          for (std::size_t i = 0; i < n; ++i) write(out[i], load(in[i]));
          break;
        case K::kNot:
          for (std::size_t i = 0; i < n; ++i) write(out[i], ~load(in[i]));
          break;
        case K::kMux:
          for (std::size_t i = 0; i < n; ++i) {
            const Block sel = load(in[3 * i]);
            write(out[i], (sel & load(in[3 * i + 2])) |
                              (~sel & load(in[3 * i + 1])));
          }
          break;
        case K::kAnd2:
          for (std::size_t i = 0; i < n; ++i) {
            write(out[i], load(in[2 * i]) & load(in[2 * i + 1]));
          }
          break;
        case K::kOr2:
          for (std::size_t i = 0; i < n; ++i) {
            write(out[i], load(in[2 * i]) | load(in[2 * i + 1]));
          }
          break;
        case K::kNand2:
          for (std::size_t i = 0; i < n; ++i) {
            write(out[i], ~(load(in[2 * i]) & load(in[2 * i + 1])));
          }
          break;
        case K::kNor2:
          for (std::size_t i = 0; i < n; ++i) {
            write(out[i], ~(load(in[2 * i]) | load(in[2 * i + 1])));
          }
          break;
        case K::kXor2:
          for (std::size_t i = 0; i < n; ++i) {
            write(out[i], load(in[2 * i]) ^ load(in[2 * i + 1]));
          }
          break;
        case K::kXnor2:
          for (std::size_t i = 0; i < n; ++i) {
            write(out[i], ~(load(in[2 * i]) ^ load(in[2 * i + 1])));
          }
          break;
        case K::kAndN:
        case K::kNandN:
          for (std::size_t i = 0; i < n; ++i) {
            Block acc = Block::ones();
            for (std::size_t j = 0; j < k; ++j) acc = acc & load(in[i * k + j]);
            write(out[i], run.kernel == K::kAndN ? acc : ~acc);
          }
          break;
        case K::kOrN:
        case K::kNorN:
          for (std::size_t i = 0; i < n; ++i) {
            Block acc = Block::zeros();
            for (std::size_t j = 0; j < k; ++j) acc = acc | load(in[i * k + j]);
            write(out[i], run.kernel == K::kOrN ? acc : ~acc);
          }
          break;
        case K::kXorN:
        case K::kXnorN:
          for (std::size_t i = 0; i < n; ++i) {
            Block acc = Block::zeros();
            for (std::size_t j = 0; j < k; ++j) acc = acc ^ load(in[i * k + j]);
            write(out[i], run.kernel == K::kXorN ? acc : ~acc);
          }
          break;
      }
    }
  }
};

/// Portable evaluator for a width; nullptr for invalid widths.
/// `record_toggles=false` selects the toggle-eliding instantiation.
[[nodiscard]] EvalFn portable_kernel(std::size_t lane_words,
                                     bool record_toggles) noexcept;
/// AVX2 evaluator for a width; nullptr when the build lacks the -mavx2
/// unit or the width has no vector entry (1- and 2-word blocks).
[[nodiscard]] EvalFn avx2_kernel(std::size_t lane_words,
                                 bool record_toggles) noexcept;
[[nodiscard]] bool avx2_built_impl() noexcept;
/// Applies the SimdMode / CPUID policy (simd.hpp) to pick the evaluator
/// for a dispatch at this width. Never returns nullptr for valid widths.
[[nodiscard]] EvalFn resolve_eval_fn(std::size_t lane_words,
                                     bool record_toggles) noexcept;

}  // namespace polaris::sim::detail
