// Reference gate-by-gate simulator: the pre-compiled-kernel interpreter,
// kept verbatim as the oracle the property tests (tests/test_compiled.cpp)
// compare the compiled kernel against.
//
// Semantics are identical to sim::Simulator by contract: same topological
// schedule source, same per-eval source refresh order (constants, kRand in
// ascending gate order, DFF state), same toggle definition (value XOR
// value-at-previous-eval, primary-input toggles read 0 after eval). It
// evaluates one gate at a time through the eval_cell_word switch and takes
// a full previous_ = values_ snapshot per cycle - slow, simple, and easy
// to audit, which is exactly what an oracle should be.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace polaris::sim {

class ReferenceSimulator {
 public:
  explicit ReferenceSimulator(const netlist::Netlist& netlist,
                              std::uint64_t seed = 0x51313ab1e5eedULL);

  [[nodiscard]] const netlist::Netlist& design() const { return netlist_; }

  void set_input(std::size_t pi_index, std::uint64_t word);
  void set_inputs_random();
  void set_inputs_mixed(const std::vector<bool>& fixed, std::uint64_t fixed_mask);

  void eval();
  void latch();
  void reset(std::uint64_t seed);
  void reseed(std::uint64_t seed) { rng_ = util::Xoshiro256(seed); }

  [[nodiscard]] std::uint64_t value(netlist::NetId net) const {
    return values_[net];
  }
  [[nodiscard]] std::uint64_t toggles(netlist::GateId gate) const {
    const netlist::NetId out = netlist_.gate(gate).output;
    return values_[out] ^ previous_[out];
  }

  [[nodiscard]] std::vector<bool> eval_single(const std::vector<bool>& bits);

  [[nodiscard]] std::uint64_t cycle() const { return cycle_; }

 private:
  struct Op {
    netlist::CellType type;
    std::uint32_t fan_in;
    std::uint32_t input_offset;  // into input_nets_
    netlist::NetId output;
    netlist::GateId gate;
  };

  const netlist::Netlist& netlist_;
  util::Xoshiro256 rng_;
  std::vector<Op> comb_schedule_;       // combinational gates, topo order
  std::vector<netlist::NetId> input_nets_;  // flattened operand lists
  std::vector<netlist::NetId> const0_nets_, const1_nets_, rand_nets_;
  std::vector<std::pair<netlist::NetId, netlist::NetId>> dff_q_d_;  // (q, d)
  std::vector<std::uint64_t> values_;
  std::vector<std::uint64_t> previous_;
  std::vector<std::uint64_t> dff_state_;
  std::uint64_t cycle_ = 0;
};

}  // namespace polaris::sim
