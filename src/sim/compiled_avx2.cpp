// AVX2 instantiations of the shared kernel template (compiled_kernels.hpp).
//
// This is the only translation unit built with -mavx2 (CMake sets the flag
// per-source), so __m256i codegen never leaks into code that runs before
// the CPUID dispatch check. On builds without AVX2 support the stubs below
// report "not built" and every dispatch falls back to the portable table.
#include "sim/compiled_kernels.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace polaris::sim::detail {

namespace {

/// V 256-bit vectors = 4*V lane words. V=1 covers the default 4-word
/// block (256 traces); V=2 the widest 8-word block (512 traces).
template <int V>
struct Avx2Block {
  static constexpr std::size_t kWords = static_cast<std::size_t>(V) * 4;
  __m256i v[V];

  static Avx2Block load(const std::uint64_t* p) noexcept {
    Avx2Block b;
    for (int i = 0; i < V; ++i) {
      b.v[i] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p) + i);
    }
    return b;
  }
  void store(std::uint64_t* p) const noexcept {
    for (int i = 0; i < V; ++i) {
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(p) + i, v[i]);
    }
  }
  static Avx2Block zeros() noexcept {
    Avx2Block b;
    for (int i = 0; i < V; ++i) b.v[i] = _mm256_setzero_si256();
    return b;
  }
  static Avx2Block ones() noexcept {
    Avx2Block b;
    for (int i = 0; i < V; ++i) b.v[i] = _mm256_set1_epi64x(-1);
    return b;
  }
  friend Avx2Block operator&(Avx2Block a, Avx2Block b) noexcept {
    for (int i = 0; i < V; ++i) a.v[i] = _mm256_and_si256(a.v[i], b.v[i]);
    return a;
  }
  friend Avx2Block operator|(Avx2Block a, Avx2Block b) noexcept {
    for (int i = 0; i < V; ++i) a.v[i] = _mm256_or_si256(a.v[i], b.v[i]);
    return a;
  }
  friend Avx2Block operator^(Avx2Block a, Avx2Block b) noexcept {
    for (int i = 0; i < V; ++i) a.v[i] = _mm256_xor_si256(a.v[i], b.v[i]);
    return a;
  }
  friend Avx2Block operator~(Avx2Block a) noexcept {
    const __m256i all = _mm256_set1_epi64x(-1);
    for (int i = 0; i < V; ++i) a.v[i] = _mm256_xor_si256(a.v[i], all);
    return a;
  }
};

}  // namespace

EvalFn avx2_kernel(std::size_t lane_words, bool record_toggles) noexcept {
  if (record_toggles) {
    switch (lane_words) {
      case 4: return &KernelAccess::eval<Avx2Block<1>, true>;
      case 8: return &KernelAccess::eval<Avx2Block<2>, true>;
      default: return nullptr;  // sub-vector widths stay portable
    }
  }
  switch (lane_words) {
    case 4: return &KernelAccess::eval<Avx2Block<1>, false>;
    case 8: return &KernelAccess::eval<Avx2Block<2>, false>;
    default: return nullptr;
  }
}

bool avx2_built_impl() noexcept { return true; }

}  // namespace polaris::sim::detail

#else  // !defined(__AVX2__)

namespace polaris::sim::detail {

EvalFn avx2_kernel(std::size_t, bool) noexcept { return nullptr; }
bool avx2_built_impl() noexcept { return false; }

}  // namespace polaris::sim::detail

#endif
