#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace polaris::sim {

using netlist::CellType;
using netlist::NetId;

Simulator::Simulator(const netlist::Netlist& netlist, std::uint64_t seed,
                     std::size_t lane_words)
    : Simulator(compile(netlist), seed, lane_words) {}

Simulator::Simulator(CompiledDesignPtr compiled, std::uint64_t seed,
                     std::size_t lane_words)
    : compiled_(std::move(compiled)), lane_words_(lane_words) {
  if (!valid_lane_words(lane_words)) {
    throw std::invalid_argument("Simulator: lane_words must be 1, 2, 4, or 8");
  }
  rngs_.reserve(lane_words_);
  for (std::size_t w = 0; w < lane_words_; ++w) {
    rngs_.emplace_back(word_seed(seed, w));
  }
  values_.assign(compiled_->slot_count() * lane_words_, 0);
  toggles_.assign(compiled_->slot_count() * lane_words_, 0);
  dff_state_.assign(compiled_->dff_count() * lane_words_, 0);
}

std::uint64_t Simulator::word_seed(std::uint64_t seed,
                                   std::size_t word) noexcept {
  if (word == 0) return seed;  // 1-word simulators keep the legacy stream
  std::uint64_t z =
      seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(word);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void Simulator::set_input(std::size_t pi_index, std::uint64_t word) {
  values_[static_cast<std::size_t>(compiled_->pi_slots_.at(pi_index)) *
          lane_words_] = word;
}

void Simulator::set_input_word(std::size_t pi_index, std::size_t word_index,
                               std::uint64_t word) {
  values_[static_cast<std::size_t>(compiled_->pi_slots_.at(pi_index)) *
              lane_words_ +
          word_index] = word;
}

void Simulator::set_input_net(NetId net, std::uint64_t word) {
  const auto& netlist = compiled_->design();
  if (netlist.gate(netlist.net(net).driver).type != CellType::kInput) {
    throw std::invalid_argument("set_input_net: not a primary-input net");
  }
  values_[static_cast<std::size_t>(compiled_->slot(net)) * lane_words_] = word;
}

void Simulator::set_inputs_random() {
  // Input-ascending draws per stream, matching the single-word order.
  for (const std::uint32_t slot : compiled_->pi_slots_) {
    const std::size_t base = static_cast<std::size_t>(slot) * lane_words_;
    for (std::size_t w = 0; w < lane_words_; ++w) {
      values_[base + w] = rngs_[w]();
    }
  }
}

void Simulator::set_inputs_mixed(const std::vector<bool>& fixed,
                                 std::uint64_t fixed_mask) {
  const auto& slots = compiled_->pi_slots_;
  if (fixed.size() != slots.size()) {
    throw std::invalid_argument("set_inputs_mixed: fixed vector size mismatch");
  }
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const std::uint64_t fixed_word = fixed[i] ? ~0ULL : 0ULL;
    const std::size_t base = static_cast<std::size_t>(slots[i]) * lane_words_;
    for (std::size_t w = 0; w < lane_words_; ++w) {
      values_[base + w] =
          (fixed_word & fixed_mask) | (rngs_[w]() & ~fixed_mask);
    }
  }
}

void Simulator::eval(bool record_toggles) {
  // Source refresh, then the compiled combinational wave over the full
  // lane block. Toggles are recorded as each word is written;
  // primary-input slots were staged by set_input* outside eval(), so
  // their toggles stay 0 (PI pad power is excluded by the tech library
  // anyway). kRand refresh draws slot-ascending per word stream - the
  // same per-stream order the reference simulator's source sweep uses.
  const CompiledDesign& plan = *compiled_;
  const std::size_t K = lane_words_;

  for (const std::uint32_t slot : plan.const0_slots_) {
    const std::size_t base = static_cast<std::size_t>(slot) * K;
    for (std::size_t w = 0; w < K; ++w) write_word(base + w, 0);
  }
  for (const std::uint32_t slot : plan.const1_slots_) {
    const std::size_t base = static_cast<std::size_t>(slot) * K;
    for (std::size_t w = 0; w < K; ++w) write_word(base + w, ~0ULL);
  }
  for (const std::uint32_t slot : plan.rand_slots_) {
    const std::size_t base = static_cast<std::size_t>(slot) * K;
    for (std::size_t w = 0; w < K; ++w) write_word(base + w, rngs_[w]());
  }
  for (std::size_t i = 0; i < plan.dff_qd_slots_.size(); ++i) {
    const std::size_t base =
        static_cast<std::size_t>(plan.dff_qd_slots_[i].first) * K;
    for (std::size_t w = 0; w < K; ++w) {
      write_word(base + w, dff_state_[i * K + w]);
    }
  }
  plan.eval_comb(values_.data(), toggles_.data(), K, record_toggles);
  ++cycle_;
}

void Simulator::latch() {
  const std::size_t K = lane_words_;
  for (std::size_t i = 0; i < compiled_->dff_qd_slots_.size(); ++i) {
    const std::size_t d_base =
        static_cast<std::size_t>(compiled_->dff_qd_slots_[i].second) * K;
    for (std::size_t w = 0; w < K; ++w) {
      dff_state_[i * K + w] = values_[d_base + w];
    }
  }
}

void Simulator::reset(std::uint64_t seed) {
  reseed(seed);
  std::fill(values_.begin(), values_.end(), 0);
  std::fill(toggles_.begin(), toggles_.end(), 0);
  std::fill(dff_state_.begin(), dff_state_.end(), 0);
  cycle_ = 0;
}

void Simulator::reseed(std::uint64_t seed) {
  for (std::size_t w = 0; w < lane_words_; ++w) {
    rngs_[w] = util::Xoshiro256(word_seed(seed, w));
  }
}

void Simulator::reseed_word(std::size_t word_index, std::uint64_t seed) {
  rngs_[word_index] = util::Xoshiro256(seed);
}

std::vector<bool> Simulator::eval_single(const std::vector<bool>& bits) {
  const auto& slots = compiled_->pi_slots_;
  if (bits.size() != slots.size()) {
    throw std::invalid_argument("eval_single: input size mismatch");
  }
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const std::uint64_t word = bits[i] ? ~0ULL : 0ULL;  // broadcast, lane 0
    const std::size_t base = static_cast<std::size_t>(slots[i]) * lane_words_;
    for (std::size_t w = 0; w < lane_words_; ++w) values_[base + w] = word;
  }
  eval();
  std::vector<bool> out;
  out.reserve(compiled_->po_slots_.size());
  for (const std::uint32_t slot : compiled_->po_slots_) {
    out.push_back(
        (values_[static_cast<std::size_t>(slot) * lane_words_] & 1ULL) != 0);
  }
  return out;
}

}  // namespace polaris::sim
