#include "sim/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace polaris::sim {

using netlist::CellType;
using netlist::NetId;

Simulator::Simulator(const netlist::Netlist& netlist, std::uint64_t seed)
    : Simulator(compile(netlist), seed) {}

Simulator::Simulator(CompiledDesignPtr compiled, std::uint64_t seed)
    : compiled_(std::move(compiled)), rng_(seed) {
  values_.assign(compiled_->slot_count(), 0);
  toggles_.assign(compiled_->slot_count(), 0);
  dff_state_.assign(compiled_->dff_count(), 0);
}

void Simulator::set_input(std::size_t pi_index, std::uint64_t word) {
  values_[compiled_->pi_slots_.at(pi_index)] = word;
}

void Simulator::set_input_net(NetId net, std::uint64_t word) {
  const auto& netlist = compiled_->design();
  if (netlist.gate(netlist.net(net).driver).type != CellType::kInput) {
    throw std::invalid_argument("set_input_net: not a primary-input net");
  }
  values_[compiled_->slot(net)] = word;
}

void Simulator::set_inputs_random() {
  for (const std::uint32_t slot : compiled_->pi_slots_) values_[slot] = rng_();
}

void Simulator::set_inputs_mixed(const std::vector<bool>& fixed,
                                 std::uint64_t fixed_mask) {
  const auto& slots = compiled_->pi_slots_;
  if (fixed.size() != slots.size()) {
    throw std::invalid_argument("set_inputs_mixed: fixed vector size mismatch");
  }
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const std::uint64_t fixed_word = fixed[i] ? ~0ULL : 0ULL;
    values_[slots[i]] = (fixed_word & fixed_mask) | (rng_() & ~fixed_mask);
  }
}

void Simulator::eval() {
  // Source refresh, then the compiled combinational wave. Toggles are
  // recorded as each slot is written; primary-input slots were staged by
  // set_input* outside eval(), so their toggles stay 0 (PI pad power is
  // excluded by the tech library anyway).
  std::uint64_t* values = values_.data();
  std::uint64_t* toggles = toggles_.data();
  const CompiledDesign& plan = *compiled_;

  for (const std::uint32_t slot : plan.const0_slots_) {
    write_slot(values, toggles, slot, 0);
  }
  for (const std::uint32_t slot : plan.const1_slots_) {
    write_slot(values, toggles, slot, ~0ULL);
  }
  for (const std::uint32_t slot : plan.rand_slots_) {
    write_slot(values, toggles, slot, rng_());
  }
  for (std::size_t i = 0; i < plan.dff_qd_slots_.size(); ++i) {
    write_slot(values, toggles, plan.dff_qd_slots_[i].first, dff_state_[i]);
  }
  plan.eval_comb(values, toggles);
  ++cycle_;
}

void Simulator::latch() {
  for (std::size_t i = 0; i < compiled_->dff_qd_slots_.size(); ++i) {
    dff_state_[i] = values_[compiled_->dff_qd_slots_[i].second];
  }
}

void Simulator::reset(std::uint64_t seed) {
  rng_ = util::Xoshiro256(seed);
  std::fill(values_.begin(), values_.end(), 0);
  std::fill(toggles_.begin(), toggles_.end(), 0);
  std::fill(dff_state_.begin(), dff_state_.end(), 0);
  cycle_ = 0;
}

std::vector<bool> Simulator::eval_single(const std::vector<bool>& bits) {
  const auto& slots = compiled_->pi_slots_;
  if (bits.size() != slots.size()) {
    throw std::invalid_argument("eval_single: input size mismatch");
  }
  for (std::size_t i = 0; i < slots.size(); ++i) {
    values_[slots[i]] = bits[i] ? ~0ULL : 0ULL;  // broadcast, lane 0 read back
  }
  eval();
  std::vector<bool> out;
  out.reserve(compiled_->po_slots_.size());
  for (const std::uint32_t slot : compiled_->po_slots_) {
    out.push_back((values_[slot] & 1ULL) != 0);
  }
  return out;
}

}  // namespace polaris::sim
