// Compile-once execution kernel for the bit-parallel simulator.
//
// A CompiledDesign is an immutable evaluation plan built once per netlist
// and shared (via shared_ptr) by every Simulator over that design: a TVLA
// campaign compiles in its constructor and hands the same plan to all of
// its shards, so per-shard setup no longer re-runs topological_order() or
// rebuilds a schedule.
//
// What compilation does:
//  * dense net renumbering - every net is mapped to a value *slot*,
//    sources first and combinational outputs in schedule order, so the hot
//    loop walks the value array forward;
//  * levelized, type-batched schedule - combinational gates are levelized
//    and, within each level, batched by opcode (cell type x uniform
//    fan-in) into contiguous *op runs*: one kernel dispatch per run and a
//    tight branch-free loop inside it, instead of a per-gate
//    eval_cell_word switch;
//  * buf/not prelude fusion - an adjacent kBuf/kNot run whose outputs are
//    all consumed by the run that immediately follows it is folded into
//    that consumer as a *prelude*: its ops still execute first and still
//    write their value/toggle slots (bit-identical to the unfused order),
//    but inside the consumer's dispatch, saving one dispatch per folded
//    run (fused_run_count());
//  * compile-time validation - cell kinds and fan-in arity are checked
//    once here (throws std::invalid_argument), so eval() carries no
//    per-gate checks and no fan-in cap: n-ary kernels accumulate straight
//    from the value array, with no operand staging buffer.
//
// Lane blocks: eval_comb evaluates `lane_words` 64-trace words per op in
// one pass over blocked arrays where slot i owns words [i*W, (i+1)*W).
// The kernel body is a width-generic template (compiled_kernels.hpp)
// instantiated portably for every valid width and as AVX2 vectors for the
// widths that fill whole __m256i registers; sim/simd.hpp owns the runtime
// dispatch policy (CPUID + POLARIS_SIMD). Both instantiations execute the
// same op order and the same write-time toggle rule, so they produce
// bit-identical words.
//
// Toggle contract: toggles are computed at write time (old XOR new, per
// written slot), which removes the previous_ = values_ full-vector copy
// the interpreter paid every cycle. Slots eval() does not write (primary
// inputs, which are staged by set_input* before the call) keep toggle 0,
// exactly matching the reference snapshot semantics. sim::ReferenceSimulator
// (reference.hpp) keeps the old gate-by-gate evaluator as the oracle the
// property tests compare against.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "netlist/netlist.hpp"

namespace polaris::sim {

class Simulator;

namespace detail {
struct KernelAccess;
}  // namespace detail

/// Write-time toggle update - THE invariant behind every bit-identity
/// guarantee, shared by the compiled combinational wave and the
/// simulator's source refresh: each slot is written at most once per
/// eval(), so old XOR new equals the value change since the previous eval.
inline void write_slot(std::uint64_t* values, std::uint64_t* toggles,
                       std::uint32_t slot, std::uint64_t value) noexcept {
  toggles[slot] = values[slot] ^ value;
  values[slot] = value;
}

class CompiledDesign {
 public:
  /// Compiles `netlist` (must outlive the plan). Throws
  /// std::invalid_argument on an arity violation or a non-evaluable cell
  /// kind, std::runtime_error on a combinational cycle - after
  /// construction, evaluation cannot fail.
  explicit CompiledDesign(const netlist::Netlist& netlist);

  [[nodiscard]] const netlist::Netlist& design() const { return *netlist_; }

  /// Number of value slots (== the design's net count).
  [[nodiscard]] std::size_t slot_count() const { return slot_of_net_.size(); }
  /// Value slot of a net.
  [[nodiscard]] std::uint32_t slot(netlist::NetId net) const {
    return slot_of_net_[net];
  }
  /// Toggle/value slot of a gate's output net. Sampling plans resolve
  /// these once and index the simulator's toggle words directly.
  [[nodiscard]] std::uint32_t toggle_slot(netlist::GateId gate) const {
    return out_slot_of_gate_[gate];
  }

  [[nodiscard]] std::size_t level_count() const { return level_count_; }
  [[nodiscard]] std::size_t run_count() const { return runs_.size(); }
  [[nodiscard]] std::size_t dff_count() const { return dff_qd_slots_.size(); }
  /// kBuf/kNot runs folded into their consumer run as preludes (bench
  /// probes report this next to run_count()).
  [[nodiscard]] std::size_t fused_run_count() const { return fused_run_count_; }

 private:
  friend class Simulator;
  friend struct detail::KernelAccess;

  /// Specialized kernels: the common 1/2/3-operand shapes get dedicated
  /// loops; kXxxN handles any wider fan-in with an accumulator loop.
  enum class OpKernel : std::uint8_t {
    kBuf, kNot, kMux,
    kAnd2, kOr2, kNand2, kNor2, kXor2, kXnor2,
    kAndN, kOrN, kNandN, kNorN, kXorN, kXnorN,
  };

  /// A contiguous batch of same-kernel, same-fan-in ops within one level.
  /// Op i of the run writes op_out_slots_[op_begin + i] and reads its
  /// fan_in operands at op_input_slots_[input_base + i * fan_in]. A run
  /// may carry a *prelude* - the ops of a fused kBuf/kNot run that
  /// executed immediately before it - executed first within the same
  /// dispatch (prelude_invert selects kNot semantics).
  struct OpRun {
    OpKernel kernel;
    std::uint32_t fan_in;
    std::uint32_t op_begin;
    std::uint32_t op_count;
    std::uint32_t input_base;
    std::uint32_t prelude_op_begin = 0;
    std::uint32_t prelude_op_count = 0;  // 0 = no prelude
    std::uint32_t prelude_input_base = 0;
    bool prelude_invert = false;
  };

  /// Kernel selection doubles as the compile-time cell-kind check: throws
  /// std::invalid_argument for cells the combinational wave cannot evaluate.
  static OpKernel select_kernel(netlist::CellType type, std::size_t fan_in);

  /// Runs the full combinational wave over blocked `values`, recording
  /// write-time toggles into `toggles` (both sized slot_count() *
  /// lane_words, slot-major). Dispatches once per eval to the kernel the
  /// current SIMD policy selects for this width (sim/simd.hpp).
  /// `record_toggles = false` elides the toggle stores for evals whose
  /// transition nothing reads (the values wave is unchanged); `toggles`
  /// then holds stale data until the next recording eval rewrites it.
  void eval_comb(std::uint64_t* values, std::uint64_t* toggles,
                 std::size_t lane_words, bool record_toggles = true) const;

  const netlist::Netlist* netlist_;
  std::vector<std::uint32_t> slot_of_net_;      // NetId -> slot
  std::vector<std::uint32_t> out_slot_of_gate_; // GateId -> output slot

  std::vector<std::uint32_t> const0_slots_, const1_slots_;
  std::vector<std::uint32_t> rand_slots_;  // ascending GateId: the kRand
                                           // refresh order IS the RNG
                                           // stream order (determinism)
  std::vector<std::pair<std::uint32_t, std::uint32_t>> dff_qd_slots_;  // (q, d)
  std::vector<std::uint32_t> pi_slots_;  // primary_inputs() order
  std::vector<std::uint32_t> po_slots_;  // primary_outputs() order

  std::vector<OpRun> runs_;
  std::vector<std::uint32_t> op_out_slots_;
  std::vector<std::uint32_t> op_input_slots_;
  std::size_t level_count_ = 0;
  std::size_t fused_run_count_ = 0;
};

using CompiledDesignPtr = std::shared_ptr<const CompiledDesign>;

/// Compiles a netlist into a shareable plan. The netlist must outlive the
/// returned plan (campaigns keep the design alive for their whole run).
[[nodiscard]] CompiledDesignPtr compile(const netlist::Netlist& netlist);

}  // namespace polaris::sim
