// Levelized, 64-lane bit-parallel, two-state logic simulator.
//
// Each std::uint64_t word holds one signal across 64 independent simulation
// lanes (traces). One eval() is one clock cycle: sources are refreshed
// (constants, fresh mask randomness, DFF state), then the combinational wave
// runs through the compiled, type-batched schedule. latch() commits DFF
// next-state.
//
// The Simulator is a thin mutable state - value words, toggle words, DFF
// state, the mask-share RNG - over a shared immutable CompiledDesign
// (compiled.hpp). Construct it from a netlist for one-off use (compiles
// privately) or from a CompiledDesignPtr to share one plan across many
// simulators: a TVLA campaign compiles once and every shard reuses the plan.
//
// Toggle words (value XOR value-at-previous-eval, per gate output) are the
// input to the Hamming-distance power model (power module) and to TVLA
// accumulation. They are maintained at write time by the kernel - slots not
// written by eval(), i.e. primary inputs staged via set_input*, read as 0.
//
// Model notes (documented substitutions, see DESIGN.md):
//  * zero-delay evaluation - no glitch power;
//  * two-state logic - DFFs initialize to 0, no X propagation;
//  * kRand cells draw from a deterministic xoshiro stream (per-simulator
//    seed), modelling the on-chip mask-share PRNG.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/compiled.hpp"
#include "util/rng.hpp"

namespace polaris::sim {

inline constexpr std::size_t kLanes = 64;

class Simulator {
 public:
  /// Convenience: compiles the netlist privately. Prefer the shared-plan
  /// constructor when many simulators run the same design.
  explicit Simulator(const netlist::Netlist& netlist,
                     std::uint64_t seed = 0x51313ab1e5eedULL);
  explicit Simulator(CompiledDesignPtr compiled,
                     std::uint64_t seed = 0x51313ab1e5eedULL);

  [[nodiscard]] const netlist::Netlist& design() const {
    return compiled_->design();
  }
  [[nodiscard]] const CompiledDesignPtr& compiled() const { return compiled_; }

  /// Sets the 64-lane value of the i-th primary input for the next eval().
  void set_input(std::size_t pi_index, std::uint64_t word);
  /// Same, addressed by net (must be a primary-input net).
  void set_input_net(netlist::NetId net, std::uint64_t word);
  /// Fills every primary input with fresh random words.
  void set_inputs_random();
  /// Per-input word = (fixed bit broadcast & fixed_mask) | (random & ~mask):
  /// lanes selected by `fixed_mask` see `fixed[i]`, others see random bits.
  /// This is exactly the fixed-vs-random stimulus split of TVLA.
  void set_inputs_mixed(const std::vector<bool>& fixed, std::uint64_t fixed_mask);

  /// One combinational evaluation (one cycle worth of settled values).
  /// Never throws: the plan was validated at compile time.
  void eval();
  /// Commits DFF next state (q <= d). No-op for purely combinational designs.
  void latch();
  /// Clears DFF state and all signal values to 0 and reseeds mask randomness.
  void reset(std::uint64_t seed);
  /// Reseeds the mask-share (kRand) randomness only, leaving signal state
  /// untouched. Trace shards key this per batch so a batch's randomness
  /// never depends on which shard executed the preceding batches.
  void reseed(std::uint64_t seed) { rng_ = util::Xoshiro256(seed); }

  [[nodiscard]] std::uint64_t value(netlist::NetId net) const {
    return values_[compiled_->slot(net)];
  }
  /// Output-toggle word of a gate: value XOR value-at-previous-eval.
  [[nodiscard]] std::uint64_t toggles(netlist::GateId gate) const {
    return toggles_[compiled_->toggle_slot(gate)];
  }
  /// Raw toggle words indexed by compiled slot: sampling plans resolve
  /// CompiledDesign::toggle_slot once and read this array directly.
  [[nodiscard]] const std::uint64_t* toggle_words() const {
    return toggles_.data();
  }

  /// Single-lane convenience for functional tests: applies `bits` to the
  /// primary inputs (lane 0), evaluates, and returns lane-0 output bits in
  /// primary_outputs() order. Does not latch.
  [[nodiscard]] std::vector<bool> eval_single(const std::vector<bool>& bits);

  /// Number of evals since construction/reset (cycle counter).
  [[nodiscard]] std::uint64_t cycle() const { return cycle_; }

 private:
  CompiledDesignPtr compiled_;
  util::Xoshiro256 rng_;
  std::vector<std::uint64_t> values_;
  std::vector<std::uint64_t> toggles_;
  std::vector<std::uint64_t> dff_state_;
  std::uint64_t cycle_ = 0;
};

}  // namespace polaris::sim
