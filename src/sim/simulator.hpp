// Levelized, bit-parallel, two-state logic simulator over K-word lane
// blocks.
//
// Each std::uint64_t word holds one signal across 64 independent simulation
// lanes (traces); a simulator constructed with lane_words = K carries K
// such words per signal (64*K traces per eval), stored slot-major: slot i
// owns words [i*K, (i+1)*K). One eval() is one clock cycle: sources are
// refreshed (constants, fresh mask randomness, DFF state), then the
// combinational wave runs through the compiled, type-batched schedule at
// the full block width (sim/simd.hpp selects the AVX2 or portable kernel).
// latch() commits DFF next-state for every word.
//
// The Simulator is a thin mutable state - value words, toggle words, DFF
// state, one mask-share RNG per lane word - over a shared immutable
// CompiledDesign (compiled.hpp). Construct it from a netlist for one-off
// use (compiles privately) or from a CompiledDesignPtr to share one plan
// across many simulators: a TVLA campaign compiles once and every shard
// reuses the plan.
//
// Lane-word independence contract: word w of a K-word simulator behaves
// exactly like word 0 of a 1-word simulator seeded with
// word_seed(seed, w) and driven with the same per-word inputs - each word
// owns an independent kRand stream that draws in ascending source-slot
// order, so blocked execution never couples words (the property tests run
// K reference oracles in lockstep against one K-word simulator). The
// word-0 view (value(), toggles(), set_input(), ...) is unchanged from
// the single-word simulator. TVLA campaigns overwrite each word's stream
// per batch via reseed_word, keeping the per-batch keyed RNG contract.
//
// Toggle words (value XOR value-at-previous-eval, per gate output) are the
// input to the Hamming-distance power model (power module) and to TVLA
// accumulation. They are maintained at write time by the kernel - slots not
// written by eval(), i.e. primary inputs staged via set_input*, read as 0.
//
// Model notes (documented substitutions, see DESIGN.md):
//  * zero-delay evaluation - no glitch power;
//  * two-state logic - DFFs initialize to 0, no X propagation;
//  * kRand cells draw from a deterministic xoshiro stream (per-simulator
//    seed), modelling the on-chip mask-share PRNG.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/compiled.hpp"
#include "sim/simd.hpp"
#include "util/rng.hpp"

namespace polaris::sim {

inline constexpr std::size_t kLanes = 64;

class Simulator {
 public:
  /// Convenience: compiles the netlist privately. Prefer the shared-plan
  /// constructor when many simulators run the same design. Throws
  /// std::invalid_argument unless valid_lane_words(lane_words).
  explicit Simulator(const netlist::Netlist& netlist,
                     std::uint64_t seed = 0x51313ab1e5eedULL,
                     std::size_t lane_words = 1);
  explicit Simulator(CompiledDesignPtr compiled,
                     std::uint64_t seed = 0x51313ab1e5eedULL,
                     std::size_t lane_words = 1);

  [[nodiscard]] const netlist::Netlist& design() const {
    return compiled_->design();
  }
  [[nodiscard]] const CompiledDesignPtr& compiled() const { return compiled_; }
  [[nodiscard]] std::size_t lane_words() const { return lane_words_; }

  /// Seed of lane word w's kRand stream for a simulator seeded with
  /// `seed`: word 0 keeps the seed itself (so a 1-word simulator is
  /// byte-compatible with the pre-block simulator), later words get
  /// splitmix-mixed children. Public so oracles can reproduce word w.
  [[nodiscard]] static std::uint64_t word_seed(std::uint64_t seed,
                                               std::size_t word) noexcept;

  /// Sets the 64-lane value of the i-th primary input (lane word 0).
  void set_input(std::size_t pi_index, std::uint64_t word);
  /// Sets lane word `word_index` of the i-th primary input.
  void set_input_word(std::size_t pi_index, std::size_t word_index,
                      std::uint64_t word);
  /// Same as set_input, addressed by net (must be a primary-input net).
  void set_input_net(netlist::NetId net, std::uint64_t word);
  /// Fills every primary input of every lane word with fresh random words
  /// (word w draws from its own stream, inputs in ascending order).
  void set_inputs_random();
  /// Per-input word = (fixed bit broadcast & fixed_mask) | (random & ~mask):
  /// lanes selected by `fixed_mask` see `fixed[i]`, others see random bits.
  /// Applied to every lane word (same mask). This is exactly the
  /// fixed-vs-random stimulus split of TVLA.
  void set_inputs_mixed(const std::vector<bool>& fixed, std::uint64_t fixed_mask);

  /// One combinational evaluation (one cycle worth of settled values) over
  /// all lane words. Never throws: the plan was validated at compile time.
  /// `record_toggles = false` skips toggle recording in the combinational
  /// wave (values and RNG consumption are identical) - for scaffolding
  /// evals whose transition is never sampled, like the base-state pass of
  /// a TVLA trace pair; the next recording eval rewrites every gate's
  /// toggle from the values array, so sampled toggles are unaffected.
  void eval(bool record_toggles = true);
  /// Commits DFF next state (q <= d) for every lane word. No-op for purely
  /// combinational designs.
  void latch();
  /// Clears DFF state and all signal values to 0 and reseeds mask
  /// randomness (word w from word_seed(seed, w)).
  void reset(std::uint64_t seed);
  /// Reseeds the mask-share (kRand) randomness only, leaving signal state
  /// untouched: word w gets word_seed(seed, w). Trace shards key this per
  /// batch so a batch's randomness never depends on which shard executed
  /// the preceding batches.
  void reseed(std::uint64_t seed);
  /// Reseeds one lane word's kRand stream. Blocked TVLA shards key word w
  /// of a block starting at batch b with batch (b + w)'s stream seed, so
  /// every batch's mask randomness is identical at every block width.
  void reseed_word(std::size_t word_index, std::uint64_t seed);

  [[nodiscard]] std::uint64_t value(netlist::NetId net) const {
    return values_[static_cast<std::size_t>(compiled_->slot(net)) *
                   lane_words_];
  }
  [[nodiscard]] std::uint64_t value_word(netlist::NetId net,
                                         std::size_t word_index) const {
    return values_[static_cast<std::size_t>(compiled_->slot(net)) *
                       lane_words_ +
                   word_index];
  }
  /// Output-toggle word of a gate: value XOR value-at-previous-eval.
  [[nodiscard]] std::uint64_t toggles(netlist::GateId gate) const {
    return toggles_[static_cast<std::size_t>(compiled_->toggle_slot(gate)) *
                    lane_words_];
  }
  [[nodiscard]] std::uint64_t toggles_word(netlist::GateId gate,
                                           std::size_t word_index) const {
    return toggles_[static_cast<std::size_t>(compiled_->toggle_slot(gate)) *
                        lane_words_ +
                    word_index];
  }
  /// Raw blocked toggle words: slot s's words at [s*lane_words(),
  /// (s+1)*lane_words()). Sampling plans resolve
  /// CompiledDesign::toggle_slot once and read this array directly.
  [[nodiscard]] const std::uint64_t* toggle_words() const {
    return toggles_.data();
  }

  /// Single-lane convenience for functional tests: applies `bits` to the
  /// primary inputs (broadcast to every lane), evaluates, and returns
  /// lane-0 output bits in primary_outputs() order. Does not latch.
  [[nodiscard]] std::vector<bool> eval_single(const std::vector<bool>& bits);

  /// Number of evals since construction/reset (cycle counter).
  [[nodiscard]] std::uint64_t cycle() const { return cycle_; }

 private:
  /// Per-word staged write with write-time toggle (blocked write_slot).
  void write_word(std::size_t offset, std::uint64_t value) {
    toggles_[offset] = values_[offset] ^ value;
    values_[offset] = value;
  }

  CompiledDesignPtr compiled_;
  std::size_t lane_words_;
  std::vector<util::Xoshiro256> rngs_;  // one kRand stream per lane word
  std::vector<std::uint64_t> values_;
  std::vector<std::uint64_t> toggles_;
  std::vector<std::uint64_t> dff_state_;
  std::uint64_t cycle_ = 0;
};

}  // namespace polaris::sim
