// Levelized, 64-lane bit-parallel, two-state logic simulator.
//
// Each std::uint64_t word holds one signal across 64 independent simulation
// lanes (traces). One eval() is one clock cycle: sources are refreshed
// (constants, fresh mask randomness, DFF state), then the combinational wave
// runs in topological order. latch() commits DFF next-state.
//
// Toggle words (value XOR previous value, per gate output) are the input to
// the Hamming-distance power model (power module) and to TVLA accumulation.
//
// Model notes (documented substitutions, see DESIGN.md):
//  * zero-delay evaluation - no glitch power;
//  * two-state logic - DFFs initialize to 0, no X propagation;
//  * kRand cells draw from a deterministic xoshiro stream (per-simulator
//    seed), modelling the on-chip mask-share PRNG.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace polaris::sim {

inline constexpr std::size_t kLanes = 64;

class Simulator {
 public:
  explicit Simulator(const netlist::Netlist& netlist,
                     std::uint64_t seed = 0x51313ab1e5eedULL);

  [[nodiscard]] const netlist::Netlist& design() const { return netlist_; }

  /// Sets the 64-lane value of the i-th primary input for the next eval().
  void set_input(std::size_t pi_index, std::uint64_t word);
  /// Same, addressed by net (must be a primary-input net).
  void set_input_net(netlist::NetId net, std::uint64_t word);
  /// Fills every primary input with fresh random words.
  void set_inputs_random();
  /// Per-input word = (fixed bit broadcast & fixed_mask) | (random & ~mask):
  /// lanes selected by `fixed_mask` see `fixed[i]`, others see random bits.
  /// This is exactly the fixed-vs-random stimulus split of TVLA.
  void set_inputs_mixed(const std::vector<bool>& fixed, std::uint64_t fixed_mask);

  /// One combinational evaluation (one cycle worth of settled values).
  void eval();
  /// Commits DFF next state (q <= d). No-op for purely combinational designs.
  void latch();
  /// Clears DFF state and all signal values to 0 and reseeds mask randomness.
  void reset(std::uint64_t seed);
  /// Reseeds the mask-share (kRand) randomness only, leaving signal state
  /// untouched. Trace shards key this per batch so a batch's randomness
  /// never depends on which shard executed the preceding batches.
  void reseed(std::uint64_t seed) { rng_ = util::Xoshiro256(seed); }

  [[nodiscard]] std::uint64_t value(netlist::NetId net) const {
    return values_[net];
  }
  /// Output-toggle word of a gate: value XOR value-at-previous-eval.
  [[nodiscard]] std::uint64_t toggles(netlist::GateId gate) const {
    const netlist::NetId out = netlist_.gate(gate).output;
    return values_[out] ^ previous_[out];
  }

  /// Single-lane convenience for functional tests: applies `bits` to the
  /// primary inputs (lane 0), evaluates, and returns lane-0 output bits in
  /// primary_outputs() order. Does not latch.
  [[nodiscard]] std::vector<bool> eval_single(const std::vector<bool>& bits);

  /// Number of evals since construction/reset (cycle counter).
  [[nodiscard]] std::uint64_t cycle() const { return cycle_; }

 private:
  struct Op {
    netlist::CellType type;
    std::uint32_t fan_in;
    std::uint32_t input_offset;  // into input_nets_
    netlist::NetId output;
    netlist::GateId gate;
  };

  const netlist::Netlist& netlist_;
  util::Xoshiro256 rng_;
  std::vector<Op> comb_schedule_;       // combinational gates, topo order
  std::vector<netlist::NetId> input_nets_;  // flattened operand lists
  std::vector<netlist::NetId> const0_nets_, const1_nets_, rand_nets_;
  std::vector<std::pair<netlist::NetId, netlist::NetId>> dff_q_d_;  // (q, d)
  std::vector<std::uint64_t> values_;
  std::vector<std::uint64_t> previous_;
  std::vector<std::uint64_t> dff_state_;
  std::uint64_t cycle_ = 0;
};

}  // namespace polaris::sim
