// Structural feature extraction (paper Sec. IV-A, Fig. 2).
//
// "The structural features of a gate include information such as their
//  local placement and interconnections. In a sub-design graph, gate
//  connectivity is encoded with an adjacency matrix and one-hot encoding."
//
// For a gate i with locality L, the induced sub-graph over the BFS node list
// [G0 = i, G1 .. GL] is vectorized as:
//   * one-hot cell type of G0..GL               ((L+1) * kCellTypeCount)
//   * upper-triangular adjacency bits of the sub-graph  ((L+1)L/2)
//   * three normalized scalars: fan-in, fan-out, logic level
//
// Feature names mirror the paper's rule vocabulary (Table V): "G4=nand",
// "adj(G8,G9)", so SHAP attributions translate directly into
// human-readable masking rules.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "netlist/netlist.hpp"

namespace polaris::graph {

struct FeatureSpec {
  /// Locality L: number of BFS neighbors considered (paper default 7).
  std::size_t locality = 7;

  [[nodiscard]] std::size_t node_slots() const { return locality + 1; }
  [[nodiscard]] std::size_t type_dims() const {
    return node_slots() * netlist::kCellTypeCount;
  }
  [[nodiscard]] std::size_t adjacency_dims() const {
    return node_slots() * (node_slots() - 1) / 2;
  }
  [[nodiscard]] std::size_t scalar_dims() const { return 3; }
  [[nodiscard]] std::size_t dim() const {
    return type_dims() + adjacency_dims() + scalar_dims();
  }

  /// Human-readable name of each feature dimension.
  [[nodiscard]] std::vector<std::string> feature_names() const;
};

/// Extractor bound to one design; precomputes the graph view and levels so
/// per-gate extraction is allocation-light. Thread-compatible (not
/// thread-safe: internal BFS scratch).
class FeatureExtractor {
 public:
  FeatureExtractor(const netlist::Netlist& netlist, FeatureSpec spec);

  [[nodiscard]] const FeatureSpec& spec() const { return spec_; }
  [[nodiscard]] const GraphView& graph() const { return graph_; }

  /// Feature vector of `gate` (size spec().dim()).
  [[nodiscard]] std::vector<double> extract(netlist::GateId gate);

  /// Stacked features for a set of gates (row-major, one row per gate).
  [[nodiscard]] std::vector<std::vector<double>> extract_all(
      const std::vector<netlist::GateId>& gates);

 private:
  const netlist::Netlist& netlist_;
  FeatureSpec spec_;
  GraphView graph_;
  BfsScratch scratch_;
  std::vector<std::uint32_t> levels_;
  double depth_norm_ = 1.0;
};

}  // namespace polaris::graph
