#include "graph/features.hpp"

#include <algorithm>

namespace polaris::graph {

using netlist::CellType;
using netlist::GateId;

std::vector<std::string> FeatureSpec::feature_names() const {
  std::vector<std::string> names;
  names.reserve(dim());
  for (std::size_t slot = 0; slot < node_slots(); ++slot) {
    for (std::size_t t = 0; t < netlist::kCellTypeCount; ++t) {
      names.push_back("G" + std::to_string(slot) + "=" +
                      std::string(netlist::to_string(static_cast<CellType>(t))));
    }
  }
  for (std::size_t a = 0; a < node_slots(); ++a) {
    for (std::size_t b = a + 1; b < node_slots(); ++b) {
      names.push_back("adj(G" + std::to_string(a) + ",G" + std::to_string(b) + ")");
    }
  }
  names.emplace_back("fanin");
  names.emplace_back("fanout");
  names.emplace_back("level");
  return names;
}

FeatureExtractor::FeatureExtractor(const netlist::Netlist& netlist,
                                   FeatureSpec spec)
    : netlist_(netlist), spec_(spec), graph_(netlist), levels_(netlist.levels()) {
  const auto max_it = std::max_element(levels_.begin(), levels_.end());
  depth_norm_ = (max_it == levels_.end() || *max_it == 0)
                    ? 1.0
                    : static_cast<double>(*max_it);
}

std::vector<double> FeatureExtractor::extract(GateId gate) {
  std::vector<double> features(spec_.dim(), 0.0);

  // Node list [G0 = gate, G1..GL] in deterministic BFS order.
  std::vector<GateId> nodes;
  nodes.reserve(spec_.node_slots());
  nodes.push_back(gate);
  const auto hood = bfs_neighborhood(graph_, gate, spec_.locality, scratch_);
  nodes.insert(nodes.end(), hood.begin(), hood.end());

  // One-hot cell types. Slots beyond the actual neighborhood stay zero.
  for (std::size_t slot = 0; slot < nodes.size(); ++slot) {
    const auto type = netlist_.gate(nodes[slot]).type;
    features[slot * netlist::kCellTypeCount + static_cast<std::size_t>(type)] = 1.0;
  }

  // Upper-triangular adjacency of the induced sub-graph.
  std::size_t offset = spec_.type_dims();
  for (std::size_t a = 0; a < spec_.node_slots(); ++a) {
    for (std::size_t b = a + 1; b < spec_.node_slots(); ++b, ++offset) {
      if (a < nodes.size() && b < nodes.size() &&
          graph_.adjacent(nodes[a], nodes[b])) {
        features[offset] = 1.0;
      }
    }
  }

  // Normalized scalars.
  const auto& g = netlist_.gate(gate);
  features[offset++] = std::min(1.0, static_cast<double>(g.inputs.size()) / 8.0);
  features[offset++] = std::min(
      1.0, static_cast<double>(netlist_.net(g.output).fanouts.size()) / 16.0);
  features[offset++] = static_cast<double>(levels_[gate]) / depth_norm_;
  return features;
}

std::vector<std::vector<double>> FeatureExtractor::extract_all(
    const std::vector<GateId>& gates) {
  std::vector<std::vector<double>> rows;
  rows.reserve(gates.size());
  for (const GateId gate : gates) rows.push_back(extract(gate));
  return rows;
}

}  // namespace polaris::graph
