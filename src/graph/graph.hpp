// Undirected graph view Gr = (V, E) of a netlist (paper Sec. IV-A:
// "converts any digital design represented as gate-level netlist (D) into a
// graph Gr = (V, E) where V: gates and E: interconnections").
//
// Stored in CSR form so neighbor iteration during feature extraction over
// every gate of a large design is cache-friendly and allocation-free.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace polaris::graph {

class GraphView {
 public:
  explicit GraphView(const netlist::Netlist& netlist);

  [[nodiscard]] std::size_t node_count() const { return offsets_.size() - 1; }

  /// Deduplicated, id-sorted undirected neighbors of a gate
  /// (drivers of its input nets + readers of its output net).
  [[nodiscard]] std::span<const netlist::GateId> neighbors(
      netlist::GateId gate) const {
    return {&adjacency_[offsets_[gate]], offsets_[gate + 1] - offsets_[gate]};
  }

  /// True if gates a and b share a net (O(log deg)).
  [[nodiscard]] bool adjacent(netlist::GateId a, netlist::GateId b) const;

  [[nodiscard]] std::size_t degree(netlist::GateId gate) const {
    return offsets_[gate + 1] - offsets_[gate];
  }

 private:
  std::vector<std::size_t> offsets_;
  std::vector<netlist::GateId> adjacency_;
};

/// Reusable visited-marking scratch so per-gate BFS over a large design does
/// not re-zero an O(V) array each call (stamp-based invalidation).
class BfsScratch {
 public:
  void mark(netlist::GateId node) { marks_[node] = stamp_; }
  [[nodiscard]] bool marked(netlist::GateId node) const {
    return marks_[node] == stamp_;
  }
  void reset(std::size_t node_count) {
    if (marks_.size() != node_count) marks_.assign(node_count, 0);
    if (++stamp_ == 0) {  // wrapped: clear and restart
      std::fill(marks_.begin(), marks_.end(), 0);
      stamp_ = 1;
    }
  }

 private:
  std::vector<std::uint32_t> marks_;
  std::uint32_t stamp_ = 0;
};

/// First `limit` gates reached by BFS from `start` (excluding `start`),
/// in deterministic order (per-level, neighbors sorted by id). This is the
/// "Locality L" neighborhood of Sec. IV-A / Fig. 2.
[[nodiscard]] std::vector<netlist::GateId> bfs_neighborhood(
    const GraphView& graph, netlist::GateId start, std::size_t limit,
    BfsScratch& scratch);

/// Convenience overload with its own scratch (tests, one-off queries).
[[nodiscard]] std::vector<netlist::GateId> bfs_neighborhood(
    const GraphView& graph, netlist::GateId start, std::size_t limit);

}  // namespace polaris::graph
