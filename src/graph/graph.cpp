#include "graph/graph.hpp"

#include <algorithm>

namespace polaris::graph {

using netlist::GateId;

GraphView::GraphView(const netlist::Netlist& netlist) {
  const std::size_t n = netlist.gate_count();
  std::vector<std::vector<GateId>> adj(n);
  for (GateId g = 0; g < n; ++g) {
    const auto& gate = netlist.gate(g);
    for (const auto in : gate.inputs) {
      const GateId driver = netlist.net(in).driver;
      if (driver != g) {
        adj[g].push_back(driver);
        adj[driver].push_back(g);
      }
    }
  }
  offsets_.assign(n + 1, 0);
  for (GateId g = 0; g < n; ++g) {
    auto& list = adj[g];
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    offsets_[g + 1] = offsets_[g] + list.size();
  }
  adjacency_.resize(offsets_.back());
  for (GateId g = 0; g < n; ++g) {
    std::copy(adj[g].begin(), adj[g].end(), adjacency_.begin() +
                                                static_cast<std::ptrdiff_t>(offsets_[g]));
  }
}

bool GraphView::adjacent(GateId a, GateId b) const {
  const auto span = neighbors(a);
  return std::binary_search(span.begin(), span.end(), b);
}

std::vector<GateId> bfs_neighborhood(const GraphView& graph, GateId start,
                                     std::size_t limit, BfsScratch& scratch) {
  std::vector<GateId> result;
  if (limit == 0) return result;
  result.reserve(limit);
  scratch.reset(graph.node_count());
  scratch.mark(start);
  std::vector<GateId> frontier{start};
  std::vector<GateId> next;
  while (!frontier.empty() && result.size() < limit) {
    next.clear();
    for (const GateId node : frontier) {
      for (const GateId nb : graph.neighbors(node)) {
        if (scratch.marked(nb)) continue;
        scratch.mark(nb);
        result.push_back(nb);
        if (result.size() == limit) return result;
        next.push_back(nb);
      }
    }
    frontier.swap(next);
  }
  return result;
}

std::vector<GateId> bfs_neighborhood(const GraphView& graph, GateId start,
                                     std::size_t limit) {
  BfsScratch scratch;
  return bfs_neighborhood(graph, start, limit, scratch);
}

}  // namespace polaris::graph
