#include "util/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace polaris::util {
namespace {

std::string escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
}

std::string CsvWriter::str() const {
  std::ostringstream out;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out << ',';
      out << escape(row[i]);
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("CsvWriter: cannot open " + path);
  file << str();
  if (!file) throw std::runtime_error("CsvWriter: write failed for " + path);
}

}  // namespace polaris::util
