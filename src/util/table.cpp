#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace polaris::util {
namespace {

bool looks_numeric(const std::string& cell) {
  if (cell.empty()) return false;
  std::size_t i = (cell[0] == '-' || cell[0] == '+') ? 1 : 0;
  if (i >= cell.size()) return false;
  bool digit_seen = false;
  for (; i < cell.size(); ++i) {
    const char c = cell[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c != '.' && c != 'x' && c != '%' && c != 'e' && c != '-') {
      return false;
    }
  }
  return digit_seen;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  const std::size_t ncols = header_.size();
  std::vector<std::size_t> width(ncols);
  std::vector<bool> numeric(ncols, true);
  for (std::size_t c = 0; c < ncols; ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < ncols; ++c) {
      width[c] = std::max(width[c], row[c].size());
      if (!row[c].empty() && !looks_numeric(row[c])) numeric[c] = false;
    }
  }

  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& row, bool as_header) {
    for (std::size_t c = 0; c < ncols; ++c) {
      if (c != 0) out << "  ";
      const std::string& cell = row[c];
      const std::size_t pad = width[c] - cell.size();
      const bool right = numeric[c] && !as_header;
      if (right) out << std::string(pad, ' ') << cell;
      else out << cell << std::string(pad, ' ');
    }
    out << '\n';
  };

  emit_row(header_, /*as_header=*/true);
  std::size_t total = ncols >= 1 ? 2 * (ncols - 1) : 0;
  for (const auto w : width) total += w;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row, /*as_header=*/false);
  return out.str();
}

}  // namespace polaris::util
