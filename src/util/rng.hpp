// Deterministic, fast pseudo-random number generation.
//
// All stochastic components of the framework (stimulus generation, random
// mask insertion in Algorithm 1, bagging/boosting subsampling, SMOTE,
// KernelSHAP coalition sampling) draw from this generator so that every
// experiment is reproducible from a single seed.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace polaris::util {

/// splitmix64 — used to expand a single 64-bit seed into a full generator
/// state. Passes through every 64-bit value exactly once over its period.
[[nodiscard]] constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna). Satisfies the C++ named requirement
/// UniformRandomBitGenerator, so it can be used with <random> distributions,
/// but the convenience members below avoid libstdc++ distribution overhead
/// in hot loops.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x5eed5eed5eed5eedULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64_next(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be nonzero. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  [[nodiscard]] std::uint64_t bounded(std::uint64_t bound) noexcept {
    // 128-bit multiply keeps the fast path branch-free for typical bounds.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Bernoulli trial with probability p of returning true.
  [[nodiscard]] bool chance(double p) noexcept { return uniform() < p; }

  /// Standard normal via Marsaglia polar method (no cached spare; the
  /// callers in this codebase draw rarely enough that simplicity wins).
  [[nodiscard]] double gaussian() noexcept;

  /// Derive an independent child generator (for parallel or per-component
  /// streams) without correlating with the parent's future output.
  [[nodiscard]] Xoshiro256 split() noexcept {
    return Xoshiro256((*this)() ^ 0xa02e1b7f43d5c9e1ULL);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

inline double Xoshiro256::gaussian() noexcept {
  for (;;) {
    const double u = uniform(-1.0, 1.0);
    const double v = uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

}  // namespace polaris::util
