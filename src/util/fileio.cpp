#include "util/fileio.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

namespace polaris::util {

namespace {
/// fsyncs a directory so a rename inside it survives a crash. Returns
/// false on any failure (opening a directory read-only can legitimately
/// fail on exotic filesystems; the caller decides whether that is fatal).
bool sync_directory(const std::filesystem::path& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}
}  // namespace

void write_file_atomic(const std::string& path, std::string_view contents) {
  // The temp name carries the pid and a process-wide counter so concurrent
  // writers (server request threads, parallel CI jobs) never collide.
  static std::atomic<std::uint64_t> counter{0};
  const std::filesystem::path target(path);
  const auto dir = target.parent_path();
  const std::filesystem::path temp =
      (dir.empty() ? std::filesystem::path(".") : dir) /
      (target.filename().string() + ".tmp." +
       std::to_string(static_cast<unsigned long>(::getpid())) + "." +
       std::to_string(counter.fetch_add(1)));

  std::FILE* file = std::fopen(temp.c_str(), "wb");
  if (file == nullptr) {
    throw std::runtime_error("cannot open for write: " + temp.string());
  }
  const std::size_t written =
      contents.empty() ? 0 : std::fwrite(contents.data(), 1, contents.size(), file);
  // Flush libc's buffer and fsync the temp file BEFORE the rename: without
  // it a crash after the rename can publish a zero-length file behind the
  // "atomic" write (the rename is durable before the data is).
  const bool flushed = std::fflush(file) == 0 && ::fsync(fileno(file)) == 0;
  const int close_result = std::fclose(file);  // unconditionally: no FD leak
  if (written != contents.size() || !flushed || close_result != 0) {
    std::remove(temp.c_str());
    throw std::runtime_error("write failed: " + temp.string());
  }
  std::error_code error;
  std::filesystem::rename(temp, target, error);
  if (error) {
    std::remove(temp.c_str());
    throw std::runtime_error("cannot rename " + temp.string() + " over " +
                             path + ": " + error.message());
  }
  // And fsync the parent directory AFTER the rename so the new directory
  // entry itself is on disk. The target is already in place, so there is
  // no temp file left to unlink on failure - just report it.
  if (!sync_directory(dir.empty() ? std::filesystem::path(".") : dir)) {
    throw std::runtime_error("cannot sync directory of " + path);
  }
}

}  // namespace polaris::util
