#include "util/fileio.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <stdexcept>

namespace polaris::util {

void write_file_atomic(const std::string& path, std::string_view contents) {
  // The temp name carries the pid and a process-wide counter so concurrent
  // writers (server request threads, parallel CI jobs) never collide.
  static std::atomic<std::uint64_t> counter{0};
  const std::filesystem::path target(path);
  const auto dir = target.parent_path();
  const std::filesystem::path temp =
      (dir.empty() ? std::filesystem::path(".") : dir) /
      (target.filename().string() + ".tmp." +
       std::to_string(static_cast<unsigned long>(::getpid())) + "." +
       std::to_string(counter.fetch_add(1)));

  std::FILE* file = std::fopen(temp.c_str(), "wb");
  if (file == nullptr) {
    throw std::runtime_error("cannot open for write: " + temp.string());
  }
  const std::size_t written =
      contents.empty() ? 0 : std::fwrite(contents.data(), 1, contents.size(), file);
  const int close_result = std::fclose(file);  // unconditionally: no FD leak
  if (written != contents.size() || close_result != 0) {
    std::remove(temp.c_str());
    throw std::runtime_error("write failed: " + temp.string());
  }
  std::error_code error;
  std::filesystem::rename(temp, target, error);
  if (error) {
    std::remove(temp.c_str());
    throw std::runtime_error("cannot rename " + temp.string() + " over " +
                             path + ": " + error.message());
  }
}

}  // namespace polaris::util
