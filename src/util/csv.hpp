// Minimal CSV writer for exporting experiment series (Fig. 3 / Fig. 4 data).
#pragma once

#include <string>
#include <vector>

namespace polaris::util {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(const std::vector<std::string>& cells);

  /// Serialize to RFC-4180-style CSV (quotes cells containing separators).
  [[nodiscard]] std::string str() const;

  /// Write to a file; throws std::runtime_error on I/O failure.
  void write_file(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace polaris::util
