// Wall-clock timing for the runtime columns of Table II and the ablation
// benches.
#pragma once

#include <chrono>

namespace polaris::util {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace polaris::util
