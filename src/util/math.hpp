// Small numeric helpers shared by the benches, examples, and the CLI.
#pragma once

namespace polaris::util {

/// Percentage reduction from `before` to `after`, guarding the zero (or
/// negative) baseline: when nothing leaked before, nothing was reduced.
[[nodiscard]] inline double reduction_percent(double before, double after) {
  return before <= 0.0 ? 0.0 : 100.0 * (before - after) / before;
}

}  // namespace polaris::util
