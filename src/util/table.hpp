// Console table printer used by every bench binary so that the regenerated
// paper tables are column-aligned and machine-greppable.
#pragma once

#include <string>
#include <vector>

namespace polaris::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with a header rule and per-column alignment (numbers right,
  /// text left). The result ends with a newline.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace polaris::util
