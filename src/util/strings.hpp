// Small string utilities shared by the Verilog front-end and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace polaris::util {

/// Remove leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text);

/// Split on any of the given delimiter characters; empty tokens are dropped.
[[nodiscard]] std::vector<std::string> split(std::string_view text,
                                             std::string_view delims);

/// True if `text` begins with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

/// Lower-case copy (ASCII).
[[nodiscard]] std::string to_lower(std::string_view text);

/// printf-style double formatting with fixed decimals (for report tables).
[[nodiscard]] std::string format_double(double value, int decimals);

}  // namespace polaris::util
