// Atomic whole-file writes. The masked-netlist outputs (`polaris_cli
// mask`, `polaris_cli client mask`, the server's own artifacts) must never
// leave a truncated file behind: a downstream ASIC flow picking up a
// half-written .v is worse than no file at all.
#pragma once

#include <string>
#include <string_view>

namespace polaris::util {

/// Writes `contents` to `path` atomically AND durably: a uniquely-named
/// temp file in the SAME directory (rename(2) is only atomic within a
/// filesystem), flushed, fsync'd and closed, then renamed over the target,
/// then the parent directory is fsync'd so the rename itself survives a
/// crash. On any failure before the rename the temp file is removed and
/// std::runtime_error is thrown; the target is either untouched or fully
/// replaced, never truncated.
void write_file_atomic(const std::string& path, std::string_view contents);

}  // namespace polaris::util
