#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace polaris::util {

std::string_view trim(std::string_view text) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!text.empty() && is_space(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && is_space(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::vector<std::string> split(std::string_view text, std::string_view delims) {
  std::vector<std::string> tokens;
  std::size_t begin = 0;
  while (begin < text.size()) {
    const std::size_t end = text.find_first_of(delims, begin);
    const std::size_t stop = (end == std::string_view::npos) ? text.size() : end;
    if (stop > begin) tokens.emplace_back(text.substr(begin, stop - begin));
    begin = stop + 1;
  }
  return tokens;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string format_double(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", decimals, value);
  return buffer;
}

}  // namespace polaris::util
