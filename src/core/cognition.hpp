// Algorithm 1: Cognition Generation - the unsupervised training-data
// factory (paper contribution 2).
//
//   Gr <- graphify(D);  LG <- leak_estimate(D)
//   while Msize <= |Rgates| and run <= itr:
//     Sgates <- random(Msize, Rgates);  Dmod <- modify(Sgates, D)
//     Rgates <- Rgates - Sgates;  Lmod <- leak_estimate(Dmod)
//     for i in Sgates:
//       Sf <- structural_features(Gr, L, i)
//       label <- [compare(LG[i], Lmod[i]) >= theta_r]
//       append (Sf, label)
//
// compare() is the leakage-reduction ratio 1 - |t_mod|/|t_orig|; gates that
// were not meaningfully leaky to begin with are labelled 0 (masking them is
// wasted overhead), which matches the paper's intent of learning *where
// masking pays off*.
#pragma once

#include "circuits/suite.hpp"
#include "core/config.hpp"
#include "ml/dataset.hpp"
#include "techlib/techlib.hpp"

namespace polaris::core {

struct CognitionStats {
  std::size_t iterations = 0;
  std::size_t samples = 0;
  std::size_t positives = 0;
  double leak_estimate_seconds = 0.0;
};

/// Runs Algorithm 1 on one design and appends the labelled samples to
/// `dataset`. Deterministic for a fixed config.
CognitionStats generate_cognition_data(const circuits::Design& design,
                                       const techlib::TechLibrary& lib,
                                       const PolarisConfig& config,
                                       ml::Dataset& dataset);

}  // namespace polaris::core
