// Algorithm 1: Cognition Generation - the unsupervised training-data
// factory (paper contribution 2).
//
//   Gr <- graphify(D);  LG <- leak_estimate(D)
//   while Msize <= |Rgates| and run <= itr:
//     Sgates <- random(Msize, Rgates);  Dmod <- modify(Sgates, D)
//     Rgates <- Rgates - Sgates;  Lmod <- leak_estimate(Dmod)
//     for i in Sgates:
//       Sf <- structural_features(Gr, L, i)
//       label <- [compare(LG[i], Lmod[i]) >= theta_r]
//       append (Sf, label)
//
// compare() is the leakage-reduction ratio 1 - |t_mod|/|t_orig|; gates that
// were not meaningfully leaky to begin with are labelled 0 (masking them is
// wasted overhead), which matches the paper's intent of learning *where
// masking pays off*.
//
// Execution: the selection sequence only consumes the RNG (never a TVLA
// result), so every iteration's leak_estimate is an independent campaign.
// CognitionPlan submits them all - the original design's plus one per
// iteration - to a global engine::Scheduler, where they interleave with
// every other pending design's campaigns as one shard queue; finalize()
// labels in iteration order after the drain, so the dataset layout (and
// every sample in it) is bit-identical to the sequential formulation.
#pragma once

#include <future>
#include <memory>
#include <vector>

#include "circuits/suite.hpp"
#include "core/config.hpp"
#include "graph/features.hpp"
#include "masking/masking.hpp"
#include "ml/dataset.hpp"
#include "techlib/techlib.hpp"
#include "tvla/tvla.hpp"
#include "util/timer.hpp"

namespace polaris::engine {
class Scheduler;
}  // namespace polaris::engine

namespace polaris::core {

struct CognitionStats {
  std::size_t iterations = 0;
  std::size_t samples = 0;
  std::size_t positives = 0;
  double leak_estimate_seconds = 0.0;
};

/// One design's Algorithm-1 run, split around a Scheduler::drain():
/// the constructor draws every iteration's S_gates, builds the masked
/// variants, and submits all leak_estimate campaigns; finalize() labels
/// into the dataset (it drains the scheduler first, a no-op when the
/// caller - e.g. Polaris::train across many plans - already did).
/// The caller keeps `design` and `lib` alive until finalize() returns.
class CognitionPlan {
 public:
  CognitionPlan(const circuits::Design& design, const techlib::TechLibrary& lib,
                const PolarisConfig& config, engine::Scheduler& scheduler);

  /// Appends the labelled samples (iteration order) and returns the stats.
  /// leak_estimate_seconds spans submission through the last report -
  /// i.e. it includes the shared drain this plan's campaigns rode on.
  CognitionStats finalize(ml::Dataset& dataset);

 private:
  engine::Scheduler* scheduler_;
  graph::FeatureExtractor extractor_;
  double theta_r_;
  double min_leak_for_label_;
  std::vector<std::vector<netlist::GateId>> selections_;
  std::vector<masking::MaskingResult> modified_;  // alive until reports land
  std::future<tvla::LeakageReport> original_;
  std::vector<std::future<tvla::LeakageReport>> modified_reports_;
  util::Timer timer_;
};

/// Runs Algorithm 1 on one design and appends the labelled samples to
/// `dataset`. Deterministic for a fixed config: a convenience wrapper that
/// drains a private scheduler around one CognitionPlan.
CognitionStats generate_cognition_data(const circuits::Design& design,
                                       const techlib::TechLibrary& lib,
                                       const PolarisConfig& config,
                                       ml::Dataset& dataset);

}  // namespace polaris::core
