#include "core/config.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "ml/adaboost.hpp"
#include "ml/decision_tree.hpp"
#include "ml/forest.hpp"
#include "ml/gbdt.hpp"
#include "netlist/verilog.hpp"

namespace polaris::core {

std::string to_string(ModelKind kind) {
  switch (kind) {
    case ModelKind::kRandomForest: return "RandomForest";
    case ModelKind::kXgboost: return "XGBoost";
    case ModelKind::kAdaBoost: return "AdaBoost";
    case ModelKind::kDecisionTree: return "DecisionTree";
  }
  return "?";
}

ModelKind model_kind_from_string(const std::string& name) {
  std::string key;
  for (const char c : name) {
    if (c != '-' && c != '_') key.push_back(static_cast<char>(std::tolower(
        static_cast<unsigned char>(c))));
  }
  if (key == "adaboost" || key == "ada") return ModelKind::kAdaBoost;
  if (key == "randomforest" || key == "forest" || key == "rf") {
    return ModelKind::kRandomForest;
  }
  if (key == "xgboost" || key == "gbdt" || key == "xgb") {
    return ModelKind::kXgboost;
  }
  if (key == "decisiontree" || key == "tree" || key == "dt") {
    return ModelKind::kDecisionTree;
  }
  throw std::invalid_argument(
      "unknown model '" + name +
      "'; expected adaboost, forest (rf), xgboost (gbdt), or tree (dt)");
}

void validate(const PolarisConfig& config) {
  std::vector<std::string> problems;
  const auto complain = [&](const std::string& text) { problems.push_back(text); };

  // Range checks are written as negated intervals so NaN (which fails every
  // comparison) lands in the error branch instead of slipping through.
  if (!(config.theta_r >= 0.0 && config.theta_r <= 1.0)) {
    complain("theta_r = " + std::to_string(config.theta_r) +
             " (the good-mask leakage-reduction ratio must lie in [0, 1])");
  }
  if (config.iterations == 0) {
    complain("iterations = 0 (Algorithm 1 needs at least one "
             "random-insertion iteration per training design)");
  }
  if (config.mask_size == 0) {
    complain("mask_size = 0 (each iteration must mask at least one gate)");
  }
  if (config.locality == 0) {
    complain("locality = 0 (the structural features need at least one BFS "
             "neighbor; the paper uses L = 7)");
  }
  if (config.model_rounds == 0) {
    complain("model_rounds = 0 (the ensemble needs at least one round/tree)");
  }
  if (!(config.learning_rate > 0.0) || !std::isfinite(config.learning_rate)) {
    complain("learning_rate = " + std::to_string(config.learning_rate) +
             " (boosted models need a positive step size)");
  }
  if (config.tvla.traces == 0 || config.tvla.traces % 64 != 0) {
    complain("tvla.traces = " + std::to_string(config.tvla.traces) +
             " (must be a positive multiple of 64: the simulator runs "
             "64-lane bit-parallel batches)");
  }
  if (config.tvla.cycles_per_batch == 0) {
    complain("tvla.cycles_per_batch = 0 (sequential designs need at least "
             "one sampled cycle per batch)");
  }
  if (!(config.tvla.threshold > 0.0) || !std::isfinite(config.tvla.threshold)) {
    complain("tvla.threshold = " + std::to_string(config.tvla.threshold) +
             " (the |t| leakage threshold must be positive; TVLA uses 4.5)");
  }
  if (!(config.tvla.noise_std_fj >= 0.0) ||
      !std::isfinite(config.tvla.noise_std_fj)) {
    complain("tvla.noise_std_fj = " + std::to_string(config.tvla.noise_std_fj) +
             " (the noise floor is a standard deviation; it cannot be "
             "negative)");
  }
  if (config.tvla.budget.enabled) {
    if (config.tvla.budget.min_traces == 0) {
      complain("tvla.budget.min_traces = 0 (the first early-stop checkpoint "
               "needs a positive trace floor)");
    }
    if (!(config.tvla.budget.margin >= 0.0) ||
        !std::isfinite(config.tvla.budget.margin)) {
      complain("tvla.budget.margin = " +
               std::to_string(config.tvla.budget.margin) +
               " (the early-stop decision margin cannot be negative)");
    }
  }
  if (!(config.coherence_smoothing >= 0.0 &&
        config.coherence_smoothing <= 1.0)) {
    complain("coherence_smoothing = " +
             std::to_string(config.coherence_smoothing) +
             " (the neighbor-blend factor must lie in [0, 1]; 0 disables it)");
  }
  if (!(config.min_leak_for_label >= 0.0) ||
      !std::isfinite(config.min_leak_for_label)) {
    complain("min_leak_for_label = " +
             std::to_string(config.min_leak_for_label) +
             " (the pre-masking |t| floor cannot be negative)");
  }

  if (!problems.empty()) {
    std::ostringstream message;
    message << "invalid PolarisConfig (" << problems.size() << " problem"
            << (problems.size() == 1 ? "" : "s") << "):";
    for (const auto& problem : problems) message << "\n  - " << problem;
    throw std::invalid_argument(message.str());
  }
}

void write_config(serialize::Writer& out, const PolarisConfig& config) {
  // Version 1 is the pre-budget layout; a config with the early-stop
  // budget DISABLED still writes version 1 byte-for-byte, so existing
  // bundles, wire requests, and config fingerprints are unchanged unless
  // the feature is actually used (fingerprint-affecting only when
  // enabled). Budget-enabled configs append their fields as version 2.
  const bool versioned = config.tvla.budget.enabled;
  out.u32(versioned ? 2 : 1);  // config payload version
  out.u64(config.mask_size);
  out.u64(config.locality);
  out.u64(config.iterations);
  out.f64(config.theta_r);
  out.u32(static_cast<std::uint32_t>(config.model));
  out.f64(config.learning_rate);
  out.u64(config.model_rounds);
  out.boolean(config.handle_imbalance);
  out.u64(config.tvla.traces);
  out.u64(config.tvla.warmup_cycles);
  out.u64(config.tvla.cycles_per_batch);
  out.f64(config.tvla.threshold);
  out.u64(config.tvla.seed);
  out.u64(config.tvla.threads);
  out.f64(config.tvla.noise_std_fj);
  std::vector<std::uint8_t> classes;
  classes.reserve(config.tvla.input_class.size());
  for (const auto c : config.tvla.input_class) {
    classes.push_back(static_cast<std::uint8_t>(c));
  }
  out.u8_vec(classes);
  out.bool_vec(config.tvla.fixed_input);
  out.bool_vec(config.tvla.fixed_input_b);
  out.f64(config.min_leak_for_label);
  out.u32(static_cast<std::uint32_t>(config.scheme));
  out.f64(config.coherence_smoothing);
  out.u64(config.seed);
  out.u64(config.threads);
  if (versioned) {
    out.boolean(config.tvla.budget.enabled);
    out.u64(config.tvla.budget.min_traces);
    out.f64(config.tvla.budget.margin);
  }
}

PolarisConfig read_config(serialize::Reader& in) {
  // Appends-only policy: version 2 adds the early-stop budget fields at
  // the end; a version-1 payload leaves them at their defaults (disabled).
  const std::uint32_t version = in.u32();
  PolarisConfig config;
  config.mask_size = in.u64();
  config.locality = in.u64();
  config.iterations = in.u64();
  config.theta_r = in.f64();
  const std::uint32_t model_raw = in.u32();
  if (model_raw > static_cast<std::uint32_t>(ModelKind::kDecisionTree)) {
    throw std::runtime_error("polaris archive: unknown model kind " +
                             std::to_string(model_raw));
  }
  config.model = static_cast<ModelKind>(model_raw);
  config.learning_rate = in.f64();
  config.model_rounds = in.u64();
  config.handle_imbalance = in.boolean();
  config.tvla.traces = in.u64();
  config.tvla.warmup_cycles = in.u64();
  config.tvla.cycles_per_batch = in.u64();
  config.tvla.threshold = in.f64();
  config.tvla.seed = in.u64();
  config.tvla.threads = in.u64();
  config.tvla.noise_std_fj = in.f64();
  config.tvla.input_class.clear();
  for (const std::uint8_t c : in.u8_vec()) {
    config.tvla.input_class.push_back(static_cast<tvla::InputClass>(c));
  }
  config.tvla.fixed_input = in.bool_vec();
  config.tvla.fixed_input_b = in.bool_vec();
  config.min_leak_for_label = in.f64();
  const std::uint32_t scheme_raw = in.u32();
  if (scheme_raw > static_cast<std::uint32_t>(masking::Scheme::kDom)) {
    throw std::runtime_error("polaris archive: unknown masking scheme " +
                             std::to_string(scheme_raw));
  }
  config.scheme = static_cast<masking::Scheme>(scheme_raw);
  config.coherence_smoothing = in.f64();
  config.seed = in.u64();
  config.threads = in.u64();
  if (version >= 2) {
    config.tvla.budget.enabled = in.boolean();
    config.tvla.budget.min_traces = in.u64();
    config.tvla.budget.margin = in.f64();
  }
  return config;
}

std::uint64_t config_fingerprint(const PolarisConfig& config) {
  // Thread counts never change results (DESIGN.md determinism contract), so
  // they are excluded: the fingerprint identifies *what* was computed.
  PolarisConfig canonical = config;
  canonical.threads = 0;
  canonical.tvla.threads = 0;
  serialize::Writer writer;
  write_config(writer, canonical);
  std::uint64_t hash = 14695981039346656037ULL;  // FNV-1a 64
  for (const std::uint8_t byte : writer.bytes()) {
    hash = (hash ^ byte) * 1099511628211ULL;
  }
  return hash;
}

std::uint64_t design_fingerprint(const circuits::Design& design) {
  std::uint64_t hash = 14695981039346656037ULL;  // FNV-1a 64
  const auto mix = [&hash](const char* data, std::size_t size) {
    for (std::size_t i = 0; i < size; ++i) {
      hash = (hash ^ static_cast<std::uint8_t>(data[i])) * 1099511628211ULL;
    }
  };
  mix(design.name.data(), design.name.size());
  hash = (hash ^ design.roles.size()) * 1099511628211ULL;
  for (const auto role : design.roles) {
    hash = (hash ^ static_cast<std::uint8_t>(role)) * 1099511628211ULL;
  }
  const std::string verilog = netlist::to_verilog(design.netlist);
  mix(verilog.data(), verilog.size());
  return hash;
}

std::unique_ptr<ml::Classifier> make_model(const PolarisConfig& config) {
  switch (config.model) {
    case ModelKind::kRandomForest: {
      ml::ForestConfig forest;
      forest.trees = config.model_rounds / 4 + 20;
      forest.max_depth = 8;
      forest.seed = config.seed;
      return std::make_unique<ml::RandomForest>(forest);
    }
    case ModelKind::kXgboost: {
      ml::GbdtConfig gbdt;
      gbdt.rounds = config.model_rounds;
      gbdt.max_depth = 4;
      gbdt.learning_rate = config.learning_rate;
      gbdt.seed = config.seed;
      return std::make_unique<ml::Gbdt>(gbdt);
    }
    case ModelKind::kAdaBoost: {
      ml::AdaBoostConfig ada;
      ada.rounds = config.model_rounds;
      ada.max_depth = 2;
      // The SAMME stage weights tolerate a larger step than GBDT shrinkage;
      // the paper's 0.01 is honoured via `learning_rate` scaling.
      ada.learning_rate = std::max(config.learning_rate, 0.01) * 50.0;
      ada.seed = config.seed;
      return std::make_unique<ml::AdaBoost>(ada);
    }
    case ModelKind::kDecisionTree: {
      ml::DecisionTreeConfig tree;
      tree.max_depth = 8;
      tree.seed = config.seed;
      return std::make_unique<ml::DecisionTree>(tree);
    }
  }
  return nullptr;
}

std::vector<tvla::InputClass> input_classes_for(const circuits::Design& design) {
  std::vector<tvla::InputClass> classes;
  classes.reserve(design.roles.size());
  for (const auto role : design.roles) {
    switch (role) {
      case circuits::InputRole::kData:
        classes.push_back(tvla::InputClass::kSensitive);
        break;
      case circuits::InputRole::kKey:
        classes.push_back(tvla::InputClass::kFixedCommon);
        break;
      case circuits::InputRole::kControl:
        classes.push_back(tvla::InputClass::kRandomCommon);
        break;
    }
  }
  return classes;
}

tvla::TvlaConfig tvla_config_for(const PolarisConfig& config,
                                 const circuits::Design& design) {
  tvla::TvlaConfig tvla = config.tvla;
  if (config.threads != 0) tvla.threads = config.threads;
  if (!design.roles.empty()) tvla.input_class = input_classes_for(design);
  return tvla;
}

}  // namespace polaris::core
