#include "core/config.hpp"

#include "ml/adaboost.hpp"
#include "ml/forest.hpp"
#include "ml/gbdt.hpp"

namespace polaris::core {

std::string to_string(ModelKind kind) {
  switch (kind) {
    case ModelKind::kRandomForest: return "RandomForest";
    case ModelKind::kXgboost: return "XGBoost";
    case ModelKind::kAdaBoost: return "AdaBoost";
  }
  return "?";
}

std::unique_ptr<ml::Classifier> make_model(const PolarisConfig& config) {
  switch (config.model) {
    case ModelKind::kRandomForest: {
      ml::ForestConfig forest;
      forest.trees = config.model_rounds / 4 + 20;
      forest.max_depth = 8;
      forest.seed = config.seed;
      return std::make_unique<ml::RandomForest>(forest);
    }
    case ModelKind::kXgboost: {
      ml::GbdtConfig gbdt;
      gbdt.rounds = config.model_rounds;
      gbdt.max_depth = 4;
      gbdt.learning_rate = config.learning_rate;
      gbdt.seed = config.seed;
      return std::make_unique<ml::Gbdt>(gbdt);
    }
    case ModelKind::kAdaBoost: {
      ml::AdaBoostConfig ada;
      ada.rounds = config.model_rounds;
      ada.max_depth = 2;
      // The SAMME stage weights tolerate a larger step than GBDT shrinkage;
      // the paper's 0.01 is honoured via `learning_rate` scaling.
      ada.learning_rate = std::max(config.learning_rate, 0.01) * 50.0;
      ada.seed = config.seed;
      return std::make_unique<ml::AdaBoost>(ada);
    }
  }
  return nullptr;
}

std::vector<tvla::InputClass> input_classes_for(const circuits::Design& design) {
  std::vector<tvla::InputClass> classes;
  classes.reserve(design.roles.size());
  for (const auto role : design.roles) {
    switch (role) {
      case circuits::InputRole::kData:
        classes.push_back(tvla::InputClass::kSensitive);
        break;
      case circuits::InputRole::kKey:
        classes.push_back(tvla::InputClass::kFixedCommon);
        break;
      case circuits::InputRole::kControl:
        classes.push_back(tvla::InputClass::kRandomCommon);
        break;
    }
  }
  return classes;
}

tvla::TvlaConfig tvla_config_for(const PolarisConfig& config,
                                 const circuits::Design& design) {
  tvla::TvlaConfig tvla = config.tvla;
  if (config.threads != 0) tvla.threads = config.threads;
  if (!design.roles.empty()) tvla.input_class = input_classes_for(design);
  return tvla;
}

}  // namespace polaris::core
