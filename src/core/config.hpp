// POLARIS tool configuration (paper contribution 3: "Implemented the
// POLARIS framework as a parameterized tool").
//
// The key parameters mirror Sec. V-A: Msize = 200, L = 7, itr = 100,
// theta_r = 0.70, AdaBoost as the default model.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "circuits/suite.hpp"
#include "masking/masking.hpp"
#include "ml/model.hpp"
#include "serialize/archive.hpp"
#include "tvla/tvla.hpp"

namespace polaris::core {

enum class ModelKind {
  kRandomForest,
  kXgboost,
  kAdaBoost,      // the paper's pick (Table III)
  kDecisionTree,  // single-CART baseline (cheapest model to serve)
};

[[nodiscard]] std::string to_string(ModelKind kind);
/// Parses user-facing model names ("adaboost", "forest"/"rf", "xgboost",
/// "tree"/"dt"; case-insensitive). Throws std::invalid_argument listing the
/// accepted spellings on anything else.
[[nodiscard]] ModelKind model_kind_from_string(const std::string& name);

struct PolarisConfig {
  // --- Algorithm 1 (Cognition Generation) ---------------------------------
  /// Msize: gates masked per random-insertion iteration.
  std::size_t mask_size = 200;
  /// L: BFS locality of the structural features.
  std::size_t locality = 7;
  /// itr: maximum random-insertion iterations per training design.
  std::size_t iterations = 100;
  /// theta_r: leakage-reduction ratio labelling a masking "good" (1).
  double theta_r = 0.70;

  // --- model ----------------------------------------------------------------
  ModelKind model = ModelKind::kAdaBoost;
  /// Learning rate for the boosted models (paper: 0.01).
  double learning_rate = 0.01;
  /// Boosting rounds / forest size.
  std::size_t model_rounds = 300;
  /// SMOTE for Random Forest, class weights for the boosted models
  /// (Sec. V-B); disabled only for ablations.
  bool handle_imbalance = true;

  // --- leakage estimation -----------------------------------------------------
  tvla::TvlaConfig tvla;
  /// Minimum |t| a gate must show pre-masking for its reduction ratio to be
  /// meaningful (below this the sample is labelled 0: nothing to fix).
  double min_leak_for_label = 2.5;

  // --- masking ---------------------------------------------------------------
  masking::Scheme scheme = masking::Scheme::kTrichina;
  /// Algorithm-2 refinement: blend each gate's score with its graph
  /// neighbors' mean score before ranking. Masked regions only suppress
  /// leakage *inside* the region (boundary demasking re-exposes crossing
  /// signals), so coherent selections dominate scattered ones; smoothing
  /// encodes that prior. 0 = off (the paper's literal per-gate ranking).
  double coherence_smoothing = 0.5;

  std::uint64_t seed = 1;

  /// Worker threads for the whole flow: Algorithm 1 runs its labelling
  /// campaigns concurrently and every TVLA campaign shards its trace
  /// budget. When nonzero this overrides `tvla.threads` via
  /// tvla_config_for; 0 (auto) leaves an explicit `tvla.threads` alone.
  /// 0 = all hardware threads, 1 = fully serial. Results are independent
  /// of it.
  std::size_t threads = 0;
};

/// Validates every knob once, up front (reused by Polaris's constructor and
/// the CLI's flag parsing). Throws std::invalid_argument with an actionable
/// message naming each out-of-range knob and its accepted range.
void validate(const PolarisConfig& config);

/// Archive bindings (the CONF chunk of a .plb bundle). Round-trips every
/// knob bit-exactly, so a loaded bundle reproduces score_gates verbatim.
void write_config(serialize::Writer& out, const PolarisConfig& config);
[[nodiscard]] PolarisConfig read_config(serialize::Reader& in);

/// FNV-1a hash over the canonical serialization with the host-local
/// `threads` knobs zeroed - identical fingerprints guarantee identical
/// results, regardless of where or how parallel the run was.
[[nodiscard]] std::uint64_t config_fingerprint(const PolarisConfig& config);

/// FNV-1a hash over a design's content identity: name, input roles, and
/// the canonical structural-Verilog serialization of the netlist. Together
/// with config_fingerprint this keys the serve daemon's result cache -
/// equal fingerprints guarantee byte-identical audit/mask/score results
/// (every knob that can change a result is covered by one of the two).
[[nodiscard]] std::uint64_t design_fingerprint(const circuits::Design& design);

/// Instantiates the configured classifier.
[[nodiscard]] std::unique_ptr<ml::Classifier> make_model(const PolarisConfig& config);

/// Maps the suite's input roles onto the TVLA protocol classes.
[[nodiscard]] std::vector<tvla::InputClass> input_classes_for(
    const circuits::Design& design);

/// TVLA config for a specific design: copies the template and fills the
/// per-input classes from the design's roles.
[[nodiscard]] tvla::TvlaConfig tvla_config_for(const PolarisConfig& config,
                                               const circuits::Design& design);

}  // namespace polaris::core
