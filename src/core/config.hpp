// POLARIS tool configuration (paper contribution 3: "Implemented the
// POLARIS framework as a parameterized tool").
//
// The key parameters mirror Sec. V-A: Msize = 200, L = 7, itr = 100,
// theta_r = 0.70, AdaBoost as the default model.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "circuits/suite.hpp"
#include "masking/masking.hpp"
#include "ml/model.hpp"
#include "tvla/tvla.hpp"

namespace polaris::core {

enum class ModelKind {
  kRandomForest,
  kXgboost,
  kAdaBoost,  // the paper's pick (Table III)
};

[[nodiscard]] std::string to_string(ModelKind kind);

struct PolarisConfig {
  // --- Algorithm 1 (Cognition Generation) ---------------------------------
  /// Msize: gates masked per random-insertion iteration.
  std::size_t mask_size = 200;
  /// L: BFS locality of the structural features.
  std::size_t locality = 7;
  /// itr: maximum random-insertion iterations per training design.
  std::size_t iterations = 100;
  /// theta_r: leakage-reduction ratio labelling a masking "good" (1).
  double theta_r = 0.70;

  // --- model ----------------------------------------------------------------
  ModelKind model = ModelKind::kAdaBoost;
  /// Learning rate for the boosted models (paper: 0.01).
  double learning_rate = 0.01;
  /// Boosting rounds / forest size.
  std::size_t model_rounds = 300;
  /// SMOTE for Random Forest, class weights for the boosted models
  /// (Sec. V-B); disabled only for ablations.
  bool handle_imbalance = true;

  // --- leakage estimation -----------------------------------------------------
  tvla::TvlaConfig tvla;
  /// Minimum |t| a gate must show pre-masking for its reduction ratio to be
  /// meaningful (below this the sample is labelled 0: nothing to fix).
  double min_leak_for_label = 2.5;

  // --- masking ---------------------------------------------------------------
  masking::Scheme scheme = masking::Scheme::kTrichina;
  /// Algorithm-2 refinement: blend each gate's score with its graph
  /// neighbors' mean score before ranking. Masked regions only suppress
  /// leakage *inside* the region (boundary demasking re-exposes crossing
  /// signals), so coherent selections dominate scattered ones; smoothing
  /// encodes that prior. 0 = off (the paper's literal per-gate ranking).
  double coherence_smoothing = 0.5;

  std::uint64_t seed = 1;

  /// Worker threads for the whole flow: Algorithm 1 runs its labelling
  /// campaigns concurrently and every TVLA campaign shards its trace
  /// budget. When nonzero this overrides `tvla.threads` via
  /// tvla_config_for; 0 (auto) leaves an explicit `tvla.threads` alone.
  /// 0 = all hardware threads, 1 = fully serial. Results are independent
  /// of it.
  std::size_t threads = 0;
};

/// Instantiates the configured classifier.
[[nodiscard]] std::unique_ptr<ml::Classifier> make_model(const PolarisConfig& config);

/// Maps the suite's input roles onto the TVLA protocol classes.
[[nodiscard]] std::vector<tvla::InputClass> input_classes_for(
    const circuits::Design& design);

/// TVLA config for a specific design: copies the template and fills the
/// per-input classes from the design's roles.
[[nodiscard]] tvla::TvlaConfig tvla_config_for(const PolarisConfig& config,
                                               const circuits::Design& design);

}  // namespace polaris::core
