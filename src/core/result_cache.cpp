#include "core/result_cache.hpp"

#include "obs/obs.hpp"

namespace polaris::core {

namespace {
// Per-instance counters live in the members below (the server's ping reply
// reports its own cache); the global registry additionally aggregates all
// caches in the process for `client stats` / bench readouts.
struct CacheMetrics {
  obs::Counter& hits = obs::Registry::global().counter("cache.hits");
  obs::Counter& misses = obs::Registry::global().counter("cache.misses");
  obs::Counter& bytes = obs::Registry::global().counter("cache.bytes");
  obs::Counter& evictions =
      obs::Registry::global().counter("cache.evictions");
  static CacheMetrics& get() {
    static CacheMetrics metrics;
    return metrics;
  }
};
}  // namespace

ResultCache::Body ResultCache::get(std::uint64_t key) {
  auto& metrics = CacheMetrics::get();
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    metrics.misses.add();
    return nullptr;
  }
  ++hits_;
  metrics.hits.add();
  return it->second;
}

void ResultCache::put(std::uint64_t key, Body body) {
  if (capacity_ == 0) return;
  auto& metrics = CacheMetrics::get();
  const std::uint64_t incoming = body == nullptr ? 0 : body->size();
  const std::lock_guard<std::mutex> lock(mutex_);
  // `bytes_` tracks resident bytes, so every path below that adds or drops
  // an entry adjusts it under the same lock; the global gauge mirrors each
  // delta (Counter::sub wraps, so cross-shard sums stay exact).
  const auto [it, inserted] = entries_.try_emplace(key, std::move(body));
  if (!inserted) {
    // Refresh: replace the resident body's size, don't double-count it.
    const std::uint64_t old_size =
        it->second == nullptr ? 0 : it->second->size();
    bytes_ += incoming - old_size;
    metrics.bytes.add(incoming);
    metrics.bytes.sub(old_size);
    it->second = std::move(body);  // refresh (identical bytes in practice)
    return;
  }
  bytes_ += incoming;
  metrics.bytes.add(incoming);
  order_.push_back(key);
  while (entries_.size() > capacity_) {
    const auto victim = entries_.find(order_.front());
    const std::uint64_t evicted =
        victim->second == nullptr ? 0 : victim->second->size();
    bytes_ -= evicted;
    metrics.bytes.sub(evicted);
    entries_.erase(victim);
    order_.pop_front();
    metrics.evictions.add();
  }
}

std::size_t ResultCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::uint64_t ResultCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t ResultCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t ResultCache::bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return bytes_;
}

}  // namespace polaris::core
