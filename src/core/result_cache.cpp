#include "core/result_cache.hpp"

namespace polaris::core {

ResultCache::Body ResultCache::get(std::uint64_t key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return it->second;
}

void ResultCache::put(std::uint64_t key, Body body) {
  if (capacity_ == 0) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = entries_.try_emplace(key, std::move(body));
  if (!inserted) {
    it->second = std::move(body);  // refresh (identical bytes in practice)
    return;
  }
  order_.push_back(key);
  while (entries_.size() > capacity_) {
    entries_.erase(order_.front());
    order_.pop_front();
  }
}

std::size_t ResultCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::uint64_t ResultCache::hits() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t ResultCache::misses() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

}  // namespace polaris::core
