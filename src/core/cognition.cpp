#include "core/cognition.hpp"

#include <algorithm>
#include <cmath>

#include "graph/features.hpp"
#include "masking/masking.hpp"
#include "tvla/tvla.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace polaris::core {

using netlist::GateId;

CognitionStats generate_cognition_data(const circuits::Design& design,
                                       const techlib::TechLibrary& lib,
                                       const PolarisConfig& config,
                                       ml::Dataset& dataset) {
  CognitionStats stats;
  const auto tvla_config = tvla_config_for(config, design);

  graph::FeatureExtractor extractor(design.netlist,
                                    graph::FeatureSpec{config.locality});

  util::Timer leak_timer;
  const tvla::LeakageReport original =
      tvla::run_fixed_vs_random(design.netlist, lib, tvla_config);
  stats.leak_estimate_seconds += leak_timer.seconds();

  // R_gates: the maskable pool, consumed without replacement.
  std::vector<GateId> pool;
  for (GateId g = 0; g < design.netlist.gate_count(); ++g) {
    if (netlist::is_maskable(design.netlist.gate(g).type)) pool.push_back(g);
  }

  util::Xoshiro256 rng(config.seed ^ 0xc09717102baULL ^
                       (design.netlist.gate_count() << 8));
  const std::size_t mask_size = std::max<std::size_t>(1, config.mask_size);

  while (pool.size() >= mask_size && stats.iterations < config.iterations) {
    // S_gates <- random(Msize, R): partial Fisher-Yates from the back.
    std::vector<GateId> selected;
    selected.reserve(mask_size);
    for (std::size_t i = 0; i < mask_size; ++i) {
      const std::size_t j = rng.bounded(pool.size());
      selected.push_back(pool[j]);
      pool[j] = pool.back();
      pool.pop_back();
    }

    const auto modified =
        masking::apply_masking(design.netlist, selected, config.scheme);

    leak_timer.reset();
    const tvla::LeakageReport mod =
        tvla::run_fixed_vs_random(modified.design, lib, tvla_config);
    stats.leak_estimate_seconds += leak_timer.seconds();

    for (const GateId g : selected) {
      const double t_orig = std::fabs(original.t_value(g));
      const double t_mod = std::fabs(mod.t_value(g));
      int label = 0;
      if (t_orig >= config.min_leak_for_label) {
        const double ratio = 1.0 - t_mod / t_orig;  // compare(LG[i], Lmod[i])
        label = ratio >= config.theta_r ? 1 : 0;
      }
      dataset.add(extractor.extract(g), label);
      ++stats.samples;
      stats.positives += static_cast<std::size_t>(label);
    }
    ++stats.iterations;
  }
  return stats;
}

}  // namespace polaris::core
