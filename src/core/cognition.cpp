#include "core/cognition.hpp"

#include <algorithm>
#include <cmath>

#include "engine/thread_pool.hpp"
#include "graph/features.hpp"
#include "masking/masking.hpp"
#include "tvla/tvla.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace polaris::core {

using netlist::GateId;

CognitionStats generate_cognition_data(const circuits::Design& design,
                                       const techlib::TechLibrary& lib,
                                       const PolarisConfig& config,
                                       ml::Dataset& dataset) {
  CognitionStats stats;
  const auto tvla_config = tvla_config_for(config, design);

  graph::FeatureExtractor extractor(design.netlist,
                                    graph::FeatureSpec{config.locality});

  // Phase 1 - draw every iteration's S_gates up front. The selection
  // sequence only consumes the RNG (never a TVLA result), so pre-drawing is
  // equivalent to the sequential loop and frees the campaigns to run
  // concurrently. R_gates is consumed without replacement.
  std::vector<GateId> pool;
  for (GateId g = 0; g < design.netlist.gate_count(); ++g) {
    if (netlist::is_maskable(design.netlist.gate(g).type)) pool.push_back(g);
  }

  util::Xoshiro256 rng(config.seed ^ 0xc09717102baULL ^
                       (design.netlist.gate_count() << 8));
  const std::size_t mask_size = std::max<std::size_t>(1, config.mask_size);

  std::vector<std::vector<GateId>> selections;
  while (pool.size() >= mask_size && selections.size() < config.iterations) {
    // S_gates <- random(Msize, R): partial Fisher-Yates from the back.
    std::vector<GateId> selected;
    selected.reserve(mask_size);
    for (std::size_t i = 0; i < mask_size; ++i) {
      const std::size_t j = rng.bounded(pool.size());
      selected.push_back(pool[j]);
      pool[j] = pool.back();
      pool.pop_back();
    }
    selections.push_back(std::move(selected));
  }
  stats.iterations = selections.size();

  // Phase 2 - the original design's leak_estimate (shards in parallel),
  // then one campaign per iteration, all independent: run them concurrently
  // on the shared pool. Each task keeps only its selection's |t| values
  // (mask_size doubles), never the whole per-group report.
  // leak_estimate_seconds is the wall-clock of this phase.
  util::Timer leak_timer;
  const tvla::LeakageReport original =
      tvla::run_fixed_vs_random(design.netlist, lib, tvla_config);
  std::vector<std::vector<double>> t_mod(selections.size());
  engine::ThreadPool::shared().parallel_for(
      selections.size(), engine::ThreadPool::resolve_threads(config.threads),
      [&](std::size_t it) {
        const auto modified = masking::apply_masking(
            design.netlist, selections[it], config.scheme);
        const tvla::LeakageReport mod =
            tvla::run_fixed_vs_random(modified.design, lib, tvla_config);
        t_mod[it].reserve(selections[it].size());
        for (const GateId g : selections[it]) {
          t_mod[it].push_back(std::fabs(mod.t_value(g)));
        }
      });
  stats.leak_estimate_seconds += leak_timer.seconds();

  // Phase 3 - label in iteration order (deterministic dataset layout).
  for (std::size_t it = 0; it < selections.size(); ++it) {
    for (std::size_t s = 0; s < selections[it].size(); ++s) {
      const GateId g = selections[it][s];
      const double t_orig = std::fabs(original.t_value(g));
      int label = 0;
      if (t_orig >= config.min_leak_for_label) {
        const double ratio = 1.0 - t_mod[it][s] / t_orig;  // compare(LG, Lmod)
        label = ratio >= config.theta_r ? 1 : 0;
      }
      dataset.add(extractor.extract(g), label);
      ++stats.samples;
      stats.positives += static_cast<std::size_t>(label);
    }
  }
  return stats;
}

}  // namespace polaris::core
