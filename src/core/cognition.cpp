#include "core/cognition.hpp"

#include <algorithm>
#include <cmath>

#include "engine/scheduler.hpp"
#include "util/rng.hpp"

namespace polaris::core {

using netlist::GateId;

CognitionPlan::CognitionPlan(const circuits::Design& design,
                             const techlib::TechLibrary& lib,
                             const PolarisConfig& config,
                             engine::Scheduler& scheduler)
    : scheduler_(&scheduler),
      extractor_(design.netlist, graph::FeatureSpec{config.locality}),
      theta_r_(config.theta_r),
      min_leak_for_label_(config.min_leak_for_label) {
  const auto tvla_config = tvla_config_for(config, design);

  // Phase 1 - draw every iteration's S_gates up front. The selection
  // sequence only consumes the RNG (never a TVLA result), so pre-drawing is
  // equivalent to the sequential loop and frees the campaigns to run
  // concurrently. R_gates is consumed without replacement.
  std::vector<GateId> pool;
  for (GateId g = 0; g < design.netlist.gate_count(); ++g) {
    if (netlist::is_maskable(design.netlist.gate(g).type)) pool.push_back(g);
  }

  util::Xoshiro256 rng(config.seed ^ 0xc09717102baULL ^
                       (design.netlist.gate_count() << 8));
  const std::size_t mask_size = std::max<std::size_t>(1, config.mask_size);

  while (pool.size() >= mask_size && selections_.size() < config.iterations) {
    // S_gates <- random(Msize, R): partial Fisher-Yates from the back.
    std::vector<GateId> selected;
    selected.reserve(mask_size);
    for (std::size_t i = 0; i < mask_size; ++i) {
      const std::size_t j = rng.bounded(pool.size());
      selected.push_back(pool[j]);
      pool[j] = pool.back();
      pool.pop_back();
    }
    selections_.push_back(std::move(selected));
  }

  // Phase 2 - submit the original design's leak_estimate plus one campaign
  // per iteration into the global shard queue; they interleave with every
  // other pending campaign. Each campaign compiles its design once
  // (sim::CompiledDesign) and shares the plan across all of its shards, so
  // a labelling sweep runs one topological_order per masked variant instead
  // of one per shard. The masked variants must outlive their campaigns, so
  // they are materialized here (reserve: the netlists' addresses are
  // captured by the shard closures and must not move). Peak memory is
  // therefore designs x iterations masked netlists (plus their compiled
  // plans) held through the drain - a few MB for the built-in training
  // suites (<1k-gate designs); if training suites ever grow to large
  // netlists, the seam is a submit overload that lets each campaign own
  // (and lazily build) its input.
  timer_.reset();
  original_ = tvla::submit_fixed_vs_random(scheduler, design.netlist, lib,
                                           tvla_config);
  modified_.reserve(selections_.size());
  modified_reports_.reserve(selections_.size());
  for (const auto& selection : selections_) {
    modified_.push_back(
        masking::apply_masking(design.netlist, selection, config.scheme));
    modified_reports_.push_back(tvla::submit_fixed_vs_random(
        scheduler, modified_.back().design, lib, tvla_config));
  }
}

CognitionStats CognitionPlan::finalize(ml::Dataset& dataset) {
  CognitionStats stats;
  stats.iterations = selections_.size();

  // Drain defensively: a no-op when the caller already drained, and it
  // keeps a lone finalize() from blocking on futures nobody is running.
  scheduler_->drain();

  // Each iteration keeps only its selection's |t| values, never the full
  // report.
  const tvla::LeakageReport original = original_.get();
  std::vector<std::vector<double>> t_mod(selections_.size());
  for (std::size_t it = 0; it < selections_.size(); ++it) {
    const tvla::LeakageReport mod = modified_reports_[it].get();
    t_mod[it].reserve(selections_[it].size());
    for (const GateId g : selections_[it]) {
      t_mod[it].push_back(std::fabs(mod.t_value(g)));
    }
  }
  modified_.clear();  // the masked netlists are no longer referenced
  stats.leak_estimate_seconds = timer_.seconds();

  // Phase 3 - label in iteration order (deterministic dataset layout).
  for (std::size_t it = 0; it < selections_.size(); ++it) {
    for (std::size_t s = 0; s < selections_[it].size(); ++s) {
      const GateId g = selections_[it][s];
      const double t_orig = std::fabs(original.t_value(g));
      int label = 0;
      if (t_orig >= min_leak_for_label_) {
        const double ratio = 1.0 - t_mod[it][s] / t_orig;  // compare(LG, Lmod)
        label = ratio >= theta_r_ ? 1 : 0;
      }
      dataset.add(extractor_.extract(g), label);
      ++stats.samples;
      stats.positives += static_cast<std::size_t>(label);
    }
  }
  return stats;
}

CognitionStats generate_cognition_data(const circuits::Design& design,
                                       const techlib::TechLibrary& lib,
                                       const PolarisConfig& config,
                                       ml::Dataset& dataset) {
  engine::Scheduler scheduler(config.threads);
  CognitionPlan plan(design, lib, config, scheduler);
  scheduler.drain();
  return plan.finalize(dataset);
}

}  // namespace polaris::core
