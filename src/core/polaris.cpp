#include "core/polaris.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "engine/thread_pool.hpp"
#include "graph/features.hpp"
#include "masking/masking.hpp"
#include "ml/smote.hpp"
#include "util/timer.hpp"

namespace polaris::core {

using netlist::GateId;

Polaris::Polaris(PolarisConfig config) : config_(std::move(config)) {
  model_ = make_model(config_);
}

TrainingSummary Polaris::train(
    std::span<const circuits::Design> training_designs,
    const techlib::TechLibrary& lib) {
  TrainingSummary summary;
  data_ = ml::Dataset{};

  util::Timer timer;
  // Algorithm 1 is embarrassingly parallel across training designs: each
  // design labels into its own dataset (so the shared pool can interleave
  // designs and their campaigns freely), merged in design order afterwards
  // for a deterministic sample layout.
  std::vector<ml::Dataset> per_design(training_designs.size());
  engine::ThreadPool::shared().parallel_for(
      training_designs.size(),
      engine::ThreadPool::resolve_threads(config_.threads),
      [&](std::size_t i) {
        generate_cognition_data(training_designs[i], lib, config_,
                                per_design[i]);
      });
  for (const auto& partial : per_design) data_.append(partial);
  summary.dataset_seconds = timer.seconds();
  summary.samples = data_.size();
  summary.positives = data_.positives();
  if (data_.empty()) {
    throw std::runtime_error("Polaris::train: Algorithm 1 produced no samples");
  }

  // Imbalance handling (Sec. V-B): SMOTE for the forest, class-balance
  // weights for the boosted models.
  timer.reset();
  if (config_.handle_imbalance) {
    if (config_.model == ModelKind::kRandomForest) {
      data_ = ml::smote_oversample(data_, ml::SmoteConfig{.seed = config_.seed});
    } else {
      data_.apply_class_balance_weights();
    }
  }
  model_->fit(data_);
  summary.training_seconds = timer.seconds();

  timer.reset();
  // Rule literals use only the binary structural features (type one-hots
  // and sub-graph adjacency), matching the paper's Table V vocabulary; the
  // three normalized scalars are excluded.
  xai::RuleExtractionConfig rule_config;
  const graph::FeatureSpec spec{config_.locality};
  rule_config.allowed_features.assign(spec.dim(), true);
  for (std::size_t f = spec.dim() - spec.scalar_dims(); f < spec.dim(); ++f) {
    rule_config.allowed_features[f] = false;
  }
  rules_ = xai::extract_rules(*model_, data_, rule_config);
  summary.rules_seconds = timer.seconds();

  trained_ = true;
  return summary;
}

std::vector<double> Polaris::score_gates(const circuits::Design& design,
                                         InferenceMode mode) const {
  if (!trained_) throw std::logic_error("Polaris: model not trained");
  graph::FeatureExtractor extractor(design.netlist,
                                    graph::FeatureSpec{config_.locality});
  std::vector<double> scores(design.netlist.gate_count(), 0.0);
  for (GateId g = 0; g < design.netlist.gate_count(); ++g) {
    if (!netlist::is_maskable(design.netlist.gate(g).type)) continue;
    const auto features = extractor.extract(g);
    switch (mode) {
      case InferenceMode::kModel:
        scores[g] = model_->predict_proba(features);
        break;
      case InferenceMode::kRules:
        scores[g] = rules_.score(features);
        break;
      case InferenceMode::kModelPlusRules:
        scores[g] = rules_.combined_score(*model_, features);
        break;
    }
  }

  // Coherence smoothing (see PolarisConfig): pull each maskable gate's
  // score toward its maskable neighbors' mean so contiguous regions rise
  // through the ranking together.
  const double alpha = config_.coherence_smoothing;
  if (alpha > 0.0) {
    const auto& graph = extractor.graph();
    std::vector<double> smoothed = scores;
    for (GateId g = 0; g < design.netlist.gate_count(); ++g) {
      if (!netlist::is_maskable(design.netlist.gate(g).type)) continue;
      double sum = 0.0;
      std::size_t count = 0;
      for (const GateId nb : graph.neighbors(g)) {
        if (netlist::is_maskable(design.netlist.gate(nb).type)) {
          sum += scores[nb];
          ++count;
        }
      }
      if (count != 0) {
        smoothed[g] = (1.0 - alpha) * scores[g] + alpha * sum /
                                                      static_cast<double>(count);
      }
    }
    scores.swap(smoothed);
  }
  return scores;
}

MaskingOutcome Polaris::mask_design(const circuits::Design& design,
                                    const techlib::TechLibrary& lib,
                                    std::size_t mask_size, InferenceMode mode,
                                    bool verify) const {
  util::Timer timer;

  // Algorithm 2 lines 4-8: score every gate, sort descending; Ctop is the
  // top Msize of the ranking (scores are model probabilities, so per-design
  // calibration shifts do not matter - only the order does).
  const auto scores = score_gates(design, mode);
  std::vector<GateId> ranked;
  ranked.reserve(scores.size());
  for (GateId g = 0; g < scores.size(); ++g) {
    if (scores[g] > 0.0) ranked.push_back(g);
  }
  std::sort(ranked.begin(), ranked.end(), [&](GateId a, GateId b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;  // deterministic tie-break
  });
  if (ranked.size() > mask_size) ranked.resize(mask_size);

  // Line 9: modify(D, Ctop, Msize).
  auto rewritten =
      masking::apply_masking(design.netlist, ranked, config_.scheme);

  MaskingOutcome outcome{std::move(rewritten.design), std::move(ranked),
                         timer.seconds(), std::nullopt};

  if (verify) {  // line 10: leakage estimate of the masked design
    outcome.verification = tvla::run_fixed_vs_random(
        outcome.masked, lib, tvla_config_for(config_, design));
  }
  return outcome;
}

}  // namespace polaris::core
