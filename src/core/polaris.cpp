#include "core/polaris.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "engine/scheduler.hpp"
#include "engine/thread_pool.hpp"
#include "graph/features.hpp"
#include "masking/masking.hpp"
#include "ml/smote.hpp"
#include "serialize/model_io.hpp"
#include "util/timer.hpp"

namespace polaris::core {

using netlist::GateId;

namespace {
// Bundle chunk tags (.plb layout; see DESIGN.md "Bundle persistence").
constexpr std::string_view kHeadTag = "HEAD";
constexpr std::string_view kConfTag = "CONF";
constexpr std::string_view kModelTag = "MODL";
constexpr std::string_view kRulesTag = "RULE";
constexpr std::string_view kDataTag = "DATA";
constexpr std::uint32_t kBundleVersion = 1;

/// Parses the HEAD chunk (caller has entered it). The version gate runs
/// before any later field is touched, so a future layout change cannot be
/// misread - both load_bundle and read_bundle_info share this parse and
/// therefore accept exactly the same files.
BundleInfo parse_bundle_head(serialize::Reader& in) {
  BundleInfo info;
  info.format_version = in.version();
  info.bundle_version = in.u32();
  if (info.bundle_version > kBundleVersion) {
    throw std::runtime_error(
        "polaris bundle: layout version " +
        std::to_string(info.bundle_version) +
        " is newer than this build supports (" +
        std::to_string(kBundleVersion) + "); upgrade polaris");
  }
  const std::string tool = in.str();
  if (tool != "polaris-bundle") {
    throw std::runtime_error("polaris bundle: unexpected producer '" + tool +
                             "'");
  }
  info.config_fingerprint = in.u64();
  info.model_name = in.str();
  info.samples = in.u64();
  info.positives = in.u64();
  info.feature_dim = in.u64();
  info.rule_count = in.u64();
  info.has_dataset = in.boolean();
  return info;
}

ml::ClassifierKind expected_classifier_kind(ModelKind kind) {
  switch (kind) {
    case ModelKind::kRandomForest: return ml::ClassifierKind::kRandomForest;
    case ModelKind::kXgboost: return ml::ClassifierKind::kGbdt;
    case ModelKind::kAdaBoost: return ml::ClassifierKind::kAdaBoost;
    case ModelKind::kDecisionTree: return ml::ClassifierKind::kDecisionTree;
  }
  throw std::runtime_error("polaris bundle: unmapped model kind");
}

/// The "never UB" backstop for feature indices: CRC catches accidents, but
/// a deliberately crafted bundle re-seals its checksum, so every index a
/// prediction will later use to subscript a feature vector is range-checked
/// here, once, at load time.
void check_feature_indices(const Polaris& loaded, std::size_t dim) {
  for (const auto& wt : loaded.model().ensemble().trees) {
    for (const auto& node : wt.tree.nodes) {
      if (!node.is_leaf() && static_cast<std::size_t>(node.feature) >= dim) {
        throw std::runtime_error(
            "polaris bundle: tree feature index " +
            std::to_string(node.feature) + " out of range (dim " +
            std::to_string(dim) + ")");
      }
    }
  }
  for (const auto& rule : loaded.rules().rules()) {
    for (const auto& lit : rule.literals) {
      if (lit.feature >= dim) {
        throw std::runtime_error(
            "polaris bundle: rule feature index " +
            std::to_string(lit.feature) + " out of range (dim " +
            std::to_string(dim) + ")");
      }
    }
  }
  if (!loaded.training_data().empty() &&
      loaded.training_data().feature_count() != dim) {
    throw std::runtime_error(
        "polaris bundle: dataset width " +
        std::to_string(loaded.training_data().feature_count()) +
        " disagrees with the config's feature dim " + std::to_string(dim));
  }
}

}  // namespace

Polaris::Polaris(PolarisConfig config) : config_(std::move(config)) {
  validate(config_);
  model_ = make_model(config_);
}

void Polaris::save_bundle(const std::string& path,
                          bool include_training_data) const {
  if (!trained_) {
    throw std::logic_error("Polaris::save_bundle: model not trained");
  }
  serialize::Writer out;

  out.begin_chunk(kHeadTag);
  out.u32(kBundleVersion);
  out.str("polaris-bundle");
  out.u64(config_fingerprint(config_));
  out.str(model_->name());
  out.u64(data_.size());
  out.u64(data_.positives());
  out.u64(data_.feature_count());
  out.u64(rules_.rules().size());
  out.boolean(include_training_data);
  out.end_chunk();

  out.begin_chunk(kConfTag);
  write_config(out, config_);
  out.end_chunk();

  out.begin_chunk(kModelTag);
  ml::save_classifier(out, *model_);
  out.end_chunk();

  out.begin_chunk(kRulesTag);
  serialize::write_ruleset(out, rules_);
  out.end_chunk();

  if (include_training_data) {
    out.begin_chunk(kDataTag);
    serialize::write_dataset(out, data_);
    out.end_chunk();
  }

  serialize::write_file(path, out.finish());
}

Polaris Polaris::load_bundle(const std::string& path, BundleInfo* info) {
  serialize::Reader in(serialize::read_file(path));

  in.enter_chunk(kHeadTag);
  const BundleInfo head = parse_bundle_head(in);
  if (info != nullptr) *info = head;
  in.exit_chunk();

  in.enter_chunk(kConfTag);
  Polaris loaded{read_config(in)};
  in.exit_chunk();

  in.enter_chunk(kModelTag);
  loaded.model_ = ml::load_classifier(in);
  in.exit_chunk();
  if (loaded.model_->kind() != expected_classifier_kind(loaded.config_.model)) {
    throw std::runtime_error(
        "polaris bundle: model chunk holds a " + loaded.model_->name() +
        " but the config says " + to_string(loaded.config_.model));
  }

  in.enter_chunk(kRulesTag);
  loaded.rules_ = serialize::read_ruleset(in);
  in.exit_chunk();

  if (in.try_enter_chunk(kDataTag)) {
    loaded.data_ = serialize::read_dataset(in);
    in.exit_chunk();
  }

  check_feature_indices(loaded,
                        graph::FeatureSpec{loaded.config_.locality}.dim());
  loaded.trained_ = true;
  return loaded;
}

BundleInfo read_bundle_info(const std::string& path) {
  serialize::Reader in(serialize::read_file(path));
  in.enter_chunk(kHeadTag);
  const BundleInfo info = parse_bundle_head(in);
  in.exit_chunk();
  return info;
}

TrainingSummary Polaris::train(
    std::span<const circuits::Design> training_designs,
    const techlib::TechLibrary& lib) {
  TrainingSummary summary;
  data_ = ml::Dataset{};

  util::Timer timer;
  // Algorithm 1 across training designs: every design's labelling
  // campaigns (original + one per iteration) enter ONE global shard queue,
  // so the pool never idles on a design that finished early - the tail of
  // the largest design is filled by the others' shards. Labels are applied
  // in design order afterwards for a deterministic sample layout.
  engine::Scheduler scheduler(config_.threads);
  // Plan construction (selection draws + apply_masking per iteration) runs
  // design-parallel on the pool; submission into the scheduler is
  // mutex-guarded, and the resulting queue order only affects placement,
  // never results (test_scheduler shuffles submission orders).
  std::vector<std::unique_ptr<CognitionPlan>> plans(training_designs.size());
  engine::ThreadPool::shared().parallel_for(
      training_designs.size(),
      engine::ThreadPool::resolve_threads(config_.threads),
      [&](std::size_t i) {
        plans[i] = std::make_unique<CognitionPlan>(training_designs[i], lib,
                                                   config_, scheduler);
      });
  scheduler.drain();
  // Labelling (graph feature extraction per sample) is the non-TVLA cost;
  // finalize each design into its own dataset in parallel, then append in
  // design order for the deterministic sample layout.
  std::vector<ml::Dataset> per_design(plans.size());
  engine::ThreadPool::shared().parallel_for(
      plans.size(), engine::ThreadPool::resolve_threads(config_.threads),
      [&](std::size_t i) { (void)plans[i]->finalize(per_design[i]); });
  for (const auto& partial : per_design) data_.append(partial);
  summary.dataset_seconds = timer.seconds();
  summary.samples = data_.size();
  summary.positives = data_.positives();
  if (data_.empty()) {
    throw std::runtime_error("Polaris::train: Algorithm 1 produced no samples");
  }

  // Imbalance handling (Sec. V-B): SMOTE for the forest, class-balance
  // weights for the boosted models.
  timer.reset();
  if (config_.handle_imbalance) {
    if (config_.model == ModelKind::kRandomForest) {
      data_ = ml::smote_oversample(data_, ml::SmoteConfig{.seed = config_.seed});
    } else {
      data_.apply_class_balance_weights();
    }
  }
  model_->fit(data_);
  summary.training_seconds = timer.seconds();

  timer.reset();
  // Rule literals use only the binary structural features (type one-hots
  // and sub-graph adjacency), matching the paper's Table V vocabulary; the
  // three normalized scalars are excluded.
  xai::RuleExtractionConfig rule_config;
  const graph::FeatureSpec spec{config_.locality};
  rule_config.allowed_features.assign(spec.dim(), true);
  for (std::size_t f = spec.dim() - spec.scalar_dims(); f < spec.dim(); ++f) {
    rule_config.allowed_features[f] = false;
  }
  rules_ = xai::extract_rules(*model_, data_, rule_config);
  summary.rules_seconds = timer.seconds();

  trained_ = true;
  return summary;
}

std::vector<double> Polaris::score_gates(const circuits::Design& design,
                                         InferenceMode mode) const {
  if (!trained_) throw std::logic_error("Polaris: model not trained");
  graph::FeatureExtractor extractor(design.netlist,
                                    graph::FeatureSpec{config_.locality});
  std::vector<double> scores(design.netlist.gate_count(), 0.0);
  for (GateId g = 0; g < design.netlist.gate_count(); ++g) {
    if (!netlist::is_maskable(design.netlist.gate(g).type)) continue;
    const auto features = extractor.extract(g);
    switch (mode) {
      case InferenceMode::kModel:
        scores[g] = model_->predict_proba(features);
        break;
      case InferenceMode::kRules:
        scores[g] = rules_.score(features);
        break;
      case InferenceMode::kModelPlusRules:
        scores[g] = rules_.combined_score(*model_, features);
        break;
    }
  }

  // Coherence smoothing (see PolarisConfig): pull each maskable gate's
  // score toward its maskable neighbors' mean so contiguous regions rise
  // through the ranking together.
  const double alpha = config_.coherence_smoothing;
  if (alpha > 0.0) {
    const auto& graph = extractor.graph();
    std::vector<double> smoothed = scores;
    for (GateId g = 0; g < design.netlist.gate_count(); ++g) {
      if (!netlist::is_maskable(design.netlist.gate(g).type)) continue;
      double sum = 0.0;
      std::size_t count = 0;
      for (const GateId nb : graph.neighbors(g)) {
        if (netlist::is_maskable(design.netlist.gate(nb).type)) {
          sum += scores[nb];
          ++count;
        }
      }
      if (count != 0) {
        smoothed[g] = (1.0 - alpha) * scores[g] + alpha * sum /
                                                      static_cast<double>(count);
      }
    }
    scores.swap(smoothed);
  }
  return scores;
}

std::vector<std::future<tvla::LeakageReport>> submit_audits(
    engine::Scheduler& scheduler, std::span<const circuits::Design> designs,
    const techlib::TechLibrary& lib, const PolarisConfig& config,
    tvla::ProgressFn progress) {
  std::vector<std::future<tvla::LeakageReport>> pending;
  pending.reserve(designs.size());
  for (const auto& design : designs) {
    pending.push_back(tvla::submit_fixed_vs_random(
        scheduler, design.netlist, lib, tvla_config_for(config, design),
        progress, design.name));
  }
  return pending;
}

std::vector<tvla::LeakageReport> audit_designs(
    std::span<const circuits::Design> designs, const techlib::TechLibrary& lib,
    const PolarisConfig& config) {
  engine::Scheduler scheduler(config.threads);
  auto pending = submit_audits(scheduler, designs, lib, config);
  scheduler.drain();
  std::vector<tvla::LeakageReport> reports;
  reports.reserve(designs.size());
  for (auto& future : pending) reports.push_back(future.get());
  return reports;
}

MaskingOutcome Polaris::mask_design(const circuits::Design& design,
                                    const techlib::TechLibrary& lib,
                                    std::size_t mask_size, InferenceMode mode,
                                    bool verify) const {
  util::Timer timer;

  // Algorithm 2 lines 4-8: score every gate, sort descending; Ctop is the
  // top Msize of the ranking (scores are model probabilities, so per-design
  // calibration shifts do not matter - only the order does).
  const auto scores = score_gates(design, mode);
  std::vector<GateId> ranked;
  ranked.reserve(scores.size());
  for (GateId g = 0; g < scores.size(); ++g) {
    if (scores[g] > 0.0) ranked.push_back(g);
  }
  std::sort(ranked.begin(), ranked.end(), [&](GateId a, GateId b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;  // deterministic tie-break
  });
  if (ranked.size() > mask_size) ranked.resize(mask_size);

  // Line 9: modify(D, Ctop, Msize).
  auto rewritten =
      masking::apply_masking(design.netlist, ranked, config_.scheme);

  MaskingOutcome outcome{std::move(rewritten.design), std::move(ranked),
                         timer.seconds(), std::nullopt};

  if (verify) {  // line 10: leakage estimate of the masked design
    outcome.verification = tvla::run_fixed_vs_random(
        outcome.masked, lib, tvla_config_for(config_, design));
  }
  return outcome;
}

}  // namespace polaris::core
