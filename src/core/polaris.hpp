// The POLARIS framework (paper Fig. 2): knowledge extraction + model
// training (stage i), SHAP interpretation and rule generation (stage ii),
// and model-guided masking (stage iii, Algorithm 2).
#pragma once

#include <future>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "circuits/suite.hpp"
#include "core/cognition.hpp"
#include "core/config.hpp"
#include "ml/model.hpp"
#include "techlib/techlib.hpp"
#include "tvla/tvla.hpp"
#include "xai/rules.hpp"

namespace polaris::core {

/// How Algorithm 2 scores gates: the trained model, the extracted rules
/// standalone, or the rule-augmented model (Sec. IV-B).
enum class InferenceMode { kModel, kRules, kModelPlusRules };

struct TrainingSummary {
  std::size_t samples = 0;
  std::size_t positives = 0;
  double dataset_seconds = 0.0;   // Algorithm 1 (incl. TVLA labelling)
  double training_seconds = 0.0;  // model fit
  double rules_seconds = 0.0;     // SHAP + rule mining
};

/// Cheap bundle metadata (the HEAD chunk) - what `polaris_cli inspect`
/// prints without deserializing the model itself.
struct BundleInfo {
  std::uint32_t format_version = 0;  // archive container version
  std::uint32_t bundle_version = 0;  // bundle layout version
  std::uint64_t config_fingerprint = 0;
  std::string model_name;
  std::size_t samples = 0;    // training samples the model was fitted on
  std::size_t positives = 0;  // of which labelled "good mask"
  std::size_t feature_dim = 0;
  std::size_t rule_count = 0;
  bool has_dataset = false;  // training data embedded?
};

struct MaskingOutcome {
  netlist::Netlist masked;
  std::vector<netlist::GateId> selected;  // gates replaced, ranked order
  /// Inference + sort + rewrite - the flow runtime Table II reports for
  /// POLARIS (no TVLA involved).
  double seconds = 0.0;
  /// Post-masking verification TVLA (Algorithm 2 line 10), if requested.
  std::optional<tvla::LeakageReport> verification;
};

class Polaris {
 public:
  /// Validates every knob up front (core::validate); throws
  /// std::invalid_argument with an actionable message on bad configs.
  explicit Polaris(PolarisConfig config = {});

  /// Serializes the trained state (config, model, rules, and - unless
  /// `include_training_data` is false - the labelled dataset) into a `.plb`
  /// bundle. Train once, serve many: a loaded bundle reproduces
  /// score_gates and mask_design selections bit-identically in any
  /// process on any host. Throws std::logic_error when untrained.
  void save_bundle(const std::string& path,
                   bool include_training_data = true) const;
  /// Reconstructs a trained Polaris from a bundle. Truncated, corrupt, or
  /// future-version files raise std::runtime_error. When `info` is given it
  /// receives the HEAD metadata, saving a second read of the file.
  [[nodiscard]] static Polaris load_bundle(const std::string& path,
                                           BundleInfo* info = nullptr);

  /// Stages i+ii: Algorithm 1 over every training design, imbalance
  /// handling (SMOTE / class weights), model fit, rule extraction.
  TrainingSummary train(std::span<const circuits::Design> training_designs,
                        const techlib::TechLibrary& lib);

  /// Algorithm 2: scores every maskable gate, masks the top `mask_size`.
  /// `verify` additionally runs the line-10 leakage estimate on the result.
  [[nodiscard]] MaskingOutcome mask_design(
      const circuits::Design& design, const techlib::TechLibrary& lib,
      std::size_t mask_size, InferenceMode mode = InferenceMode::kModel,
      bool verify = false) const;

  /// Gate scores (probability of "good mask") for a whole design, indexed
  /// by gate id (non-maskable gates score 0).
  [[nodiscard]] std::vector<double> score_gates(const circuits::Design& design,
                                                InferenceMode mode) const;

  [[nodiscard]] const ml::Classifier& model() const { return *model_; }
  [[nodiscard]] const xai::RuleSet& rules() const { return rules_; }
  [[nodiscard]] const ml::Dataset& training_data() const { return data_; }
  [[nodiscard]] const PolarisConfig& config() const { return config_; }
  [[nodiscard]] bool trained() const { return trained_; }

 private:
  PolarisConfig config_;
  std::unique_ptr<ml::Classifier> model_;
  xai::RuleSet rules_;
  ml::Dataset data_;
  bool trained_ = false;
};

/// Reads only the HEAD metadata chunk of a bundle (still validates the
/// archive container: magic, version, CRC).
[[nodiscard]] BundleInfo read_bundle_info(const std::string& path);

/// TVLA-audits every design as one flow: all campaigns' shards drain
/// through a global engine::Scheduler as a single work queue, so designs
/// with unequal trace budgets or gate counts do not serialize behind each
/// other. Reports (design order) are bit-identical to calling
/// tvla::run_fixed_vs_random per design. Needs no trained model.
[[nodiscard]] std::vector<tvla::LeakageReport> audit_designs(
    std::span<const circuits::Design> designs, const techlib::TechLibrary& lib,
    const PolarisConfig& config);

/// The request->campaign seam shared by audit_designs and the serve
/// daemon: queues one fixed-vs-random campaign per design (classes from
/// each design's roles) on an EXISTING scheduler, so concurrent callers'
/// shards interleave in one LPT queue. The caller drains the scheduler and
/// get()s the futures; designs and lib must outlive the drain. `progress`
/// (optional) observes every campaign's early-stop checkpoints - it only
/// fires when config.tvla.budget is enabled (streaming audits).
[[nodiscard]] std::vector<std::future<tvla::LeakageReport>> submit_audits(
    engine::Scheduler& scheduler, std::span<const circuits::Design> designs,
    const techlib::TechLibrary& lib, const PolarisConfig& config,
    tvla::ProgressFn progress = {});

}  // namespace polaris::core
