// The POLARIS framework (paper Fig. 2): knowledge extraction + model
// training (stage i), SHAP interpretation and rule generation (stage ii),
// and model-guided masking (stage iii, Algorithm 2).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "circuits/suite.hpp"
#include "core/cognition.hpp"
#include "core/config.hpp"
#include "ml/model.hpp"
#include "techlib/techlib.hpp"
#include "tvla/tvla.hpp"
#include "xai/rules.hpp"

namespace polaris::core {

/// How Algorithm 2 scores gates: the trained model, the extracted rules
/// standalone, or the rule-augmented model (Sec. IV-B).
enum class InferenceMode { kModel, kRules, kModelPlusRules };

struct TrainingSummary {
  std::size_t samples = 0;
  std::size_t positives = 0;
  double dataset_seconds = 0.0;   // Algorithm 1 (incl. TVLA labelling)
  double training_seconds = 0.0;  // model fit
  double rules_seconds = 0.0;     // SHAP + rule mining
};

struct MaskingOutcome {
  netlist::Netlist masked;
  std::vector<netlist::GateId> selected;  // gates replaced, ranked order
  /// Inference + sort + rewrite - the flow runtime Table II reports for
  /// POLARIS (no TVLA involved).
  double seconds = 0.0;
  /// Post-masking verification TVLA (Algorithm 2 line 10), if requested.
  std::optional<tvla::LeakageReport> verification;
};

class Polaris {
 public:
  explicit Polaris(PolarisConfig config = {});

  /// Stages i+ii: Algorithm 1 over every training design, imbalance
  /// handling (SMOTE / class weights), model fit, rule extraction.
  TrainingSummary train(std::span<const circuits::Design> training_designs,
                        const techlib::TechLibrary& lib);

  /// Algorithm 2: scores every maskable gate, masks the top `mask_size`.
  /// `verify` additionally runs the line-10 leakage estimate on the result.
  [[nodiscard]] MaskingOutcome mask_design(
      const circuits::Design& design, const techlib::TechLibrary& lib,
      std::size_t mask_size, InferenceMode mode = InferenceMode::kModel,
      bool verify = false) const;

  /// Gate scores (probability of "good mask") for a whole design, indexed
  /// by gate id (non-maskable gates score 0).
  [[nodiscard]] std::vector<double> score_gates(const circuits::Design& design,
                                                InferenceMode mode) const;

  [[nodiscard]] const ml::Classifier& model() const { return *model_; }
  [[nodiscard]] const xai::RuleSet& rules() const { return rules_; }
  [[nodiscard]] const ml::Dataset& training_data() const { return data_; }
  [[nodiscard]] const PolarisConfig& config() const { return config_; }
  [[nodiscard]] bool trained() const { return trained_; }

 private:
  PolarisConfig config_;
  std::unique_ptr<ml::Classifier> model_;
  xai::RuleSet rules_;
  ml::Dataset data_;
  bool trained_ = false;
};

}  // namespace polaris::core
