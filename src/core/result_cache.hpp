// Bounded, thread-safe result cache for served requests.
//
// The serve daemon's value proposition is "train once, mask many"; this
// cache adds "compute once, answer many": a repeated audit/mask/score of
// an unchanged design under an unchanged config is O(lookup). Keys are
// 64-bit fingerprints combining core::config_fingerprint (what was
// configured) with core::design_fingerprint (what was analyzed) plus any
// request parameters; values are opaque encoded response bodies, replayed
// byte-identically on a hit - a cached answer is indistinguishable from a
// recomputed one because every input that could change the bytes is part
// of the key.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace polaris::core {

class ResultCache {
 public:
  /// Bodies are shared immutable buffers: a hit hands out the pointer, so
  /// multi-megabyte replies are never copied under the cache mutex (or at
  /// all - the frame writer reads straight from the shared buffer).
  using Body = std::shared_ptr<const std::vector<std::uint8_t>>;

  /// `capacity` bounds the entry count (FIFO eviction; 0 disables caching).
  explicit ResultCache(std::size_t capacity = 256) : capacity_(capacity) {}

  /// Returns the cached body (nullptr on miss), recording a hit/miss.
  [[nodiscard]] Body get(std::uint64_t key);

  /// Inserts (or refreshes) an entry, evicting the oldest beyond capacity.
  void put(std::uint64_t key, Body body);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  /// Resident body bytes across all live entries (refresh replaces, evict
  /// subtracts - this is occupancy, not cumulative traffic).
  [[nodiscard]] std::uint64_t bytes() const;

  /// Folds `value` into `key` (FNV-1a step) - the helper request handlers
  /// use to extend a fingerprint with request parameters.
  [[nodiscard]] static std::uint64_t combine(std::uint64_t key,
                                             std::uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
      key = (key ^ ((value >> shift) & 0xFF)) * 1099511628211ULL;
    }
    return key;
  }

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Body> entries_;
  std::deque<std::uint64_t> order_;  // insertion order, for FIFO eviction
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t bytes_ = 0;  // resident body bytes, guarded by mutex_
};

}  // namespace polaris::core
