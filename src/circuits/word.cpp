#include "circuits/word.hpp"

#include <algorithm>
#include <array>
#include <span>
#include <stdexcept>

namespace polaris::circuits {

using netlist::CellType;
using netlist::NetId;

NetId WordBuilder::zero() {
  if (zero_ == netlist::kNoNet) zero_ = nl_.add_const(false);
  return zero_;
}

NetId WordBuilder::one() {
  if (one_ == netlist::kNoNet) one_ = nl_.add_const(true);
  return one_;
}

Word WordBuilder::input(const std::string& prefix, std::size_t width) {
  Word word;
  word.bits.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    word.bits.push_back(nl_.add_input(prefix + "_" + std::to_string(i)));
  }
  return word;
}

void WordBuilder::output(const Word& word, const std::string& prefix) {
  for (std::size_t i = 0; i < word.width(); ++i) {
    nl_.mark_output(word.bits[i], prefix + "_" + std::to_string(i));
  }
}

Word WordBuilder::constant(std::uint64_t value, std::size_t width) {
  Word word;
  word.bits.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    word.bits.push_back(((value >> i) & 1ULL) != 0 ? one() : zero());
  }
  return word;
}

Word WordBuilder::register_word(const std::string& prefix, std::size_t width) {
  Word q;
  q.bits.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    q.bits.push_back(nl_.add_net(prefix + "_q" + std::to_string(i)));
  }
  return q;
}

void WordBuilder::connect_register(const Word& q, const Word& next) {
  if (q.width() != next.width()) {
    throw std::invalid_argument("connect_register: width mismatch");
  }
  for (std::size_t i = 0; i < q.width(); ++i) {
    nl_.add_cell_driving(CellType::kDff, std::array{next.bits[i]}, q.bits[i]);
  }
}

NetId WordBuilder::gate(CellType type, std::initializer_list<NetId> in) {
  return nl_.add_cell(type, in);
}

Word WordBuilder::map2(CellType type, const Word& a, const Word& b) {
  if (a.width() != b.width()) throw std::invalid_argument("map2: width mismatch");
  Word out;
  out.bits.reserve(a.width());
  for (std::size_t i = 0; i < a.width(); ++i) {
    out.bits.push_back(gate(type, {a.bits[i], b.bits[i]}));
  }
  return out;
}

Word WordBuilder::invert(const Word& a) {
  Word out;
  out.bits.reserve(a.width());
  for (const NetId bit : a.bits) out.bits.push_back(gate(CellType::kNot, {bit}));
  return out;
}

Word WordBuilder::mux(NetId sel, const Word& a, const Word& b) {
  if (a.width() != b.width()) throw std::invalid_argument("mux: width mismatch");
  Word out;
  out.bits.reserve(a.width());
  for (std::size_t i = 0; i < a.width(); ++i) {
    out.bits.push_back(gate(CellType::kMux, {sel, a.bits[i], b.bits[i]}));
  }
  return out;
}

Word WordBuilder::mux_bits(const Word& sel, const Word& a, const Word& b) {
  if (sel.width() != a.width() || a.width() != b.width()) {
    throw std::invalid_argument("mux_bits: width mismatch");
  }
  Word out;
  out.bits.reserve(a.width());
  for (std::size_t i = 0; i < a.width(); ++i) {
    out.bits.push_back(gate(CellType::kMux, {sel.bits[i], a.bits[i], b.bits[i]}));
  }
  return out;
}

NetId WordBuilder::reduce(CellType type, std::vector<NetId> bits,
                          std::size_t max_fan_in) {
  if (bits.empty()) throw std::invalid_argument("reduce: empty operand list");
  while (bits.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i < bits.size(); i += max_fan_in) {
      const std::size_t chunk = std::min(max_fan_in, bits.size() - i);
      if (chunk == 1) {
        next.push_back(bits[i]);
      } else {
        next.push_back(nl_.add_cell(
            type, std::span<const NetId>(bits.data() + i, chunk)));
      }
    }
    bits = std::move(next);
  }
  return bits[0];
}

NetId WordBuilder::equal(const Word& a, const Word& b) {
  const Word xnor = map2(CellType::kXnor, a, b);
  return reduce_and(xnor);
}

WordBuilder::AddResult WordBuilder::add(const Word& a, const Word& b,
                                        NetId carry_in) {
  if (a.width() != b.width()) throw std::invalid_argument("add: width mismatch");
  Word sum;
  sum.bits.reserve(a.width());
  NetId carry = carry_in;
  for (std::size_t i = 0; i < a.width(); ++i) {
    const NetId x = a.bits[i];
    const NetId y = b.bits[i];
    const NetId x_xor_y = gate(CellType::kXor, {x, y});
    if (carry == netlist::kNoNet) {  // half adder for the first stage
      sum.bits.push_back(x_xor_y);
      carry = gate(CellType::kAnd, {x, y});
    } else {
      sum.bits.push_back(gate(CellType::kXor, {x_xor_y, carry}));
      const NetId g1 = gate(CellType::kAnd, {x, y});
      const NetId g2 = gate(CellType::kAnd, {x_xor_y, carry});
      carry = gate(CellType::kOr, {g1, g2});
    }
  }
  return {std::move(sum), carry};
}

WordBuilder::AddResult WordBuilder::sub(const Word& a, const Word& b) {
  return add(a, invert(b), one());
}

WordBuilder::AddResult WordBuilder::add_sub(NetId sub_flag, const Word& a,
                                            const Word& b) {
  // b XOR sub_flag per bit, carry-in = sub_flag: a + b or a + ~b + 1.
  Word b_cond;
  b_cond.bits.reserve(b.width());
  for (const NetId bit : b.bits) {
    b_cond.bits.push_back(gate(CellType::kXor, {bit, sub_flag}));
  }
  return add(a, b_cond, sub_flag);
}

NetId WordBuilder::greater_equal(const Word& a, const Word& b) {
  return sub(a, b).carry;  // no borrow <=> a >= b
}

WordBuilder::AddResult WordBuilder::increment(const Word& a) {
  // Ripple of half adders with carry-in 1.
  Word sum;
  sum.bits.reserve(a.width());
  NetId carry = one();
  for (const NetId bit : a.bits) {
    sum.bits.push_back(gate(CellType::kXor, {bit, carry}));
    carry = gate(CellType::kAnd, {bit, carry});
  }
  return {std::move(sum), carry};
}

Word WordBuilder::zext(const Word& a, std::size_t width) {
  if (width < a.width()) throw std::invalid_argument("zext: narrowing");
  Word out = a;
  while (out.bits.size() < width) out.bits.push_back(zero());
  return out;
}

Word WordBuilder::slice(const Word& a, std::size_t lo, std::size_t width) const {
  if (lo + width > a.width()) throw std::invalid_argument("slice: out of range");
  Word out;
  out.bits.assign(a.bits.begin() + static_cast<std::ptrdiff_t>(lo),
                  a.bits.begin() + static_cast<std::ptrdiff_t>(lo + width));
  return out;
}

Word WordBuilder::shift_left(const Word& a, std::size_t amount) {
  Word out;
  out.bits.reserve(a.width());
  for (std::size_t i = 0; i < a.width(); ++i) {
    out.bits.push_back(i < amount ? zero() : a.bits[i - amount]);
  }
  return out;
}

Word WordBuilder::shift_right(const Word& a, std::size_t amount,
                              bool arithmetic) {
  Word out;
  out.bits.reserve(a.width());
  const NetId fill = arithmetic ? a.msb() : zero();
  for (std::size_t i = 0; i < a.width(); ++i) {
    const std::size_t src = i + amount;
    out.bits.push_back(src < a.width() ? a.bits[src] : fill);
  }
  return out;
}

Word WordBuilder::concat(const Word& low, const Word& high) const {
  Word out = low;
  out.bits.insert(out.bits.end(), high.bits.begin(), high.bits.end());
  return out;
}

}  // namespace polaris::circuits
