#include "circuits/aes_sbox.hpp"

#include <span>
#include <vector>

#include "circuits/word.hpp"

namespace polaris::circuits {

using netlist::CellType;
using netlist::Netlist;
using netlist::NetId;

namespace {

std::uint8_t gf_multiply(std::uint8_t a, std::uint8_t b) {
  std::uint8_t product = 0;
  while (b != 0) {
    if (b & 1U) product ^= a;
    const bool carry = (a & 0x80U) != 0;
    a = static_cast<std::uint8_t>(a << 1);
    if (carry) a ^= 0x1bU;  // x^8 = x^4 + x^3 + x + 1 (mod 0x11b)
    b >>= 1;
  }
  return product;
}

std::uint8_t gf_inverse(std::uint8_t a) {
  if (a == 0) return 0;
  for (unsigned candidate = 1; candidate < 256; ++candidate) {
    if (gf_multiply(a, static_cast<std::uint8_t>(candidate)) == 1) {
      return static_cast<std::uint8_t>(candidate);
    }
  }
  return 0;  // unreachable: GF(2^8) is a field
}

}  // namespace

const std::array<std::uint8_t, 256>& aes_sbox_table() {
  static const std::array<std::uint8_t, 256> table = [] {
    std::array<std::uint8_t, 256> t{};
    for (unsigned x = 0; x < 256; ++x) {
      const std::uint8_t inv = gf_inverse(static_cast<std::uint8_t>(x));
      std::uint8_t y = 0;
      for (int bit = 0; bit < 8; ++bit) {
        const int parity = ((inv >> bit) & 1) ^ ((inv >> ((bit + 4) % 8)) & 1) ^
                           ((inv >> ((bit + 5) % 8)) & 1) ^
                           ((inv >> ((bit + 6) % 8)) & 1) ^
                           ((inv >> ((bit + 7) % 8)) & 1) ^ ((0x63 >> bit) & 1);
        y = static_cast<std::uint8_t>(y | (parity << bit));
      }
      t[x] = y;
    }
    return t;
  }();
  return table;
}

std::uint8_t ref_aes_sbox(std::uint8_t data, std::uint8_t key) {
  return aes_sbox_table()[data ^ key];
}

Netlist make_aes_sbox_layer(std::size_t boxes) {
  Netlist nl("aes_sbox" + std::to_string(boxes));
  WordBuilder wb(nl);
  const Word data = wb.input("data", 8 * boxes);
  const Word key = wb.input("key", 8 * boxes);
  const auto& table = aes_sbox_table();

  for (std::size_t lane = 0; lane < boxes; ++lane) {
    // AddRoundKey.
    std::array<NetId, 8> in{};
    for (std::size_t bit = 0; bit < 8; ++bit) {
      in[bit] = wb.gate(CellType::kXor,
                        {data.bits[8 * lane + bit], key.bits[8 * lane + bit]});
    }
    std::array<NetId, 8> inv{};
    for (std::size_t bit = 0; bit < 8; ++bit) {
      inv[bit] = wb.gate(CellType::kNot, {in[bit]});
    }
    // Full 8-bit minterm decoder shared across the 8 output OR trees.
    std::vector<NetId> minterm(256);
    for (unsigned m = 0; m < 256; ++m) {
      std::array<NetId, 8> literals{};
      for (std::size_t bit = 0; bit < 8; ++bit) {
        literals[bit] = ((m >> bit) & 1U) != 0 ? in[bit] : inv[bit];
      }
      minterm[m] = nl.add_cell(CellType::kAnd,
                               std::span<const NetId>(literals.data(), 8));
    }
    Word out;
    out.bits.reserve(8);
    for (std::size_t bit = 0; bit < 8; ++bit) {
      std::vector<NetId> terms;
      for (unsigned m = 0; m < 256; ++m) {
        if ((table[m] >> bit) & 1U) terms.push_back(minterm[m]);
      }
      out.bits.push_back(wb.reduce(CellType::kOr, std::move(terms)));
    }
    wb.output(out, "s" + std::to_string(lane));
  }
  nl.validate();
  return nl;
}

}  // namespace polaris::circuits
