// Unrolled-CORDIC sine circuit (EPFL "sin" stand-in) with a bit-exact
// fixed-point reference model.
#pragma once

#include <cstdint>

#include "netlist/netlist.hpp"

namespace polaris::circuits {

/// Combinational CORDIC (rotation mode), fully unrolled.
///
/// Input  z: angle in radians, unsigned fixed point with (width-1) fraction
///           bits; valid range [0, pi/2].
/// Output sin: two's-complement fixed point, width+2 bits with (width-1)
///           fraction bits, = sin(z) up to CORDIC truncation error.
/// `iterations` defaults to `width` (capped at 24).
[[nodiscard]] netlist::Netlist make_sin(std::size_t width,
                                        std::size_t iterations = 0);

/// Bit-exact reference: identical fixed-point iteration on integers.
/// `z_fixed` is the raw input word; the return value is the raw output word
/// (two's complement in the low width+2 bits).
[[nodiscard]] std::int64_t ref_sin_fixed(std::uint64_t z_fixed,
                                         std::size_t width,
                                         std::size_t iterations = 0);

}  // namespace polaris::circuits
