#include "circuits/des.hpp"

#include <algorithm>
#include <array>
#include <span>
#include <stdexcept>
#include <vector>

#include "circuits/word.hpp"

namespace polaris::circuits {

using netlist::CellType;
using netlist::Netlist;
using netlist::NetId;

namespace {

// FIPS 46-3 tables. Entries are 1-based source-bit indices, MSB-first.
constexpr std::array<int, 64> kIp = {
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9,  1, 59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7};

constexpr std::array<int, 64> kFp = {
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9,  49, 17, 57, 25};

constexpr std::array<int, 48> kExpansion = {
    32, 1,  2,  3,  4,  5,  4,  5,  6,  7,  8,  9,  8,  9,  10, 11,
    12, 13, 12, 13, 14, 15, 16, 17, 16, 17, 18, 19, 20, 21, 20, 21,
    22, 23, 24, 25, 24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1};

constexpr std::array<int, 32> kPbox = {
    16, 7, 20, 21, 29, 12, 28, 17, 1,  15, 23, 26, 5,  18, 31, 10,
    2,  8, 24, 14, 32, 27, 3,  9,  19, 13, 30, 6,  22, 11, 4,  25};

constexpr std::array<int, 56> kPc1 = {
    57, 49, 41, 33, 25, 17, 9,  1,  58, 50, 42, 34, 26, 18,
    10, 2,  59, 51, 43, 35, 27, 19, 11, 3,  60, 52, 44, 36,
    63, 55, 47, 39, 31, 23, 15, 7,  62, 54, 46, 38, 30, 22,
    14, 6,  61, 53, 45, 37, 29, 21, 13, 5,  28, 20, 12, 4};

constexpr std::array<int, 48> kPc2 = {
    14, 17, 11, 24, 1,  5,  3,  28, 15, 6,  21, 10, 23, 19, 12, 4,
    26, 8,  16, 7,  27, 20, 13, 2,  41, 52, 31, 37, 47, 55, 30, 40,
    51, 45, 33, 48, 44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32};

constexpr std::array<int, 16> kShifts = {1, 1, 2, 2, 2, 2, 2, 2,
                                         1, 2, 2, 2, 2, 2, 2, 1};

constexpr std::uint8_t kSbox[8][4][16] = {
    {{14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7},
     {0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8},
     {4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0},
     {15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13}},
    {{15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10},
     {3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5},
     {0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15},
     {13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9}},
    {{10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8},
     {13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1},
     {13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7},
     {1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12}},
    {{7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15},
     {13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9},
     {10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4},
     {3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14}},
    {{2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9},
     {14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6},
     {4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14},
     {11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3}},
    {{12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11},
     {10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8},
     {9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6},
     {4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13}},
    {{4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1},
     {13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6},
     {1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2},
     {6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12}},
    {{13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7},
     {1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2},
     {7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8},
     {2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11}}};

// ---------------------------------------------------------------------------
// Software reference
// ---------------------------------------------------------------------------

/// Generic bit permutation; input/output are MSB-first packed (FIPS bit 1 =
/// bit position n_in-1).
template <std::size_t NOut>
std::uint64_t permute(std::uint64_t in, const std::array<int, NOut>& table,
                      int n_in) {
  std::uint64_t out = 0;
  for (const int src : table) {
    out = (out << 1) | ((in >> (n_in - src)) & 1ULL);
  }
  return out;
}

std::array<std::uint64_t, 16> key_schedule(std::uint64_t key) {
  std::array<std::uint64_t, 16> subkeys{};
  const std::uint64_t cd = permute(key, kPc1, 64);  // 56 bits
  std::uint32_t c = static_cast<std::uint32_t>((cd >> 28) & 0x0fffffffULL);
  std::uint32_t d = static_cast<std::uint32_t>(cd & 0x0fffffffULL);
  const auto rol28 = [](std::uint32_t v, int s) {
    return ((v << s) | (v >> (28 - s))) & 0x0fffffffU;
  };
  for (int r = 0; r < 16; ++r) {
    c = rol28(c, kShifts[static_cast<std::size_t>(r)]);
    d = rol28(d, kShifts[static_cast<std::size_t>(r)]);
    const std::uint64_t merged =
        (static_cast<std::uint64_t>(c) << 28) | static_cast<std::uint64_t>(d);
    subkeys[static_cast<std::size_t>(r)] = permute(merged, kPc2, 56);  // 48 bits
  }
  return subkeys;
}

std::uint32_t feistel(std::uint32_t r, std::uint64_t k48) {
  const std::uint64_t expanded = permute(r, kExpansion, 32) ^ k48;
  std::uint32_t s_out = 0;
  for (int box = 0; box < 8; ++box) {
    const auto six =
        static_cast<std::uint32_t>((expanded >> (42 - 6 * box)) & 0x3fULL);
    const std::uint32_t row = ((six >> 4) & 2U) | (six & 1U);
    const std::uint32_t col = (six >> 1) & 0xfU;
    s_out = (s_out << 4) | kSbox[box][row][col];
  }
  return static_cast<std::uint32_t>(permute(s_out, kPbox, 32));
}

}  // namespace

std::uint64_t ref_des(std::uint64_t key, std::uint64_t block, bool decrypt,
                      std::size_t rounds) {
  if (rounds == 0 || rounds > 16) {
    throw std::invalid_argument("ref_des: rounds must be in [1,16]");
  }
  const auto subkeys = key_schedule(key);
  const std::uint64_t ip = permute(block, kIp, 64);
  std::uint32_t l = static_cast<std::uint32_t>(ip >> 32);
  std::uint32_t r = static_cast<std::uint32_t>(ip & 0xffffffffULL);
  for (std::size_t i = 0; i < rounds; ++i) {
    const std::size_t ki = decrypt ? rounds - 1 - i : i;
    const std::uint32_t next_r = l ^ feistel(r, subkeys[ki]);
    l = r;
    r = next_r;
  }
  const std::uint64_t preoutput =
      (static_cast<std::uint64_t>(r) << 32) | l;  // final swap
  return permute(preoutput, kFp, 64);
}

std::uint64_t ref_des3(std::uint64_t k1, std::uint64_t k2, std::uint64_t k3,
                       std::uint64_t block) {
  return ref_des(k3, ref_des(k2, ref_des(k1, block), /*decrypt=*/true));
}

// ---------------------------------------------------------------------------
// Netlist generator
// ---------------------------------------------------------------------------

namespace {

/// MSB-first net vector (index 0 = FIPS bit 1).
using Bits = std::vector<NetId>;

Bits from_word_msb_first(const Word& word) {
  Bits bits(word.width());
  for (std::size_t i = 0; i < word.width(); ++i) {
    bits[i] = word.bits[word.width() - 1 - i];
  }
  return bits;
}

Word to_word_lsb_first(const Bits& bits) {
  Word word;
  word.bits.assign(bits.rbegin(), bits.rend());
  return word;
}

template <std::size_t NOut>
Bits permute_nets(const Bits& in, const std::array<int, NOut>& table) {
  Bits out(NOut);
  for (std::size_t i = 0; i < NOut; ++i) {
    out[i] = in[static_cast<std::size_t>(table[i] - 1)];
  }
  return out;
}

Bits xor_nets(WordBuilder& wb, const Bits& a, const Bits& b) {
  Bits out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = wb.gate(CellType::kXor, {a[i], b[i]});
  }
  return out;
}

/// One 6->4 S-box as a full minterm decoder: 6 inverters + 64 six-input
/// ANDs shared by the four output OR trees.
Bits sbox_nets(WordBuilder& wb, int box, const Bits& six) {
  Bits inverted(6);
  for (std::size_t i = 0; i < 6; ++i) {
    inverted[i] = wb.gate(CellType::kNot, {six[i]});
  }
  std::array<NetId, 64> minterm{};
  for (std::uint32_t m = 0; m < 64; ++m) {
    std::vector<NetId> literals(6);
    for (std::size_t bit = 0; bit < 6; ++bit) {
      // m's bit 5 corresponds to six[0] (MSB-first address).
      const bool on = ((m >> (5 - bit)) & 1U) != 0;
      literals[bit] = on ? six[bit] : inverted[bit];
    }
    minterm[m] = wb.netlist().add_cell(
        CellType::kAnd, std::span<const NetId>(literals.data(), 6));
  }
  Bits out(4);
  for (std::size_t k = 0; k < 4; ++k) {
    std::vector<NetId> terms;
    for (std::uint32_t m = 0; m < 64; ++m) {
      const std::uint32_t row = ((m >> 4) & 2U) | (m & 1U);
      const std::uint32_t col = (m >> 1) & 0xfU;
      if ((kSbox[box][row][col] >> (3 - k)) & 1U) {
        terms.push_back(minterm[m]);
      }
    }
    out[k] = wb.reduce(CellType::kOr, std::move(terms));
  }
  return out;
}

/// Gate-level key schedule is pure wiring except PC permutations (wiring
/// too): returns the 16 x 48 subkey nets.
std::array<Bits, 16> key_schedule_nets(const Bits& key) {
  std::array<Bits, 16> subkeys;
  Bits cd = permute_nets(key, kPc1);  // 56 nets
  Bits c(cd.begin(), cd.begin() + 28);
  Bits d(cd.begin() + 28, cd.end());
  const auto rol = [](Bits& half, int s) {
    std::rotate(half.begin(), half.begin() + s, half.end());
  };
  for (std::size_t r = 0; r < 16; ++r) {
    rol(c, kShifts[r]);
    rol(d, kShifts[r]);
    Bits merged = c;
    merged.insert(merged.end(), d.begin(), d.end());
    subkeys[r] = permute_nets(merged, kPc2);
  }
  return subkeys;
}

/// Builds one DES core on existing nets; returns ciphertext nets.
Bits des_core(WordBuilder& wb, const Bits& pt, const Bits& key, bool decrypt,
              std::size_t rounds) {
  const auto subkeys = key_schedule_nets(key);
  Bits ip = permute_nets(pt, kIp);
  Bits l(ip.begin(), ip.begin() + 32);
  Bits r(ip.begin() + 32, ip.end());
  for (std::size_t i = 0; i < rounds; ++i) {
    const std::size_t ki = decrypt ? rounds - 1 - i : i;
    const Bits expanded = permute_nets(r, kExpansion);
    const Bits mixed = xor_nets(wb, expanded, subkeys[ki]);
    Bits s_out;
    s_out.reserve(32);
    for (int box = 0; box < 8; ++box) {
      const Bits six(mixed.begin() + 6 * box, mixed.begin() + 6 * (box + 1));
      const Bits four = sbox_nets(wb, box, six);
      s_out.insert(s_out.end(), four.begin(), four.end());
    }
    const Bits f_out = permute_nets(s_out, kPbox);
    Bits next_r = xor_nets(wb, l, f_out);
    l = std::move(r);
    r = std::move(next_r);
  }
  Bits preoutput = r;  // final swap: R16 || L16
  preoutput.insert(preoutput.end(), l.begin(), l.end());
  return permute_nets(preoutput, kFp);
}

}  // namespace

Netlist make_des(std::size_t rounds) {
  if (rounds == 0 || rounds > 16) {
    throw std::invalid_argument("make_des: rounds must be in [1,16]");
  }
  Netlist nl(rounds == 16 ? "des" : "des_r" + std::to_string(rounds));
  WordBuilder wb(nl);
  const Word pt = wb.input("pt", 64);
  const Word key = wb.input("key", 64);
  const Bits ct = des_core(wb, from_word_msb_first(pt),
                           from_word_msb_first(key), /*decrypt=*/false, rounds);
  wb.output(to_word_lsb_first(ct), "ct");
  nl.validate();
  return nl;
}

Netlist make_des3() {
  Netlist nl("des3");
  WordBuilder wb(nl);
  const Word pt = wb.input("pt", 64);
  const Word k1 = wb.input("k1", 64);
  const Word k2 = wb.input("k2", 64);
  const Word k3 = wb.input("k3", 64);
  const Bits stage1 = des_core(wb, from_word_msb_first(pt),
                               from_word_msb_first(k1), false, 16);
  const Bits stage2 = des_core(wb, stage1, from_word_msb_first(k2), true, 16);
  const Bits stage3 = des_core(wb, stage2, from_word_msb_first(k3), false, 16);
  wb.output(to_word_lsb_first(stage3), "ct");
  nl.validate();
  return nl;
}

}  // namespace polaris::circuits
