#include "circuits/arith.hpp"

#include <stdexcept>

#include "circuits/word.hpp"

namespace polaris::circuits {

using netlist::CellType;
using netlist::Netlist;

Netlist make_adder(std::size_t width) {
  Netlist nl("adder" + std::to_string(width));
  WordBuilder wb(nl);
  const Word a = wb.input("a", width);
  const Word b = wb.input("b", width);
  auto [sum, carry] = wb.add(a, b);
  wb.output(sum, "sum");
  nl.mark_output(carry, "cout");
  nl.validate();
  return nl;
}

namespace {

/// Shared core for multiplier and squarer: shift-add over partial-product
/// rows, accumulated at full 2w width.
Word multiply_words(WordBuilder& wb, const Word& a, const Word& b) {
  const std::size_t w = a.width();
  const std::size_t out_w = 2 * w;

  const auto partial_row = [&](std::size_t row) {
    Word pp;
    pp.bits.reserve(out_w);
    for (std::size_t j = 0; j < out_w; ++j) {
      if (j < row || j >= row + w) {
        pp.bits.push_back(wb.zero());
      } else {
        pp.bits.push_back(
            wb.gate(CellType::kAnd, {a.bits[j - row], b.bits[row]}));
      }
    }
    return pp;
  };

  Word acc = partial_row(0);
  for (std::size_t row = 1; row < w; ++row) {
    acc = wb.add(acc, partial_row(row)).sum;
  }
  return acc;
}

}  // namespace

Netlist make_multiplier(std::size_t width) {
  Netlist nl("multiplier" + std::to_string(width));
  WordBuilder wb(nl);
  const Word a = wb.input("a", width);
  const Word b = wb.input("b", width);
  wb.output(multiply_words(wb, a, b), "p");
  nl.validate();
  return nl;
}

Netlist make_square(std::size_t width) {
  Netlist nl("square" + std::to_string(width));
  WordBuilder wb(nl);
  const Word a = wb.input("a", width);
  wb.output(multiply_words(wb, a, a), "p");
  nl.validate();
  return nl;
}

Netlist make_divider(std::size_t width) {
  Netlist nl("div" + std::to_string(width));
  WordBuilder wb(nl);
  const Word a = wb.input("a", width);  // dividend
  const Word b = wb.input("b", width);  // divisor

  // Restoring division, one subtract-mux stage per quotient bit, MSB first.
  // Partial remainder is width+1 bits so the trial subtraction never wraps.
  const std::size_t rw = width + 1;
  const Word divisor = wb.zext(b, rw);
  Word rem = wb.constant(0, rw);
  std::vector<netlist::NetId> q_bits(width);
  for (std::size_t step = 0; step < width; ++step) {
    const std::size_t bit = width - 1 - step;
    // rem = (rem << 1) | a[bit]
    Word shifted = wb.shift_left(rem, 1);
    shifted.bits[0] = a.bits[bit];
    const auto diff = wb.sub(shifted, divisor);
    const netlist::NetId ge = diff.carry;  // 1 iff shifted >= divisor
    q_bits[bit] = ge;
    rem = wb.mux(ge, shifted, diff.sum);
  }
  Word quotient{std::move(q_bits)};
  wb.output(quotient, "q");
  wb.output(wb.slice(rem, 0, width), "r");
  nl.validate();
  return nl;
}

Netlist make_sqrt(std::size_t width) {
  if (width % 2 != 0) throw std::invalid_argument("make_sqrt: width must be even");
  Netlist nl("sqrt" + std::to_string(width));
  WordBuilder wb(nl);
  const Word a = wb.input("a", width);

  // Restoring digit-recurrence square root: two radicand bits enter the
  // partial remainder per step; the trial subtrahend is (root << 2) | 1.
  const std::size_t steps = width / 2;
  const std::size_t rw = width / 2 + 2;  // partial remainder width
  Word rem = wb.constant(0, rw);
  Word root = wb.constant(0, rw);
  for (std::size_t step = 0; step < steps; ++step) {
    const std::size_t pair = steps - 1 - step;
    Word shifted = wb.shift_left(rem, 2);
    shifted.bits[0] = a.bits[2 * pair];
    shifted.bits[1] = a.bits[2 * pair + 1];
    Word trial = wb.shift_left(root, 2);
    trial.bits[0] = wb.one();
    const auto diff = wb.sub(shifted, trial);
    const netlist::NetId ge = diff.carry;
    rem = wb.mux(ge, shifted, diff.sum);
    Word next_root = wb.shift_left(root, 1);
    next_root.bits[0] = ge;
    root = std::move(next_root);
  }
  wb.output(wb.slice(root, 0, width / 2), "root");
  wb.output(wb.slice(rem, 0, width / 2 + 1), "rem");
  nl.validate();
  return nl;
}

std::uint64_t ref_multiply(std::uint64_t a, std::uint64_t b, std::size_t width) {
  const std::uint64_t mask = width >= 64 ? ~0ULL : (1ULL << width) - 1;
  const unsigned __int128 product =
      static_cast<unsigned __int128>(a & mask) * (b & mask);
  const std::size_t out_w = 2 * width;
  const unsigned __int128 out_mask =
      out_w >= 128 ? ~static_cast<unsigned __int128>(0)
                   : (static_cast<unsigned __int128>(1) << out_w) - 1;
  return static_cast<std::uint64_t>(product & out_mask);
}

DivResult ref_divide(std::uint64_t a, std::uint64_t b, std::size_t width) {
  const std::uint64_t mask = width >= 64 ? ~0ULL : (1ULL << width) - 1;
  a &= mask;
  b &= mask;
  if (b == 0) return {mask, a};  // matches the restoring array (see header)
  return {(a / b) & mask, (a % b) & mask};
}

SqrtResult ref_sqrt(std::uint64_t a, std::size_t width) {
  const std::uint64_t mask = width >= 64 ? ~0ULL : (1ULL << width) - 1;
  a &= mask;
  std::uint64_t rem = 0;
  std::uint64_t root = 0;
  for (std::size_t step = 0; step < width / 2; ++step) {
    const std::size_t pair = width / 2 - 1 - step;
    rem = (rem << 2) | ((a >> (2 * pair)) & 3ULL);
    const std::uint64_t trial = (root << 2) | 1ULL;
    if (rem >= trial) {
      rem -= trial;
      root = (root << 1) | 1ULL;
    } else {
      root <<= 1;
    }
  }
  return {root, rem};
}

}  // namespace polaris::circuits
