#include "circuits/cordic.hpp"

#include <cmath>
#include <vector>

#include "circuits/word.hpp"

namespace polaris::circuits {

using netlist::CellType;
using netlist::Netlist;
using netlist::NetId;

namespace {

std::size_t effective_iterations(std::size_t width, std::size_t iterations) {
  const std::size_t k = iterations == 0 ? width : iterations;
  return k > 24 ? 24 : k;
}

/// atan(2^-i) and the aggregate gain 1/prod(sqrt(1+2^-2i)), both as fixed
/// point with `frac` fraction bits. Generator and reference share these.
std::vector<std::int64_t> atan_table(std::size_t count, std::size_t frac) {
  std::vector<std::int64_t> table(count);
  for (std::size_t i = 0; i < count; ++i) {
    table[i] = static_cast<std::int64_t>(
        std::llround(std::atan(std::ldexp(1.0, -static_cast<int>(i))) *
                     std::ldexp(1.0, static_cast<int>(frac))));
  }
  return table;
}

std::int64_t gain_fixed(std::size_t count, std::size_t frac) {
  double k = 1.0;
  for (std::size_t i = 0; i < count; ++i) {
    k /= std::sqrt(1.0 + std::ldexp(1.0, -2 * static_cast<int>(i)));
  }
  return static_cast<std::int64_t>(
      std::llround(k * std::ldexp(1.0, static_cast<int>(frac))));
}

}  // namespace

Netlist make_sin(std::size_t width, std::size_t iterations) {
  const std::size_t k = effective_iterations(width, iterations);
  const std::size_t frac = width - 1;
  const std::size_t w = width + 2;  // sign + 1 integer bit headroom
  const auto atans = atan_table(k, frac);

  Netlist nl("sin" + std::to_string(width));
  WordBuilder wb(nl);
  const Word z_in = wb.input("z", width);

  Word x = wb.constant(static_cast<std::uint64_t>(gain_fixed(k, frac)), w);
  Word y = wb.constant(0, w);
  Word z = wb.zext(z_in, w);

  for (std::size_t i = 0; i < k; ++i) {
    // d = +1 when z >= 0 (sign bit clear): rotate towards zero.
    const NetId z_neg = z.msb();
    const NetId z_pos = wb.gate(CellType::kNot, {z_neg});
    const Word x_shift = wb.shift_right(x, i, /*arithmetic=*/true);
    const Word y_shift = wb.shift_right(y, i, /*arithmetic=*/true);
    // z >= 0: x -= y>>i ; y += x>>i ; z -= atan_i
    // z <  0: x += y>>i ; y -= x>>i ; z += atan_i
    Word x_next = wb.add_sub(z_pos, x, y_shift).sum;
    Word y_next = wb.add_sub(z_neg, y, x_shift).sum;
    Word z_next =
        wb.add_sub(z_pos, z,
                   wb.constant(static_cast<std::uint64_t>(atans[i]), w))
            .sum;
    x = std::move(x_next);
    y = std::move(y_next);
    z = std::move(z_next);
  }
  wb.output(y, "sin");
  nl.validate();
  return nl;
}

std::int64_t ref_sin_fixed(std::uint64_t z_fixed, std::size_t width,
                           std::size_t iterations) {
  const std::size_t k = effective_iterations(width, iterations);
  const std::size_t frac = width - 1;
  const std::size_t w = width + 2;
  const auto atans = atan_table(k, frac);

  const auto wrap = [w](std::int64_t v) {  // keep w-bit two's complement
    const std::uint64_t mask = (w >= 64) ? ~0ULL : (1ULL << w) - 1;
    std::uint64_t u = static_cast<std::uint64_t>(v) & mask;
    if ((u >> (w - 1)) & 1ULL) u |= ~mask;  // sign extend
    return static_cast<std::int64_t>(u);
  };

  std::int64_t x = gain_fixed(k, frac);
  std::int64_t y = 0;
  std::int64_t z = wrap(static_cast<std::int64_t>(z_fixed));
  for (std::size_t i = 0; i < k; ++i) {
    const std::int64_t xs = wrap(x >> i);
    const std::int64_t ys = wrap(y >> i);
    if (z >= 0) {
      const std::int64_t xn = wrap(x - ys);
      const std::int64_t yn = wrap(y + xs);
      z = wrap(z - atans[i]);
      x = xn;
      y = yn;
    } else {
      const std::int64_t xn = wrap(x + ys);
      const std::int64_t yn = wrap(y - xs);
      z = wrap(z + atans[i]);
      x = xn;
      y = yn;
    }
  }
  return wrap(y);
}

}  // namespace polaris::circuits
