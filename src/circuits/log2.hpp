// Binary-logarithm circuit (EPFL "log2" stand-in): priority encoder +
// normalizing barrel shifter, output = integer exponent and truncated
// mantissa fraction. Bit-exact reference model included.
#pragma once

#include <cstdint>

#include "netlist/netlist.hpp"

namespace polaris::circuits {

/// Input a: unsigned, width must be a power of two (for the encoder/shifter
/// duality). Outputs: exp = floor(log2(a)) (log2(width) bits) and
/// frac = top `frac_bits` bits of the normalized mantissa below the leading
/// one. a = 0 yields exp = 0, frac = 0.
[[nodiscard]] netlist::Netlist make_log2(std::size_t width,
                                         std::size_t frac_bits);

struct Log2Result {
  std::uint64_t exponent;
  std::uint64_t fraction;
};
[[nodiscard]] Log2Result ref_log2(std::uint64_t a, std::size_t width,
                                  std::size_t frac_bits);

}  // namespace polaris::circuits
