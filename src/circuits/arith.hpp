// Arithmetic benchmark generators with bit-exact software reference models.
//
// These stand in for the EPFL arithmetic suite (multiplier, square, div,
// sqrt) used in the paper's evaluation (Table II). Every generator produces
// a flat gate-level netlist; every reference model implements the *same*
// algorithm on integers so simulator-vs-reference tests are exact.
#pragma once

#include <cstdint>

#include "netlist/netlist.hpp"

namespace polaris::circuits {

/// Ripple-carry adder: inputs a, b (width w); outputs sum (w) and cout.
[[nodiscard]] netlist::Netlist make_adder(std::size_t width);

/// Array multiplier: inputs a, b (w); output p (2w).
[[nodiscard]] netlist::Netlist make_multiplier(std::size_t width);

/// Squarer: input a (w); output p (2w). (EPFL "square".)
[[nodiscard]] netlist::Netlist make_square(std::size_t width);

/// Restoring array divider: inputs a (dividend), b (divisor), width w;
/// outputs q and r (w each). Division by zero yields q = all-ones, r = a
/// (the natural behaviour of the restoring array).
[[nodiscard]] netlist::Netlist make_divider(std::size_t width);

/// Restoring square root: input a (even width w); outputs root (w/2) and
/// rem (w/2 + 1).
[[nodiscard]] netlist::Netlist make_sqrt(std::size_t width);

// --- reference models (same algorithms, on integers) ------------------------

[[nodiscard]] std::uint64_t ref_multiply(std::uint64_t a, std::uint64_t b,
                                         std::size_t width);
struct DivResult {
  std::uint64_t quotient;
  std::uint64_t remainder;
};
[[nodiscard]] DivResult ref_divide(std::uint64_t a, std::uint64_t b,
                                   std::size_t width);
struct SqrtResult {
  std::uint64_t root;
  std::uint64_t remainder;
};
[[nodiscard]] SqrtResult ref_sqrt(std::uint64_t a, std::size_t width);

}  // namespace polaris::circuits
