// Named design suite mirroring the paper's evaluation setup (Sec. V-A):
// six small training designs (substituting ISCAS-85; see DESIGN.md) and the
// eleven evaluation designs of Tables II-IV (EPFL / MIT-CEP stand-ins).
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace polaris::circuits {

/// Role of a primary input in side-channel experiments. The TVLA layer maps
/// kData -> sensitive (fixed-vs-random), kKey -> fixed-common, and
/// kControl -> random-common.
enum class InputRole : std::uint8_t { kData, kKey, kControl };

struct Design {
  std::string name;
  netlist::Netlist netlist;
  std::vector<InputRole> roles;  // one per primary input
};

/// The 11 evaluation designs of Table II, in table order:
/// des3, arbiter, sin, md5, voter, square, sqrt, div, memctrl, multiplier,
/// log2. `scale` < 1.0 shrinks parameterized widths for quick test runs.
[[nodiscard]] std::vector<Design> evaluation_suite(double scale = 1.0);

/// Six small training designs (Sec. V-A trains on six ISCAS-85 circuits).
[[nodiscard]] std::vector<Design> training_suite();

/// Build one design by name (any name from either suite). Throws
/// std::invalid_argument for unknown names.
[[nodiscard]] Design get_design(const std::string& name, double scale = 1.0);

/// Loads a design by suite name OR structural-Verilog path (anything ending
/// in ".v"; all inputs default to the sensitive role). The lookup the CLI
/// and the serve daemon share, so a served request resolves to exactly the
/// netlist an offline invocation would.
[[nodiscard]] Design load_design(const std::string& name_or_path,
                                 double scale = 1.0);

/// All evaluation-suite names, in Table II order.
[[nodiscard]] std::vector<std::string> evaluation_names();

}  // namespace polaris::circuits
