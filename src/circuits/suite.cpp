#include "circuits/suite.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "circuits/aes_sbox.hpp"
#include "circuits/arith.hpp"
#include "circuits/cordic.hpp"
#include "circuits/des.hpp"
#include "circuits/log2.hpp"
#include "circuits/md5.hpp"
#include "circuits/memctrl.hpp"
#include "circuits/misc.hpp"
#include "circuits/random_logic.hpp"
#include "netlist/verilog.hpp"

namespace polaris::circuits {
namespace {

std::vector<InputRole> uniform_roles(const netlist::Netlist& nl, InputRole role) {
  return std::vector<InputRole>(nl.primary_inputs().size(), role);
}

/// First `head` inputs get `head_role`, the rest `tail_role` (inputs were
/// declared in a known order by each generator).
std::vector<InputRole> split_roles(const netlist::Netlist& nl, std::size_t head,
                                   InputRole head_role, InputRole tail_role) {
  std::vector<InputRole> roles(nl.primary_inputs().size(), tail_role);
  for (std::size_t i = 0; i < std::min(head, roles.size()); ++i) {
    roles[i] = head_role;
  }
  return roles;
}

std::size_t scaled(std::size_t value, double scale, std::size_t minimum) {
  const auto s = static_cast<std::size_t>(static_cast<double>(value) * scale);
  return std::max(minimum, s);
}

Design build_eval(const std::string& name, double scale) {
  using netlist::Netlist;
  if (name == "des3") {
    Netlist nl = scale >= 1.0 ? make_des3() : make_des(4);
    auto roles = split_roles(nl, 64, InputRole::kData, InputRole::kKey);
    return {name, std::move(nl), std::move(roles)};
  }
  if (name == "arbiter") {
    Netlist nl = make_arbiter(std::bit_floor(scaled(64, scale, 8)));
    // Requests are the sensitive payload; the pointer is control.
    const std::size_t req = nl.primary_inputs().size() -
                            static_cast<std::size_t>(
                                std::bit_width(nl.primary_inputs().size()));
    auto roles = split_roles(nl, req, InputRole::kData, InputRole::kControl);
    return {name, std::move(nl), std::move(roles)};
  }
  if (name == "sin") {
    Netlist nl = make_sin(scaled(16, scale, 8));
    auto roles = uniform_roles(nl, InputRole::kData);
    return {name, std::move(nl), std::move(roles)};
  }
  if (name == "md5") {
    Netlist nl = scale >= 1.0 ? make_md5() : make_md5(8);
    auto roles = uniform_roles(nl, InputRole::kData);
    return {name, std::move(nl), std::move(roles)};
  }
  if (name == "voter") {
    Netlist nl = make_voter(scaled(63, scale, 7) | 1);
    auto roles = uniform_roles(nl, InputRole::kData);
    return {name, std::move(nl), std::move(roles)};
  }
  if (name == "square") {
    Netlist nl = make_square(scaled(16, scale, 6));
    auto roles = uniform_roles(nl, InputRole::kData);
    return {name, std::move(nl), std::move(roles)};
  }
  if (name == "sqrt") {
    Netlist nl = make_sqrt(scaled(32, scale, 4) & ~std::size_t{1});
    auto roles = uniform_roles(nl, InputRole::kData);
    return {name, std::move(nl), std::move(roles)};
  }
  if (name == "div") {
    Netlist nl = make_divider(scaled(16, scale, 6));
    auto roles = split_roles(nl, nl.primary_inputs().size() / 2,
                             InputRole::kData, InputRole::kKey);
    return {name, std::move(nl), std::move(roles)};
  }
  if (name == "memctrl") {
    const std::size_t addr_w = scaled(12, scale, 4);
    const std::size_t data_w = scaled(16, scale, 8);
    Netlist nl = make_memctrl(addr_w, data_w);
    // Inputs in declaration order: req_valid, req_rw, req_row, req_col,
    // wdata, wmask. The write data is the sensitive payload.
    std::vector<InputRole> roles(nl.primary_inputs().size(), InputRole::kControl);
    for (std::size_t i = 2 + 2 * addr_w; i < 2 + 2 * addr_w + data_w; ++i) {
      roles[i] = InputRole::kData;
    }
    return {name, std::move(nl), std::move(roles)};
  }
  if (name == "multiplier") {
    Netlist nl = make_multiplier(scaled(16, scale, 6));
    auto roles = split_roles(nl, nl.primary_inputs().size() / 2,
                             InputRole::kData, InputRole::kKey);
    return {name, std::move(nl), std::move(roles)};
  }
  if (name == "log2") {
    Netlist nl = make_log2(scale >= 1.0 ? 32 : 16, scale >= 1.0 ? 16 : 8);
    auto roles = uniform_roles(nl, InputRole::kData);
    return {name, std::move(nl), std::move(roles)};
  }
  throw std::invalid_argument("unknown evaluation design: " + name);
}

}  // namespace

std::vector<std::string> evaluation_names() {
  return {"des3",  "arbiter", "sin",     "md5",        "voter", "square",
          "sqrt",  "div",     "memctrl", "multiplier", "log2"};
}

std::vector<Design> evaluation_suite(double scale) {
  std::vector<Design> designs;
  for (const auto& name : evaluation_names()) {
    designs.push_back(build_eval(name, scale));
  }
  return designs;
}

std::vector<Design> training_suite() {
  std::vector<Design> designs;
  // Six small designs (Sec. V-A): two random-logic circuits spanning
  // ISCAS-85-like sizes, an S-box layer (wide-fan-in SOP structure, like
  // the PLA-style ISCAS circuits), and two arithmetic blocks - chosen so
  // the structural-feature distribution covers what the evaluation suite
  // exhibits (see DESIGN.md on transfer).
  const struct {
    std::size_t gates;
    std::size_t inputs;
    std::uint64_t seed;
  } random_specs[] = {{280, 24, 11}, {520, 36, 23}};
  int index = 1;
  for (const auto& spec : random_specs) {
    RandomLogicConfig config;
    config.gates = spec.gates;
    config.inputs = spec.inputs;
    config.outputs = 12;
    config.seed = spec.seed;
    Design d{"train_rand" + std::to_string(index++), make_random_logic(config), {}};
    d.roles = uniform_roles(d.netlist, InputRole::kData);
    designs.push_back(std::move(d));
  }
  {
    Design d{"train_sbox2", make_aes_sbox_layer(2), {}};
    d.roles = split_roles(d.netlist, 16, InputRole::kData, InputRole::kKey);
    designs.push_back(std::move(d));
  }
  {
    Design d{"train_adder16", make_adder(16), {}};
    d.roles = uniform_roles(d.netlist, InputRole::kData);
    designs.push_back(std::move(d));
  }
  {
    Design d{"train_mult8", make_multiplier(8), {}};
    d.roles = split_roles(d.netlist, 8, InputRole::kData, InputRole::kKey);
    designs.push_back(std::move(d));
  }
  {
    // Digit-recurrence block (subtract/compare/select), covering the
    // mux-chain structure of the div/sqrt evaluation designs the way the
    // ISCAS-85 ALU circuits (c880, c2670) cover datapath control.
    Design d{"train_div8", make_divider(8), {}};
    d.roles = split_roles(d.netlist, 8, InputRole::kData, InputRole::kKey);
    designs.push_back(std::move(d));
  }
  return designs;
}

Design get_design(const std::string& name, double scale) {
  for (const auto& known : evaluation_names()) {
    if (known == name) return build_eval(name, scale);
  }
  auto training = training_suite();
  for (auto& design : training) {
    if (design.name == name) return std::move(design);
  }
  throw std::invalid_argument("unknown design: " + name);
}

Design load_design(const std::string& name_or_path, double scale) {
  if (name_or_path.size() > 2 &&
      name_or_path.compare(name_or_path.size() - 2, 2, ".v") == 0) {
    Design design;
    design.name = name_or_path;
    design.netlist = netlist::read_verilog_file(name_or_path);
    design.roles.assign(design.netlist.primary_inputs().size(),
                        InputRole::kData);
    return design;
  }
  return get_design(name_or_path, scale);
}

}  // namespace polaris::circuits
