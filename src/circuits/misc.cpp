#include "circuits/misc.hpp"

#include <bit>
#include <stdexcept>

#include "circuits/word.hpp"

namespace polaris::circuits {

using netlist::CellType;
using netlist::Netlist;
using netlist::NetId;

Netlist make_voter(std::size_t inputs) {
  if (inputs < 3 || inputs % 2 == 0) {
    throw std::invalid_argument("make_voter: need an odd ballot count >= 3");
  }
  Netlist nl("voter" + std::to_string(inputs));
  WordBuilder wb(nl);
  const Word ballots = wb.input("v", inputs);

  // Ripple popcount: accumulate each ballot into a running count.
  const std::size_t cw = static_cast<std::size_t>(std::bit_width(inputs)) + 1;
  Word count = wb.zext(Word{{ballots.bits[0]}}, cw);
  for (std::size_t i = 1; i < inputs; ++i) {
    count = wb.add(count, wb.zext(Word{{ballots.bits[i]}}, cw)).sum;
  }
  const NetId majority =
      wb.greater_equal(count, wb.constant(inputs / 2 + 1, cw));
  nl.mark_output(majority, "maj");
  nl.validate();
  return nl;
}

bool ref_voter(const std::vector<bool>& ballots) {
  std::size_t ones = 0;
  for (const bool b : ballots) ones += b ? 1 : 0;
  return ones >= ballots.size() / 2 + 1;
}

Netlist make_arbiter(std::size_t requesters) {
  if (!std::has_single_bit(requesters) || requesters < 2) {
    throw std::invalid_argument("make_arbiter: requesters must be a power of two");
  }
  const std::size_t pw = static_cast<std::size_t>(std::bit_width(requesters) - 1);

  Netlist nl("arbiter" + std::to_string(requesters));
  WordBuilder wb(nl);
  const Word req = wb.input("req", requesters);
  const Word ptr = wb.input("ptr", pw);

  // Rotate requests right by ptr so index 0 holds the highest-priority
  // requester; barrel rotator, one mux stage per pointer bit.
  const auto rotate_right = [&](const Word& w, const Word& amount) {
    Word cur = w;
    for (std::size_t k = 0; k < amount.width(); ++k) {
      const std::size_t shift = 1ULL << k;
      Word rotated;
      rotated.bits.reserve(cur.width());
      for (std::size_t i = 0; i < cur.width(); ++i) {
        rotated.bits.push_back(cur.bits[(i + shift) % cur.width()]);
      }
      cur = wb.mux(amount.bits[k], cur, rotated);
    }
    return cur;
  };
  const auto rotate_left = [&](const Word& w, const Word& amount) {
    Word cur = w;
    for (std::size_t k = 0; k < amount.width(); ++k) {
      const std::size_t shift = 1ULL << k;
      Word rotated;
      rotated.bits.reserve(cur.width());
      for (std::size_t i = 0; i < cur.width(); ++i) {
        rotated.bits.push_back(cur.bits[(i + cur.width() - shift) % cur.width()]);
      }
      cur = wb.mux(amount.bits[k], cur, rotated);
    }
    return cur;
  };

  const Word rotated = rotate_right(req, ptr);

  // Fixed-priority grant on the rotated vector: grant_i = req_i & none
  // higher (prefix-OR chain).
  Word grant_rot;
  grant_rot.bits.reserve(requesters);
  NetId any_before = netlist::kNoNet;
  for (std::size_t i = 0; i < requesters; ++i) {
    if (any_before == netlist::kNoNet) {
      grant_rot.bits.push_back(rotated.bits[i]);
      any_before = rotated.bits[i];
    } else {
      const NetId not_before = wb.gate(CellType::kNot, {any_before});
      grant_rot.bits.push_back(
          wb.gate(CellType::kAnd, {rotated.bits[i], not_before}));
      any_before = wb.gate(CellType::kOr, {any_before, rotated.bits[i]});
    }
  }

  const Word grant = rotate_left(grant_rot, ptr);
  wb.output(grant, "grant");
  nl.mark_output(any_before, "any");
  nl.validate();
  return nl;
}

std::vector<bool> ref_arbiter(const std::vector<bool>& req, std::size_t pointer) {
  std::vector<bool> grant(req.size(), false);
  for (std::size_t k = 0; k < req.size(); ++k) {
    const std::size_t i = (pointer + k) % req.size();
    if (req[i]) {
      grant[i] = true;
      break;
    }
  }
  return grant;
}

}  // namespace polaris::circuits
