// MD5 single-block compression circuit (MIT-CEP "md5" stand-in) with a
// software reference model validated against openssl digests.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace polaris::circuits {

/// Fully unrolled 64-step MD5 compression of one 512-bit block.
/// Input  m: 512 bits; bit (32*w + j) is bit j (LSB) of message word w.
/// Output digest: 128 bits; bit (32*r + j) is bit j of register r in
/// (A, B, C, D) order after the final feed-forward addition.
/// `steps` < 64 builds a reduced-step variant for fast experiments.
[[nodiscard]] netlist::Netlist make_md5(std::size_t steps = 64);

/// Reference compression of one block (same step count semantics).
[[nodiscard]] std::array<std::uint32_t, 4> ref_md5_block(
    const std::array<std::uint32_t, 16>& m, std::size_t steps = 64);

/// Convenience: full MD5 digest of a short message (<= 55 bytes, single
/// block after padding), as the canonical 16 output bytes.
[[nodiscard]] std::array<std::uint8_t, 16> ref_md5_digest(
    const std::vector<std::uint8_t>& message);

}  // namespace polaris::circuits
