#include "circuits/memctrl.hpp"

#include "circuits/word.hpp"

namespace polaris::circuits {

using netlist::CellType;
using netlist::Netlist;
using netlist::NetId;

namespace {

constexpr std::uint64_t kIdle = 0;
constexpr std::uint64_t kActivate = 1;
constexpr std::uint64_t kReadWrite = 2;
constexpr std::uint64_t kPrecharge = 3;
constexpr std::uint64_t kRefresh = 4;
constexpr std::size_t kRefreshBits = 8;

}  // namespace

Netlist make_memctrl(std::size_t addr_width, std::size_t data_width) {
  Netlist nl("memctrl_a" + std::to_string(addr_width) + "_d" +
             std::to_string(data_width));
  WordBuilder wb(nl);

  const NetId req_valid = nl.add_input("req_valid");
  const NetId req_rw = nl.add_input("req_rw");
  const Word req_row = wb.input("req_row", addr_width);
  const Word req_col = wb.input("req_col", addr_width);
  const Word wdata = wb.input("wdata", data_width);
  const Word wmask = wb.input("wmask", data_width);

  // State registers (q nets usable before their DFFs are connected).
  const Word state = wb.register_word("state", 3);
  const Word open_row = wb.register_word("open_row", addr_width);
  const Word row_valid = wb.register_word("row_valid", 1);
  const Word refresh_ctr = wb.register_word("refresh_ctr", kRefreshBits);
  const Word data_reg = wb.register_word("data_reg", data_width);

  const auto state_is = [&](std::uint64_t code) {
    return wb.equal(state, wb.constant(code, 3));
  };
  const NetId eq_idle = state_is(kIdle);
  const NetId eq_act = state_is(kActivate);
  const NetId eq_rw = state_is(kReadWrite);
  const NetId eq_pre = state_is(kPrecharge);
  const NetId eq_ref = state_is(kRefresh);

  const NetId refresh_due = wb.reduce_and(refresh_ctr);
  const NetId row_match = wb.equal(req_row, open_row);
  const NetId row_hit = wb.gate(CellType::kAnd, {row_match, row_valid.bits[0]});

  // Next-state from IDLE:
  //   refresh_due ? REFRESH
  //   : req_valid ? (row_hit ? RW : row_valid ? PRECHARGE : ACTIVATE) : IDLE
  const Word c_idle = wb.constant(kIdle, 3);
  const Word c_act = wb.constant(kActivate, 3);
  const Word c_rw = wb.constant(kReadWrite, 3);
  const Word c_pre = wb.constant(kPrecharge, 3);
  const Word c_ref = wb.constant(kRefresh, 3);
  const Word miss_path = wb.mux(row_valid.bits[0], c_act, c_pre);
  const Word hit_path = wb.mux(row_hit, miss_path, c_rw);
  const Word request_path = wb.mux(req_valid, c_idle, hit_path);
  const Word idle_next = wb.mux(refresh_due, request_path, c_ref);

  // Other states advance unconditionally: ACT->RW, RW->IDLE, PRE->ACT,
  // REF->IDLE.
  Word next_state = c_idle;                       // RW, REF and default
  next_state = wb.mux(eq_pre, next_state, c_act);
  next_state = wb.mux(eq_act, next_state, c_rw);
  next_state = wb.mux(eq_idle, next_state, idle_next);

  // Row book-keeping: load on ACTIVATE, invalidate on PRECHARGE/REFRESH.
  const Word open_row_next = wb.mux(eq_act, open_row, req_row);
  const NetId invalidate = wb.gate(CellType::kOr, {eq_pre, eq_ref});
  const NetId keep_valid =
      wb.gate(CellType::kMux, {invalidate, row_valid.bits[0], wb.zero()});
  const NetId row_valid_next =
      wb.gate(CellType::kMux, {eq_act, keep_valid, wb.one()});

  // Refresh counter: clear in REFRESH, else +1 (saturation handled by wrap;
  // refresh_due fires on all-ones).
  const Word ctr_inc = wb.increment(refresh_ctr).sum;
  const Word refresh_next = wb.mux(eq_ref, ctr_inc, wb.constant(0, kRefreshBits));

  // Data register: byte-lane merge on write command,
  //   data' = (wdata & wmask) | (data & ~wmask).
  const NetId do_write = wb.gate(CellType::kAnd, {eq_rw, req_rw});
  const Word merged = wb.mux_bits(wmask, data_reg, wdata);
  const Word data_next = wb.mux(do_write, data_reg, merged);

  wb.connect_register(state, next_state);
  wb.connect_register(open_row, open_row_next);
  wb.connect_register(row_valid, Word{{row_valid_next}});
  wb.connect_register(refresh_ctr, refresh_next);
  wb.connect_register(data_reg, data_next);

  // Outputs. The DQ read bus is gated by ack, so its transitions carry the
  // register's Hamming weight (the classic bus-leakage mechanism).
  nl.mark_output(eq_rw, "ack");
  nl.mark_output(wb.gate(CellType::kNot, {eq_idle}), "busy");
  wb.output(state, "cmd");
  wb.output(wb.mux(eq_act, req_col, req_row), "addr_out");
  Word dq;
  dq.bits.reserve(data_width);
  for (std::size_t i = 0; i < data_width; ++i) {
    dq.bits.push_back(wb.gate(CellType::kAnd, {data_reg.bits[i], eq_rw}));
  }
  wb.output(dq, "dq");
  nl.validate();
  return nl;
}

MemCtrlModel::MemCtrlModel(std::size_t addr_width, std::size_t data_width)
    : addr_width_(addr_width), data_width_(data_width) {}

MemCtrlModel::Outputs MemCtrlModel::outputs(const Inputs& in) const {
  Outputs out;
  out.ack = state_ == kReadWrite;
  out.busy = state_ != kIdle;
  out.cmd = state_;
  const std::uint64_t addr_mask = (1ULL << addr_width_) - 1;
  out.addr_out = (state_ == kActivate ? in.req_row : in.req_col) & addr_mask;
  out.dq = out.ack ? (data_reg_ & ((1ULL << data_width_) - 1)) : 0;
  return out;
}

void MemCtrlModel::step(const Inputs& in) {
  const std::uint64_t addr_mask = (1ULL << addr_width_) - 1;
  const bool refresh_due = refresh_ctr_ == (1ULL << kRefreshBits) - 1;
  const bool row_hit = row_valid_ && ((in.req_row & addr_mask) == open_row_);

  std::uint64_t next = kIdle;
  switch (state_) {
    case kIdle:
      next = refresh_due
                 ? kRefresh
                 : (in.req_valid ? (row_hit ? kReadWrite
                                            : (row_valid_ ? kPrecharge : kActivate))
                                 : kIdle);
      break;
    case kActivate: next = kReadWrite; break;
    case kPrecharge: next = kActivate; break;
    case kReadWrite:
    case kRefresh:
    default: next = kIdle; break;
  }

  if (state_ == kActivate) open_row_ = in.req_row & addr_mask;
  if (state_ == kActivate) row_valid_ = true;
  else if (state_ == kPrecharge || state_ == kRefresh) row_valid_ = false;
  refresh_ctr_ = (state_ == kRefresh) ? 0 : ((refresh_ctr_ + 1) &
                                             ((1ULL << kRefreshBits) - 1));
  if (state_ == kReadWrite && in.req_rw) {
    const std::uint64_t data_mask = (1ULL << data_width_) - 1;
    data_reg_ = ((in.wdata & in.wmask) | (data_reg_ & ~in.wmask)) & data_mask;
  }
  state_ = next;
}

void MemCtrlModel::reset() {
  state_ = 0;
  open_row_ = 0;
  row_valid_ = false;
  refresh_ctr_ = 0;
  data_reg_ = 0;
}

}  // namespace polaris::circuits
