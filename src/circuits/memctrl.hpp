// Sequential memory-controller FSM (EPFL "mem_ctrl" stand-in): the one
// DFF-based design of the evaluation suite, exercising the simulator's and
// TVLA's sequential paths.
#pragma once

#include <cstdint>

#include "netlist/netlist.hpp"

namespace polaris::circuits {

/// SDRAM-style controller.
/// Inputs : req_valid, req_rw, req_row[addr], req_col[addr], wdata[data],
///          wmask[data] (per-bit write strobes).
/// Outputs: ack, busy, cmd[3] (state code), addr_out[addr], dq[data]
///          (read bus, gated by ack: Hamming-weight leakage like a real
///          DQ bus).
/// State  : IDLE(0) -> ACTIVATE(1) -> RW(2) -> IDLE, PRECHARGE(3) on row
///          miss, REFRESH(4) when the refresh counter saturates. Writes
///          merge wdata into the data register under wmask.
[[nodiscard]] netlist::Netlist make_memctrl(std::size_t addr_width = 12,
                                            std::size_t data_width = 16);

/// Cycle-accurate reference model.
class MemCtrlModel {
 public:
  MemCtrlModel(std::size_t addr_width, std::size_t data_width);

  struct Inputs {
    bool req_valid = false;
    bool req_rw = false;  // 1 = write
    std::uint64_t req_row = 0;
    std::uint64_t req_col = 0;
    std::uint64_t wdata = 0;
    std::uint64_t wmask = 0;  // per-bit write strobes
  };
  struct Outputs {
    bool ack = false;
    bool busy = false;
    std::uint64_t cmd = 0;
    std::uint64_t addr_out = 0;
    std::uint64_t dq = 0;
  };

  /// Combinational outputs for the current state + inputs.
  [[nodiscard]] Outputs outputs(const Inputs& in) const;
  /// Advance one clock edge.
  void step(const Inputs& in);
  void reset();

 private:
  std::size_t addr_width_;
  std::size_t data_width_;
  std::uint64_t state_ = 0;
  std::uint64_t open_row_ = 0;
  bool row_valid_ = false;
  std::uint64_t refresh_ctr_ = 0;
  std::uint64_t data_reg_ = 0;
};

}  // namespace polaris::circuits
