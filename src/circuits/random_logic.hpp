// Seeded random combinational netlists with mapped-netlist-like cell-type
// and locality statistics. These are the training designs (substituting the
// small ISCAS-85 circuits the paper trains on; see DESIGN.md) and general
// fuzzing material for property tests.
#pragma once

#include <cstdint>

#include "netlist/netlist.hpp"

namespace polaris::circuits {

struct RandomLogicConfig {
  std::size_t inputs = 32;
  std::size_t gates = 400;   // combinational cells to create
  std::size_t outputs = 16;  // nets marked as primary outputs
  /// Probability that an operand is drawn from the most recent nets
  /// (creates depth and local structure instead of a shallow soup).
  double locality = 0.75;
  std::uint64_t seed = 1;
};

[[nodiscard]] netlist::Netlist make_random_logic(const RandomLogicConfig& config);

}  // namespace polaris::circuits
