// AES SubBytes slice: AddRoundKey + S-box lookup for N parallel bytes.
// This is the canonical first-order DPA target (the paper's Fig. 1
// motivation) and drives the aes_sbox_hardening example.
//
// The S-box table is computed from first principles (GF(2^8) inverse with
// the AES polynomial 0x11b followed by the affine transform), not typed in,
// and is pinned by unit tests against published values.
#pragma once

#include <array>
#include <cstdint>

#include "netlist/netlist.hpp"

namespace polaris::circuits {

/// Inputs: data (8*boxes bits), key (8*boxes bits); output: sbox(data ^ key)
/// per byte (8*boxes bits). Each S-box is a two-level minterm decoder.
[[nodiscard]] netlist::Netlist make_aes_sbox_layer(std::size_t boxes = 1);

/// The AES S-box as a table (computed, cached).
[[nodiscard]] const std::array<std::uint8_t, 256>& aes_sbox_table();

/// Reference model of the layer for one byte lane.
[[nodiscard]] std::uint8_t ref_aes_sbox(std::uint8_t data, std::uint8_t key);

}  // namespace polaris::circuits
