// DES and Triple-DES (EDE) gate-level generators plus independent software
// reference models (MIT-CEP "des3" stand-in).
//
// Bit convention: FIPS-46 numbers block bits 1..64 from the most significant
// end. Circuit words are LSB-first, so FIPS bit i of a 64-bit word lives at
// Word index (64 - i). Reference models use the same packing (FIPS bit 1 =
// uint64 bit 63), which is also what openssl's DES produces - the reference
// is validated against openssl known-answer vectors in the test suite.
#pragma once

#include <cstdint>

#include "netlist/netlist.hpp"

namespace polaris::circuits {

/// Single-DES core: inputs pt (64), key (64); output ct (64).
/// `rounds` < 16 builds a reduced-round variant (for fast experiments);
/// the reference model accepts the same parameter.
[[nodiscard]] netlist::Netlist make_des(std::size_t rounds = 16);

/// Triple-DES EDE: ct = E_k3(D_k2(E_k1(pt))). Inputs pt, k1, k2, k3 (64
/// bits each); output ct (64).
[[nodiscard]] netlist::Netlist make_des3();

/// Software DES (same tables). decrypt=true reverses the key schedule.
[[nodiscard]] std::uint64_t ref_des(std::uint64_t key, std::uint64_t block,
                                    bool decrypt = false,
                                    std::size_t rounds = 16);

/// Software 3DES-EDE encrypt.
[[nodiscard]] std::uint64_t ref_des3(std::uint64_t k1, std::uint64_t k2,
                                     std::uint64_t k3, std::uint64_t block);

}  // namespace polaris::circuits
