#include "circuits/random_logic.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace polaris::circuits {

using netlist::CellType;
using netlist::Netlist;
using netlist::NetId;

Netlist make_random_logic(const RandomLogicConfig& config) {
  if (config.inputs < 2 || config.gates == 0) {
    throw std::invalid_argument("make_random_logic: need >= 2 inputs, > 0 gates");
  }
  util::Xoshiro256 rng(config.seed);
  Netlist nl("rand_g" + std::to_string(config.gates) + "_s" +
             std::to_string(config.seed));

  std::vector<NetId> pool;
  pool.reserve(config.inputs + config.gates);
  for (std::size_t i = 0; i < config.inputs; ++i) {
    pool.push_back(nl.add_input("in_" + std::to_string(i)));
  }

  // Cell-type mix loosely matching a NAND-dominant mapped netlist.
  const struct {
    CellType type;
    double weight;
  } mix[] = {
      {CellType::kNand, 0.28}, {CellType::kNor, 0.13}, {CellType::kAnd, 0.12},
      {CellType::kOr, 0.10},   {CellType::kXor, 0.11}, {CellType::kXnor, 0.05},
      {CellType::kNot, 0.10},  {CellType::kBuf, 0.03}, {CellType::kMux, 0.08},
  };

  const auto pick_type = [&]() {
    double roll = rng.uniform();
    for (const auto& entry : mix) {
      if (roll < entry.weight) return entry.type;
      roll -= entry.weight;
    }
    return CellType::kNand;
  };

  const auto pick_net = [&]() -> NetId {
    if (rng.chance(config.locality) && pool.size() > 64) {
      const std::size_t window = 64;
      return pool[pool.size() - 1 - rng.bounded(window)];
    }
    return pool[rng.bounded(pool.size())];
  };

  for (std::size_t g = 0; g < config.gates; ++g) {
    const CellType type = pick_type();
    std::size_t fan_in = 2;
    if (type == CellType::kNot || type == CellType::kBuf) {
      fan_in = 1;
    } else if (type == CellType::kMux) {
      fan_in = 3;
    } else if (rng.chance(0.15)) {
      fan_in = 3 + rng.bounded(2);  // occasional 3- or 4-input cell
    } else if ((type == CellType::kAnd || type == CellType::kOr ||
                type == CellType::kNand || type == CellType::kNor) &&
               rng.chance(0.08)) {
      fan_in = 5 + rng.bounded(4);  // wide SOP-style cells (decoders, PLAs)
    }
    std::vector<NetId> inputs;
    inputs.reserve(fan_in);
    for (std::size_t i = 0; i < fan_in; ++i) inputs.push_back(pick_net());
    pool.push_back(nl.add_cell(type, inputs));
  }

  const std::size_t outputs = std::min(config.outputs, config.gates);
  for (std::size_t i = 0; i < outputs; ++i) {
    nl.mark_output(pool[pool.size() - 1 - i], "out_" + std::to_string(i));
  }
  nl.validate();
  return nl;
}

}  // namespace polaris::circuits
