// Control-dominated benchmark generators: majority voter and round-robin
// arbiter (EPFL "voter" / "arbiter" stand-ins), with reference models.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"

namespace polaris::circuits {

/// Majority voter: `inputs` 1-bit ballots (odd count), output maj = 1 iff
/// more than half are 1. Internally a ripple popcount tree + comparator.
[[nodiscard]] netlist::Netlist make_voter(std::size_t inputs);
[[nodiscard]] bool ref_voter(const std::vector<bool>& ballots);

/// Rotating-priority (round-robin) arbiter: inputs req[n] and a priority
/// pointer ptr[log2 n]; outputs grant[n] (one-hot among requests, priority
/// starting at ptr and wrapping) and any (OR of requests). n must be a
/// power of two.
[[nodiscard]] netlist::Netlist make_arbiter(std::size_t requesters);
[[nodiscard]] std::vector<bool> ref_arbiter(const std::vector<bool>& req,
                                            std::size_t pointer);

}  // namespace polaris::circuits
