#include "circuits/md5.hpp"

#include <cmath>
#include <stdexcept>

#include "circuits/word.hpp"

namespace polaris::circuits {

using netlist::CellType;
using netlist::Netlist;
using netlist::NetId;

namespace {

constexpr std::array<int, 64> kShift = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

/// T[i] = floor(|sin(i+1)| * 2^32) - the canonical MD5 constants. Computed
/// once; correctness is pinned by the openssl known-answer tests.
const std::array<std::uint32_t, 64>& sine_table() {
  static const std::array<std::uint32_t, 64> table = [] {
    std::array<std::uint32_t, 64> t{};
    for (std::size_t i = 0; i < 64; ++i) {
      t[i] = static_cast<std::uint32_t>(
          std::floor(std::fabs(std::sin(static_cast<double>(i + 1))) *
                     4294967296.0));
    }
    return t;
  }();
  return table;
}

std::size_t message_index(std::size_t step) {
  if (step < 16) return step;
  if (step < 32) return (5 * step + 1) % 16;
  if (step < 48) return (3 * step + 5) % 16;
  return (7 * step) % 16;
}

constexpr std::uint32_t kInitA = 0x67452301U;
constexpr std::uint32_t kInitB = 0xefcdab89U;
constexpr std::uint32_t kInitC = 0x98badcfeU;
constexpr std::uint32_t kInitD = 0x10325476U;

}  // namespace

std::array<std::uint32_t, 4> ref_md5_block(const std::array<std::uint32_t, 16>& m,
                                           std::size_t steps) {
  if (steps == 0 || steps > 64) {
    throw std::invalid_argument("ref_md5_block: steps must be in [1,64]");
  }
  const auto& t = sine_table();
  std::uint32_t a = kInitA, b = kInitB, c = kInitC, d = kInitD;
  for (std::size_t i = 0; i < steps; ++i) {
    std::uint32_t f = 0;
    if (i < 16) f = (b & c) | (~b & d);
    else if (i < 32) f = (d & b) | (~d & c);
    else if (i < 48) f = b ^ c ^ d;
    else f = c ^ (b | ~d);
    const std::uint32_t sum = a + f + m[message_index(i)] + t[i];
    const int s = kShift[i];
    const std::uint32_t rotated = (sum << s) | (sum >> (32 - s));
    const std::uint32_t next_b = b + rotated;
    a = d;
    d = c;
    c = b;
    b = next_b;
  }
  return {a + kInitA, b + kInitB, c + kInitC, d + kInitD};
}

std::array<std::uint8_t, 16> ref_md5_digest(const std::vector<std::uint8_t>& message) {
  if (message.size() > 55) {
    throw std::invalid_argument("ref_md5_digest: single-block only (<= 55 bytes)");
  }
  std::array<std::uint8_t, 64> block{};
  for (std::size_t i = 0; i < message.size(); ++i) block[i] = message[i];
  block[message.size()] = 0x80;
  const std::uint64_t bit_len = static_cast<std::uint64_t>(message.size()) * 8;
  for (std::size_t i = 0; i < 8; ++i) {
    block[56 + i] = static_cast<std::uint8_t>(bit_len >> (8 * i));
  }
  std::array<std::uint32_t, 16> words{};
  for (std::size_t w = 0; w < 16; ++w) {
    words[w] = static_cast<std::uint32_t>(block[4 * w]) |
               (static_cast<std::uint32_t>(block[4 * w + 1]) << 8) |
               (static_cast<std::uint32_t>(block[4 * w + 2]) << 16) |
               (static_cast<std::uint32_t>(block[4 * w + 3]) << 24);
  }
  const auto regs = ref_md5_block(words);
  std::array<std::uint8_t, 16> digest{};
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t byte = 0; byte < 4; ++byte) {
      digest[4 * r + byte] = static_cast<std::uint8_t>(regs[r] >> (8 * byte));
    }
  }
  return digest;
}

Netlist make_md5(std::size_t steps) {
  if (steps == 0 || steps > 64) {
    throw std::invalid_argument("make_md5: steps must be in [1,64]");
  }
  Netlist nl(steps == 64 ? "md5" : "md5_s" + std::to_string(steps));
  WordBuilder wb(nl);

  std::array<Word, 16> m;
  for (std::size_t w = 0; w < 16; ++w) {
    m[w] = wb.input("m" + std::to_string(w), 32);
  }

  const auto rotate_left = [&](const Word& word, int s) {
    Word out;
    out.bits.resize(32);
    for (std::size_t j = 0; j < 32; ++j) {
      out.bits[j] = word.bits[(j + 32 - static_cast<std::size_t>(s)) % 32];
    }
    return out;
  };

  const auto& t = sine_table();
  Word a = wb.constant(kInitA, 32);
  Word b = wb.constant(kInitB, 32);
  Word c = wb.constant(kInitC, 32);
  Word d = wb.constant(kInitD, 32);

  for (std::size_t i = 0; i < steps; ++i) {
    Word f;
    if (i < 16) {
      // (b & c) | (~b & d) is a 2:1 mux with b as select.
      f.bits.reserve(32);
      for (std::size_t j = 0; j < 32; ++j) {
        f.bits.push_back(
            wb.gate(CellType::kMux, {b.bits[j], d.bits[j], c.bits[j]}));
      }
    } else if (i < 32) {
      f.bits.reserve(32);
      for (std::size_t j = 0; j < 32; ++j) {
        f.bits.push_back(
            wb.gate(CellType::kMux, {d.bits[j], c.bits[j], b.bits[j]}));
      }
    } else if (i < 48) {
      f.bits.reserve(32);
      for (std::size_t j = 0; j < 32; ++j) {
        const NetId bc = wb.gate(CellType::kXor, {b.bits[j], c.bits[j]});
        f.bits.push_back(wb.gate(CellType::kXor, {bc, d.bits[j]}));
      }
    } else {
      f.bits.reserve(32);
      for (std::size_t j = 0; j < 32; ++j) {
        const NetId nd = wb.gate(CellType::kNot, {d.bits[j]});
        const NetId b_or_nd = wb.gate(CellType::kOr, {b.bits[j], nd});
        f.bits.push_back(wb.gate(CellType::kXor, {c.bits[j], b_or_nd}));
      }
    }

    Word sum = wb.add(a, f).sum;
    sum = wb.add(sum, m[message_index(i)]).sum;
    sum = wb.add(sum, wb.constant(t[i], 32)).sum;
    const Word rotated = rotate_left(sum, kShift[i]);
    const Word next_b = wb.add(b, rotated).sum;
    a = d;
    d = c;
    c = b;
    b = next_b;
  }

  wb.output(wb.add(a, wb.constant(kInitA, 32)).sum, "dig_a");
  wb.output(wb.add(b, wb.constant(kInitB, 32)).sum, "dig_b");
  wb.output(wb.add(c, wb.constant(kInitC, 32)).sum, "dig_c");
  wb.output(wb.add(d, wb.constant(kInitD, 32)).sum, "dig_d");
  nl.validate();
  return nl;
}

}  // namespace polaris::circuits
