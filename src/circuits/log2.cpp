#include "circuits/log2.hpp"

#include <bit>
#include <stdexcept>

#include "circuits/word.hpp"

namespace polaris::circuits {

using netlist::CellType;
using netlist::Netlist;
using netlist::NetId;

Netlist make_log2(std::size_t width, std::size_t frac_bits) {
  if (!std::has_single_bit(width)) {
    throw std::invalid_argument("make_log2: width must be a power of two");
  }
  if (frac_bits >= width) {
    throw std::invalid_argument("make_log2: frac_bits must be < width");
  }
  const std::size_t exp_bits = static_cast<std::size_t>(std::bit_width(width) - 1);

  Netlist nl("log2_" + std::to_string(width));
  WordBuilder wb(nl);
  const Word a = wb.input("a", width);

  // Leading-one detector: lead[i] = a[i] & ~(a[i+1] | ... | a[width-1]).
  // Built MSB-down with a running "seen a one above" chain.
  std::vector<NetId> lead(width);
  NetId any_above = netlist::kNoNet;
  for (std::size_t step = 0; step < width; ++step) {
    const std::size_t i = width - 1 - step;
    if (any_above == netlist::kNoNet) {
      lead[i] = a.bits[i];
      any_above = a.bits[i];
    } else {
      const NetId not_above = wb.gate(CellType::kNot, {any_above});
      lead[i] = wb.gate(CellType::kAnd, {a.bits[i], not_above});
      any_above = wb.gate(CellType::kOr, {any_above, a.bits[i]});
    }
  }

  // Binary-encode the leading-one position.
  Word exponent;
  exponent.bits.reserve(exp_bits);
  for (std::size_t k = 0; k < exp_bits; ++k) {
    std::vector<NetId> terms;
    for (std::size_t i = 0; i < width; ++i) {
      if ((i >> k) & 1U) terms.push_back(lead[i]);
    }
    exponent.bits.push_back(wb.reduce(CellType::kOr, std::move(terms)));
  }

  // Normalize: shift left by (width-1 - position) = bitwise NOT of the
  // position (power-of-two width), one mux stage per shift-amount bit.
  Word mant = a;
  for (std::size_t k = 0; k < exp_bits; ++k) {
    const NetId sel = wb.gate(CellType::kNot, {exponent.bits[k]});
    mant = wb.mux(sel, mant, wb.shift_left(mant, 1ULL << k));
  }

  // Fraction: the frac_bits just below the (now leading) MSB.
  const Word frac = wb.slice(mant, width - 1 - frac_bits, frac_bits);

  wb.output(exponent, "exp");
  wb.output(frac, "frac");
  nl.validate();
  return nl;
}

Log2Result ref_log2(std::uint64_t a, std::size_t width, std::size_t frac_bits) {
  const std::uint64_t mask = width >= 64 ? ~0ULL : (1ULL << width) - 1;
  a &= mask;
  if (a == 0) return {0, 0};
  const std::size_t pos =
      static_cast<std::size_t>(std::bit_width(a)) - 1;  // leading-one index
  const std::uint64_t normalized = (a << (width - 1 - pos)) & mask;
  const std::uint64_t frac =
      (normalized >> (width - 1 - frac_bits)) & ((1ULL << frac_bits) - 1);
  return {pos, frac};
}

}  // namespace polaris::circuits
