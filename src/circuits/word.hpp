// Word-level structural building blocks shared by every circuit generator.
//
// A Word is an LSB-first vector of nets. WordBuilder wraps a netlist with
// cached constant cells and emits the standard arithmetic idioms (ripple
// carry, borrow-select, reduction trees, barrel shifts) that the benchmark
// generators are assembled from.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace polaris::circuits {

struct Word {
  std::vector<netlist::NetId> bits;  // LSB first

  [[nodiscard]] std::size_t width() const { return bits.size(); }
  [[nodiscard]] netlist::NetId msb() const { return bits.back(); }
  [[nodiscard]] netlist::NetId operator[](std::size_t i) const { return bits[i]; }
};

class WordBuilder {
 public:
  explicit WordBuilder(netlist::Netlist& netlist) : nl_(netlist) {}

  [[nodiscard]] netlist::Netlist& netlist() { return nl_; }

  // --- sources -------------------------------------------------------------
  [[nodiscard]] netlist::NetId zero();
  [[nodiscard]] netlist::NetId one();
  [[nodiscard]] Word input(const std::string& prefix, std::size_t width);
  void output(const Word& word, const std::string& prefix);
  [[nodiscard]] Word constant(std::uint64_t value, std::size_t width);

  // --- registers (DFF words with feedback support) --------------------------
  /// Creates `width` undriven q nets usable immediately in logic; call
  /// connect_register() once the next-state word exists.
  [[nodiscard]] Word register_word(const std::string& prefix, std::size_t width);
  void connect_register(const Word& q, const Word& next);

  // --- bitwise -------------------------------------------------------------
  [[nodiscard]] netlist::NetId gate(netlist::CellType type,
                                    std::initializer_list<netlist::NetId> in);
  [[nodiscard]] Word map2(netlist::CellType type, const Word& a, const Word& b);
  [[nodiscard]] Word invert(const Word& a);
  /// sel ? b : a, per bit (single select line).
  [[nodiscard]] Word mux(netlist::NetId sel, const Word& a, const Word& b);
  /// sel[i] ? b[i] : a[i] - per-bit selects (byte-lane merge and similar).
  [[nodiscard]] Word mux_bits(const Word& sel, const Word& a, const Word& b);

  // --- reductions ----------------------------------------------------------
  [[nodiscard]] netlist::NetId reduce(netlist::CellType type,
                                      std::vector<netlist::NetId> bits,
                                      std::size_t max_fan_in = 8);
  [[nodiscard]] netlist::NetId reduce_or(const Word& a) {
    return reduce(netlist::CellType::kOr, a.bits);
  }
  [[nodiscard]] netlist::NetId reduce_and(const Word& a) {
    return reduce(netlist::CellType::kAnd, a.bits);
  }
  [[nodiscard]] netlist::NetId equal(const Word& a, const Word& b);

  // --- arithmetic ----------------------------------------------------------
  struct AddResult {
    Word sum;
    netlist::NetId carry;
  };
  /// a + b (+ carry_in); widths must match.
  [[nodiscard]] AddResult add(const Word& a, const Word& b,
                              netlist::NetId carry_in = netlist::kNoNet);
  /// a - b; `carry` is the NOT-borrow (1 iff a >= b).
  [[nodiscard]] AddResult sub(const Word& a, const Word& b);
  /// sub_flag ? a - b : a + b.
  [[nodiscard]] AddResult add_sub(netlist::NetId sub_flag, const Word& a,
                                  const Word& b);
  /// Unsigned a >= b.
  [[nodiscard]] netlist::NetId greater_equal(const Word& a, const Word& b);
  /// a + 1.
  [[nodiscard]] AddResult increment(const Word& a);

  // --- wiring (free) ---------------------------------------------------------
  [[nodiscard]] Word zext(const Word& a, std::size_t width);
  [[nodiscard]] Word slice(const Word& a, std::size_t lo, std::size_t width) const;
  /// Logical shift left by a constant (zero fill).
  [[nodiscard]] Word shift_left(const Word& a, std::size_t amount);
  /// Logical / arithmetic shift right by a constant.
  [[nodiscard]] Word shift_right(const Word& a, std::size_t amount,
                                 bool arithmetic = false);
  [[nodiscard]] Word concat(const Word& low, const Word& high) const;

 private:
  netlist::Netlist& nl_;
  netlist::NetId zero_ = netlist::kNoNet;
  netlist::NetId one_ = netlist::kNoNet;
};

}  // namespace polaris::circuits
