// Hamming-distance (toggle-count) dynamic power model.
//
// Per cycle, a gate that toggles its output dissipates its switching energy
// E_g = E_cell(type, fan-in) + E_load * fanout. This is the standard
// zero-delay pre-silicon power proxy targeted by first-order DPA and by
// simulation-based TVLA flows (which is what the paper itself uses).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/simulator.hpp"
#include "techlib/techlib.hpp"

namespace polaris::power {

class PowerModel {
 public:
  PowerModel(const netlist::Netlist& netlist, const techlib::TechLibrary& lib);

  /// Switching energy (fJ) charged when gate g toggles.
  [[nodiscard]] double gate_energy(netlist::GateId gate) const {
    return energies_[gate];
  }
  [[nodiscard]] const std::vector<double>& gate_energies() const {
    return energies_;
  }

  /// Gates with nonzero switching energy, ascending id - the set whose
  /// toggles contribute to power traces. Campaign shard loops iterate this
  /// instead of re-scanning all gates, fusing group-energy accumulation
  /// with toggle readout.
  [[nodiscard]] const std::vector<netlist::GateId>& active_gates() const {
    return active_gates_;
  }

  /// Total-power samples for all 64 lanes of the simulator's last eval():
  /// out[l] = sum over active gates of E_g * toggle_g[lane l]. This is the
  /// "aggregate power trace" view an oscilloscope-level attacker sees.
  void total_power(const sim::Simulator& simulator,
                   std::vector<double>& out_per_lane) const;

  /// Static leakage power (nW) of the whole design (activity-independent).
  [[nodiscard]] double static_leakage() const { return static_leakage_nw_; }

 private:
  std::vector<double> energies_;
  std::vector<netlist::GateId> active_gates_;
  double static_leakage_nw_ = 0.0;
};

/// Per-fanout load energy (fJ) added on top of the cell switching energy.
inline constexpr double kLoadEnergyPerFanoutFj = 0.12;

}  // namespace polaris::power
