// Compiled sampling plan: the fused toggle/energy readout layout shared by
// power::PowerModel consumers and tvla campaigns.
//
// Built once per (design, power model, compiled plan) triple, it resolves
// every active gate (nonzero switching energy) to its compiled toggle slot
// and pre-buckets the set by TVLA group:
//  * singles - groups with exactly one active member: the binary-counting
//    fast path (per-trace sample is 0 or the member's energy);
//  * multis  - members of groups with >= 2 active cells (masked composite
//    gates), laid out as an SoA run of (toggle slot, multi index, energy).
//
// Accumulation-order contract (what keeps golden t-stats bit-identical):
// members are stored in ascending GateId order - globally, and therefore
// within every group - so the per-group double accumulation order of
// lane-energy sums is exactly the ascending-id order the pre-compiled
// sampler used. Integer single counters are order-free; only the multi
// buckets carry float order, and that order is preserved.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "power/power_model.hpp"
#include "sim/compiled.hpp"

namespace polaris::power {

class SamplePlan {
 public:
  static constexpr std::uint32_t kNotMulti = 0xffffffffU;

  /// `compiled` must be a plan for the same netlist `power` was built on.
  SamplePlan(const sim::CompiledDesign& compiled, const PowerModel& power);

  /// One lone-member group: read one toggle word, count set lanes.
  struct SingleOp {
    std::uint32_t toggle_slot;
    netlist::GateId group;
  };
  /// One member of a multi-member group: accumulate `energy` into the
  /// group's per-lane sums for each set toggle bit.
  struct MultiOp {
    std::uint32_t toggle_slot;
    std::uint32_t multi;  // dense index into the multi-group space
    double energy;
  };

  [[nodiscard]] const std::vector<SingleOp>& singles() const { return singles_; }
  [[nodiscard]] const std::vector<MultiOp>& multis() const { return multis_; }

  /// Total leakage-accounting groups (max gate group id + 1).
  [[nodiscard]] std::size_t group_count() const { return group_measured_.size(); }
  /// Groups with at least one active member (the measurable set).
  [[nodiscard]] const std::vector<bool>& group_measured() const {
    return group_measured_;
  }
  [[nodiscard]] std::size_t multi_group_count() const {
    return multi_group_ids_.size();
  }
  /// Dense multi index of a group, or kNotMulti for single/empty groups.
  [[nodiscard]] std::uint32_t group_multi_index(netlist::GateId group) const {
    return group_multi_index_[group];
  }
  /// Lone member's switching energy for single groups (0 otherwise): places
  /// the binary {0, E} samples on the physical scale the noise floor lives on.
  [[nodiscard]] double single_energy(netlist::GateId group) const {
    return single_energy_[group];
  }

 private:
  std::vector<SingleOp> singles_;
  std::vector<MultiOp> multis_;
  std::vector<bool> group_measured_;
  std::vector<std::uint32_t> group_multi_index_;
  std::vector<netlist::GateId> multi_group_ids_;
  std::vector<double> single_energy_;
};

}  // namespace polaris::power
