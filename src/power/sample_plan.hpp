// Compiled sampling plan: the fused toggle/energy readout layout shared by
// power::PowerModel consumers and tvla campaigns.
//
// Built once per (design, power model, compiled plan) triple, it resolves
// every active gate (nonzero switching energy) to its compiled toggle slot
// and pre-buckets the set by TVLA group:
//  * singles - groups with exactly one active member: the binary-counting
//    fast path (per-trace sample is 0 or the member's energy);
//  * multis  - members of groups with >= 2 active cells (masked composite
//    gates), laid out as an SoA run of (toggle slot, multi index, energy).
//
// Accumulation-order contract (what keeps golden t-stats bit-identical):
// members are stored in ascending GateId order - globally, and therefore
// within every group - so the per-group double accumulation order of
// lane-energy sums is exactly the ascending-id order the pre-compiled
// sampler used. Integer single counters are order-free; only the multi
// buckets carry float order, and that order is preserved.
//
// Blocked readout (sample()): one call ingests a whole K-word lane block -
// up to K batches of 64 traces evaluated in one simulator pass. Per multi
// group, samples are pushed word-major (ascending lane word = ascending
// batch index), lane-ascending within a word: exactly the batch-major
// sample sequence the one-word-at-a-time path produced, so the Pebay
// moment updates see an identical float op order at every block width.
// Tail contract: only the first `active_words` words of a block are
// sampled; trailing words (trace counts not divisible by 64*K) are
// evaluated but never read, and their lane_sums scratch stays zero.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "power/power_model.hpp"
#include "sim/compiled.hpp"

namespace polaris::power {

class SamplePlan {
 public:
  static constexpr std::uint32_t kNotMulti = 0xffffffffU;

  /// `compiled` must be a plan for the same netlist `power` was built on.
  SamplePlan(const sim::CompiledDesign& compiled, const PowerModel& power);

  /// One lone-member group: read one toggle word, count set lanes.
  struct SingleOp {
    std::uint32_t toggle_slot;
    netlist::GateId group;
  };
  /// One member of a multi-member group: accumulate `energy` into the
  /// group's per-lane sums for each set toggle bit.
  struct MultiOp {
    std::uint32_t toggle_slot;
    std::uint32_t multi;  // dense index into the multi-group space
    double energy;
  };

  [[nodiscard]] const std::vector<SingleOp>& singles() const { return singles_; }
  [[nodiscard]] const std::vector<MultiOp>& multis() const { return multis_; }

  /// Total leakage-accounting groups (max gate group id + 1).
  [[nodiscard]] std::size_t group_count() const { return group_measured_.size(); }
  /// Groups with at least one active member (the measurable set).
  [[nodiscard]] const std::vector<bool>& group_measured() const {
    return group_measured_;
  }
  [[nodiscard]] std::size_t multi_group_count() const {
    return multi_group_ids_.size();
  }
  /// Dense multi index of a group, or kNotMulti for single/empty groups.
  [[nodiscard]] std::uint32_t group_multi_index(netlist::GateId group) const {
    return group_multi_index_[group];
  }
  /// Lone member's switching energy for single groups (0 otherwise): places
  /// the binary {0, E} samples on the physical scale the noise floor lives on.
  [[nodiscard]] double single_energy(netlist::GateId group) const {
    return single_energy_[group];
  }

  /// Fused toggle/energy readout of one K-word lane block.
  ///   toggle_words - blocked array (slot s owns words [s*K, (s+1)*K))
  ///   lane_words   - K, the simulator's block width
  ///   active_words - words actually carrying sampled batches (tail: < K)
  ///   class_masks  - per-word fixed-class lane masks (active_words entries)
  ///   lane_sums    - zeroed scratch, multi_group_count() * K * 64 doubles;
  ///                  returned zeroed
  ///   moments      - tvla::CampaignMoments-shaped sink (template keeps the
  ///                  power module independent of the tvla module)
  /// Singles feed exact integer counters; multi members accumulate
  /// pre-resolved energies per (word, lane) in ascending-GateId order, then
  /// every (word, lane) sample is pushed word-major / lane-ascending per
  /// group - the accumulation-order contract above.
  template <class Moments>
  void sample(const std::uint64_t* toggle_words, std::size_t lane_words,
              std::size_t active_words, const std::uint64_t* class_masks,
              double* lane_sums, Moments& moments) const {
    constexpr std::size_t kLanesPerWord = 64;
    for (std::size_t w = 0; w < active_words; ++w) {
      const auto n_fixed =
          static_cast<std::uint64_t>(__builtin_popcountll(class_masks[w]));
      moments.add_lane_counts(n_fixed, kLanesPerWord - n_fixed);
    }
    for (const SingleOp& op : singles_) {
      const std::uint64_t* block =
          toggle_words + static_cast<std::size_t>(op.toggle_slot) * lane_words;
      std::uint64_t fixed_ones = 0;
      std::uint64_t random_ones = 0;
      bool any = false;
      for (std::size_t w = 0; w < active_words; ++w) {
        const std::uint64_t toggles = block[w];
        if (toggles == 0) continue;
        any = true;
        fixed_ones += static_cast<std::uint64_t>(
            __builtin_popcountll(toggles & class_masks[w]));
        random_ones += static_cast<std::uint64_t>(
            __builtin_popcountll(toggles & ~class_masks[w]));
      }
      if (any) moments.add_single_ones(op.group, fixed_ones, random_ones);
    }
    for (const MultiOp& op : multis_) {
      const std::uint64_t* block =
          toggle_words + static_cast<std::size_t>(op.toggle_slot) * lane_words;
      double* sums =
          lane_sums + static_cast<std::size_t>(op.multi) * lane_words *
                          kLanesPerWord;
      for (std::size_t w = 0; w < active_words; ++w) {
        std::uint64_t bits = block[w];
        if (bits == 0) continue;
        double* lane_sum = sums + w * kLanesPerWord;
        while (bits != 0) {
          lane_sum[static_cast<std::size_t>(__builtin_ctzll(bits))] +=
              op.energy;
          bits &= bits - 1;
        }
      }
    }
    // Every sampled word contributes one sample per lane to each multi
    // group (possibly zero-valued); push word-major and clear.
    for (std::size_t m = 0; m < multi_group_ids_.size(); ++m) {
      for (std::size_t w = 0; w < active_words; ++w) {
        const std::uint64_t mask = class_masks[w];
        double* lane_sum =
            lane_sums + (m * lane_words + w) * kLanesPerWord;
        for (std::size_t lane = 0; lane < kLanesPerWord; ++lane) {
          const bool fixed = ((mask >> lane) & 1ULL) != 0;
          moments.add_multi_sample(m, fixed, lane_sum[lane]);
          lane_sum[lane] = 0.0;
        }
      }
    }
  }

 private:
  std::vector<SingleOp> singles_;
  std::vector<MultiOp> multis_;
  std::vector<bool> group_measured_;
  std::vector<std::uint32_t> group_multi_index_;
  std::vector<netlist::GateId> multi_group_ids_;
  std::vector<double> single_energy_;
};

}  // namespace polaris::power
