#include "power/power_model.hpp"

namespace polaris::power {

using netlist::GateId;

PowerModel::PowerModel(const netlist::Netlist& netlist,
                       const techlib::TechLibrary& lib) {
  energies_.resize(netlist.gate_count());
  for (GateId g = 0; g < netlist.gate_count(); ++g) {
    const auto& gate = netlist.gate(g);
    const std::size_t fanout = netlist.net(gate.output).fanouts.size();
    energies_[g] = lib.switch_energy(gate.type, gate.inputs.size()) +
                   kLoadEnergyPerFanoutFj * static_cast<double>(fanout);
    static_leakage_nw_ += lib.leakage(gate.type, gate.inputs.size());
    if (energies_[g] > 0.0) active_gates_.push_back(g);
  }
}

void PowerModel::total_power(const sim::Simulator& simulator,
                             std::vector<double>& out_per_lane) const {
  // Walk active_gates_ (ascending id) instead of all gates: zero-energy
  // gates contribute exactly +0.0 to nonnegative accumulators, so the sums
  // are bit-identical to the all-gates sweep while skipping the dead set.
  out_per_lane.assign(sim::kLanes, 0.0);
  for (const GateId g : active_gates_) {
    const std::uint64_t toggles = simulator.toggles(g);
    if (toggles == 0) continue;
    const double energy = energies_[g];
    std::uint64_t bits = toggles;
    while (bits != 0) {
      const int lane = __builtin_ctzll(bits);
      out_per_lane[static_cast<std::size_t>(lane)] += energy;
      bits &= bits - 1;
    }
  }
}

}  // namespace polaris::power
