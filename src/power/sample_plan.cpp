#include "power/sample_plan.hpp"

#include <algorithm>

namespace polaris::power {

using netlist::GateId;

SamplePlan::SamplePlan(const sim::CompiledDesign& compiled,
                       const PowerModel& power) {
  const netlist::Netlist& design = compiled.design();

  GateId max_group = 0;
  for (const auto& gate : design.gates()) {
    max_group = std::max(max_group, gate.group);
  }
  const std::size_t group_count = static_cast<std::size_t>(max_group) + 1;

  std::vector<std::uint32_t> group_size(group_count, 0);
  group_measured_.assign(group_count, false);
  for (const GateId g : power.active_gates()) {
    group_size[design.gate(g).group]++;
    group_measured_[design.gate(g).group] = true;
  }

  // Multi-member groups need real-valued samples; single-member groups use
  // the binary counting fast path.
  group_multi_index_.assign(group_count, kNotMulti);
  for (GateId grp = 0; grp < group_count; ++grp) {
    if (group_size[grp] > 1) {
      group_multi_index_[grp] =
          static_cast<std::uint32_t>(multi_group_ids_.size());
      multi_group_ids_.push_back(grp);
    }
  }

  // active_gates() is ascending by id, so singles_ and multis_ inherit the
  // ascending-GateId order the accumulation contract requires.
  single_energy_.assign(group_count, 0.0);
  for (const GateId g : power.active_gates()) {
    const GateId grp = design.gate(g).group;
    const std::uint32_t multi = group_multi_index_[grp];
    if (multi == kNotMulti) {
      single_energy_[grp] = power.gate_energy(g);
      singles_.push_back(SingleOp{compiled.toggle_slot(g), grp});
    } else {
      multis_.push_back(
          MultiOp{compiled.toggle_slot(g), multi, power.gate_energy(g)});
    }
  }
}

}  // namespace polaris::power
