#include "analysis/ppa.hpp"

#include <algorithm>
#include <vector>

#include "power/power_model.hpp"
#include "sim/simulator.hpp"

namespace polaris::analysis {

using netlist::GateId;
using netlist::NetId;

PpaReport analyze(const netlist::Netlist& design,
                  const techlib::TechLibrary& lib, const AnalysisConfig& config) {
  PpaReport report;

  // --- area ---------------------------------------------------------------
  for (const auto& gate : design.gates()) {
    report.area_um2 += lib.area(gate.type, gate.inputs.size());
  }

  // --- delay (levelized STA) -----------------------------------------------
  // arrival(g) = max over combinational fan-in drivers of arrival(driver)
  //              + cell delay(g). Sources and DFF outputs launch at t = 0.
  {
    std::vector<double> arrival(design.gate_count(), 0.0);
    double worst = 0.0;
    for (const GateId g : design.topological_order()) {
      const auto& gate = design.gate(g);
      if (!netlist::is_combinational(gate.type) &&
          gate.type != netlist::CellType::kDff) {
        continue;
      }
      double launch = 0.0;
      for (const NetId in : gate.inputs) {
        const GateId driver = design.net(in).driver;
        if (netlist::is_combinational(design.gate(driver).type)) {
          launch = std::max(launch, arrival[driver]);
        }
      }
      const std::size_t fanout = design.net(gate.output).fanouts.size();
      arrival[g] = launch + lib.delay(gate.type, gate.inputs.size(), fanout);
      worst = std::max(worst, arrival[g]);
    }
    report.delay_ns = worst / 1000.0;  // ps -> ns
  }

  // --- power ---------------------------------------------------------------
  // Dynamic: measured toggle rates under uniform random stimulus, on the
  // compiled kernel. Only active gates (nonzero energy) are read back -
  // zero-energy gates contribute exactly 0.0, so the estimate is unchanged.
  {
    power::PowerModel power(design, lib);
    sim::Simulator simulator(sim::compile(design), config.seed);
    double energy_fj_total = 0.0;  // summed over cycles and lanes
    std::size_t cycles = std::max<std::size_t>(1, config.activity_cycles);
    for (std::size_t c = 0; c < cycles; ++c) {
      simulator.set_inputs_random();
      simulator.eval();
      for (const GateId g : power.active_gates()) {
        const int toggles = __builtin_popcountll(simulator.toggles(g));
        if (toggles != 0) {
          energy_fj_total += power.gate_energy(g) * toggles;
        }
      }
      simulator.latch();
    }
    const double lanes = static_cast<double>(sim::kLanes);
    const double energy_per_cycle_fj =
        energy_fj_total / (static_cast<double>(cycles) * lanes);
    // mW = fJ/cycle * cycles/s: fJ = 1e-15 J, MHz = 1e6 /s, W->mW = 1e3.
    report.dynamic_power_mw = energy_per_cycle_fj * config.clock_mhz * 1e-6;
    report.static_power_mw = power.static_leakage() * 1e-6;  // nW -> mW
    report.power_mw = report.dynamic_power_mw + report.static_power_mw;
  }
  return report;
}

}  // namespace polaris::analysis
