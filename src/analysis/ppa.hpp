// Power / performance / area reporting (Table IV substrate).
//
// Mirrors what the paper pulls from Synopsys DC reports:
//   area  - sum of cell areas (um^2),
//   power - activity-based dynamic power (random stimulus at a nominal
//           clock) plus static leakage (mW),
//   delay - levelized static timing: longest register-to-register /
//           input-to-output path (ns).
#pragma once

#include <cstdint>

#include "netlist/netlist.hpp"
#include "techlib/techlib.hpp"

namespace polaris::analysis {

struct AnalysisConfig {
  /// Random-stimulus cycles used to estimate toggle rates.
  std::size_t activity_cycles = 1024;
  /// Nominal clock for energy-to-power conversion.
  double clock_mhz = 100.0;
  std::uint64_t seed = 7;
};

struct PpaReport {
  double area_um2 = 0.0;
  double power_mw = 0.0;  // dynamic + static
  double dynamic_power_mw = 0.0;
  double static_power_mw = 0.0;
  double delay_ns = 0.0;
};

[[nodiscard]] PpaReport analyze(const netlist::Netlist& design,
                                const techlib::TechLibrary& lib,
                                const AnalysisConfig& config = {});

}  // namespace polaris::analysis
