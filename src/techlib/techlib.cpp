#include "techlib/techlib.hpp"

#include <bit>
#include <cmath>

namespace polaris::techlib {

using netlist::CellType;

TechLibrary TechLibrary::default_library() {
  TechLibrary lib;
  const auto set = [&lib](CellType type, double area, double energy,
                          double leak, double delay, double per_fo) {
    lib.costs_[static_cast<std::size_t>(type)] =
        CellCost{area, energy, leak, delay, per_fo};
  };
  // type            area(um2) E_sw(fJ) leak(nW) d(ps) d/fanout(ps)
  set(CellType::kInput,  0.00, 0.00, 0.0,  0.0, 0.0);
  set(CellType::kConst0, 0.27, 0.00, 0.3,  0.0, 0.0);
  set(CellType::kConst1, 0.27, 0.00, 0.3,  0.0, 0.0);
  // A mask-share source is physically an LFSR/PRNG tap buffer; we charge a
  // small flop-like cost so masked designs pay for their randomness.
  set(CellType::kRand,   2.40, 1.10, 9.0,  0.0, 0.0);
  set(CellType::kBuf,    0.80, 0.55, 4.5, 28.0, 6.0);
  set(CellType::kNot,    0.53, 0.45, 3.8, 13.0, 5.0);
  set(CellType::kAnd,    1.06, 0.85, 6.4, 42.0, 7.0);
  set(CellType::kOr,     1.06, 0.88, 6.6, 44.0, 7.0);
  set(CellType::kNand,   0.80, 0.62, 5.0, 22.0, 6.5);
  set(CellType::kNor,    0.80, 0.66, 5.2, 26.0, 7.5);
  set(CellType::kXor,    1.60, 1.35, 8.9, 56.0, 8.0);
  set(CellType::kXnor,   1.60, 1.32, 8.8, 54.0, 8.0);
  set(CellType::kMux,    1.86, 1.20, 8.1, 48.0, 7.5);
  set(CellType::kDff,    4.52, 2.10, 18.0, 92.0, 6.0);
  return lib;
}

const CellCost& TechLibrary::base_cost(CellType type) const {
  return costs_[static_cast<std::size_t>(type)];
}

namespace {

/// Number of 2-input cells in the tree decomposition of an n-ary cell.
double tree_cells(std::size_t fan_in) {
  return fan_in <= 2 ? 1.0 : static_cast<double>(fan_in - 1);
}

/// Tree depth of the decomposition.
double tree_levels(std::size_t fan_in) {
  if (fan_in <= 2) return 1.0;
  return static_cast<double>(std::bit_width(fan_in - 1));
}

}  // namespace

double TechLibrary::area(CellType type, std::size_t fan_in) const {
  const CellCost& base = base_cost(type);
  if (!netlist::is_combinational(type) || type == CellType::kBuf ||
      type == CellType::kNot || type == CellType::kMux) {
    return base.area_um2;
  }
  return base.area_um2 * tree_cells(fan_in);
}

double TechLibrary::switch_energy(CellType type, std::size_t fan_in) const {
  const CellCost& base = base_cost(type);
  if (!netlist::is_combinational(type) || type == CellType::kBuf ||
      type == CellType::kNot || type == CellType::kMux) {
    return base.switch_energy_fj;
  }
  return base.switch_energy_fj * (1.0 + 0.35 * (tree_cells(fan_in) - 1.0));
}

double TechLibrary::leakage(CellType type, std::size_t fan_in) const {
  const CellCost& base = base_cost(type);
  if (!netlist::is_combinational(type) || type == CellType::kBuf ||
      type == CellType::kNot || type == CellType::kMux) {
    return base.leakage_nw;
  }
  return base.leakage_nw * tree_cells(fan_in);
}

double TechLibrary::delay(CellType type, std::size_t fan_in,
                          std::size_t fanout) const {
  const CellCost& base = base_cost(type);
  const double levels =
      netlist::is_combinational(type) && type != CellType::kBuf &&
              type != CellType::kNot && type != CellType::kMux
          ? tree_levels(fan_in)
          : 1.0;
  return base.delay_ps * levels +
         base.delay_per_fanout_ps * static_cast<double>(fanout);
}

double TechLibrary::area(const netlist::Netlist& netlist,
                         netlist::GateId gate) const {
  const auto& g = netlist.gate(gate);
  return area(g.type, g.inputs.size());
}

double TechLibrary::switch_energy(const netlist::Netlist& netlist,
                                  netlist::GateId gate) const {
  const auto& g = netlist.gate(gate);
  return switch_energy(g.type, g.inputs.size());
}

void TechLibrary::set_base_cost(CellType type, const CellCost& cost) {
  costs_[static_cast<std::size_t>(type)] = cost;
}

}  // namespace polaris::techlib
