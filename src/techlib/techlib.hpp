// Technology library: per-cell physical costs.
//
// Table IV of the paper reports area (um^2), power (mW) and delay (ns) from
// Synopsys DC reports on a commercial library. We substitute a
// self-contained 45nm-class library whose *relative* cell costs follow
// published NanGate 45nm OpenCell characterization (NAND2 as the unit cell).
// The overhead ratios the paper reports (x original) are preserved because
// they depend only on relative costs and on how many cells each flow adds.
//
// Cost model:
//   area(type, n)      : base area scaled by a fan-in factor equivalent to a
//                        2-input tree decomposition (n-1 two-input cells).
//   switch_energy(type): dynamic energy per output toggle (fJ); drives the
//                        power model and per-gate TVLA samples.
//   leakage(type)      : static power (nW).
//   delay(type, fanout): intrinsic delay + load-dependent term (ps).
#pragma once

#include <cstddef>

#include "netlist/cell.hpp"
#include "netlist/netlist.hpp"

namespace polaris::techlib {

struct CellCost {
  double area_um2 = 0.0;
  double switch_energy_fj = 0.0;
  double leakage_nw = 0.0;
  double delay_ps = 0.0;
  double delay_per_fanout_ps = 0.0;
};

class TechLibrary {
 public:
  /// The default, self-contained 45nm-class library (see file comment).
  [[nodiscard]] static TechLibrary default_library();

  /// Base (fan-in-2 where applicable) cost record for a cell type.
  [[nodiscard]] const CellCost& base_cost(netlist::CellType type) const;

  /// Fan-in-aware scaling: an n-ary cell costs what its balanced 2-input
  /// tree decomposition would ((n-1) base cells area/energy/leakage,
  /// ceil(log2 n) levels of delay).
  [[nodiscard]] double area(netlist::CellType type, std::size_t fan_in) const;
  [[nodiscard]] double switch_energy(netlist::CellType type, std::size_t fan_in) const;
  [[nodiscard]] double leakage(netlist::CellType type, std::size_t fan_in) const;
  [[nodiscard]] double delay(netlist::CellType type, std::size_t fan_in,
                             std::size_t fanout) const;

  /// Convenience overloads on netlist gates.
  [[nodiscard]] double area(const netlist::Netlist& netlist,
                            netlist::GateId gate) const;
  [[nodiscard]] double switch_energy(const netlist::Netlist& netlist,
                                     netlist::GateId gate) const;

  /// Replace a cost record (for library-exploration experiments).
  void set_base_cost(netlist::CellType type, const CellCost& cost);

 private:
  TechLibrary() = default;
  CellCost costs_[netlist::kCellTypeCount];
};

}  // namespace polaris::techlib
