#include "ml/decision_tree.hpp"

#include <numeric>

#include "serialize/model_io.hpp"

namespace polaris::ml {

void DecisionTree::fit(const Dataset& data) {
  ensemble_ = TreeEnsemble{};
  ensemble_.link = TreeEnsemble::Link::kIdentity;

  std::vector<std::size_t> indices(data.size());
  std::iota(indices.begin(), indices.end(), 0);
  TreeConfig tree_config;
  tree_config.max_depth = config_.max_depth;
  tree_config.min_samples_leaf = config_.min_samples_leaf;
  tree_config.seed = config_.seed;
  ensemble_.trees.push_back(
      {fit_classification_tree(data, indices, tree_config), 1.0});
}

double DecisionTree::predict_margin(std::span<const double> x) const {
  return ensemble_.margin(x);  // leaf positive fraction
}

double DecisionTree::predict_proba(std::span<const double> x) const {
  return ensemble_.probability(x);
}

void DecisionTree::save(serialize::Writer& out) const {
  out.u32(1);  // class payload version
  out.u64(config_.max_depth);
  out.u64(config_.min_samples_leaf);
  out.u64(config_.seed);
  serialize::write_ensemble(out, ensemble_);
}

DecisionTree DecisionTree::load(serialize::Reader& in) {
  (void)in.u32();  // class payload version (appends-only policy)
  DecisionTreeConfig config;
  config.max_depth = in.u64();
  config.min_samples_leaf = in.u64();
  config.seed = in.u64();
  DecisionTree model(config);
  model.ensemble_ = serialize::read_ensemble(in);
  return model;
}

}  // namespace polaris::ml
