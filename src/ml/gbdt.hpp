// Gradient-boosted decision trees with the XGBoost second-order objective
// (logistic loss, Newton leaf weights, shrinkage, lambda regularization).
// Sample weights from Dataset scale gradients/hessians, implementing the
// "weighted training" the paper uses to counter theta_r class imbalance.
#pragma once

#include <cstdint>

#include "ml/model.hpp"

namespace polaris::ml {

struct GbdtConfig {
  std::size_t rounds = 200;
  std::size_t max_depth = 4;
  /// Shrinkage / learning rate alpha (paper Sec. V-B: 0.01 for XGBoost and
  /// AdaBoost). With a rate this small, `rounds` must be sized accordingly.
  double learning_rate = 0.1;
  double lambda = 1.0;
  double gamma = 0.0;
  std::size_t min_samples_leaf = 2;
  std::uint64_t seed = 1;
};

class Gbdt final : public Classifier {
 public:
  explicit Gbdt(GbdtConfig config = {}) : config_(config) {}

  void fit(const Dataset& data) override;
  [[nodiscard]] double predict_margin(std::span<const double> x) const override;
  [[nodiscard]] double predict_proba(std::span<const double> x) const override;
  [[nodiscard]] const TreeEnsemble& ensemble() const override { return ensemble_; }
  [[nodiscard]] std::string name() const override { return "XGBoost"; }

  [[nodiscard]] ClassifierKind kind() const override {
    return ClassifierKind::kGbdt;
  }
  void save(serialize::Writer& out) const override;
  [[nodiscard]] static Gbdt load(serialize::Reader& in);

 private:
  GbdtConfig config_;
  TreeEnsemble ensemble_;
};

}  // namespace polaris::ml
