// SMOTE (Chawla et al. 2002): synthetic minority oversampling, used by the
// paper for the Random Forest model to counter theta_r-induced imbalance
// (Sec. V-B).
#pragma once

#include <cstdint>

#include "ml/dataset.hpp"

namespace polaris::ml {

struct SmoteConfig {
  std::size_t k_neighbors = 5;
  /// Target minority/majority ratio after oversampling (1.0 = balanced).
  double target_ratio = 1.0;
  /// Neighbor search examines at most this many random minority candidates
  /// per sample (exact k-NN above this size would be quadratic).
  std::size_t neighbor_pool = 256;
  std::uint64_t seed = 1;
};

/// Returns a new dataset containing all original samples plus synthetic
/// minority samples interpolated between minority points and their
/// neighbors. A dataset with fewer than 2 minority samples (or a single
/// class) is returned unchanged.
[[nodiscard]] Dataset smote_oversample(const Dataset& data,
                                       const SmoteConfig& config = {});

}  // namespace polaris::ml
