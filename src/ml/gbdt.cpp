#include "ml/gbdt.hpp"

#include <algorithm>
#include <cmath>

#include "serialize/model_io.hpp"

namespace polaris::ml {

void Gbdt::fit(const Dataset& data) {
  ensemble_ = TreeEnsemble{};
  ensemble_.link = TreeEnsemble::Link::kLogistic;

  // Base score: log-odds of the weighted positive rate.
  double w_pos = 0.0, w_total = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    w_total += data.weight(i);
    if (data.label(i) == 1) w_pos += data.weight(i);
  }
  const double p0 = std::clamp(w_pos / std::max(w_total, 1e-12), 1e-6, 1.0 - 1e-6);
  ensemble_.base = std::log(p0 / (1.0 - p0));

  std::vector<double> margin(data.size(), ensemble_.base);
  std::vector<double> gradients(data.size());
  std::vector<double> hessians(data.size());

  for (std::size_t round = 0; round < config_.rounds; ++round) {
    for (std::size_t i = 0; i < data.size(); ++i) {
      const double p = 1.0 / (1.0 + std::exp(-margin[i]));
      const double y = data.label(i) == 1 ? 1.0 : 0.0;
      const double w = data.weight(i);
      gradients[i] = w * (p - y);
      hessians[i] = w * std::max(p * (1.0 - p), 1e-12);
    }
    BoostTreeConfig tree_config;
    tree_config.max_depth = config_.max_depth;
    tree_config.lambda = config_.lambda;
    tree_config.gamma = config_.gamma;
    tree_config.min_samples_leaf = config_.min_samples_leaf;
    Tree tree = fit_boost_tree(data, gradients, hessians, tree_config);

    for (std::size_t i = 0; i < data.size(); ++i) {
      margin[i] += config_.learning_rate * tree.predict(data.row(i));
    }
    ensemble_.trees.push_back({std::move(tree), config_.learning_rate});
  }
}

double Gbdt::predict_margin(std::span<const double> x) const {
  return ensemble_.margin(x);
}

double Gbdt::predict_proba(std::span<const double> x) const {
  return ensemble_.probability(x);
}

void Gbdt::save(serialize::Writer& out) const {
  out.u32(1);  // class payload version
  out.u64(config_.rounds);
  out.u64(config_.max_depth);
  out.f64(config_.learning_rate);
  out.f64(config_.lambda);
  out.f64(config_.gamma);
  out.u64(config_.min_samples_leaf);
  out.u64(config_.seed);
  serialize::write_ensemble(out, ensemble_);
}

Gbdt Gbdt::load(serialize::Reader& in) {
  (void)in.u32();  // class payload version (appends-only policy)
  GbdtConfig config;
  config.rounds = in.u64();
  config.max_depth = in.u64();
  config.learning_rate = in.f64();
  config.lambda = in.f64();
  config.gamma = in.f64();
  config.min_samples_leaf = in.u64();
  config.seed = in.u64();
  Gbdt model(config);
  model.ensemble_ = serialize::read_ensemble(in);
  return model;
}

}  // namespace polaris::ml
