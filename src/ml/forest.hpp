// Random Forest (bagging + per-split feature subsampling).
#pragma once

#include <cstdint>

#include "ml/model.hpp"

namespace polaris::ml {

struct ForestConfig {
  std::size_t trees = 60;
  std::size_t max_depth = 8;
  std::size_t min_samples_leaf = 2;
  /// 0 = sqrt(feature count), the usual default.
  std::size_t features_per_split = 0;
  std::uint64_t seed = 1;
};

class RandomForest final : public Classifier {
 public:
  explicit RandomForest(ForestConfig config = {}) : config_(config) {}

  void fit(const Dataset& data) override;
  [[nodiscard]] double predict_margin(std::span<const double> x) const override;
  [[nodiscard]] double predict_proba(std::span<const double> x) const override;
  [[nodiscard]] const TreeEnsemble& ensemble() const override { return ensemble_; }
  [[nodiscard]] std::string name() const override { return "RandomForest"; }

 private:
  ForestConfig config_;
  TreeEnsemble ensemble_;
};

}  // namespace polaris::ml
