#include "ml/dataset.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace polaris::ml {

Dataset::Dataset(std::vector<std::vector<double>> features,
                 std::vector<int> labels)
    : rows_(std::move(features)), labels_(std::move(labels)) {
  if (rows_.size() != labels_.size()) {
    throw std::invalid_argument("Dataset: feature/label size mismatch");
  }
  weights_.assign(labels_.size(), 1.0);
}

void Dataset::add(std::vector<double> features, int label, double weight) {
  if (!rows_.empty() && features.size() != rows_[0].size()) {
    throw std::invalid_argument("Dataset::add: feature width mismatch");
  }
  rows_.push_back(std::move(features));
  labels_.push_back(label);
  weights_.push_back(weight);
}

std::size_t Dataset::positives() const {
  return static_cast<std::size_t>(
      std::count(labels_.begin(), labels_.end(), 1));
}

void Dataset::apply_class_balance_weights() {
  const double pos = static_cast<double>(positives());
  const double neg = static_cast<double>(size()) - pos;
  if (pos == 0.0 || neg == 0.0) return;  // single class: nothing to balance
  const double half = static_cast<double>(size()) / 2.0;
  const double w_pos = half / pos;
  const double w_neg = half / neg;
  for (std::size_t i = 0; i < size(); ++i) {
    weights_[i] = labels_[i] == 1 ? w_pos : w_neg;
  }
}

std::pair<Dataset, Dataset> Dataset::split(double train_fraction,
                                           std::uint64_t seed) const {
  std::vector<std::size_t> order(size());
  std::iota(order.begin(), order.end(), 0);
  util::Xoshiro256 rng(seed);
  for (std::size_t i = order.size(); i > 1; --i) {  // Fisher-Yates
    std::swap(order[i - 1], order[rng.bounded(i)]);
  }
  const auto cut = static_cast<std::size_t>(
      train_fraction * static_cast<double>(order.size()));
  Dataset train, test;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::size_t src = order[i];
    (i < cut ? train : test).add(rows_[src], labels_[src], weights_[src]);
  }
  return {std::move(train), std::move(test)};
}

void Dataset::append(const Dataset& other) {
  if (!empty() && !other.empty() &&
      feature_count() != other.feature_count()) {
    throw std::invalid_argument("Dataset::append: feature width mismatch");
  }
  for (std::size_t i = 0; i < other.size(); ++i) {
    add(other.rows_[i], other.labels_[i], other.weights_[i]);
  }
}

}  // namespace polaris::ml
