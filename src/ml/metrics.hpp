// Binary-classification metrics for model evaluation and the ablations.
#pragma once

#include <span>

#include "ml/dataset.hpp"
#include "ml/model.hpp"

namespace polaris::ml {

struct Metrics {
  double accuracy = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  double auc = 0.5;  // ROC AUC over predicted probabilities
};

[[nodiscard]] Metrics evaluate(const Classifier& model, const Dataset& data);

/// AUC from raw (score, label) pairs; ties share rank (trapezoid-exact).
[[nodiscard]] double roc_auc(std::span<const double> scores,
                             std::span<const int> labels);

}  // namespace polaris::ml
