// Single CART decision tree - the interpretable baseline classifier (the
// paper's Table III compares ensemble models; a lone tree is the floor the
// ensembles must beat, and the cheapest model to serve from a bundle).
#pragma once

#include <cstdint>

#include "ml/model.hpp"

namespace polaris::ml {

struct DecisionTreeConfig {
  std::size_t max_depth = 8;
  std::size_t min_samples_leaf = 2;
  std::uint64_t seed = 1;
};

class DecisionTree final : public Classifier {
 public:
  explicit DecisionTree(DecisionTreeConfig config = {}) : config_(config) {}

  void fit(const Dataset& data) override;
  [[nodiscard]] double predict_margin(std::span<const double> x) const override;
  [[nodiscard]] double predict_proba(std::span<const double> x) const override;
  [[nodiscard]] const TreeEnsemble& ensemble() const override { return ensemble_; }
  [[nodiscard]] std::string name() const override { return "DecisionTree"; }

  [[nodiscard]] ClassifierKind kind() const override {
    return ClassifierKind::kDecisionTree;
  }
  void save(serialize::Writer& out) const override;
  [[nodiscard]] static DecisionTree load(serialize::Reader& in);

 private:
  DecisionTreeConfig config_;
  TreeEnsemble ensemble_;
};

}  // namespace polaris::ml
