#include "ml/adaboost.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "serialize/model_io.hpp"

namespace polaris::ml {

void AdaBoost::fit(const Dataset& data) {
  ensemble_ = TreeEnsemble{};
  // Stage trees store leaf probabilities in [0,1]; the ensemble margin is
  // sum_t alpha_t * (2*p_t(x) - 1), expressed below by rebasing each stage:
  // weight alpha_t on the tree plus a -alpha_t/... constant absorbed in
  // `base`. The logistic link turns the margin into a probability.
  ensemble_.link = TreeEnsemble::Link::kLogistic;

  // Boosting weights live in a scratch dataset copy so the caller's weights
  // (e.g. class-balance weights) form the starting distribution.
  Dataset working = data;
  double total = 0.0;
  for (std::size_t i = 0; i < working.size(); ++i) total += working.weight(i);
  if (total <= 0.0) return;
  for (std::size_t i = 0; i < working.size(); ++i) {
    working.set_weight(i, working.weight(i) / total);
  }

  std::vector<std::size_t> all(working.size());
  std::iota(all.begin(), all.end(), 0);
  util::Xoshiro256 rng(config_.seed);

  for (std::size_t round = 0; round < config_.rounds; ++round) {
    TreeConfig tree_config;
    tree_config.max_depth = config_.max_depth;
    tree_config.min_samples_leaf = config_.min_samples_leaf;
    tree_config.seed = rng();
    Tree tree = fit_classification_tree(working, all, tree_config);

    // Weighted error of the hard prediction.
    double err = 0.0;
    std::vector<int> predicted(working.size());
    for (std::size_t i = 0; i < working.size(); ++i) {
      predicted[i] = tree.predict(working.row(i)) >= 0.5 ? 1 : 0;
      if (predicted[i] != working.label(i)) err += working.weight(i);
    }
    err = std::clamp(err, 1e-10, 1.0 - 1e-10);
    if (err >= 0.5) break;  // weak learner no better than chance: stop
    const double alpha =
        config_.learning_rate * 0.5 * std::log((1.0 - err) / err);

    // Margin contribution: alpha * (2*p - 1)  ==  (2*alpha)*tree - alpha.
    ensemble_.trees.push_back({std::move(tree), 2.0 * alpha});
    ensemble_.base -= alpha;

    // Re-weight: up-weight mistakes, down-weight hits, renormalize.
    double z = 0.0;
    for (std::size_t i = 0; i < working.size(); ++i) {
      const double sign = predicted[i] == working.label(i) ? -1.0 : 1.0;
      const double w = working.weight(i) * std::exp(sign * alpha);
      working.set_weight(i, w);
      z += w;
    }
    for (std::size_t i = 0; i < working.size(); ++i) {
      working.set_weight(i, working.weight(i) / z);
    }
  }
}

double AdaBoost::predict_margin(std::span<const double> x) const {
  return ensemble_.margin(x);
}

double AdaBoost::predict_proba(std::span<const double> x) const {
  return ensemble_.probability(x);
}

void AdaBoost::save(serialize::Writer& out) const {
  out.u32(1);  // class payload version
  out.u64(config_.rounds);
  out.u64(config_.max_depth);
  out.f64(config_.learning_rate);
  out.u64(config_.min_samples_leaf);
  out.u64(config_.seed);
  serialize::write_ensemble(out, ensemble_);
}

AdaBoost AdaBoost::load(serialize::Reader& in) {
  (void)in.u32();  // class payload version (appends-only policy)
  AdaBoostConfig config;
  config.rounds = in.u64();
  config.max_depth = in.u64();
  config.learning_rate = in.f64();
  config.min_samples_leaf = in.u64();
  config.seed = in.u64();
  AdaBoost model(config);
  model.ensemble_ = serialize::read_ensemble(in);
  return model;
}

}  // namespace polaris::ml
