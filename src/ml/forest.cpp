#include "ml/forest.hpp"

#include <cmath>

#include "serialize/model_io.hpp"

namespace polaris::ml {

void RandomForest::fit(const Dataset& data) {
  ensemble_ = TreeEnsemble{};
  ensemble_.link = TreeEnsemble::Link::kIdentity;
  util::Xoshiro256 rng(config_.seed);

  std::size_t features_per_split = config_.features_per_split;
  if (features_per_split == 0) {
    features_per_split = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(data.feature_count()))));
  }

  const double tree_weight = 1.0 / static_cast<double>(config_.trees);
  std::vector<std::size_t> bootstrap(data.size());
  for (std::size_t t = 0; t < config_.trees; ++t) {
    for (auto& index : bootstrap) index = rng.bounded(data.size());
    TreeConfig tree_config;
    tree_config.max_depth = config_.max_depth;
    tree_config.min_samples_leaf = config_.min_samples_leaf;
    tree_config.features_per_split = features_per_split;
    tree_config.seed = rng();
    ensemble_.trees.push_back(
        {fit_classification_tree(data, bootstrap, tree_config), tree_weight});
  }
}

double RandomForest::predict_margin(std::span<const double> x) const {
  return ensemble_.margin(x);  // mean leaf probability
}

double RandomForest::predict_proba(std::span<const double> x) const {
  return ensemble_.probability(x);
}

void RandomForest::save(serialize::Writer& out) const {
  out.u32(1);  // class payload version
  out.u64(config_.trees);
  out.u64(config_.max_depth);
  out.u64(config_.min_samples_leaf);
  out.u64(config_.features_per_split);
  out.u64(config_.seed);
  serialize::write_ensemble(out, ensemble_);
}

RandomForest RandomForest::load(serialize::Reader& in) {
  (void)in.u32();  // class payload version (appends-only policy)
  ForestConfig config;
  config.trees = in.u64();
  config.max_depth = in.u64();
  config.min_samples_leaf = in.u64();
  config.features_per_split = in.u64();
  config.seed = in.u64();
  RandomForest model(config);
  model.ensemble_ = serialize::read_ensemble(in);
  return model;
}

}  // namespace polaris::ml
