// Uniform classifier interface for the POLARIS model options (Table III,
// plus a single-CART baseline). All models expose their fitted TreeEnsemble
// so the XAI layer can run exact TreeSHAP regardless of which model was
// selected, and all serialize through serialize::Writer/Reader so a trained
// model can be bundled once and served from disk.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "ml/dataset.hpp"
#include "ml/tree.hpp"

namespace polaris::serialize {
class Writer;
class Reader;
}  // namespace polaris::serialize

namespace polaris::ml {

/// Stable on-disk discriminant for the classifier factory. Values are part
/// of the bundle format - never renumber, only append.
enum class ClassifierKind : std::uint32_t {
  kDecisionTree = 1,
  kRandomForest = 2,
  kGbdt = 3,
  kAdaBoost = 4,
};

class Classifier {
 public:
  virtual ~Classifier() = default;

  virtual void fit(const Dataset& data) = 0;

  /// On-disk kind tag consumed by load_classifier.
  [[nodiscard]] virtual ClassifierKind kind() const = 0;
  /// Serializes config + fitted state into the current archive chunk.
  virtual void save(serialize::Writer& out) const = 0;

  /// Raw additive score (margin space; what SHAP values decompose).
  [[nodiscard]] virtual double predict_margin(std::span<const double> x) const = 0;
  /// Probability of class 1.
  [[nodiscard]] virtual double predict_proba(std::span<const double> x) const = 0;
  [[nodiscard]] int predict(std::span<const double> x) const {
    return predict_proba(x) >= 0.5 ? 1 : 0;
  }

  /// Fitted additive-tree view (valid after fit()).
  [[nodiscard]] virtual const TreeEnsemble& ensemble() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Writes the kind tag followed by the classifier's own payload.
void save_classifier(serialize::Writer& out, const Classifier& model);
/// Factory: reads the kind tag and reconstructs the matching classifier.
/// Throws std::runtime_error on an unknown kind.
[[nodiscard]] std::unique_ptr<Classifier> load_classifier(serialize::Reader& in);

}  // namespace polaris::ml
