// Uniform classifier interface for the three POLARIS model options
// (Table III). All models expose their fitted TreeEnsemble so the XAI layer
// can run exact TreeSHAP regardless of which model was selected.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "ml/dataset.hpp"
#include "ml/tree.hpp"

namespace polaris::ml {

class Classifier {
 public:
  virtual ~Classifier() = default;

  virtual void fit(const Dataset& data) = 0;

  /// Raw additive score (margin space; what SHAP values decompose).
  [[nodiscard]] virtual double predict_margin(std::span<const double> x) const = 0;
  /// Probability of class 1.
  [[nodiscard]] virtual double predict_proba(std::span<const double> x) const = 0;
  [[nodiscard]] int predict(std::span<const double> x) const {
    return predict_proba(x) >= 0.5 ? 1 : 0;
  }

  /// Fitted additive-tree view (valid after fit()).
  [[nodiscard]] virtual const TreeEnsemble& ensemble() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace polaris::ml
