#include "ml/tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace polaris::ml {

double Tree::predict(std::span<const double> x) const {
  std::size_t node = 0;
  while (!nodes[node].is_leaf()) {
    const TreeNode& n = nodes[node];
    node = static_cast<std::size_t>(
        x[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left : n.right);
  }
  return nodes[node].value;
}

std::size_t Tree::depth() const {
  // Iterative depth via parallel depth array (nodes are in creation order,
  // children always after parents).
  std::vector<std::size_t> depth(nodes.size(), 0);
  std::size_t max_depth = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (!nodes[i].is_leaf()) {
      depth[static_cast<std::size_t>(nodes[i].left)] = depth[i] + 1;
      depth[static_cast<std::size_t>(nodes[i].right)] = depth[i] + 1;
    }
    max_depth = std::max(max_depth, depth[i]);
  }
  return max_depth;
}

std::size_t Tree::leaf_count() const {
  std::size_t count = 0;
  for (const auto& node : nodes) count += node.is_leaf() ? 1 : 0;
  return count;
}

double TreeEnsemble::margin(std::span<const double> x) const {
  double sum = base;
  for (const auto& wt : trees) sum += wt.weight * wt.tree.predict(x);
  return sum;
}

double TreeEnsemble::probability(std::span<const double> x) const {
  const double m = margin(x);
  if (link == Link::kLogistic) return 1.0 / (1.0 + std::exp(-m));
  return std::clamp(m, 0.0, 1.0);
}

namespace {

/// A candidate split produced by the scan below.
struct Split {
  bool found = false;
  std::int32_t feature = -1;
  double threshold = 0.0;
  double score = 0.0;  // larger is better; comparable within one node only
};

/// Per-sample payload for split scanning: a feature value and two
/// accumulands. Classification uses (w0, w1) = weight by class; boosting
/// uses (g, h) = gradient, hessian.
struct Sample {
  double value;
  double a;
  double b;
};

/// Enumerates thresholds of one feature over the node's samples and returns
/// the best score according to `score_children(al, bl, nl, ar, br, nr)`
/// (nl/nr = sample counts). Handles the common few-distinct-values case
/// without sorting.
template <typename ScoreFn>
Split scan_feature(std::vector<Sample>& samples, std::int32_t feature,
                   std::size_t min_leaf, const ScoreFn& score_children) {
  Split best;
  best.feature = feature;

  // Fast path: collect up to kMaxBuckets distinct values.
  constexpr std::size_t kMaxBuckets = 24;
  double values[kMaxBuckets];
  double acc_a[kMaxBuckets];
  double acc_b[kMaxBuckets];
  std::size_t counts[kMaxBuckets];
  std::size_t buckets = 0;
  bool bucketed = true;
  for (const Sample& s : samples) {
    std::size_t slot = buckets;
    for (std::size_t i = 0; i < buckets; ++i) {
      if (values[i] == s.value) {
        slot = i;
        break;
      }
    }
    if (slot == buckets) {
      if (buckets == kMaxBuckets) {
        bucketed = false;
        break;
      }
      values[buckets] = s.value;
      acc_a[buckets] = 0.0;
      acc_b[buckets] = 0.0;
      counts[buckets] = 0;
      ++buckets;
    }
    acc_a[slot] += s.a;
    acc_b[slot] += s.b;
    counts[slot] += 1;
  }

  const auto consider = [&](double threshold, double al, double bl,
                            std::size_t nl, double ar, double br,
                            std::size_t nr) {
    if (nl < min_leaf || nr < min_leaf) return;
    const double score = score_children(al, bl, nl, ar, br, nr);
    if (!best.found || score > best.score) {
      best.found = true;
      best.threshold = threshold;
      best.score = score;
    }
  };

  if (bucketed) {
    if (buckets < 2) return best;
    // Order buckets by value (insertion sort on tiny arrays).
    std::size_t order[kMaxBuckets];
    std::iota(order, order + buckets, std::size_t{0});
    std::sort(order, order + buckets,
              [&](std::size_t x, std::size_t y) { return values[x] < values[y]; });
    double al = 0.0, bl = 0.0;
    std::size_t nl = 0;
    double ar = 0.0, br = 0.0;
    std::size_t nr = 0;
    for (std::size_t i = 0; i < buckets; ++i) {
      ar += acc_a[order[i]];
      br += acc_b[order[i]];
      nr += counts[order[i]];
    }
    for (std::size_t i = 0; i + 1 < buckets; ++i) {
      const std::size_t o = order[i];
      al += acc_a[o];
      bl += acc_b[o];
      nl += counts[o];
      ar -= acc_a[o];
      br -= acc_b[o];
      nr -= counts[o];
      const double threshold = 0.5 * (values[o] + values[order[i + 1]]);
      consider(threshold, al, bl, nl, ar, br, nr);
    }
    return best;
  }

  // General path: sort the node's samples by value and sweep.
  std::sort(samples.begin(), samples.end(),
            [](const Sample& x, const Sample& y) { return x.value < y.value; });
  double ar = 0.0, br = 0.0;
  for (const Sample& s : samples) {
    ar += s.a;
    br += s.b;
  }
  double al = 0.0, bl = 0.0;
  std::size_t nl = 0;
  for (std::size_t i = 0; i + 1 < samples.size(); ++i) {
    al += samples[i].a;
    bl += samples[i].b;
    ar -= samples[i].a;
    br -= samples[i].b;
    ++nl;
    if (samples[i].value == samples[i + 1].value) continue;
    const double threshold = 0.5 * (samples[i].value + samples[i + 1].value);
    consider(threshold, al, bl, nl, ar, br, samples.size() - nl);
  }
  return best;
}

/// Shared recursive builder. `payload(i)` yields the (a, b) accumulands of
/// dataset row i; `leaf_value(a, b)` and `score_children` specialize the
/// objective.
template <typename PayloadFn, typename LeafFn, typename ScoreFn>
class TreeBuilder {
 public:
  TreeBuilder(const Dataset& data, std::size_t max_depth, std::size_t min_leaf,
              double min_gain, std::size_t features_per_split,
              std::uint64_t seed, bool pure_is_leaf, PayloadFn payload,
              LeafFn leaf_value, ScoreFn score_children)
      : data_(data),
        max_depth_(max_depth),
        min_leaf_(min_leaf),
        min_gain_(min_gain),
        features_per_split_(features_per_split),
        rng_(seed),
        pure_is_leaf_(pure_is_leaf),
        payload_(payload),
        leaf_value_(leaf_value),
        score_children_(score_children) {
    feature_order_.resize(data.feature_count());
    std::iota(feature_order_.begin(), feature_order_.end(), 0);
  }

  Tree build(std::span<const std::size_t> indices) {
    Tree tree;
    indices_.assign(indices.begin(), indices.end());
    grow(tree, 0, indices_.size(), 0);
    return tree;
  }

 private:
  std::int32_t grow(Tree& tree, std::size_t begin, std::size_t end,
                    std::size_t depth) {
    const auto node_id = static_cast<std::int32_t>(tree.nodes.size());
    tree.nodes.emplace_back();

    double total_a = 0.0, total_b = 0.0, total_w = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      const auto [a, b] = payload_(indices_[i]);
      total_a += a;
      total_b += b;
      total_w += data_.weight(indices_[i]);
    }
    tree.nodes[static_cast<std::size_t>(node_id)].cover = total_w;
    tree.nodes[static_cast<std::size_t>(node_id)].value =
        leaf_value_(total_a, total_b);

    const std::size_t count = end - begin;
    if (depth >= max_depth_ || count < 2 * min_leaf_ || count < 2) {
      return node_id;
    }
    // Pure nodes (all weight in one accumuland) cannot improve: stop. This
    // also lets zero-gain splits proceed on *mixed* nodes, which is what
    // makes XOR-style interactions learnable (the gain appears one level
    // down).
    if (total_a == 0.0 || total_b == 0.0) {
      if (pure_is_leaf_) return node_id;
    }
    // Score of keeping everything in one child == the unsplit node's score.
    const double parent_score =
        score_children_(total_a, total_b, count, 0.0, 0.0, 0);

    // Choose candidate features (all, or a random subset for forests).
    std::size_t candidates = feature_order_.size();
    if (features_per_split_ != 0 && features_per_split_ < candidates) {
      for (std::size_t i = 0; i < features_per_split_; ++i) {
        const std::size_t j = i + rng_.bounded(candidates - i);
        std::swap(feature_order_[i], feature_order_[j]);
      }
      candidates = features_per_split_;
    }

    Split best;
    std::vector<Sample> samples(count);
    for (std::size_t c = 0; c < candidates; ++c) {
      const std::int32_t feature = static_cast<std::int32_t>(feature_order_[c]);
      for (std::size_t i = begin; i < end; ++i) {
        const std::size_t row = indices_[i];
        const auto [a, b] = payload_(row);
        samples[i - begin] = {
            data_.row(row)[static_cast<std::size_t>(feature)], a, b};
      }
      Split split = scan_feature(samples, feature, min_leaf_, score_children_);
      if (split.found && (!best.found || split.score > best.score)) {
        best = split;
      }
    }

    if (!best.found || best.score - parent_score < min_gain_) {
      return node_id;
    }

    const std::size_t feature = static_cast<std::size_t>(best.feature);
    const double threshold = best.threshold;
    const auto middle = std::stable_partition(
        indices_.begin() + static_cast<std::ptrdiff_t>(begin),
        indices_.begin() + static_cast<std::ptrdiff_t>(end),
        [&](std::size_t row) { return data_.row(row)[feature] <= threshold; });
    const auto mid =
        static_cast<std::size_t>(middle - indices_.begin());
    if (mid == begin || mid == end) return node_id;  // degenerate numeric tie

    const std::int32_t left = grow(tree, begin, mid, depth + 1);
    const std::int32_t right = grow(tree, mid, end, depth + 1);
    TreeNode& node = tree.nodes[static_cast<std::size_t>(node_id)];
    node.feature = best.feature;
    node.threshold = threshold;
    node.left = left;
    node.right = right;
    return node_id;
  }

  const Dataset& data_;
  std::size_t max_depth_;
  std::size_t min_leaf_;
  double min_gain_;
  std::size_t features_per_split_;
  util::Xoshiro256 rng_;
  bool pure_is_leaf_;
  PayloadFn payload_;
  LeafFn leaf_value_;
  ScoreFn score_children_;
  std::vector<std::size_t> indices_;
  std::vector<std::size_t> feature_order_;
};

}  // namespace

Tree fit_classification_tree(const Dataset& data,
                             std::span<const std::size_t> indices,
                             const TreeConfig& config) {
  if (data.empty()) throw std::invalid_argument("fit tree: empty dataset");
  // Accumulands: a = weight of class 0, b = weight of class 1.
  const auto payload = [&](std::size_t row) {
    const double w = data.weight(row);
    return data.label(row) == 1 ? std::pair{0.0, w} : std::pair{w, 0.0};
  };
  const auto leaf_value = [](double w0, double w1) {
    const double total = w0 + w1;
    return total <= 0.0 ? 0.5 : w1 / total;
  };
  // Maximize sum of (w0^2 + w1^2)/w per child, which is equivalent to
  // minimizing weighted Gini impurity.
  const auto score = [](double al, double bl, std::size_t nl, double ar,
                        double br, std::size_t nr) {
    (void)nl;
    (void)nr;
    const double wl = al + bl;
    const double wr = ar + br;
    double s = 0.0;
    if (wl > 0.0) s += (al * al + bl * bl) / wl;
    if (wr > 0.0) s += (ar * ar + br * br) / wr;
    return s;
  };
  TreeBuilder builder(data, config.max_depth, config.min_samples_leaf,
                      config.min_impurity_decrease, config.features_per_split,
                      config.seed, /*pure_is_leaf=*/true, payload, leaf_value,
                      score);
  return builder.build(indices);
}

Tree fit_boost_tree(const Dataset& data, std::span<const double> gradients,
                    std::span<const double> hessians,
                    const BoostTreeConfig& config) {
  if (data.empty()) throw std::invalid_argument("fit tree: empty dataset");
  if (gradients.size() != data.size() || hessians.size() != data.size()) {
    throw std::invalid_argument("fit_boost_tree: gradient size mismatch");
  }
  const double lambda = config.lambda;
  const auto payload = [&](std::size_t row) {
    return std::pair{gradients[row], hessians[row]};
  };
  const auto leaf_value = [lambda](double g, double h) {
    return -g / (h + lambda);
  };
  // XGBoost structure score: sum of G^2/(H + lambda) per child (the gain
  // comparison against the parent handles gamma via min_gain below).
  const auto score = [lambda](double gl, double hl, std::size_t nl, double gr,
                              double hr, std::size_t nr) {
    (void)nl;
    (void)nr;
    double s = 0.0;
    if (nl > 0 || gl != 0.0 || hl != 0.0) s += gl * gl / (hl + lambda);
    if (nr > 0 || gr != 0.0 || hr != 0.0) s += gr * gr / (hr + lambda);
    return s;
  };
  std::vector<std::size_t> indices(data.size());
  std::iota(indices.begin(), indices.end(), 0);
  TreeBuilder builder(data, config.max_depth, config.min_samples_leaf,
                      config.gamma, 0, /*seed=*/1, /*pure_is_leaf=*/false,
                      payload, leaf_value, score);
  return builder.build(indices);
}

}  // namespace polaris::ml
