// AdaBoost (discrete SAMME) over shallow CART trees - the model the paper
// selects for POLARIS (Table III: best average leakage reduction).
#pragma once

#include <cstdint>

#include "ml/model.hpp"

namespace polaris::ml {

struct AdaBoostConfig {
  std::size_t rounds = 120;
  std::size_t max_depth = 2;  // shallow trees, classic AdaBoost weak learner
  /// Learning rate on the stage weights (paper Sec. V-B: 0.01).
  double learning_rate = 0.5;
  std::size_t min_samples_leaf = 2;
  std::uint64_t seed = 1;
};

class AdaBoost final : public Classifier {
 public:
  explicit AdaBoost(AdaBoostConfig config = {}) : config_(config) {}

  void fit(const Dataset& data) override;
  [[nodiscard]] double predict_margin(std::span<const double> x) const override;
  [[nodiscard]] double predict_proba(std::span<const double> x) const override;
  [[nodiscard]] const TreeEnsemble& ensemble() const override { return ensemble_; }
  [[nodiscard]] std::string name() const override { return "AdaBoost"; }

  [[nodiscard]] ClassifierKind kind() const override {
    return ClassifierKind::kAdaBoost;
  }
  void save(serialize::Writer& out) const override;
  [[nodiscard]] static AdaBoost load(serialize::Reader& in);

 private:
  AdaBoostConfig config_;
  TreeEnsemble ensemble_;
};

}  // namespace polaris::ml
