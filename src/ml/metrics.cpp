#include "ml/metrics.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

namespace polaris::ml {

double roc_auc(std::span<const double> scores, std::span<const int> labels) {
  // Rank-sum (Mann-Whitney) formulation with midranks for ties.
  const std::size_t n = scores.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });

  double rank_sum_pos = 0.0;
  std::size_t positives = 0;
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j < n && scores[order[j]] == scores[order[i]]) ++j;
    const double midrank = (static_cast<double>(i) + static_cast<double>(j - 1)) / 2.0 + 1.0;
    for (std::size_t k = i; k < j; ++k) {
      if (labels[order[k]] == 1) {
        rank_sum_pos += midrank;
        ++positives;
      }
    }
    i = j;
  }
  const std::size_t negatives = n - positives;
  if (positives == 0 || negatives == 0) return 0.5;
  const double u = rank_sum_pos -
                   static_cast<double>(positives) *
                       (static_cast<double>(positives) + 1.0) / 2.0;
  return u / (static_cast<double>(positives) * static_cast<double>(negatives));
}

Metrics evaluate(const Classifier& model, const Dataset& data) {
  Metrics metrics;
  if (data.empty()) return metrics;
  std::size_t tp = 0, fp = 0, tn = 0, fn = 0;
  std::vector<double> scores(data.size());
  std::vector<int> labels(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    scores[i] = model.predict_proba(data.row(i));
    labels[i] = data.label(i);
    const int predicted = scores[i] >= 0.5 ? 1 : 0;
    if (predicted == 1 && labels[i] == 1) ++tp;
    else if (predicted == 1) ++fp;
    else if (labels[i] == 1) ++fn;
    else ++tn;
  }
  const double total = static_cast<double>(data.size());
  metrics.accuracy = static_cast<double>(tp + tn) / total;
  metrics.precision = (tp + fp) == 0 ? 0.0
                                     : static_cast<double>(tp) /
                                           static_cast<double>(tp + fp);
  metrics.recall = (tp + fn) == 0 ? 0.0
                                  : static_cast<double>(tp) /
                                        static_cast<double>(tp + fn);
  metrics.f1 = (metrics.precision + metrics.recall) == 0.0
                   ? 0.0
                   : 2.0 * metrics.precision * metrics.recall /
                         (metrics.precision + metrics.recall);
  metrics.auc = roc_auc(scores, labels);
  return metrics;
}

}  // namespace polaris::ml
