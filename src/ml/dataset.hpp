// Training-data container for the {X_data, Y_data} sets Algorithm 1 builds.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace polaris::ml {

class Dataset {
 public:
  Dataset() = default;
  Dataset(std::vector<std::vector<double>> features, std::vector<int> labels);

  void add(std::vector<double> features, int label, double weight = 1.0);

  [[nodiscard]] std::size_t size() const { return labels_.size(); }
  [[nodiscard]] std::size_t feature_count() const {
    return rows_.empty() ? 0 : rows_[0].size();
  }
  [[nodiscard]] bool empty() const { return labels_.empty(); }

  [[nodiscard]] std::span<const double> row(std::size_t i) const {
    return rows_[i];
  }
  [[nodiscard]] int label(std::size_t i) const { return labels_[i]; }
  [[nodiscard]] double weight(std::size_t i) const { return weights_[i]; }
  void set_weight(std::size_t i, double w) { weights_[i] = w; }

  [[nodiscard]] const std::vector<std::vector<double>>& rows() const {
    return rows_;
  }
  [[nodiscard]] const std::vector<int>& labels() const { return labels_; }
  [[nodiscard]] const std::vector<double>& weights() const { return weights_; }

  /// Count of samples with label 1 / label 0.
  [[nodiscard]] std::size_t positives() const;
  [[nodiscard]] std::size_t negatives() const { return size() - positives(); }

  /// Sets weights so both classes carry equal total weight ("weighted
  /// training for XGBoost and AdaBoost", Sec. V-B).
  void apply_class_balance_weights();

  /// Deterministic shuffled split; returns {train, test}.
  [[nodiscard]] std::pair<Dataset, Dataset> split(double train_fraction,
                                                  std::uint64_t seed) const;

  /// Concatenate another dataset (feature counts must match).
  void append(const Dataset& other);

 private:
  std::vector<std::vector<double>> rows_;
  std::vector<int> labels_;
  std::vector<double> weights_;
};

}  // namespace polaris::ml
