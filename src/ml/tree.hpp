// CART decision trees and the shared tree-ensemble representation.
//
// All three POLARIS models (Random Forest, XGBoost-style GBDT, AdaBoost;
// Table III) reduce to weighted sums of binary decision trees over the
// structural feature vector, which is also exactly what the exact TreeSHAP
// algorithm consumes. Node `cover` (total training weight that reached the
// node) is retained for SHAP's expected-value traversal.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.hpp"

namespace polaris::ml {

struct TreeNode {
  std::int32_t feature = -1;   // -1 for leaves
  double threshold = 0.0;      // go left if x[feature] <= threshold
  std::int32_t left = -1;
  std::int32_t right = -1;
  double value = 0.0;          // leaf output (probability or margin term)
  double cover = 0.0;          // training weight through this node

  [[nodiscard]] bool is_leaf() const { return feature < 0; }
};

struct Tree {
  std::vector<TreeNode> nodes;  // nodes[0] is the root

  [[nodiscard]] double predict(std::span<const double> x) const;
  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] std::size_t leaf_count() const;
};

/// Weighted additive ensemble: margin(x) = base + sum_t weight_t * tree_t(x).
/// The link maps margin to probability.
struct TreeEnsemble {
  enum class Link { kIdentity, kLogistic };

  struct WeightedTree {
    Tree tree;
    double weight = 1.0;
  };

  std::vector<WeightedTree> trees;
  double base = 0.0;
  Link link = Link::kIdentity;

  [[nodiscard]] double margin(std::span<const double> x) const;
  [[nodiscard]] double probability(std::span<const double> x) const;
};

/// CART configuration.
struct TreeConfig {
  std::size_t max_depth = 6;
  std::size_t min_samples_leaf = 2;
  /// Zero allows zero-gain splits on impure nodes (required for XOR-style
  /// interactions whose gain only appears one level down).
  double min_impurity_decrease = 0.0;
  /// 0 = consider all features at each split; otherwise sample this many.
  std::size_t features_per_split = 0;
  std::uint64_t seed = 1;
};

/// Fits a weighted-Gini classification tree; leaf value = weighted positive
/// fraction. `sample_indices` selects (with multiplicity) the training rows.
[[nodiscard]] Tree fit_classification_tree(const Dataset& data,
                                           std::span<const std::size_t> indices,
                                           const TreeConfig& config);

/// Fits a second-order regression tree on gradient/hessian pairs (XGBoost
/// objective): leaf value = -sum(g)/(sum(h) + lambda), split gain per the
/// standard formula with regularization lambda and minimum gain gamma.
struct BoostTreeConfig {
  std::size_t max_depth = 4;
  double lambda = 1.0;
  double gamma = 0.0;
  std::size_t min_samples_leaf = 2;
};
[[nodiscard]] Tree fit_boost_tree(const Dataset& data,
                                  std::span<const double> gradients,
                                  std::span<const double> hessians,
                                  const BoostTreeConfig& config);

}  // namespace polaris::ml
