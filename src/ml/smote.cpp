#include "ml/smote.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace polaris::ml {

Dataset smote_oversample(const Dataset& data, const SmoteConfig& config) {
  const std::size_t positives = data.positives();
  const std::size_t negatives = data.size() - positives;
  if (positives == 0 || negatives == 0) return data;
  const int minority_label = positives <= negatives ? 1 : 0;
  const std::size_t minority = std::min(positives, negatives);
  const std::size_t majority = std::max(positives, negatives);
  if (minority < 2) return data;

  const auto target = static_cast<std::size_t>(
      config.target_ratio * static_cast<double>(majority));
  if (target <= minority) return data;
  const std::size_t to_create = target - minority;

  std::vector<std::size_t> minority_rows;
  minority_rows.reserve(minority);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data.label(i) == minority_label) minority_rows.push_back(i);
  }

  util::Xoshiro256 rng(config.seed);
  const std::size_t dims = data.feature_count();

  const auto squared_distance = [&](std::size_t a, std::size_t b) {
    const auto ra = data.row(a);
    const auto rb = data.row(b);
    double sum = 0.0;
    for (std::size_t d = 0; d < dims; ++d) {
      const double delta = ra[d] - rb[d];
      sum += delta * delta;
    }
    return sum;
  };

  Dataset result = data;
  for (std::size_t n = 0; n < to_create; ++n) {
    const std::size_t anchor =
        minority_rows[rng.bounded(minority_rows.size())];

    // k nearest among a bounded random candidate pool.
    const std::size_t pool =
        std::min(config.neighbor_pool, minority_rows.size());
    std::vector<std::pair<double, std::size_t>> candidates;
    candidates.reserve(pool);
    for (std::size_t c = 0; c < pool; ++c) {
      const std::size_t row = minority_rows[rng.bounded(minority_rows.size())];
      if (row == anchor) continue;
      candidates.emplace_back(squared_distance(anchor, row), row);
    }
    if (candidates.empty()) continue;
    const std::size_t k = std::min(config.k_neighbors, candidates.size());
    std::partial_sort(candidates.begin(),
                      candidates.begin() + static_cast<std::ptrdiff_t>(k),
                      candidates.end());
    const std::size_t neighbor =
        candidates[rng.bounded(k)].second;

    // Interpolate: anchor + u * (neighbor - anchor), u ~ U[0,1).
    const double u = rng.uniform();
    const auto ra = data.row(anchor);
    const auto rb = data.row(neighbor);
    std::vector<double> synthetic(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      synthetic[d] = ra[d] + u * (rb[d] - ra[d]);
    }
    result.add(std::move(synthetic), minority_label);
  }
  return result;
}

}  // namespace polaris::ml
