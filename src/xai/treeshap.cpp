#include "xai/treeshap.hpp"

#include <stdexcept>

namespace polaris::xai {

using ml::Tree;
using ml::TreeEnsemble;
using ml::TreeNode;

namespace {

/// One unique feature on the current root-to-leaf path.
struct PathElement {
  int feature = -1;
  double zero_fraction = 1.0;  // share of permutations flowing here if excluded
  double one_fraction = 1.0;   // .. if included (0 or 1 for decision paths)
  double pweight = 0.0;        // permutation-weight polynomial coefficient
};

/// Grows the weight polynomial by one path element.
void extend_path(std::vector<PathElement>& path, std::size_t unique_depth,
                 double zero_fraction, double one_fraction, int feature) {
  path[unique_depth] = {feature, zero_fraction, one_fraction,
                        unique_depth == 0 ? 1.0 : 0.0};
  const double d = static_cast<double>(unique_depth) + 1.0;
  for (std::size_t i = unique_depth; i-- > 0;) {
    path[i + 1].pweight +=
        one_fraction * path[i].pweight * (static_cast<double>(i) + 1.0) / d;
    path[i].pweight = zero_fraction * path[i].pweight *
                      (static_cast<double>(unique_depth - i)) / d;
  }
}

/// Removes element `index`, restoring the polynomial to its pre-extend state.
void unwind_path(std::vector<PathElement>& path, std::size_t unique_depth,
                 std::size_t index) {
  const double one_fraction = path[index].one_fraction;
  const double zero_fraction = path[index].zero_fraction;
  const double d = static_cast<double>(unique_depth) + 1.0;
  double next_one_portion = path[unique_depth].pweight;
  for (std::size_t i = unique_depth; i-- > 0;) {
    if (one_fraction != 0.0) {
      const double tmp = path[i].pweight;
      path[i].pweight = next_one_portion * d /
                        ((static_cast<double>(i) + 1.0) * one_fraction);
      next_one_portion = tmp - path[i].pweight * zero_fraction *
                                   static_cast<double>(unique_depth - i) / d;
    } else {
      path[i].pweight = path[i].pweight * d /
                        (zero_fraction * static_cast<double>(unique_depth - i));
    }
  }
  for (std::size_t i = index; i < unique_depth; ++i) {
    path[i].feature = path[i + 1].feature;
    path[i].zero_fraction = path[i + 1].zero_fraction;
    path[i].one_fraction = path[i + 1].one_fraction;
  }
}

/// Total permutation weight if element `index` were unwound (without
/// mutating the path).
double unwound_path_sum(const std::vector<PathElement>& path,
                        std::size_t unique_depth, std::size_t index) {
  const double one_fraction = path[index].one_fraction;
  const double zero_fraction = path[index].zero_fraction;
  const double d = static_cast<double>(unique_depth) + 1.0;
  double next_one_portion = path[unique_depth].pweight;
  double total = 0.0;
  for (std::size_t i = unique_depth; i-- > 0;) {
    if (one_fraction != 0.0) {
      const double tmp =
          next_one_portion * d / ((static_cast<double>(i) + 1.0) * one_fraction);
      total += tmp;
      next_one_portion = path[i].pweight -
                         tmp * zero_fraction *
                             static_cast<double>(unique_depth - i) / d;
    } else {
      total += path[i].pweight /
               (zero_fraction * static_cast<double>(unique_depth - i) / d);
    }
  }
  return total;
}

class TreeShap {
 public:
  TreeShap(const Tree& tree, std::span<const double> x, std::vector<double>& phi)
      : tree_(tree), x_(x), phi_(phi) {}

  void run() {
    std::vector<PathElement> path;
    recurse(0, path, 0, 1.0, 1.0, -1);
  }

 private:
  void recurse(std::size_t node_id, std::vector<PathElement> path,
               std::size_t unique_depth, double parent_zero_fraction,
               double parent_one_fraction, int parent_feature) {
    path.resize(unique_depth + 1);
    extend_path(path, unique_depth, parent_zero_fraction, parent_one_fraction,
                parent_feature);
    const TreeNode& node = tree_.nodes[node_id];

    if (node.is_leaf()) {
      for (std::size_t i = 1; i <= unique_depth; ++i) {
        const double w = unwound_path_sum(path, unique_depth, i);
        const PathElement& el = path[i];
        phi_[static_cast<std::size_t>(el.feature)] +=
            w * (el.one_fraction - el.zero_fraction) * node.value;
      }
      return;
    }

    const auto feature = static_cast<std::size_t>(node.feature);
    const auto left = static_cast<std::size_t>(node.left);
    const auto right = static_cast<std::size_t>(node.right);
    const bool go_left = x_[feature] <= node.threshold;
    const std::size_t hot = go_left ? left : right;
    const std::size_t cold = go_left ? right : left;

    const double cover = tree_.nodes[node_id].cover;
    const double hot_zero = cover > 0.0 ? tree_.nodes[hot].cover / cover : 0.0;
    const double cold_zero = cover > 0.0 ? tree_.nodes[cold].cover / cover : 0.0;

    double incoming_zero = 1.0;
    double incoming_one = 1.0;
    // If this feature is already on the path, undo its previous element and
    // merge the fractions (each unique feature appears once).
    std::size_t k = 1;
    for (; k <= unique_depth; ++k) {
      if (path[k].feature == node.feature) break;
    }
    if (k <= unique_depth) {
      incoming_zero = path[k].zero_fraction;
      incoming_one = path[k].one_fraction;
      unwind_path(path, unique_depth, k);
      --unique_depth;
    }

    recurse(hot, path, unique_depth + 1, hot_zero * incoming_zero, incoming_one,
            node.feature);
    recurse(cold, path, unique_depth + 1, cold_zero * incoming_zero, 0.0,
            node.feature);
  }

  const Tree& tree_;
  std::span<const double> x_;
  std::vector<double>& phi_;
};

double tree_expected_value(const Tree& tree) {
  // Cover-weighted mean over leaves == expectation under the training
  // distribution the covers encode. Computed iteratively via node shares.
  if (tree.nodes.empty()) return 0.0;
  std::vector<double> share(tree.nodes.size(), 0.0);
  share[0] = 1.0;
  double mean = 0.0;
  for (std::size_t i = 0; i < tree.nodes.size(); ++i) {
    const TreeNode& node = tree.nodes[i];
    if (node.is_leaf()) {
      mean += share[i] * node.value;
      continue;
    }
    const double cover = node.cover;
    const auto left = static_cast<std::size_t>(node.left);
    const auto right = static_cast<std::size_t>(node.right);
    if (cover > 0.0) {
      share[left] += share[i] * tree.nodes[left].cover / cover;
      share[right] += share[i] * tree.nodes[right].cover / cover;
    } else {
      share[left] += share[i] * 0.5;
      share[right] += share[i] * 0.5;
    }
  }
  return mean;
}

}  // namespace

double expected_value(const TreeEnsemble& ensemble) {
  double value = ensemble.base;
  for (const auto& wt : ensemble.trees) {
    value += wt.weight * tree_expected_value(wt.tree);
  }
  return value;
}

std::vector<double> tree_shap(const Tree& tree, std::span<const double> x,
                              std::size_t feature_count) {
  std::vector<double> phi(feature_count, 0.0);
  if (tree.nodes.empty()) return phi;
  if (tree.nodes[0].is_leaf()) return phi;  // constant tree: nothing to credit
  TreeShap(tree, x, phi).run();
  return phi;
}

std::vector<double> tree_shap(const TreeEnsemble& ensemble,
                              std::span<const double> x) {
  std::vector<double> phi(x.size(), 0.0);
  for (const auto& wt : ensemble.trees) {
    const auto tree_phi = tree_shap(wt.tree, x, x.size());
    for (std::size_t f = 0; f < phi.size(); ++f) {
      phi[f] += wt.weight * tree_phi[f];
    }
  }
  return phi;
}

}  // namespace polaris::xai
