#include "xai/kernelshap.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace polaris::xai {
namespace {

/// Solves the symmetric positive-definite system A x = b in place by
/// Gaussian elimination with partial pivoting (dimensions are small: one
/// row/column per feature).
std::vector<double> solve(std::vector<std::vector<double>> a,
                          std::vector<double> b) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::fabs(a[row][col]) > std::fabs(a[pivot][col])) pivot = row;
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    const double diag = a[col][col];
    if (std::fabs(diag) < 1e-30) throw std::runtime_error("kernel_shap: singular");
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row][col] / diag;
      if (factor == 0.0) continue;
      for (std::size_t k = col; k < n; ++k) a[row][k] -= factor * a[col][k];
      b[row] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t row = n; row-- > 0;) {
    double sum = b[row];
    for (std::size_t k = row + 1; k < n; ++k) sum -= a[row][k] * x[k];
    x[row] = sum / a[row][row];
  }
  return x;
}

}  // namespace

KernelShapResult kernel_shap(
    const std::function<double(std::span<const double>)>& f,
    std::span<const double> x,
    const std::vector<std::vector<double>>& background,
    const KernelShapConfig& config) {
  const std::size_t m = x.size();
  if (m < 2) throw std::invalid_argument("kernel_shap: need >= 2 features");
  if (background.empty()) {
    throw std::invalid_argument("kernel_shap: empty background set");
  }

  KernelShapResult result;
  result.fx = f(x);
  // E[f]: average over the raw background rows.
  for (const auto& row : background) result.expected_value += f(row);
  result.expected_value /= static_cast<double>(background.size());

  // Expected model output with coalition S present (others from background).
  std::vector<double> hybrid(m);
  const auto coalition_value = [&](const std::vector<bool>& in_coalition) {
    double total = 0.0;
    for (const auto& bg : background) {
      for (std::size_t i = 0; i < m; ++i) {
        hybrid[i] = in_coalition[i] ? x[i] : bg[i];
      }
      total += f(hybrid);
    }
    return total / static_cast<double>(background.size());
  };

  // Shapley kernel over coalition sizes 1..m-1; sizes are sampled
  // proportionally to their aggregate kernel mass, members uniformly.
  std::vector<double> size_mass(m, 0.0);  // index = |S|
  double mass_total = 0.0;
  for (std::size_t k = 1; k < m; ++k) {
    size_mass[k] = (static_cast<double>(m) - 1.0) /
                   (static_cast<double>(k) * static_cast<double>(m - k));
    mass_total += size_mass[k];
  }

  util::Xoshiro256 rng(config.seed);
  // Weighted least squares with the sum constraint eliminated: write
  // phi_{m-1} = (fx - E) - sum_{i<m-1} phi_i, regress residual target on
  // a_i = z_i - z_{m-1}.
  const std::size_t dims = m - 1;
  std::vector<std::vector<double>> ata(dims, std::vector<double>(dims, 0.0));
  std::vector<double> atb(dims, 0.0);

  std::vector<bool> coalition(m);
  std::vector<std::size_t> order(m);
  for (std::size_t s = 0; s < config.samples; ++s) {
    // Draw coalition size by kernel mass.
    double roll = rng.uniform() * mass_total;
    std::size_t k = 1;
    for (; k + 1 < m; ++k) {
      if (roll < size_mass[k]) break;
      roll -= size_mass[k];
    }
    // Random k-subset via partial Fisher-Yates.
    for (std::size_t i = 0; i < m; ++i) order[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + rng.bounded(m - i);
      std::swap(order[i], order[j]);
    }
    std::fill(coalition.begin(), coalition.end(), false);
    for (std::size_t i = 0; i < k; ++i) coalition[order[i]] = true;

    const double y = coalition_value(coalition) - result.expected_value;
    const double zm = coalition[m - 1] ? 1.0 : 0.0;
    const double target = y - zm * (result.fx - result.expected_value);
    // All samples of a given size share the same kernel weight; sampling
    // by mass already accounts for it, so each draw enters with weight 1.
    std::vector<double> a(dims);
    for (std::size_t i = 0; i < dims; ++i) {
      a[i] = (coalition[i] ? 1.0 : 0.0) - zm;
    }
    for (std::size_t i = 0; i < dims; ++i) {
      if (a[i] == 0.0) continue;
      atb[i] += a[i] * target;
      for (std::size_t j = 0; j < dims; ++j) {
        if (a[j] != 0.0) ata[i][j] += a[i] * a[j];
      }
    }
  }
  for (std::size_t i = 0; i < dims; ++i) ata[i][i] += config.ridge;

  const std::vector<double> head = solve(std::move(ata), std::move(atb));
  result.phi.assign(m, 0.0);
  double head_sum = 0.0;
  for (std::size_t i = 0; i < dims; ++i) {
    result.phi[i] = head[i];
    head_sum += head[i];
  }
  result.phi[m - 1] = (result.fx - result.expected_value) - head_sum;
  return result;
}

}  // namespace polaris::xai
