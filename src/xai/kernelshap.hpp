// Kernel SHAP (Lundberg & Lee 2017): model-agnostic Shapley estimation by
// weighted linear regression over sampled coalitions (paper Sec. IV-B names
// Kernel SHAP as the model-agnostic member of the SHAP family).
//
// Used to cross-validate exact TreeSHAP in the test suite and available for
// non-tree models. Estimates converge to Eq. 6 as samples grow.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace polaris::xai {

struct KernelShapConfig {
  /// Sampled coalitions (excluding the two trivial ones, handled exactly).
  std::size_t samples = 2048;
  /// Ridge regularization for the weighted least squares solve.
  double ridge = 1e-6;
  std::uint64_t seed = 1;
};

struct KernelShapResult {
  std::vector<double> phi;
  double expected_value = 0.0;  // E[f] over the background set
  double fx = 0.0;              // f(x)
};

/// `f` maps a feature row to the model output (margin). `background` rows
/// define the reference distribution for absent features.
[[nodiscard]] KernelShapResult kernel_shap(
    const std::function<double(std::span<const double>)>& f,
    std::span<const double> x,
    const std::vector<std::vector<double>>& background,
    const KernelShapConfig& config = {});

}  // namespace polaris::xai
