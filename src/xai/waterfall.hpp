// SHAP waterfall data (paper Fig. 3): per-sample decomposition from the
// expected prediction E[f(x)] to the model output f(x), one bar per feature.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "ml/model.hpp"

namespace polaris::xai {

struct WaterfallBar {
  std::string feature;
  double feature_value = 0.0;
  double phi = 0.0;
};

struct Waterfall {
  double expected_value = 0.0;  // E[f(x)], margin space
  double fx = 0.0;              // f(x), margin space
  /// Bars sorted by |phi| descending; the tail beyond `max_bars` is folded
  /// into `rest` (like the library's "sum of k other features" bar).
  std::vector<WaterfallBar> bars;
  double rest = 0.0;

  /// ASCII rendering of the plot.
  [[nodiscard]] std::string render() const;
};

/// Builds the waterfall for one sample from exact TreeSHAP attributions.
[[nodiscard]] Waterfall make_waterfall(const ml::Classifier& model,
                                       std::span<const double> x,
                                       std::span<const std::string> feature_names,
                                       std::size_t max_bars = 9);

}  // namespace polaris::xai
