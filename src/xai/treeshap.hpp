// Exact TreeSHAP (Lundberg, Erion & Lee 2018): polynomial-time Shapley
// values (paper Eq. 6) for decision-tree ensembles.
//
// The algorithm tracks, along each root-to-leaf path, the proportion of
// feature-subset permutations that flow down the path when each unique
// feature on it is included ("one fraction") or excluded ("zero fraction" -
// the cover-weighted share of training data taking the branch), extending
// and unwinding a weight polynomial per node. phi is exact - identical to
// evaluating Eq. 6 over all 2^h coalitions - in O(leaves * depth^2).
//
// Attributions are in margin space and satisfy local accuracy:
//   sum_f phi_f + expected_value(ensemble) == ensemble.margin(x)
// which the test suite checks property-style over random ensembles.
#pragma once

#include <span>
#include <vector>

#include "ml/tree.hpp"

namespace polaris::xai {

/// Cover-weighted mean margin of the ensemble over its training
/// distribution: E[f(x)] (the waterfall baseline).
[[nodiscard]] double expected_value(const ml::TreeEnsemble& ensemble);

/// Exact per-feature Shapley values of the ensemble margin at x.
[[nodiscard]] std::vector<double> tree_shap(const ml::TreeEnsemble& ensemble,
                                            std::span<const double> x);

/// Single-tree variant (weight 1, no base offset).
[[nodiscard]] std::vector<double> tree_shap(const ml::Tree& tree,
                                            std::span<const double> x,
                                            std::size_t feature_count);

}  // namespace polaris::xai
