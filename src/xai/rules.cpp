#include "xai/rules.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <sstream>

#include "xai/treeshap.hpp"

namespace polaris::xai {

std::string Rule::to_string(std::span<const std::string> feature_names) const {
  std::ostringstream out;
  bool first = true;
  for (const Literal& lit : literals) {
    if (!first) out << " && ";
    first = false;
    const std::string name = lit.feature < feature_names.size()
                                 ? feature_names[lit.feature]
                                 : "f" + std::to_string(lit.feature);
    if (!lit.positive) out << "!";
    out << name;
  }
  out << "  ->  " << (action == 1 ? "Select & Replace with masking gate"
                                  : "Do not Mask");
  out << "  [support=" << support << ", precision=";
  out << static_cast<int>(std::lround(precision * 100.0)) << "%]";
  return out.str();
}

double RuleSet::score(std::span<const double> x, double fallback) const {
  double best_mask = -1.0;
  double best_keep = -1.0;
  for (const Rule& rule : rules_) {
    if (!rule.matches(x)) continue;
    if (rule.action == 1) best_mask = std::max(best_mask, rule.precision);
    else best_keep = std::max(best_keep, rule.precision);
  }
  if (best_mask < 0.0 && best_keep < 0.0) return fallback;
  if (best_mask >= best_keep) return 0.5 + 0.5 * best_mask;
  return 0.5 - 0.5 * best_keep;
}

double RuleSet::combined_score(const ml::Classifier& model,
                               std::span<const double> x, double alpha) const {
  const double model_score = model.predict_proba(x);
  if (rules_.empty()) return model_score;
  return alpha * model_score + (1.0 - alpha) * score(x, model_score);
}

RuleSet extract_rules(const ml::Classifier& model, const ml::Dataset& data,
                      const RuleExtractionConfig& config) {
  // Key: ordered literal list encoded as (feature, polarity) pairs.
  using Key = std::vector<std::pair<std::size_t, bool>>;
  struct Stats {
    std::size_t support = 0;
    std::size_t agree = 0;  // label == action
    int action = 1;
  };
  std::map<Key, Stats> candidates;

  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto x = data.row(i);
    const double p = model.predict_proba(x);
    int action;
    if (p >= config.confidence_hi) action = 1;
    else if (p <= config.confidence_lo) action = 0;
    else continue;

    const auto phi = tree_shap(model.ensemble(), x);
    // Rank features whose attribution pushes toward the predicted class.
    std::vector<std::size_t> order(phi.size());
    std::iota(order.begin(), order.end(), 0);
    const double sign = action == 1 ? 1.0 : -1.0;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return sign * phi[a] > sign * phi[b];
    });

    Key key;
    for (const std::size_t f : order) {
      if (key.size() == config.literals_per_rule) break;
      if (sign * phi[f] <= 0.0) break;  // ran out of supporting features
      if (!config.allowed_features.empty() &&
          (f >= config.allowed_features.size() || !config.allowed_features[f])) {
        continue;
      }
      key.emplace_back(f, x[f] >= 0.5);
    }
    if (key.size() < 2) continue;
    std::sort(key.begin(), key.end());
    auto& stats = candidates[key];
    stats.support += 1;
    stats.action = action;
    if (data.label(i) == action) stats.agree += 1;
  }

  std::vector<Rule> rules;
  for (const auto& [key, stats] : candidates) {
    if (stats.support < config.min_support) continue;
    const double precision = static_cast<double>(stats.agree) /
                             static_cast<double>(stats.support);
    if (precision < config.min_precision) continue;
    Rule rule;
    for (const auto& [feature, positive] : key) {
      rule.literals.push_back({feature, positive});
    }
    rule.action = stats.action;
    rule.support = stats.support;
    rule.precision = precision;
    rules.push_back(std::move(rule));
  }
  std::sort(rules.begin(), rules.end(), [](const Rule& a, const Rule& b) {
    return static_cast<double>(a.support) * a.precision >
           static_cast<double>(b.support) * b.precision;
  });
  if (rules.size() > config.max_rules) rules.resize(config.max_rules);
  return RuleSet(std::move(rules));
}

}  // namespace polaris::xai
