#include "xai/waterfall.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/strings.hpp"
#include "xai/treeshap.hpp"

namespace polaris::xai {

Waterfall make_waterfall(const ml::Classifier& model, std::span<const double> x,
                         std::span<const std::string> feature_names,
                         std::size_t max_bars) {
  Waterfall wf;
  wf.expected_value = expected_value(model.ensemble());
  wf.fx = model.predict_margin(x);

  const auto phi = tree_shap(model.ensemble(), x);
  std::vector<std::size_t> order(phi.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return std::fabs(phi[a]) > std::fabs(phi[b]);
  });

  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const std::size_t f = order[rank];
    if (rank < max_bars) {
      WaterfallBar bar;
      bar.feature = f < feature_names.size() ? feature_names[f]
                                             : "f" + std::to_string(f);
      bar.feature_value = x[f];
      bar.phi = phi[f];
      wf.bars.push_back(std::move(bar));
    } else {
      wf.rest += phi[f];
    }
  }
  return wf;
}

std::string Waterfall::render() const {
  std::ostringstream out;
  out << "f(x) = " << util::format_double(fx, 3)
      << "   E[f(x)] = " << util::format_double(expected_value, 3) << "\n";
  double running = fx;
  const auto emit = [&out, &running](const std::string& label, double phi) {
    const int magnitude =
        std::min(30, static_cast<int>(std::lround(std::fabs(phi) * 12.0)));
    const std::string bar(static_cast<std::size_t>(std::max(1, magnitude)),
                          phi >= 0.0 ? '+' : '-');
    out << "  " << label;
    if (label.size() < 24) out << std::string(24 - label.size(), ' ');
    out << (phi >= 0.0 ? " +" : " ") << util::format_double(phi, 3) << "  "
        << bar << "\n";
    running -= phi;
  };
  for (const auto& b : bars) {
    emit(b.feature + " = " + util::format_double(b.feature_value, 2), b.phi);
  }
  if (rest != 0.0) emit("(remaining features)", rest);
  out << "  -> base " << util::format_double(running, 3) << " (= E[f(x)])\n";
  return out.str();
}

}  // namespace polaris::xai
