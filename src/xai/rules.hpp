// SHAP-guided rule extraction (paper Table V and Sec. IV-B: "The automated
// rules, unlike handcrafted ones, can be used independently to make masking
// decisions or alongside the model").
//
// For confidently-classified training samples, the top-|phi| features whose
// attribution pushes toward the predicted class are binarized into literals
// ("G4=nand is true", "adj(G8,G9) is false"); identical conjunctions are
// aggregated with support and precision statistics, yielding tables like
// the paper's Rule A ("G4 = NAND && ... -> Select & Replace with masking
// gate") and Rule B ("... -> Do not Mask").
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/model.hpp"

namespace polaris::xai {

struct Literal {
  std::size_t feature = 0;
  bool positive = true;  // x[feature] >= 0.5 must equal `positive`

  [[nodiscard]] bool matches(std::span<const double> x) const {
    return (x[feature] >= 0.5) == positive;
  }
};

struct Rule {
  std::vector<Literal> literals;  // conjunction
  int action = 1;                 // 1 = mask, 0 = do-not-mask
  std::size_t support = 0;        // matching training samples
  double precision = 0.0;         // fraction of matches with label == action

  [[nodiscard]] bool matches(std::span<const double> x) const {
    for (const Literal& lit : literals) {
      if (!lit.matches(x)) return false;
    }
    return true;
  }

  [[nodiscard]] std::string to_string(
      std::span<const std::string> feature_names) const;
};

struct RuleExtractionConfig {
  /// Literals per rule (Table V rules conjoin ~4-5 conditions).
  std::size_t literals_per_rule = 4;
  /// Only samples with predicted probability >= hi (mask rules) or <= lo
  /// (do-not-mask rules) seed rules.
  double confidence_hi = 0.65;
  double confidence_lo = 0.35;
  /// Keep rules with at least this many supporting samples and precision.
  std::size_t min_support = 3;
  double min_precision = 0.6;
  std::size_t max_rules = 16;
  /// Features usable as literals (empty = all). POLARIS passes the binary
  /// structural features only (type one-hots + adjacency), matching the
  /// paper's rule vocabulary.
  std::vector<bool> allowed_features;
};

class RuleSet {
 public:
  RuleSet() = default;
  explicit RuleSet(std::vector<Rule> rules) : rules_(std::move(rules)) {}

  [[nodiscard]] const std::vector<Rule>& rules() const { return rules_; }
  [[nodiscard]] bool empty() const { return rules_.empty(); }

  /// Standalone rule-based score in [0,1]: precision of the strongest
  /// matching rule (mask rules push up, do-not-mask rules push down);
  /// `fallback` when nothing matches.
  [[nodiscard]] double score(std::span<const double> x,
                             double fallback = 0.5) const;

  /// Rule-augmented model score: alpha * model + (1-alpha) * rules
  /// ("alongside the model to achieve better predictions").
  [[nodiscard]] double combined_score(const ml::Classifier& model,
                                      std::span<const double> x,
                                      double alpha = 0.7) const;

 private:
  std::vector<Rule> rules_;
};

/// Mines rules from SHAP attributions of the fitted model over `data`.
[[nodiscard]] RuleSet extract_rules(const ml::Classifier& model,
                                    const ml::Dataset& data,
                                    const RuleExtractionConfig& config = {});

}  // namespace polaris::xai
