#include "engine/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <string>

#include "obs/obs.hpp"

namespace polaris::engine {

namespace {
/// True while this thread executes a job's fn; parallel_for consults it so
/// nested fan-outs run inline instead of compounding their caps.
thread_local bool t_inside_job = false;

/// Best-effort message for a caught-by-pointer exception (cold path only).
std::string describe_exception(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "(non-std exception)";
  }
}
}  // namespace

ThreadPool::ThreadPool(std::size_t workers, std::string name)
    : name_(std::move(name)) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::drive(std::unique_lock<std::mutex>& lock,
                       const std::shared_ptr<Job>& job) {
  while (job->next < job->n_total) {
    // Fail fast: once any index threw, credit the unclaimed remainder as
    // completed (in-flight calls still count themselves on return) so the
    // submitter wakes without running the rest of a doomed job.
    if (job->error) {
      job->completed += job->n_total - job->next;
      job->next = job->n_total;
      if (job->completed == job->n_total) done_cv_.notify_all();
      break;
    }
    const std::size_t index = job->next++;
    lock.unlock();
    // Task-granular metrics: every fn(i) here is a shard/design-sized
    // task (never the kernel inner loop), so two clock reads per task are
    // noise. busy_us across all threads over wall-clock gives utilization.
    static auto& tasks = obs::Registry::global().counter("pool.tasks");
    static auto& busy_us = obs::Registry::global().counter("pool.busy_us");
    static auto& exceptions =
        obs::Registry::global().counter("pool.task_exceptions");
    static auto& task_us = obs::Registry::global().histogram("pool.task_us");
    const std::int64_t t0 = obs::now_ns();
    std::exception_ptr error;
    t_inside_job = true;
    try {
      job->fn(index);
    } catch (...) {
      error = std::current_exception();
    }
    t_inside_job = false;
    const auto elapsed_us =
        static_cast<std::uint64_t>((obs::now_ns() - t0) / 1000);
    tasks.add();
    busy_us.add(elapsed_us);
    task_us.record(elapsed_us);
    if (error) {
      // Structured + rate-limited: a job whose every task throws reports a
      // handful of lines and a counter, not n_total stderr writes. The
      // exception itself still propagates to the submitter via job->error.
      exceptions.add();
      obs::log("pool", name_ + ": task " + std::to_string(index) + "/" +
                           std::to_string(job->n_total) +
                           " threw: " + describe_exception(error));
    }
    lock.lock();
    if (error && !job->error) job->error = error;
    if (++job->completed == job->n_total) done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t n, std::size_t max_concurrency,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::size_t tickets = workers_.size();
  if (max_concurrency > 0) tickets = std::min(tickets, max_concurrency - 1);
  if (n == 1 || tickets == 0 || t_inside_job) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  const auto job = std::make_shared<Job>(n, tickets, fn);
  std::unique_lock<std::mutex> lock(mutex_);
  jobs_.push_back(job);
  const std::size_t depth = jobs_.size();  // includes the job just pushed
  work_cv_.notify_all();
  // Instrumentation never extends the critical section: workers are
  // already notified, so record the captured depth with the lock dropped.
  lock.unlock();
  {
    static auto& jobs = obs::Registry::global().counter("pool.jobs");
    static auto& queue_depth =
        obs::Registry::global().histogram("pool.queue_depth");
    jobs.add();
    queue_depth.record(depth);
  }
  lock.lock();
  drive(lock, job);  // the submitting thread always helps
  done_cv_.wait(lock, [&] { return job->completed == job->n_total; });
  if (const auto it = std::find(jobs_.begin(), jobs_.end(), job);
      it != jobs_.end()) {
    jobs_.erase(it);
  }
  if (job->error) {
    lock.unlock();
    std::rethrow_exception(job->error);
  }
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    std::shared_ptr<Job> job;
    work_cv_.wait(lock, [&] {
      if (stop_) return true;
      for (const auto& candidate : jobs_) {
        if (candidate->tickets > 0 && candidate->next < candidate->n_total &&
            !candidate->error) {
          job = candidate;
          return true;
        }
      }
      return false;
    });
    if (stop_) return;
    if (!job) continue;
    --job->tickets;
    drive(lock, job);
  }
}

ThreadPool& ThreadPool::shared() {
  // POLARIS_POOL_WORKERS overrides the hardware sizing - how the TSan CI
  // job (and tests on small machines) force real worker threads under the
  // scheduler regardless of the runner's core count. Malformed or absurd
  // values fall back to the hardware default WITH a warning: silently
  // accepting a typo as "0 workers" would quietly turn the TSan job's
  // real-thread interleaving into inline execution.
  static ThreadPool pool(
      [] {
        const std::size_t fallback = resolve_threads(0) - 1;
        const char* env = std::getenv("POLARIS_POOL_WORKERS");
        if (env == nullptr || *env == '\0') return fallback;
        char* end = nullptr;
        const unsigned long long parsed = std::strtoull(env, &end, 10);
        constexpr unsigned long long kMaxWorkers = 256;
        if (*env < '0' || *env > '9' || *end != '\0' || parsed > kMaxWorkers) {
          obs::log("pool",
                   "ignoring POLARIS_POOL_WORKERS='" + std::string(env) +
                       "' (expected an integer in [0, " +
                       std::to_string(kMaxWorkers) + "]); using " +
                       std::to_string(fallback) + " workers");
          return fallback;
        }
        // 0 means "auto", matching every other threads knob in the codebase
        // (forced-serial execution comes from a threads=1 cap, not from an
        // empty pool).
        return parsed == 0 ? fallback : static_cast<std::size_t>(parsed);
      }(),
      "shared");
  return pool;
}

std::size_t ThreadPool::resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : static_cast<std::size_t>(hardware);
}

}  // namespace polaris::engine
