// Shard-parallel trace engine.
//
// A TVLA campaign is a loop of independent *batches* (64 lanes each, or
// 64 lanes x cycles_per_batch samples for sequential designs). The engine
// splits the batch index space into contiguous shards, runs each shard on
// the shared thread pool with its own simulator + RNG streams, and merges
// the shards' streaming accumulators in shard-index order.
//
// Determinism contract (tested in tests/test_engine.cpp):
//  * every random quantity a batch consumes is derived from
//    stream_seed(campaign_seed, batch_index, tag) - never from "whatever
//    the previous batch left in the generator". Batch b therefore produces
//    the same samples no matter which shard or thread executes it;
//  * the shard plan depends only on the batch count (never on the thread
//    count), so the floating-point merge order is fixed;
//  * merges happen on the submitting thread in ascending shard order.
// Together these make a campaign's LeakageReport bit-identical for any
// `threads` setting, including 1.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "engine/thread_pool.hpp"

namespace polaris::engine {

/// Expands (seed, index, tag) into an independent 64-bit stream seed via
/// two rounds of splitmix64-style mixing. Distinct (index, tag) pairs give
/// uncorrelated child streams; feeding the result to util::Xoshiro256 (whose
/// constructor runs its own splitmix expansion) yields the per-batch
/// generators used by the TVLA protocol layer.
[[nodiscard]] std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t index,
                                        std::uint64_t tag) noexcept;

/// Contiguous partition of [0, total_batches) into shards. Pure function of
/// the batch count: thread count never changes shard boundaries.
struct ShardPlan {
  std::size_t total_batches = 0;
  std::size_t shard_count = 0;
  std::size_t batches_per_shard = 0;  // every shard except possibly the last

  [[nodiscard]] static ShardPlan make(std::size_t total_batches);

  [[nodiscard]] std::size_t begin(std::size_t shard) const {
    return shard * batches_per_shard;
  }
  [[nodiscard]] std::size_t end(std::size_t shard) const {
    const std::size_t e = begin(shard) + batches_per_shard;
    return e < total_batches ? e : total_batches;
  }
};

/// Target shard granularity: enough shards to load-balance a wide machine,
/// few enough that per-shard simulator construction stays negligible. The
/// minimum keeps short campaigns (notably sequential designs, whose batches
/// each carry 64 * cycles_per_batch samples) parallel down to one batch per
/// shard instead of collapsing to a serial plan.
inline constexpr std::size_t kTargetBatchesPerShard = 4;
inline constexpr std::size_t kMinShardsPerCampaign = 16;
inline constexpr std::size_t kMaxShardsPerCampaign = 64;

class TraceEngine {
 public:
  /// threads = 0 selects all hardware threads; 1 runs fully inline.
  explicit TraceEngine(std::size_t threads = 0)
      : threads_(ThreadPool::resolve_threads(threads)) {}

  [[nodiscard]] std::size_t threads() const { return threads_; }

  /// Runs `total_batches` batches sharded across the pool and returns the
  /// merged accumulator state.
  ///   make(shard_index)        -> State    (own simulator, zeroed moments)
  ///   run_batch(state, batch)  ->          (batch = global batch index)
  ///   merge(into, from)        ->          (called in ascending shard order)
  template <class State, class MakeState, class RunBatch, class Merge>
  State run(std::size_t total_batches, MakeState&& make, RunBatch&& run_batch,
            Merge&& merge) const {
    const ShardPlan plan = ShardPlan::make(total_batches);
    if (plan.shard_count == 0) return make(0);

    // The shard/merge structure is executed identically at every thread
    // count (threads only changes *placement*); otherwise the float merge
    // order would differ between threads=1 and threads=N.
    std::vector<std::optional<State>> states(plan.shard_count);
    const auto run_shard = [&](std::size_t shard) {
      State state = make(shard);
      for (std::size_t b = plan.begin(shard); b < plan.end(shard); ++b) {
        run_batch(state, b);
      }
      states[shard].emplace(std::move(state));
    };
    if (threads_ <= 1 || plan.shard_count == 1) {
      for (std::size_t shard = 0; shard < plan.shard_count; ++shard) {
        run_shard(shard);
      }
    } else {
      ThreadPool::shared().parallel_for(plan.shard_count, threads_, run_shard);
    }

    State total = std::move(*states[0]);
    for (std::size_t shard = 1; shard < plan.shard_count; ++shard) {
      merge(total, std::move(*states[shard]));
    }
    return total;
  }

 private:
  std::size_t threads_;
};

}  // namespace polaris::engine
