// Shard-parallel trace engine.
//
// A TVLA campaign is a loop of independent *batches* (64 lanes each, or
// 64 lanes x cycles_per_batch samples for sequential designs). The engine
// splits the batch index space into contiguous shards, runs each shard on
// the shared thread pool with its own simulator + RNG streams, and merges
// the shards' streaming accumulators in shard-index order.
//
// Determinism contract (tested in tests/test_engine.cpp):
//  * every random quantity a batch consumes is derived from
//    stream_seed(campaign_seed, batch_index, tag) - never from "whatever
//    the previous batch left in the generator". Batch b therefore produces
//    the same samples no matter which shard or thread executes it;
//  * the shard plan depends only on the batch count (never on the thread
//    count), so the floating-point merge order is fixed;
//  * merges happen on the submitting thread in ascending shard order.
// Together these make a campaign's LeakageReport bit-identical for any
// `threads` setting, including 1.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "engine/thread_pool.hpp"

namespace polaris::engine {

/// Expands (seed, index, tag) into an independent 64-bit stream seed via
/// two rounds of splitmix64-style mixing. Distinct (index, tag) pairs give
/// uncorrelated child streams; feeding the result to util::Xoshiro256 (whose
/// constructor runs its own splitmix expansion) yields the per-batch
/// generators used by the TVLA protocol layer.
[[nodiscard]] std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t index,
                                        std::uint64_t tag) noexcept;

/// Contiguous partition of [0, total_batches) into shards. Pure function of
/// the batch count: thread count never changes shard boundaries.
struct ShardPlan {
  std::size_t total_batches = 0;
  std::size_t shard_count = 0;
  std::size_t batches_per_shard = 0;  // every shard except possibly the last

  [[nodiscard]] static ShardPlan make(std::size_t total_batches);

  [[nodiscard]] std::size_t begin(std::size_t shard) const {
    return shard * batches_per_shard;
  }
  [[nodiscard]] std::size_t end(std::size_t shard) const {
    const std::size_t e = begin(shard) + batches_per_shard;
    return e < total_batches ? e : total_batches;
  }
};

/// Target shard granularity: enough shards to load-balance a wide machine,
/// few enough that per-shard simulator construction stays negligible. The
/// minimum keeps short campaigns (notably sequential designs, whose batches
/// each carry 64 * cycles_per_batch samples) parallel down to one batch per
/// shard instead of collapsing to a serial plan.
inline constexpr std::size_t kTargetBatchesPerShard = 4;
inline constexpr std::size_t kMinShardsPerCampaign = 16;
inline constexpr std::size_t kMaxShardsPerCampaign = 64;

class TraceEngine {
 public:
  /// threads = 0 selects all hardware threads; 1 runs fully inline.
  explicit TraceEngine(std::size_t threads = 0)
      : threads_(ThreadPool::resolve_threads(threads)) {}

  [[nodiscard]] std::size_t threads() const { return threads_; }

  /// Runs `total_batches` batches sharded across the pool and returns the
  /// merged accumulator state.
  ///   make(shard_index)        -> State    (own simulator, zeroed moments)
  ///   run_batch(state, batch)  ->          (batch = global batch index)
  ///   merge(into, from)        ->          (called in ascending shard order)
  template <class State, class MakeState, class RunBatch, class Merge>
  State run(std::size_t total_batches, MakeState&& make, RunBatch&& run_batch,
            Merge&& merge) const {
    return run_blocks<State>(
        total_batches, /*block_words=*/1, std::forward<MakeState>(make),
        [&run_batch](State& state, std::size_t batch, std::size_t) {
          run_batch(state, batch);
        },
        std::forward<Merge>(merge));
  }

  /// Blocked variant: batches execute in lane blocks of up to `block_words`
  /// consecutive batches per run_block call. The ShardPlan is UNCHANGED -
  /// still the same pure function of the batch count - and blocks re-anchor
  /// at each shard's begin, so shard boundaries (and therefore the
  /// floating-point merge points) are identical at every block width; a
  /// shard range not divisible by block_words ends with a short tail block.
  ///   run_block(state, batch_begin, words) - runs batches
  ///   [batch_begin, batch_begin + words), words <= block_words.
  template <class State, class MakeState, class RunBlock, class Merge>
  State run_blocks(std::size_t total_batches, std::size_t block_words,
                   MakeState&& make, RunBlock&& run_block,
                   Merge&& merge) const {
    const ShardPlan plan = ShardPlan::make(total_batches);
    if (plan.shard_count == 0) return make(0);
    const std::size_t block = block_words == 0 ? 1 : block_words;

    // The shard/merge structure is executed identically at every thread
    // count (threads only changes *placement*); otherwise the float merge
    // order would differ between threads=1 and threads=N.
    std::vector<std::optional<State>> states(plan.shard_count);
    const auto run_shard = [&](std::size_t shard) {
      State state = make(shard);
      const std::size_t end = plan.end(shard);
      for (std::size_t b = plan.begin(shard); b < end; b += block) {
        run_block(state, b, std::min(block, end - b));
      }
      states[shard].emplace(std::move(state));
    };
    if (threads_ <= 1 || plan.shard_count == 1) {
      for (std::size_t shard = 0; shard < plan.shard_count; ++shard) {
        run_shard(shard);
      }
    } else {
      ThreadPool::shared().parallel_for(plan.shard_count, threads_, run_shard);
    }

    State total = std::move(*states[0]);
    for (std::size_t shard = 1; shard < plan.shard_count; ++shard) {
      merge(total, std::move(*states[shard]));
    }
    return total;
  }

 private:
  std::size_t threads_;
};

}  // namespace polaris::engine
