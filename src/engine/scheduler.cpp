#include "engine/scheduler.hpp"

#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace polaris::engine {

void Scheduler::enqueue(std::shared_ptr<CampaignTask> campaign) {
  static auto& campaigns = obs::Registry::global().counter("sched.campaigns");
  static auto& shards = obs::Registry::global().counter("sched.shards");
  static auto& queue_at_submit =
      obs::Registry::global().histogram("sched.queue_at_submit");
  campaign->enqueue_ns = obs::now_ns();
  campaigns.add();
  shards.add(campaign->plan.shard_count);
  const std::lock_guard<std::mutex> lock(mutex_);
  campaign->sequence = next_sequence_++;
  active_.push_back(campaign);
  for (std::size_t shard = 0; shard < campaign->plan.shard_count; ++shard) {
    queue_.push(QueueEntry{campaign, shard});
  }
  // LPT queue length as seen by this submit, including its own shards.
  queue_at_submit.record(queue_.size());
}

bool Scheduler::run_next() {
  static auto& shard_us = obs::Registry::global().histogram("sched.shard_us");
  static auto& campaign_us =
      obs::Registry::global().histogram("sched.campaign_us");
  static auto& shards_cancelled =
      obs::Registry::global().counter("sched.shards_cancelled");
  QueueEntry entry;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    entry = queue_.top();
    queue_.pop();
  }
  if (entry.campaign->cancelled.load(std::memory_order_relaxed)) {
    // A checkpoint already decided this campaign: skip the shard body (its
    // state could never merge past the frozen ceiling anyway) so the pool
    // slot goes to the next undecided campaign in the LPT queue. The
    // decrement below still runs - the campaign finishes normally.
    shards_cancelled.add();
  } else {
    obs::Span span("shard", "sched");
    span.arg("seq", entry.campaign->sequence)
        .arg("shard", static_cast<std::uint64_t>(entry.shard));
    const std::int64_t t0 = obs::now_ns();
    entry.campaign->run_shard(entry.shard);
    shard_us.record(static_cast<std::uint64_t>((obs::now_ns() - t0) / 1000));
  }
  bool last = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    last = --entry.campaign->remaining == 0;
    if (last) {
      // Retire from the progress table before finish() runs: a status poll
      // never reports a campaign whose future is about to be ready with a
      // stale shard count.
      for (auto it = active_.begin(); it != active_.end(); ++it) {
        if (it->get() == entry.campaign.get()) {
          active_.erase(it);
          break;
        }
      }
    }
  }
  // The finisher saw the last decrement under the mutex, so every shard's
  // state write happens-before this merge regardless of which threads ran
  // them. Merging outside the lock keeps other drain threads popping.
  if (last) {
    obs::Span span("merge", "sched");
    span.arg("seq", entry.campaign->sequence);
    entry.campaign->finish();
    // Campaign makespan: submit-to-finalized, queueing included.
    campaign_us.record(static_cast<std::uint64_t>(
        (obs::now_ns() - entry.campaign->enqueue_ns) / 1000));
  }
  return true;
}

void Scheduler::drain() {
  // Loop: a parallel_for covers the shards queued at its start; campaigns
  // submitted while it runs are picked up by the next pass.
  for (;;) {
    std::size_t n = 0;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      n = queue_.size();
    }
    if (n == 0) return;
    if (threads_ <= 1) {
      while (run_next()) {
      }
    } else {
      ThreadPool::shared().parallel_for(n, threads_,
                                        [this](std::size_t) { run_next(); });
    }
  }
}

std::size_t Scheduler::pending_shards() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::vector<CampaignProgress> Scheduler::progress() const {
  const std::int64_t now = obs::now_ns();
  std::vector<CampaignProgress> table;
  const std::lock_guard<std::mutex> lock(mutex_);
  table.reserve(active_.size());
  for (const auto& campaign : active_) {
    CampaignProgress row;
    row.label = campaign->label;
    row.sequence = campaign->sequence;
    row.shards_total = campaign->plan.shard_count;
    row.shards_done = campaign->plan.shard_count - campaign->remaining;
    row.age_us =
        static_cast<std::uint64_t>((now - campaign->enqueue_ns) / 1000);
    row.stopped = campaign->cancelled.load(std::memory_order_relaxed);
    table.push_back(std::move(row));
  }
  // queue_position = rank in the LPT pop order (weight desc, sequence asc)
  // among the active campaigns - the order their remaining shards drain.
  std::vector<std::size_t> order(table.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (active_[a]->weight != active_[b]->weight) {
      return active_[a]->weight > active_[b]->weight;
    }
    return active_[a]->sequence < active_[b]->sequence;
  });
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    table[order[rank]].queue_position = rank;
  }
  return table;
}

}  // namespace polaris::engine
