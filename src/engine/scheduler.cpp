#include "engine/scheduler.hpp"

namespace polaris::engine {

void Scheduler::enqueue(std::shared_ptr<CampaignTask> campaign) {
  const std::lock_guard<std::mutex> lock(mutex_);
  campaign->sequence = next_sequence_++;
  for (std::size_t shard = 0; shard < campaign->plan.shard_count; ++shard) {
    queue_.push(QueueEntry{campaign, shard});
  }
}

bool Scheduler::run_next() {
  QueueEntry entry;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return false;
    entry = queue_.top();
    queue_.pop();
  }
  entry.campaign->run_shard(entry.shard);
  bool last = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    last = --entry.campaign->remaining == 0;
  }
  // The finisher saw the last decrement under the mutex, so every shard's
  // state write happens-before this merge regardless of which threads ran
  // them. Merging outside the lock keeps other drain threads popping.
  if (last) entry.campaign->finish();
  return true;
}

void Scheduler::drain() {
  // Loop: a parallel_for covers the shards queued at its start; campaigns
  // submitted while it runs are picked up by the next pass.
  for (;;) {
    std::size_t n = 0;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      n = queue_.size();
    }
    if (n == 0) return;
    if (threads_ <= 1) {
      while (run_next()) {
      }
    } else {
      ThreadPool::shared().parallel_for(n, threads_,
                                        [this](std::size_t) { run_next(); });
    }
  }
}

std::size_t Scheduler::pending_shards() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace polaris::engine
