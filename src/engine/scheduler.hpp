// Global shard scheduler: one work queue for every pending campaign.
//
// The TraceEngine (trace_engine.hpp) shards ONE campaign's batch range and
// blocks until it is merged - the right shape for a single leak_estimate(D)
// call, but a multi-campaign flow (Algorithm 1 labelling, suite audits,
// masking sweeps) pays tail latency whenever designs have unequal batch
// counts: the pool idles while the last campaign's final shards finish.
//
// The Scheduler flattens all pending campaigns' shards into one priority
// queue drained by the shared ThreadPool. Each submit() registers a
// campaign - a ShardPlan over its batch range plus make/run_batch/merge/
// finalize callables - and returns a std::future for its result. drain()
// executes every queued shard; heavier campaigns' shards are popped first
// (LPT order), so short campaigns fill the stragglers' idle lanes instead
// of queueing behind them.
//
// Determinism contract (tested in tests/test_scheduler.cpp): a campaign's
// result is bit-identical to the per-campaign TraceEngine path at every
// thread count, queue interleaving, and submission order, because
//  * the ShardPlan is the same pure function of the batch count;
//  * every batch derives its randomness from stream_seed(seed, batch, tag),
//    so execution placement cannot change a batch's samples;
//  * shard states merge in ascending shard order, on whichever thread
//    completes the campaign's last shard - the float op sequence is the
//    TraceEngine's, regardless of which threads ran the shards.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "engine/thread_pool.hpp"
#include "engine/trace_engine.hpp"

namespace polaris::engine {

/// One row of Scheduler::progress(): a campaign that has been submitted
/// but not yet finalized, described entirely from state the scheduler
/// already tracks under its mutex. Plain data, safe to ship to a client.
struct CampaignProgress {
  std::string label;            // submit-time label ("" when none given)
  std::uint64_t sequence = 0;   // submission order (unique per scheduler)
  std::size_t shards_done = 0;  // shards retired (executed or skipped)
  std::size_t shards_total = 0;
  /// Rank in the LPT pop order among the currently active campaigns
  /// (0 = drains first). Recomputed per call - it shifts as heavier
  /// campaigns arrive.
  std::size_t queue_position = 0;
  std::uint64_t age_us = 0;  // since submit
  bool stopped = false;      // an early-stop checkpoint decided it
};

class Scheduler {
 public:
  /// `threads` caps the drain fan-out: 0 = all hardware threads, 1 = fully
  /// serial (drain runs every shard inline, in strict priority order).
  explicit Scheduler(std::size_t threads = 0)
      : threads_(ThreadPool::resolve_threads(threads)) {}

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] std::size_t threads() const { return threads_; }

  /// Registers a campaign and queues its shards. Returns a future for the
  /// finalized result; the future becomes ready during drain(), when the
  /// campaign's last shard has executed and its shard states have merged.
  ///
  ///   make(shard_index)        -> State   (own simulator, zeroed moments)
  ///   run_batch(state, batch)  ->         (batch = global batch index)
  ///   merge(into, from)        ->         (ascending shard order)
  ///   finalize(state)          -> Result  (runs once, after the merge)
  ///
  /// `weight` orders the queue (heavier campaigns drain first); 0 uses the
  /// batch count. An exception from any callable fails only this campaign:
  /// its remaining shards are skipped and the future rethrows on get().
  /// Zero-batch campaigns finalize make(0) inline and return a ready
  /// future, mirroring TraceEngine::run.
  template <class State, class MakeState, class RunBatch, class Merge,
            class Finalize,
            class Result = std::invoke_result_t<Finalize&, State&&>>
  std::future<Result> submit(std::size_t total_batches, MakeState make,
                             RunBatch run_batch, Merge merge,
                             Finalize finalize, std::size_t weight = 0,
                             std::string label = {}) {
    return submit_blocks<State>(
        total_batches, /*block_words=*/1, std::move(make),
        [rb = std::move(run_batch)](State& state, std::size_t batch,
                                    std::size_t) { rb(state, batch); },
        std::move(merge), std::move(finalize), weight, std::move(label));
  }

  /// Blocked variant (see TraceEngine::run_blocks): shards execute their
  /// batch range in lane blocks of up to `block_words` consecutive
  /// batches, re-anchored at each shard's begin - the ShardPlan (and so
  /// every merge point) is identical at every block width.
  ///   run_block(state, batch_begin, words) - runs batches
  ///   [batch_begin, batch_begin + words), words <= block_words.
  template <class State, class MakeState, class RunBlock, class Merge,
            class Finalize,
            class Result = std::invoke_result_t<Finalize&, State&&>>
  std::future<Result> submit_blocks(std::size_t total_batches,
                                    std::size_t block_words, MakeState make,
                                    RunBlock run_block, Merge merge,
                                    Finalize finalize, std::size_t weight = 0,
                                    std::string label = {}) {
    return submit_checkpointed<State>(total_batches, block_words,
                                      std::move(make), std::move(run_block),
                                      std::move(merge), std::move(finalize),
                                      /*checkpoints=*/{},
                                      /*checkpoint=*/nullptr, weight,
                                      std::move(label));
  }

  /// Early-stopping variant. `checkpoints` is an ascending list of shard
  /// prefix counts; each time the ascending incremental merge has covered
  /// the first `c` shards, `checkpoint(merged, c)` runs exactly once (under
  /// the campaign's merge lock, so checkpoints never race each other).
  /// Returning true STOPS the campaign: the merge ceiling freezes at `c`,
  /// so the result is finalized from exactly the first `c` shards - shards
  /// that were already running keep going but their states are discarded,
  /// and the campaign's unstarted shards are skipped when popped, which
  /// hands their pool slots straight to the undecided campaigns behind
  /// them in the LPT queue.
  ///
  /// Determinism: milestones are shard prefix counts computed from the
  /// same pure ShardPlan, the merge is strictly ascending, and a stop
  /// decision freezes the ceiling before any out-of-order state can join -
  /// so stop decisions AND finalized results are bit-identical at every
  /// thread count and block width. With an empty checkpoint this is
  /// exactly submit_blocks (deferred merge in finish(), byte-identical).
  template <class State, class MakeState, class RunBlock, class Merge,
            class Finalize,
            class Result = std::invoke_result_t<Finalize&, State&&>>
  std::future<Result> submit_checkpointed(
      std::size_t total_batches, std::size_t block_words, MakeState make,
      RunBlock run_block, Merge merge, Finalize finalize,
      std::vector<std::size_t> checkpoints,
      std::function<bool(const State&, std::size_t)> checkpoint,
      std::size_t weight = 0, std::string label = {}) {
    auto campaign = std::make_shared<
        TypedCampaign<State, Result, MakeState, RunBlock, Merge, Finalize>>(
        std::move(make), std::move(run_block), std::move(merge),
        std::move(finalize));
    campaign->plan = ShardPlan::make(total_batches);
    campaign->block = block_words == 0 ? 1 : block_words;
    campaign->weight = weight == 0 ? total_batches : weight;
    campaign->label = std::move(label);
    campaign->checkpoint = std::move(checkpoint);
    campaign->checkpoint_shards = std::move(checkpoints);
    campaign->stop_at = campaign->plan.shard_count;
    std::future<Result> future = campaign->promise.get_future();
    if (campaign->plan.shard_count == 0) {
      campaign->finish();  // TraceEngine semantics: finalize(make(0))
      return future;
    }
    campaign->states.resize(campaign->plan.shard_count);
    campaign->remaining = campaign->plan.shard_count;
    enqueue(std::move(campaign));
    return future;
  }

  /// Executes every queued shard on the shared pool (the calling thread
  /// participates) and returns once all submitted campaigns have finished.
  /// Shards submitted while draining are included. Safe to call from
  /// inside a pool job: the fan-out then runs inline (see ThreadPool).
  void drain();

  /// Shards still queued (not yet claimed by drain). Test/bench hook.
  [[nodiscard]] std::size_t pending_shards() const;

  /// Per-campaign progress table of every submitted-but-unfinalized
  /// campaign, in submission order. Built from state the scheduler already
  /// tracks under its mutex - no extra bookkeeping on the shard hot path.
  /// Safe to call from any thread, including from inside a running shard
  /// (run_shard holds no scheduler lock).
  [[nodiscard]] std::vector<CampaignProgress> progress() const;

 private:
  /// Type-erased campaign control block. `remaining` is guarded by the
  /// scheduler mutex; each shard's state slot is written by exactly one
  /// drain thread and read by the finisher after the last decrement, so
  /// the mutex ordering publishes every slot.
  struct CampaignTask {
    virtual ~CampaignTask() = default;
    /// Runs one shard's batches. Never throws: failures are captured into
    /// the campaign and surface via the future.
    virtual void run_shard(std::size_t shard) noexcept = 0;
    /// Merges shard states in ascending order and fulfills the promise.
    /// Called exactly once, after the last shard executed.
    virtual void finish() noexcept = 0;

    ShardPlan plan;
    std::size_t block = 1;       // lane-block width (consecutive batches)
    std::size_t weight = 0;
    std::uint64_t sequence = 0;  // submission order, the priority tie-break
    std::size_t remaining = 0;   // shards not yet executed
    std::int64_t enqueue_ns = 0;  // obs timebase; makespan = finish - this
    std::string label;            // progress-table identity (may be empty)
    /// Set once when a checkpoint decides the campaign: run_next skips the
    /// shard body for this campaign from then on (the decrement/finish
    /// bookkeeping still runs, so the future still completes). Skipping is
    /// an optimization only - a shard that slips through before the flag
    /// is visible wastes work but cannot change the result, because the
    /// merge ceiling (`stop_at`) froze under the merge lock.
    std::atomic<bool> cancelled{false};
  };

  template <class State, class Result, class MakeState, class RunBlock,
            class Merge, class Finalize>
  struct TypedCampaign final : CampaignTask {
    TypedCampaign(MakeState make, RunBlock run_block, Merge merge,
                  Finalize finalize)
        : make(std::move(make)),
          run_block(std::move(run_block)),
          merge(std::move(merge)),
          finalize(std::move(finalize)) {}

    void run_shard(std::size_t shard) noexcept override {
      if (failed.load(std::memory_order_relaxed)) return;  // doomed campaign
      try {
        State state = make(shard);
        const std::size_t end = plan.end(shard);
        for (std::size_t b = plan.begin(shard); b < end; b += block) {
          run_block(state, b, std::min(block, end - b));
        }
        if (!checkpoint) {
          states[shard].emplace(std::move(state));
          return;
        }
        // Checkpointed mode: publish the state under the merge lock (other
        // drain threads read the slots below, so the lock-free emplace of
        // the fixed path would race) and advance the ascending merge
        // cursor, firing each milestone exactly once as it is crossed.
        const std::lock_guard<std::mutex> merge_lock(merge_mutex);
        states[shard].emplace(std::move(state));
        while (merged_upto < stop_at && states[merged_upto].has_value()) {
          if (merged_upto == 0) {
            merged.emplace(std::move(*states[0]));
          } else {
            merge(*merged, std::move(*states[merged_upto]));
          }
          states[merged_upto].reset();
          ++merged_upto;
          if (next_checkpoint < checkpoint_shards.size() &&
              merged_upto == checkpoint_shards[next_checkpoint]) {
            ++next_checkpoint;
            if (checkpoint(*merged, merged_upto)) {
              stop_at = merged_upto;  // freeze: no later state ever merges
              cancelled.store(true, std::memory_order_relaxed);
              break;
            }
          }
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }

    void finish() noexcept override {
      try {
        if (error) std::rethrow_exception(error);
        if (states.empty()) {  // zero-batch campaign
          promise.set_value(finalize(make(0)));
          return;
        }
        if (checkpoint) {
          // `merged` already holds the ascending merge of shards
          // [0, stop_at); anything later was skipped or discarded. The
          // finisher saw the last remaining-decrement under the scheduler
          // mutex, which the merging threads' writes happen-before.
          promise.set_value(finalize(std::move(*merged)));
          return;
        }
        State total = std::move(*states[0]);
        for (std::size_t shard = 1; shard < states.size(); ++shard) {
          merge(total, std::move(*states[shard]));
        }
        promise.set_value(finalize(std::move(total)));
      } catch (...) {
        promise.set_exception(std::current_exception());
      }
    }

    MakeState make;
    RunBlock run_block;
    Merge merge;
    Finalize finalize;
    std::vector<std::optional<State>> states;
    std::promise<Result> promise;
    std::mutex error_mutex;
    std::exception_ptr error;
    std::atomic<bool> failed{false};
    /// Empty on the fixed-budget path (deferred merge in finish(), the
    /// pre-existing byte-identical behavior). Non-empty switches run_shard
    /// to the incremental ascending merge above.
    std::function<bool(const State&, std::size_t)> checkpoint;
    std::vector<std::size_t> checkpoint_shards;  // ascending prefix counts
    std::mutex merge_mutex;       // guards merged/merged_upto/states below
    std::optional<State> merged;  // ascending merge of shards [0, merged_upto)
    std::size_t merged_upto = 0;
    std::size_t next_checkpoint = 0;
    std::size_t stop_at = 0;  // merge ceiling; lowered once on a stop
  };

  struct QueueEntry {
    std::shared_ptr<CampaignTask> campaign;
    std::size_t shard = 0;
  };
  /// Max-heap order: heavier campaign first (LPT), then submission order,
  /// then ascending shard - a deterministic total order, so serial drains
  /// execute an identical schedule every run.
  struct EntryOrder {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      if (a.campaign->weight != b.campaign->weight) {
        return a.campaign->weight < b.campaign->weight;
      }
      if (a.campaign->sequence != b.campaign->sequence) {
        return a.campaign->sequence > b.campaign->sequence;
      }
      return a.shard > b.shard;
    }
  };

  void enqueue(std::shared_ptr<CampaignTask> campaign);
  /// Pops and executes one shard; runs the campaign's finish() if it was
  /// the last. Returns false when the queue was empty.
  bool run_next();

  mutable std::mutex mutex_;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, EntryOrder> queue_;
  /// Campaigns submitted but not yet finalized, submission order. Entries
  /// are appended by enqueue and erased by run_next after the last shard's
  /// decrement - so the progress table empties exactly when every future
  /// is ready.
  std::vector<std::shared_ptr<CampaignTask>> active_;
  std::size_t threads_;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace polaris::engine
