#include "engine/trace_engine.hpp"

namespace polaris::engine {

std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t index,
                          std::uint64_t tag) noexcept {
  // Two finalization rounds over the mixed (seed, index, tag) word. The
  // constants are splitmix64's; the odd multiplier on `index` separates
  // consecutive batch indices by a full avalanche before the first round.
  std::uint64_t z = seed ^ (index * 0x9e3779b97f4a7c15ULL) ^ tag;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

ShardPlan ShardPlan::make(std::size_t total_batches) {
  ShardPlan plan;
  plan.total_batches = total_batches;
  if (total_batches == 0) return plan;
  std::size_t shards =
      (total_batches + kTargetBatchesPerShard - 1) / kTargetBatchesPerShard;
  // Floor: small batch counts (sequential designs pack 64*cycles_per_batch
  // samples per batch, so realistic budgets are just a handful of batches)
  // still split down to one batch per shard rather than collapsing to a
  // serial plan. Still a pure function of the batch count.
  const std::size_t floor_shards =
      total_batches < kMinShardsPerCampaign ? total_batches
                                            : kMinShardsPerCampaign;
  if (shards < floor_shards) shards = floor_shards;
  if (shards > kMaxShardsPerCampaign) shards = kMaxShardsPerCampaign;
  plan.batches_per_shard = (total_batches + shards - 1) / shards;
  plan.shard_count =
      (total_batches + plan.batches_per_shard - 1) / plan.batches_per_shard;
  return plan;
}

}  // namespace polaris::engine
