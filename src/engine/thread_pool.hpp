// Reusable worker pool for shard-parallel trace campaigns.
//
// Design constraints (see DESIGN.md "Shard-parallel trace engine"):
//  * one process-wide pool, created lazily and reused by every campaign -
//    TVLA runs thousands of short campaigns (Algorithm 1 labelling), so
//    per-campaign thread spawn/join would dominate;
//  * the submitting thread always participates in its own job, and a
//    parallel_for issued from inside a running job executes inline
//    (Algorithm 1 runs campaigns concurrently; each campaign's shard
//    fan-out then stays on its campaign's thread) - no deadlock, and
//    nested levels never multiply their concurrency caps;
//  * jobs cap their worker fan-out with a ticket count so a `threads = 2`
//    flow never spreads across the whole machine.
//
// The pool distributes *indices*, not closures: parallel_for(n, cap, fn)
// runs fn(i) for i in [0, n) with dynamic (atomic counter) load balancing.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace polaris::engine {

class ThreadPool {
 public:
  /// Spawns `workers` persistent threads (0 is valid: every job then runs
  /// inline on the submitting thread). `name` labels this pool in metrics
  /// and log lines.
  explicit ThreadPool(std::size_t workers, std::string name = "pool");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(i) for every i in [0, n). Blocks until all n calls returned.
  /// At most `max_concurrency` threads (including the caller) execute fn
  /// simultaneously; 0 means "no cap beyond pool size". A call made from
  /// inside a running job executes inline: only the outermost fan-out level
  /// recruits workers, so nested levels (designs -> campaigns -> shards)
  /// never multiply their caps and a `threads = N` flow is bounded by N.
  void parallel_for(std::size_t n, std::size_t max_concurrency,
                    const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t worker_count() const { return workers_.size(); }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Process-wide pool sized to the hardware (hardware_concurrency - 1
  /// workers; the submitting thread supplies the remaining lane). The
  /// POLARIS_POOL_WORKERS environment variable overrides the worker count
  /// (used by the TSan CI job to force real threads on small runners).
  static ThreadPool& shared();

  /// Maps a user-facing `threads` knob to an effective thread count:
  /// 0 = all hardware threads, otherwise the requested value.
  [[nodiscard]] static std::size_t resolve_threads(std::size_t requested);

 private:
  struct Job {
    Job(std::size_t n, std::size_t tickets,
        const std::function<void(std::size_t)>& fn)
        : n_total(n), tickets(tickets), fn(fn) {}
    const std::size_t n_total;
    std::size_t next = 0;       // guarded by the pool mutex
    std::size_t completed = 0;  // guarded by the pool mutex
    std::size_t tickets;        // workers still allowed to join
    std::exception_ptr error;   // first exception thrown by fn, if any
    const std::function<void(std::size_t)>& fn;
  };

  /// Claims and runs indices of `job` until exhausted. Called with the pool
  /// lock held; returns with it held.
  void drive(std::unique_lock<std::mutex>& lock, const std::shared_ptr<Job>& job);
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  // workers: "a job may need hands"
  std::condition_variable done_cv_;  // submitters: "a job may be complete"
  std::deque<std::shared_ptr<Job>> jobs_;
  std::vector<std::thread> workers_;
  std::string name_;
  bool stop_ = false;
};

}  // namespace polaris::engine
